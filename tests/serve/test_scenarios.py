"""The seeded scenario suite: exact counters, bit-reproducibility, and
the gpu-loss acceptance criterion (mid-flight pool failure -> cascading
repair -> displacement -> re-admission -> zero lost queries)."""

import pytest

from repro.serve import SCENARIOS, run_scenario, scenario_config


class TestCatalog:
    def test_names(self):
        assert sorted(SCENARIOS) == ["burst-overload", "gpu-loss", "steady-state"]

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario_config("nope")

    def test_configs_round_trip_through_json(self):
        from repro.serve import ServeConfig

        for name in SCENARIOS:
            cfg = scenario_config(name)
            assert ServeConfig.from_dict(cfg.to_dict()) == cfg


class TestSteadyState:
    def test_exact_counters(self):
        report = run_scenario("steady-state").report
        assert report.arrivals == 26
        assert report.admitted == 26
        assert report.completed == 26
        assert report.shed_queue_full == 0
        assert report.shed_deadline == 0
        assert report.failed == 0
        assert report.deadline_misses == 0
        assert report.retries == 0
        assert report.displaced == 0
        assert report.repairs == 0
        assert report.degraded_dispatches == 0


class TestBurstOverload:
    def test_exact_counters(self):
        report = run_scenario("burst-overload").report
        assert report.arrivals == 50
        assert report.admitted == 33
        assert report.completed == 30
        assert report.shed_queue_full == 17
        assert report.shed_deadline == 3
        assert report.failed == 0
        assert report.deadline_misses == 0
        # the burst pushed past overload_queue: degraded dispatches ran
        assert report.degraded_dispatches == 9

    def test_degradation_kept_misses_at_zero(self):
        report = run_scenario("burst-overload").report
        assert report.deadline_miss_rate == 0.0
        assert report.goodput_qps > 0


class TestGpuLoss:
    """The robustness acceptance scenario: two pool GPUs die while
    queries are in flight; nothing admitted is ever lost."""

    def test_exact_counters(self):
        report = run_scenario("gpu-loss").report
        assert report.arrivals == 27
        assert report.admitted == 27
        assert report.completed == 27  # every admitted query finished
        assert report.failed == 0
        assert report.shed_queue_full == 0
        assert report.shed_deadline == 0
        assert report.deadline_misses == 0
        # the first failure was repaired in place, the second wiped the
        # lease: one displacement, one retry, one repair round
        assert report.repairs == 1
        assert report.displaced == 1
        assert report.retries == 1

    def test_displaced_query_readmitted_elsewhere(self):
        result = run_scenario("gpu-loss")
        rec = result.record_of("search-q0008")
        assert rec.status == "completed"
        assert rec.displaced == 1
        assert rec.attempts == 2  # original dispatch + re-admission
        assert rec.repairs == 1
        # the retry landed on the surviving half of the pool
        assert rec.gpus == (2, 3)
        assert rec.deadline_met is True

    def test_bit_reproducible(self):
        d1 = run_scenario("gpu-loss").report.to_dict()
        d2 = run_scenario("gpu-loss").report.to_dict()
        # sched_ms is host wall-clock, the one deliberately
        # non-reproducible field in the report
        d1.pop("sched_ms")
        d2.pop("sched_ms")
        assert d1 == d2
