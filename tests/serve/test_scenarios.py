"""The seeded scenario suite: exact counters, bit-reproducibility, and
the gpu-loss acceptance criterion (mid-flight pool failure -> cascading
repair -> displacement -> re-admission -> zero lost queries)."""

import pytest

from repro.serve import SCENARIOS, run_scenario, scenario_config


class TestCatalog:
    def test_names(self):
        assert sorted(SCENARIOS) == [
            "burst-overload",
            "gpu-loss",
            "gpu-loss-recovery",
            "steady-state",
        ]

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario_config("nope")

    def test_configs_round_trip_through_json(self):
        from repro.serve import ServeConfig

        for name in SCENARIOS:
            cfg = scenario_config(name)
            assert ServeConfig.from_dict(cfg.to_dict()) == cfg


class TestSteadyState:
    def test_exact_counters(self):
        report = run_scenario("steady-state").report
        assert report.arrivals == 26
        assert report.admitted == 26
        assert report.completed == 26
        assert report.shed_queue_full == 0
        assert report.shed_deadline == 0
        assert report.failed == 0
        assert report.deadline_misses == 0
        assert report.retries == 0
        assert report.displaced == 0
        assert report.repairs == 0
        assert report.degraded_dispatches == 0


class TestBurstOverload:
    def test_exact_counters(self):
        report = run_scenario("burst-overload").report
        assert report.arrivals == 50
        assert report.admitted == 33
        assert report.completed == 30
        assert report.shed_queue_full == 17
        assert report.shed_deadline == 3
        assert report.failed == 0
        assert report.deadline_misses == 0
        # the burst pushed past overload_queue: degraded dispatches ran
        assert report.degraded_dispatches == 9

    def test_degradation_kept_misses_at_zero(self):
        report = run_scenario("burst-overload").report
        assert report.deadline_miss_rate == 0.0
        assert report.goodput_qps > 0


class TestGpuLoss:
    """The robustness acceptance scenario: two pool GPUs die while
    queries are in flight; nothing admitted is ever lost."""

    def test_exact_counters(self):
        report = run_scenario("gpu-loss").report
        assert report.arrivals == 27
        assert report.admitted == 27
        assert report.completed == 27  # every admitted query finished
        assert report.failed == 0
        assert report.shed_queue_full == 0
        assert report.shed_deadline == 0
        assert report.deadline_misses == 0
        # the first failure was repaired in place, the second wiped the
        # lease: one displacement, one retry, one repair round
        assert report.repairs == 1
        assert report.displaced == 1
        assert report.retries == 1

    def test_displaced_query_readmitted_elsewhere(self):
        result = run_scenario("gpu-loss")
        rec = result.record_of("search-q0008")
        assert rec.status == "completed"
        assert rec.displaced == 1
        assert rec.attempts == 2  # original dispatch + re-admission
        assert rec.repairs == 1
        # the retry landed on the surviving half of the pool
        assert rec.gpus == (2, 3)
        assert rec.deadline_met is True

    def test_bit_reproducible(self):
        d1 = run_scenario("gpu-loss").report.to_dict()
        d2 = run_scenario("gpu-loss").report.to_dict()
        # sched_ms is host wall-clock, the one deliberately
        # non-reproducible field in the report
        d1.pop("sched_ms")
        d2.pop("sched_ms")
        assert d1 == d2


class TestGpuLossRecovery:
    """The healing acceptance scenario: a rolling three-GPU outage is
    undone by staged ``repair:G@T`` events while the backlog drains —
    batching merges the burst, elastic leases shrink under pressure and
    grow onto the first revived GPU, and nothing admitted is lost."""

    def test_exact_counters(self):
        report = run_scenario("gpu-loss-recovery").report
        assert report.arrivals == 26
        assert report.admitted == 26
        assert report.completed == 26  # every admitted query finished
        assert report.shed_queue_full == 0
        assert report.shed_deadline == 0
        assert report.failed == 0
        assert report.deadline_misses == 0
        assert report.repairs == 1
        assert report.displaced == 4
        assert report.retries == 4
        assert report.degraded_dispatches == 3
        # the heal path proper: every repair spec revived its GPU,
        # batching merged five followers, and the elastic pass both
        # shrank under overload and grew onto a revived GPU
        assert report.revived == 3
        assert report.batched == 5
        assert report.elastic_grows == 1
        assert report.elastic_shrinks == 1
        assert report.warm_starts == 3

    def test_batches_merge_the_backlogged_burst(self):
        result = run_scenario("gpu-loss-recovery")
        followers = [r for r in result.records if r.batched_with]
        assert len(followers) == 5
        for rec in followers:
            leader = result.record_of(rec.batched_with)
            assert rec.dispatched_ms == leader.dispatched_ms
            assert rec.gpus == leader.gpus
            assert rec.batch == leader.batch == len(
                [r for r in result.records if r.batched_with == leader.id]
            ) + 1
            assert rec.status == leader.status == "completed"

    def test_elastic_resizes_land_on_records(self):
        result = run_scenario("gpu-loss-recovery")
        resized = sorted(
            (r for r in result.records if r.resizes), key=lambda r: r.id
        )
        assert [r.id for r in resized] == ["batch-q0000", "search-q0002"]
        for rec in resized:
            assert rec.resizes == 1
            assert rec.status == "completed"
        # the grown lease ends wider than the degraded width, on a GPU
        # that was dead when the query dispatched
        grown = result.record_of("search-q0002")
        assert len(grown.gpus) == 2

    def test_bit_reproducible(self):
        d1 = run_scenario("gpu-loss-recovery").report.to_dict()
        d2 = run_scenario("gpu-loss-recovery").report.to_dict()
        d1.pop("sched_ms")
        d2.pop("sched_ms")
        assert d1 == d2
