"""Behavioural tests of the serving loop on small crafted configs."""

import pytest

from repro.serve import (
    MODEL_ZOO,
    ServeConfig,
    ServeError,
    TenantSpec,
    run_scenario,
    serve,
    zoo_graph,
    zoo_profile,
)
from repro.serve.scenarios import scenario_config
from repro.serve.simulator import ServeSimulator
from repro.sweep import ScheduleCache


def _tenant(**kwargs):
    defaults = dict(name="t", model="tiny", rate_qps=0.0, deadline_ms=200.0)
    defaults.update(kwargs)
    return TenantSpec(**defaults)


class TestZoo:
    def test_zoo_contents(self):
        assert {"tiny", "chain12", "wide24", "deep40"} <= set(MODEL_ZOO)
        for name in MODEL_ZOO:
            assert zoo_graph(name).names

    def test_unknown_model_raises_with_listing(self):
        with pytest.raises(KeyError, match="tiny"):
            zoo_graph("nope")

    def test_profile_is_cached(self):
        assert zoo_profile("tiny", 2) is zoo_profile("tiny", 2)
        assert zoo_profile("tiny", 2).num_gpus == 2


class TestSimulator:
    def test_unknown_tenant_model_rejected(self):
        cfg = ServeConfig(tenants=(_tenant(model="resnet999", arrivals_ms=(1.0,)),))
        with pytest.raises(ServeError, match="unknown model"):
            serve(cfg)

    def test_single_query_completes_with_service_latency(self):
        cfg = ServeConfig(
            tenants=(_tenant(arrivals_ms=(5.0,)),),
            num_gpus=2,
            gpus_per_query=2,
            horizon_ms=100.0,
        )
        result = serve(cfg)
        rec = result.record_of("t-q0000")
        assert rec.status == "completed"
        assert rec.dispatched_ms == 5.0
        assert rec.gpus == (0, 1)
        assert rec.attempts == 1
        assert rec.latency_ms == pytest.approx(rec.completed_ms - rec.arrival_ms)
        assert result.report.completed == 1

    def test_record_of_unknown_id(self):
        cfg = ServeConfig(tenants=(_tenant(arrivals_ms=(1.0,)),))
        with pytest.raises(KeyError):
            serve(cfg).record_of("ghost")

    def test_queue_capacity_sheds_excess(self):
        # 6 simultaneous arrivals, 1 running + 2 queued; the rest shed
        cfg = ServeConfig(
            tenants=(_tenant(arrivals_ms=(1.0,) * 6),),
            num_gpus=2,
            gpus_per_query=2,
            queue_capacity=2,
            overload_queue=16,
            horizon_ms=400.0,
        )
        report = serve(cfg).report
        assert report.shed_queue_full == 3
        assert report.completed == 3
        assert report.failed == 0

    def test_priority_orders_dispatch(self):
        cfg = ServeConfig(
            tenants=(
                _tenant(name="lo", arrivals_ms=(1.0,), priority=0),
                _tenant(name="hi", arrivals_ms=(1.0,), priority=5),
            ),
            num_gpus=2,
            gpus_per_query=2,
            horizon_ms=200.0,
        )
        result = serve(cfg)
        hi = result.record_of("hi-q0000")
        lo = result.record_of("lo-q0000")
        assert hi.dispatched_ms == 1.0
        assert lo.dispatched_ms > hi.dispatched_ms

    def test_overload_degrades_gpus_and_algorithm(self):
        cfg = ServeConfig(
            tenants=(_tenant(arrivals_ms=(1.0,) * 5, deadline_ms=2000.0),),
            num_gpus=2,
            gpus_per_query=2,
            queue_capacity=16,
            overload_queue=1,
            degraded_gpus=1,
            degraded_algorithm="sequential",
            horizon_ms=2000.0,
        )
        result = serve(cfg)
        assert result.report.degraded_dispatches > 0
        degraded = [r for r in result.records if r.degraded]
        for rec in degraded:
            assert len(rec.gpus) == 1
            assert rec.algorithm == "sequential"

    def test_shed_late_drops_doomed_requests(self):
        # the second query cannot start before its deadline passes
        cfg = ServeConfig(
            tenants=(_tenant(arrivals_ms=(1.0, 1.5), deadline_ms=3.0),),
            num_gpus=2,
            gpus_per_query=2,
            horizon_ms=100.0,
        )
        report = serve(cfg).report
        assert report.shed_deadline >= 1
        cfg_keep = ServeConfig(
            tenants=(_tenant(arrivals_ms=(1.0, 1.5), deadline_ms=3.0),),
            num_gpus=2,
            gpus_per_query=2,
            shed_late=False,
            horizon_ms=100.0,
        )
        kept = serve(cfg_keep).report
        assert kept.shed_deadline == 0
        assert kept.completed == 2
        assert kept.deadline_misses >= 1

    def test_pool_wipeout_fails_queued_work(self):
        cfg = ServeConfig(
            tenants=(_tenant(arrivals_ms=(1.0, 30.0), deadline_ms=500.0),),
            num_gpus=1,
            gpus_per_query=1,
            degraded_gpus=1,
            faults=("fail:0@20",),
            max_retries=1,
            horizon_ms=200.0,
        )
        report = serve(cfg).report
        # GPU 0 is the whole pool: everything after the failure dies
        assert report.failed >= 1
        assert report.completed == 0

    def test_retry_survives_single_gpu_loss(self):
        # query on (0,1) loses GPU 1 mid-flight -> cascading repair on 0
        cfg = ServeConfig(
            tenants=(_tenant(arrivals_ms=(1.0,), deadline_ms=500.0),),
            num_gpus=3,
            gpus_per_query=2,
            faults=("fail:1@2",),
            horizon_ms=300.0,
        )
        result = serve(cfg)
        rec = result.record_of("t-q0000")
        assert rec.status == "completed"
        assert rec.repairs == 1
        assert rec.attempts == 1  # repaired in place, no re-admission

    def test_bit_reproducible(self):
        cfg = ServeConfig(
            tenants=(
                _tenant(name="a", rate_qps=30.0),
                _tenant(name="b", rate_qps=10.0, priority=1),
            ),
            num_gpus=4,
            horizon_ms=400.0,
            seed=13,
            faults=("fail:2@120",),
        )
        d1 = serve(cfg).report.to_dict()
        d2 = serve(cfg).report.to_dict()
        # sched_ms is host wall-clock, the one deliberately
        # non-reproducible field in the report
        d1.pop("sched_ms")
        d2.pop("sched_ms")
        assert d1 == d2


class TestScheduleCacheAndCounters:
    """The scheduling-cost observability added to the report: wall time,
    cache hit/miss counters, and warm-start counts."""

    def test_counters_without_cache_count_scheduler_runs(self):
        report = run_scenario("steady-state").report
        assert report.sched_cache_hits == 0  # no cache attached
        assert report.sched_cache_misses > 0  # every plan was computed
        assert report.sched_ms >= 0.0

    def test_warm_restart_hits_for_every_plan(self, tmp_path):
        cfg = scenario_config("steady-state")
        cold = ServeSimulator(cfg, sched_cache=ScheduleCache(tmp_path)).run().report
        warm = ServeSimulator(cfg, sched_cache=ScheduleCache(tmp_path)).run().report
        assert cold.sched_cache_hits == 0
        assert cold.sched_cache_misses > 0
        assert warm.sched_cache_misses == 0
        assert warm.sched_cache_hits == cold.sched_cache_misses
        # apart from wall time and the cache counters, the restarted run
        # is bit-identical: hits replay the exact schedules
        d1, d2 = cold.to_dict(), warm.to_dict()
        for volatile in ("sched_ms", "sched_cache_hits", "sched_cache_misses"):
            d1.pop(volatile)
            d2.pop(volatile)
        assert d1 == d2

    def test_gpu_loss_exercises_warm_start(self):
        report = run_scenario("gpu-loss").report
        assert report.warm_starts == 1
        assert report.failed == 0

    def test_report_surfaces_the_scheduling_line(self):
        report = run_scenario("steady-state").report
        text = report.to_text()
        assert "warm starts" in text
        assert "miss(es)" in text
        doc = report.to_dict()
        for key in ("sched_ms", "sched_cache_hits", "sched_cache_misses", "warm_starts"):
            assert key in doc


class TestBatching:
    """Same-model queued requests merge into one lease at dispatch."""

    def _cfg(self, max_batch):
        return ServeConfig(
            tenants=(_tenant(arrivals_ms=(1.0, 2.0, 2.0), deadline_ms=5000.0),),
            num_gpus=2,
            gpus_per_query=2,
            max_batch=max_batch,
            horizon_ms=5000.0,
        )

    def test_followers_merge_into_leaders_lease(self):
        result = serve(self._cfg(max_batch=3))
        # q0 runs alone; q1 and q2 queue behind it and merge when it
        # completes: q1 leads, q2 follows
        leader = result.record_of("t-q0001")
        follower = result.record_of("t-q0002")
        assert result.report.batched == 1  # one follower rode along
        assert leader.batch == 2 and leader.batched_with == ""
        assert follower.batch == 2 and follower.batched_with == "t-q0001"
        assert follower.dispatched_ms == leader.dispatched_ms
        assert follower.gpus == leader.gpus
        assert follower.completed_ms == leader.completed_ms
        assert result.report.completed == 3

    def test_max_batch_one_preserves_serial_dispatch(self):
        result = serve(self._cfg(max_batch=1))
        assert result.report.batched == 0
        times = {r.dispatched_ms for r in result.records}
        assert len(times) == 3  # every query got its own dispatch
        assert all(r.batch == 1 and not r.batched_with for r in result.records)

    def test_different_models_never_merge(self):
        cfg = ServeConfig(
            tenants=(
                _tenant(name="a", arrivals_ms=(1.0, 2.0), deadline_ms=5000.0),
                _tenant(
                    name="b",
                    model="chain12",
                    arrivals_ms=(2.0,),
                    deadline_ms=5000.0,
                ),
            ),
            num_gpus=2,
            gpus_per_query=2,
            max_batch=4,
            horizon_ms=5000.0,
        )
        result = serve(cfg)
        assert result.record_of("b-q0000").batched_with == ""
        assert result.record_of("b-q0000").batch == 1
        assert result.report.completed == 3


class TestRecovery:
    """``repair:G@T`` returns failed GPUs to service mid-run."""

    def test_repair_revives_the_pool(self):
        # GPU 0 is the whole pool: the failure displaces the in-flight
        # query, the repair lets its retry (and the later arrival) land
        cfg = ServeConfig(
            tenants=(_tenant(arrivals_ms=(1.0, 30.0), deadline_ms=500.0),),
            num_gpus=1,
            gpus_per_query=1,
            degraded_gpus=1,
            faults=("fail:0@20", "repair:0@22"),
            max_retries=3,
            retry_backoff_ms=4.0,
            retry_jitter=False,  # requeue lands at t=24, after the repair
            horizon_ms=500.0,
        )
        result = serve(cfg)
        report = result.report
        assert report.revived == 1
        assert report.completed == 2
        assert report.failed == 0
        first = result.record_of("t-q0000")
        assert first.displaced == 1
        assert first.attempts == 2
        assert first.dispatched_ms >= 22.0  # re-dispatch waited for the repair

    def test_repairing_a_healthy_gpu_is_a_no_op(self):
        cfg = ServeConfig(
            tenants=(_tenant(arrivals_ms=(1.0,)),),
            num_gpus=2,
            gpus_per_query=1,
            faults=("repair:1@10",),
            horizon_ms=200.0,
        )
        report = serve(cfg).report
        assert report.revived == 0  # GPU 1 never died
        assert report.completed == 1


class TestElastic:
    """Elastic leases grow onto freed GPUs and shrink under overload."""

    def test_grow_onto_revived_gpu(self):
        # GPU 1 dies before the arrival, so the query dispatches at
        # width 1; the mid-flight repair frees GPU 1 and the elastic
        # pass grows the lease back to full width
        cfg = ServeConfig(
            tenants=(
                _tenant(model="deep40", arrivals_ms=(1.0,), deadline_ms=5000.0),
            ),
            num_gpus=2,
            gpus_per_query=2,
            elastic=True,
            faults=("fail:1@0.5", "repair:1@40"),
            max_retries=3,
            horizon_ms=5000.0,
        )
        result = serve(cfg)
        rec = result.record_of("t-q0000")
        assert result.report.revived == 1
        assert result.report.elastic_grows == 1
        assert result.report.elastic_shrinks == 0
        assert rec.resizes == 1
        assert rec.gpus == (0, 1)  # final lease, post-grow
        assert rec.status == "completed"
        assert result.report.failed == 0

    def test_shrink_under_overload_frees_a_degraded_slot(self):
        # q0 holds the full pool when the backlog crosses the overload
        # threshold; the elastic pass shrinks it so a degraded lease
        # can dispatch immediately instead of waiting for q0 to finish
        cfg = ServeConfig(
            tenants=(
                _tenant(
                    model="deep40",
                    arrivals_ms=(1.0, 2.0, 2.0, 2.0),
                    deadline_ms=10000.0,
                ),
            ),
            num_gpus=2,
            gpus_per_query=2,
            queue_capacity=16,
            overload_queue=1,
            degraded_gpus=1,
            degraded_algorithm="sequential",
            elastic=True,
            horizon_ms=10000.0,
        )
        result = serve(cfg)
        first = result.record_of("t-q0000")
        assert result.report.elastic_shrinks == 1
        assert first.resizes == 1
        assert len(first.gpus) == 1  # shrunk to the degraded width
        assert result.report.completed == 4
        assert result.report.failed == 0
        # the shrink freed a GPU for a degraded dispatch at the same time
        assert result.report.degraded_dispatches >= 1

    def test_elastic_run_is_bit_reproducible(self):
        report = run_scenario("gpu-loss-recovery").report
        d1 = report.to_dict()
        d2 = run_scenario("gpu-loss-recovery").report.to_dict()
        d1.pop("sched_ms")
        d2.pop("sched_ms")
        assert d1 == d2
