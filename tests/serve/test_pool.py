"""Tests for the shared GPU pool's lease/fail bookkeeping."""

import pytest

from repro.serve import GpuPool, PoolError


class TestLease:
    def test_lowest_free_indices(self):
        pool = GpuPool(4)
        assert pool.lease("a", 2) == (0, 1)
        assert pool.lease("b", 1) == (2,)
        assert pool.num_free == 1

    def test_release_frees_for_reuse(self):
        pool = GpuPool(4)
        pool.lease("a", 2)
        pool.lease("b", 2)
        assert pool.release("a") == (0, 1)
        assert pool.lease("c", 2) == (0, 1)

    def test_double_lease_rejected(self):
        pool = GpuPool(2)
        pool.lease("a", 1)
        with pytest.raises(PoolError, match="already holds"):
            pool.lease("a", 1)

    def test_insufficient_gpus_rejected(self):
        pool = GpuPool(2)
        pool.lease("a", 1)
        with pytest.raises(PoolError, match="only 1 free"):
            pool.lease("b", 2)

    def test_release_without_lease_rejected(self):
        with pytest.raises(PoolError, match="holds no lease"):
            GpuPool(2).release("ghost")


class TestFail:
    def test_fail_returns_holder_and_shrinks_pool(self):
        pool = GpuPool(4)
        pool.lease("a", 2)  # (0, 1)
        assert pool.fail(1) == "a"
        assert pool.num_alive == 3
        # the lease still lists the dead GPU until released
        assert pool.leases["a"] == (0, 1)
        assert pool.release("a") == (0, 1)
        # but the dead GPU never returns to the free set
        assert pool.free == {0, 2, 3}

    def test_fail_free_gpu_returns_none(self):
        pool = GpuPool(2)
        assert pool.fail(1) is None
        assert pool.num_free == 1
        assert pool.fail(1) is None  # idempotent

    def test_fail_out_of_range(self):
        with pytest.raises(PoolError, match="out of range"):
            GpuPool(2).fail(7)

    def test_holder_of(self):
        pool = GpuPool(3)
        pool.lease("a", 2)
        assert pool.holder_of(0) == "a"
        assert pool.holder_of(2) is None


class TestRevive:
    def test_revive_idle_gpu_returns_to_free(self):
        pool = GpuPool(3)
        pool.fail(1)
        assert pool.revive(1) is True
        assert pool.free == {0, 1, 2}
        assert pool.dead == set()

    def test_revive_is_idempotent(self):
        pool = GpuPool(2)
        pool.fail(0)
        assert pool.revive(0) is True
        assert pool.revive(0) is False  # already alive: no-op
        assert pool.revive(1) is False  # never died: no-op
        assert pool.free == {0, 1}

    def test_revive_while_leased_waits_for_release(self):
        pool = GpuPool(3)
        pool.lease("a", 2)  # (0, 1)
        pool.fail(1)
        assert pool.revive(1) is True
        # still listed by the lease, so not free yet
        assert 1 not in pool.free
        assert pool.holder_of(1) == "a"
        pool.release("a")
        assert pool.free == {0, 1, 2}

    def test_revive_out_of_range(self):
        with pytest.raises(PoolError, match="out of range"):
            GpuPool(2).revive(5)


class TestResize:
    def test_grow_takes_lowest_free(self):
        pool = GpuPool(4)
        pool.lease("a", 1)  # (0,)
        assert pool.resize("a", (0, 1, 2)) == (0, 1, 2)
        assert pool.free == {3}
        assert pool.holder_of(2) == "a"

    def test_shrink_frees_dropped_survivors(self):
        pool = GpuPool(4)
        pool.lease("a", 3)  # (0, 1, 2)
        assert pool.resize("a", (0,)) == (0,)
        assert pool.free == {1, 2, 3}
        assert pool.holder_of(1) is None

    def test_shrink_never_frees_dead_gpus(self):
        pool = GpuPool(3)
        pool.lease("a", 2)  # (0, 1)
        pool.fail(1)
        pool.resize("a", (0,))
        assert 1 not in pool.free
        assert pool.dead == {1}

    def test_cannot_acquire_dead_or_leased_gpus(self):
        pool = GpuPool(3)
        pool.lease("a", 1)  # (0,)
        pool.lease("b", 1)  # (1,)
        pool.fail(2)
        with pytest.raises(PoolError, match="not free"):
            pool.resize("a", (0, 1))
        with pytest.raises(PoolError, match="dead GPU"):
            pool.resize("a", (0, 2))

    def test_resize_validation(self):
        pool = GpuPool(2)
        pool.lease("a", 1)
        with pytest.raises(PoolError, match="holds no lease"):
            pool.resize("ghost", (1,))
        with pytest.raises(PoolError, match="at least one"):
            pool.resize("a", ())
        with pytest.raises(PoolError, match="duplicate"):
            pool.resize("a", (1, 1))
        with pytest.raises(PoolError, match="out of range"):
            pool.resize("a", (0, 9))
