"""Tests for the seeded request-arrival processes."""

import pytest

from repro.serve import (
    ServeConfig,
    TenantSpec,
    build_arrivals,
    poisson_arrivals,
    trace_arrivals,
)


def _tenant(**kwargs):
    defaults = dict(name="t", model="tiny", rate_qps=20.0, deadline_ms=100.0)
    defaults.update(kwargs)
    return TenantSpec(**defaults)


class TestPoisson:
    def test_deterministic_per_seed(self):
        t = _tenant()
        assert poisson_arrivals(t, 1000.0, seed=5) == poisson_arrivals(t, 1000.0, seed=5)
        assert poisson_arrivals(t, 1000.0, seed=5) != poisson_arrivals(t, 1000.0, seed=6)

    def test_rate_zero_yields_nothing(self):
        t = _tenant(rate_qps=0.0, arrivals_ms=(1.0,))
        assert poisson_arrivals(t, 1000.0, seed=0) == []

    def test_times_sorted_within_horizon(self):
        times = poisson_arrivals(_tenant(), 500.0, seed=3)
        assert times == sorted(times)
        assert all(0 <= t < 500.0 for t in times)

    def test_tenant_isolation(self):
        """One tenant's stream never depends on the other tenants."""
        a = _tenant(name="a")
        assert poisson_arrivals(a, 1000.0, seed=5) != poisson_arrivals(
            _tenant(name="b"), 1000.0, seed=5
        )
        solo = ServeConfig(tenants=(a,), horizon_ms=1000.0, seed=5)
        pair = ServeConfig(
            tenants=(a, _tenant(name="b")), horizon_ms=1000.0, seed=5
        )
        times = lambda cfg: [  # noqa: E731 - tiny local helper
            r.arrival_ms for r in build_arrivals(cfg) if r.tenant == "a"
        ]
        assert times(solo) == times(pair)


class TestTrace:
    def test_horizon_filter(self):
        t = _tenant(rate_qps=0.0, arrivals_ms=(1.0, 99.0, 100.0, 250.0))
        assert trace_arrivals(t, 100.0) == [1.0, 99.0]


class TestBuildArrivals:
    def test_sorted_with_ids_and_absolute_deadlines(self):
        cfg = ServeConfig(
            tenants=(
                _tenant(name="a", deadline_ms=50.0),
                _tenant(
                    name="b",
                    rate_qps=0.0,
                    arrivals_ms=(10.0, 5.0),
                    deadline_ms=80.0,
                ),
            ),
            horizon_ms=400.0,
            seed=1,
        )
        reqs = build_arrivals(cfg)
        assert [r.arrival_ms for r in reqs] == sorted(r.arrival_ms for r in reqs)
        b = [r for r in reqs if r.tenant == "b"]
        # ids number each tenant's stream in arrival order
        assert [r.id for r in b] == ["b-q0000", "b-q0001"]
        assert [r.arrival_ms for r in b] == [5.0, 10.0]
        assert b[0].deadline_ms == pytest.approx(85.0)
        a = [r for r in reqs if r.tenant == "a"]
        for r in a:
            assert r.deadline_ms == pytest.approx(r.arrival_ms + 50.0)

    def test_poisson_and_trace_compose(self):
        t = _tenant(arrivals_ms=(0.5,))
        cfg = ServeConfig(tenants=(t,), horizon_ms=300.0, seed=2)
        reqs = build_arrivals(cfg)
        n_poisson = len(poisson_arrivals(t, 300.0, seed=2))
        assert len(reqs) == n_poisson + 1
