"""Property-based tests (hypothesis) for the GPU pool's bookkeeping.

A random sequence of lease / release / fail / revive / resize
operations is replayed against a :class:`GpuPool`, skipping the
operations the pool (correctly) rejects, and the structural invariants
are checked after every step:

* ``free``, ``dead`` and the union of the active leases partition
  consistently: free GPUs are never dead and never leased, and leases
  are pairwise disjoint;
* a dead GPU is never handed out — not by ``lease``, not by ``resize``,
  and ``release`` never returns one to the free set;
* the ``gpu -> holder`` reverse map mirrors ``leases`` exactly;
* ``fail`` and ``revive`` are idempotent.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.serve import GpuPool, PoolError

NUM_GPUS = 4
HOLDERS = ("a", "b", "c")


def _ops():
    gpu = st.integers(0, NUM_GPUS - 1)
    holder = st.sampled_from(HOLDERS)
    return st.lists(
        st.one_of(
            st.tuples(st.just("lease"), holder, st.integers(1, NUM_GPUS)),
            st.tuples(st.just("release"), holder),
            st.tuples(st.just("fail"), gpu),
            st.tuples(st.just("revive"), gpu),
            st.tuples(
                st.just("resize"),
                holder,
                st.lists(gpu, min_size=1, max_size=NUM_GPUS, unique=True),
            ),
        ),
        max_size=40,
    )


def _check_invariants(pool: GpuPool) -> None:
    leased = [g for gpus in pool.leases.values() for g in gpus]
    assert len(leased) == len(set(leased)), "leases overlap"
    assert not pool.free & pool.dead, "free GPU marked dead"
    assert not pool.free & set(leased), "free GPU is leased"
    assert pool.free | pool.dead | set(leased) <= set(range(pool.num_gpus))
    # the reverse map mirrors the leases exactly
    expect = {g: h for h, gpus in pool.leases.items() for g in gpus}
    assert {g: pool.holder_of(g) for g in expect} == expect
    for g in pool.free:
        assert pool.holder_of(g) is None
    assert pool.num_free == len(pool.free)
    assert pool.num_alive == pool.num_gpus - len(pool.dead)


@settings(max_examples=200, deadline=None)
@given(_ops())
def test_random_operation_sequences_preserve_invariants(ops):
    pool = GpuPool(NUM_GPUS)
    for op in ops:
        kind = op[0]
        try:
            if kind == "lease":
                gpus = pool.lease(op[1], op[2])
                assert not set(gpus) & pool.dead, "leased a dead GPU"
            elif kind == "release":
                pool.release(op[1])
            elif kind == "fail":
                before = op[1] in pool.dead
                pool.fail(op[1])
                assert op[1] in pool.dead
                assert pool.fail(op[1]) is None  # idempotent
                del before
            elif kind == "revive":
                was_dead = op[1] in pool.dead
                assert pool.revive(op[1]) is was_dead
                assert pool.revive(op[1]) is False  # idempotent
            elif kind == "resize":
                # kept GPUs may be dead (the lease already listed them);
                # only *newly acquired* GPUs must be alive and free
                old = set(pool.leases.get(op[1], ()))
                gpus = pool.resize(op[1], tuple(op[2]))
                assert not (set(gpus) - old) & pool.dead, "acquired a dead GPU"
        except PoolError:
            pass  # the pool rejected an impossible op; state must be intact
        _check_invariants(pool)


@settings(max_examples=100, deadline=None)
@given(_ops())
def test_dead_gpus_only_return_through_revive(ops):
    """Once failed, a GPU never reappears in the free set until revived."""
    pool = GpuPool(NUM_GPUS)
    for op in ops:
        dead_before = set(pool.dead)
        try:
            if op[0] == "lease":
                pool.lease(op[1], op[2])
            elif op[0] == "release":
                pool.release(op[1])
            elif op[0] == "fail":
                pool.fail(op[1])
            elif op[0] == "revive":
                pool.revive(op[1])
            elif op[0] == "resize":
                pool.resize(op[1], tuple(op[2]))
        except PoolError:
            pass
        still_dead = dead_before - ({op[1]} if op[0] == "revive" else set())
        assert not pool.free & still_dead
