"""Tests for SLO report math and the Chrome-exportable pool timeline."""

import pytest

from repro.serve import RequestRecord, ServeReport, serve_timeline
from repro.serve.report import SERVE_REPORT_FORMAT, percentile


class TestPercentile:
    def test_nearest_rank(self):
        vals = [10.0, 20.0, 30.0, 40.0]
        assert percentile(vals, 50) == 20.0
        assert percentile(vals, 99) == 40.0
        assert percentile(vals, 1) == 10.0
        assert percentile([7.0], 50) == 7.0

    def test_empty_sample(self):
        assert percentile([], 99) == 0.0


def _record(i, status="completed", latency=10.0, tenant="t", **kwargs):
    rec = RequestRecord(
        id=f"{tenant}-q{i:04d}",
        tenant=tenant,
        model="tiny",
        priority=0,
        arrival_ms=float(i),
        deadline_ms=float(i) + 100.0,
    )
    rec.status = status
    if status == "completed":
        rec.dispatched_ms = rec.arrival_ms
        rec.completed_ms = rec.arrival_ms + latency
        rec.released_ms = rec.completed_ms
        rec.latency_ms = latency
        rec.gpus = (0,)
        rec.deadline_met = latency <= 100.0
    for key, val in kwargs.items():
        setattr(rec, key, val)
    return rec


class TestServeReport:
    def test_counter_arithmetic_and_goodput(self):
        records = [
            _record(0, latency=10.0),
            _record(1, latency=20.0),
            _record(2, latency=120.0),  # completed but past its deadline
            _record(3, status="shed-queue"),
            _record(4, status="shed-deadline"),
            _record(5, status="failed"),
        ]
        report = ServeReport.from_records(
            records,
            retries=2,
            displaced=1,
            degraded_dispatches=3,
            gpu_busy_ms={0: 150.0},
            horizon_ms=200.0,
        )
        assert report.arrivals == 6
        assert report.admitted == 5  # everything but the queue shed
        assert report.completed == 3
        assert report.shed_queue_full == 1
        assert report.shed_deadline == 1
        assert report.failed == 1
        assert report.deadline_misses == 1
        assert report.deadline_miss_rate == pytest.approx(1 / 3)
        # makespan floors at the horizon; goodput counts on-time only
        assert report.makespan_ms == 200.0
        assert report.goodput_qps == pytest.approx(2 / 0.2)
        assert report.p50_ms == 20.0

    def test_repairs_summed_from_records(self):
        records = [_record(0, repairs=2), _record(1, repairs=1)]
        report = ServeReport.from_records(
            records, retries=0, displaced=0, degraded_dispatches=0,
            gpu_busy_ms={}, horizon_ms=10.0,
        )
        assert report.repairs == 3

    def test_to_dict_format_and_tenants(self):
        records = [_record(0, tenant="a"), _record(1, tenant="b")]
        report = ServeReport.from_records(
            records, retries=0, displaced=0, degraded_dispatches=0,
            gpu_busy_ms={1: 5.0, 0: 2.0}, horizon_ms=50.0,
        )
        doc = report.to_dict()
        assert doc["format"] == SERVE_REPORT_FORMAT
        assert sorted(doc["tenants"]) == ["a", "b"]
        assert list(doc["gpu_busy_ms"]) == ["0", "1"]  # stringified, sorted

    def test_to_text_mentions_every_tenant(self):
        records = [_record(0, tenant="a"), _record(1, tenant="b")]
        report = ServeReport.from_records(
            records, retries=0, displaced=0, degraded_dispatches=0,
            gpu_busy_ms={}, horizon_ms=50.0,
        )
        text = report.to_text()
        assert "tenant a" in text and "tenant b" in text
        assert "goodput" in text


class TestServeTimeline:
    def test_one_span_per_leased_gpu(self):
        rec = _record(0)
        rec.gpus = (1, 3)
        rec.dispatched_ms = 5.0
        rec.released_ms = 12.0
        skipped = _record(1, status="shed-queue")  # never dispatched
        trace, op_gpu = serve_timeline([rec, skipped])
        assert set(op_gpu) == {"t-q0000", "t-q0000@g3"}
        assert op_gpu["t-q0000"] == 1
        assert trace.op_start["t-q0000@g3"] == 5.0
        assert trace.op_finish["t-q0000"] == 12.0
        # the primary span's launch marks the arrival (queueing is visible)
        assert trace.op_launch["t-q0000"] == rec.arrival_ms
        assert trace.latency == 12.0
        assert trace.gpu_busy == {1: 7.0, 3: 7.0}

    def test_feeds_chrome_exporter(self):
        from repro.obs import chrome_trace_document

        rec = _record(0)
        trace, op_gpu = serve_timeline([rec])
        doc = chrome_trace_document(trace, op_gpu, process_name="repro-serve")
        assert doc["otherData"]["format"] == "repro.chrometrace/v1"
        assert any(e.get("name") == "t-q0000" for e in doc["traceEvents"])

    def test_batched_followers_hold_no_span_of_their_own(self):
        leader = _record(0)
        leader.gpus = (0, 1)
        leader.dispatched_ms = 5.0
        leader.released_ms = 12.0
        follower = _record(1)
        follower.gpus = (0, 1)  # rides the leader's lease
        follower.dispatched_ms = 5.0
        follower.released_ms = 12.0
        follower.batched_with = leader.id
        trace, op_gpu = serve_timeline([leader, follower])
        # one span per lease: the follower's occupancy IS the leader's,
        # so the timeline stays linearizable under exclusive leases
        assert set(op_gpu) == {"t-q0000", "t-q0000@g1"}
        assert trace.gpu_busy == {0: 7.0, 1: 7.0}
