"""Tests for the repro.serve/v1 configuration contract."""

import pytest

from repro.serve import ServeConfig, ServeConfigError, TenantSpec
from repro.serve.config import SERVE_CONFIG_FORMAT


def _tenant(**kwargs):
    defaults = dict(name="t", model="tiny", rate_qps=10.0)
    defaults.update(kwargs)
    return TenantSpec(**defaults)


class TestTenantSpec:
    def test_needs_name_and_some_arrivals(self):
        with pytest.raises(ServeConfigError, match="non-empty name"):
            _tenant(name="")
        with pytest.raises(ServeConfigError, match="no arrivals"):
            _tenant(rate_qps=0.0)
        with pytest.raises(ServeConfigError, match="negative rate"):
            _tenant(rate_qps=-1.0)
        with pytest.raises(ServeConfigError, match="negative arrival"):
            _tenant(arrivals_ms=(-0.5,))
        with pytest.raises(ServeConfigError, match="deadline"):
            _tenant(deadline_ms=0.0)

    def test_round_trip(self):
        t = _tenant(arrivals_ms=(1.0, 2.0), priority=2, deadline_ms=40.0)
        assert TenantSpec.from_dict(t.to_dict()) == t


class TestServeConfig:
    def test_validation(self):
        with pytest.raises(ServeConfigError, match="at least one tenant"):
            ServeConfig(tenants=())
        with pytest.raises(ServeConfigError, match="duplicate tenant"):
            ServeConfig(tenants=(_tenant(), _tenant()))
        with pytest.raises(ServeConfigError, match="gpus_per_query"):
            ServeConfig(tenants=(_tenant(),), num_gpus=2, gpus_per_query=3)
        with pytest.raises(ServeConfigError, match="degraded_gpus"):
            ServeConfig(tenants=(_tenant(),), gpus_per_query=2, degraded_gpus=3)
        with pytest.raises(ServeConfigError, match="unknown algorithm"):
            ServeConfig(tenants=(_tenant(),), algorithm="magic")
        with pytest.raises(ServeConfigError, match="horizon"):
            ServeConfig(tenants=(_tenant(),), horizon_ms=0.0)

    def test_fault_specs_checked_eagerly(self):
        with pytest.raises(ServeConfigError, match="bad fault spec"):
            ServeConfig(tenants=(_tenant(),), faults=("bogus:1@2",))
        with pytest.raises(ServeConfigError, match="bad fault spec"):
            # GPU index out of the pool's range
            ServeConfig(tenants=(_tenant(),), num_gpus=2, faults=("fail:5@1",))
        ServeConfig(tenants=(_tenant(),), num_gpus=2, faults=("fail:1@1",))  # ok

    def test_round_trip(self):
        cfg = ServeConfig(
            tenants=(_tenant(), _tenant(name="u", priority=1)),
            num_gpus=3,
            gpus_per_query=2,
            seed=9,
            faults=("fail:1@50", "loss:0.05:jitter"),
        )
        doc = cfg.to_dict()
        assert doc["format"] == SERVE_CONFIG_FORMAT
        assert ServeConfig.from_dict(doc) == cfg

    def test_from_dict_rejects_wrong_format(self):
        with pytest.raises(ServeConfigError, match="not a serving config"):
            ServeConfig.from_dict({"format": "repro.cache/v1"})
