"""Global test configuration.

Turns on the ``HIOS_DEBUG_LINT`` post-emit hook for the whole suite:
every schedule any scheduler emits during the tests is checked against
the error-severity lint rules, so a regression in any algorithm's
output feasibility fails loudly at the point of emission.  Tests that
need the hook off (e.g. to assert the opt-out) override the variable
locally with ``monkeypatch``.
"""

import os

os.environ.setdefault("HIOS_DEBUG_LINT", "1")
