"""Global test configuration.

Turns on the ``HIOS_DEBUG_LINT`` post-emit hook for the whole suite:
every schedule any scheduler emits during the tests is checked against
the error-severity lint rules, so a regression in any algorithm's
output feasibility fails loudly at the point of emission.  Tests that
need the hook off (e.g. to assert the opt-out) override the variable
locally with ``monkeypatch``.

Also turns on ``HIOS_SANITIZE``: every engine run in the suite streams
its events through the TSan-style happens-before sanitizer
(:mod:`repro.sanitize.runtime`), so an engine change that breaks an
ordering guarantee — or a scheduler emitting a racy schedule — raises
with a causal chain at the exact event that contradicts the model.
Tests exercising the legacy dynamic diagnostics (stall watchdog,
deadlock stall report) opt out per-run with ``sanitize=False``.
"""

import os

os.environ.setdefault("HIOS_DEBUG_LINT", "1")
os.environ.setdefault("HIOS_SANITIZE", "1")
