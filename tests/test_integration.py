"""Cross-module integration tests: the full profile -> schedule ->
serialize -> execute pipeline, and end-to-end paper-shape checks that
bind the whole stack together."""

import pytest

from repro import Schedule, evaluate_latency, schedule_graph
from repro.models import inception_v3, nasnet, random_dag_profile
from repro.substrate import PlatformProfiler, dual_a40, nvswitch_platform


class TestScheduleRoundTrip:
    """The paper's scheduler emits JSON that its engine consumes; the
    schedule must survive serialization bit-for-bit."""

    @pytest.mark.parametrize("alg", ["hios-lp", "hios-mr", "ios"])
    def test_json_roundtrip_preserves_engine_latency(self, alg):
        profiler = PlatformProfiler(dual_a40())
        profile = profiler.profile(inception_v3(299))
        res = schedule_graph(profile, alg)
        restored = Schedule.from_json(res.schedule.to_json())
        assert restored == res.schedule
        engine = profiler.engine()
        t1 = engine.run(profile.graph, res.schedule).latency
        t2 = engine.run(profile.graph, restored).latency
        assert t1 == pytest.approx(t2)


class TestEndToEndShapes:
    def test_inception_large_input_ordering(self):
        """At large inputs the paper's ordering must hold on the engine:
        HIOS-LP < HIOS-MR < sequential, and HIOS-LP < IOS."""
        profiler = PlatformProfiler(dual_a40())
        profile = profiler.profile(inception_v3(1024))
        engine = profiler.engine()
        measured = {}
        for alg in ("sequential", "ios", "hios-mr", "hios-lp"):
            res = schedule_graph(profile, alg)
            measured[alg] = engine.run(profile.graph, res.schedule).latency
        assert measured["hios-lp"] < measured["ios"]
        assert measured["hios-lp"] < measured["hios-mr"]
        assert measured["hios-lp"] < measured["sequential"]

    def test_nasnet_engine_runs_all_algorithms(self):
        profiler = PlatformProfiler(dual_a40())
        profile = profiler.profile(nasnet(331))
        engine = profiler.engine()
        for alg in ("sequential", "hios-mr", "hios-lp"):
            res = schedule_graph(profile, alg)
            trace = engine.run(profile.graph, res.schedule)
            assert trace.latency > 0
            assert set(trace.op_finish) == set(profile.graph.names)

    def test_four_gpu_platform(self):
        profiler = PlatformProfiler(nvswitch_platform(4))
        profile = profiler.profile(inception_v3(1024))
        res = schedule_graph(profile, "hios-lp")
        assert len(res.schedule.used_gpus()) >= 2
        trace = profiler.engine().run(profile.graph, res.schedule)
        assert trace.latency <= schedule_graph(profile, "sequential").latency


class TestPredictionVsMeasurement:
    """Scheduler prediction and engine measurement must stay close —
    the engine only adds launch effects and eager starts."""

    @pytest.mark.parametrize(
        "builder,size", [(inception_v3, 299), (inception_v3, 1024), (nasnet, 331)]
    )
    def test_agreement(self, builder, size):
        profiler = PlatformProfiler(dual_a40())
        profile = profiler.profile(builder(size))
        res = schedule_graph(profile, "hios-lp")
        trace = profiler.engine().run(profile.graph, res.schedule)
        assert trace.latency == pytest.approx(res.latency, rel=0.35)


class TestSimulationIntegration:
    def test_evaluator_consistency_at_scale(self):
        profile = random_dag_profile(seed=42, num_gpus=4)
        for alg in ("hios-lp", "hios-mr", "inter-lp", "inter-mr"):
            res = schedule_graph(profile, alg)
            assert evaluate_latency(profile, res.schedule, validate=True) == (
                pytest.approx(res.latency)
            )

    def test_full_paper_ranking_on_one_seed(self):
        profile = random_dag_profile(seed=0, num_gpus=4)
        lat = {a: schedule_graph(profile, a).latency for a in
               ("sequential", "ios", "hios-mr", "hios-lp")}
        assert lat["hios-lp"] < lat["hios-mr"] < lat["ios"] < lat["sequential"]


class TestLintRoundTrip:
    """Every schedule the pipeline produces must lint clean, and the
    JSON documents the CLI writes must survive a document-level lint."""

    @pytest.mark.parametrize("alg", ["sequential", "ios", "hios-mr", "hios-lp"])
    def test_every_schedule_lints_without_errors(self, alg):
        from repro.lint import lint_schedule

        profiler = PlatformProfiler(dual_a40())
        profile = profiler.profile(inception_v3(299))
        res = schedule_graph(profile, alg)
        report = lint_schedule(profile.graph, res.schedule)
        assert not report.errors, "; ".join(d.format() for d in report.errors)

    def test_serialized_schedule_document_lints_clean(self):
        import json

        from repro.lint import lint_schedule_document

        profiler = PlatformProfiler(dual_a40())
        profile = profiler.profile(inception_v3(299))
        res = schedule_graph(profile, "hios-lp")
        doc = json.loads(res.schedule.to_json())
        report = lint_schedule_document(doc)
        assert report.ok, report.to_text()

    def test_engine_trace_round_trip_lints_clean(self):
        from repro.lint import lint_trace
        from repro.substrate.engine import ExecutionTrace

        profiler = PlatformProfiler(dual_a40())
        profile = profiler.profile(inception_v3(299))
        res = schedule_graph(profile, "hios-lp")
        trace = profiler.engine().run(profile.graph, res.schedule)
        restored = ExecutionTrace.from_dict(trace.to_dict())
        report = lint_trace(profile.graph, res.schedule, restored)
        assert not report.errors, "; ".join(d.format() for d in report.errors)
