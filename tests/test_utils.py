"""Tests for the ASCII rendering utilities."""

from repro.core import Schedule, Stage
from repro.utils import render_gantt, render_schedule_table


class TestRenderGantt:
    def test_basic_layout(self):
        out = render_gantt(
            op_start={"a": 0.0, "b": 1.0},
            op_finish={"a": 1.0, "b": 2.0},
            op_gpu={"a": 0, "b": 1},
            width=20,
        )
        assert "GPU 0:" in out and "GPU 1:" in out
        assert "#" in out
        a_line = next(l for l in out.splitlines() if l.strip().startswith("a"))
        b_line = next(l for l in out.splitlines() if l.strip().startswith("b"))
        assert a_line.index("#") < b_line.index("#")

    def test_empty(self):
        assert "empty" in render_gantt({}, {}, {})

    def test_zero_length(self):
        out = render_gantt({"a": 0.0}, {"a": 0.0}, {"a": 0})
        assert "zero-length" in out

    def test_truncation(self):
        n = 10
        starts = {f"op{i}": float(i) for i in range(n)}
        finishes = {f"op{i}": float(i) + 1 + i for i in range(n)}
        gpus = {f"op{i}": 0 for i in range(n)}
        out = render_gantt(starts, finishes, gpus, max_ops_per_gpu=3)
        assert "hidden" in out
        assert sum(1 for l in out.splitlines() if "|" in l) == 3

    def test_minimum_bar_width(self):
        # a vanishingly short op still renders at least one '#'
        out = render_gantt(
            {"tiny": 0.0, "big": 0.0},
            {"tiny": 0.001, "big": 100.0},
            {"tiny": 0, "big": 0},
            width=30,
        )
        tiny_line = next(l for l in out.splitlines() if "tiny" in l)
        assert "#" in tiny_line


class TestRenderScheduleTable:
    def test_lists_stages(self):
        s = Schedule(2)
        s.append_stage(Stage(0, ("a", "b")))
        s.append_op(1, "c")
        out = render_schedule_table(s)
        assert "GPU 0: 1 stages" in out
        assert "S[0,0] (2 ops): a, b" in out
        assert "S[1,0] (1 op): c" in out

    def test_skips_idle_gpus(self):
        s = Schedule(3)
        s.append_op(0, "a")
        out = render_schedule_table(s)
        assert "GPU 1" not in out

    def test_empty(self):
        assert "empty" in render_schedule_table(Schedule(1))
