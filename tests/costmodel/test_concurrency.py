"""Unit + property tests for the t(S) concurrency models."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Operator
from repro.costmodel import (
    MaxConcurrencyModel,
    SaturationConcurrencyModel,
    SumConcurrencyModel,
    TableConcurrencyModel,
)


def ops_of(*specs):
    return [Operator(f"v{i}", cost=c, occupancy=u) for i, (c, u) in enumerate(specs)]


class TestMaxAndSum:
    def test_max(self):
        m = MaxConcurrencyModel()
        assert m.duration(ops_of((2, 1), (3, 1))) == 3
        assert m.duration([]) == 0.0

    def test_sum(self):
        m = SumConcurrencyModel()
        assert m.duration(ops_of((2, 1), (3, 1))) == 5
        assert m.duration([]) == 0.0


class TestSaturation:
    def test_singleton_identity(self):
        m = SaturationConcurrencyModel(0.06)
        (op,) = ops_of((2.5, 0.7))
        assert m.duration([op]) == pytest.approx(2.5)

    def test_two_small_ops_run_at_max(self):
        m = SaturationConcurrencyModel(0.06)
        assert m.duration(ops_of((2, 0.4), (2, 0.4))) == pytest.approx(2.0)

    def test_two_saturating_ops_contend(self):
        m = SaturationConcurrencyModel(0.06)
        # work = 4, excess occupancy = 1 -> 4 * 1.06
        assert m.duration(ops_of((2, 1.0), (2, 1.0))) == pytest.approx(4.24)

    def test_fig1_regimes(self):
        """parallel/sequential ratio: 0.5 for small ops, > 1 for large."""
        m = SaturationConcurrencyModel(0.06)
        small = ops_of((1, 0.3), (1, 0.3))
        large = ops_of((1, 1.0), (1, 1.0))
        assert m.duration(small) / 2.0 == pytest.approx(0.5)
        assert m.duration(large) / 2.0 > 1.0

    def test_stream_overhead(self):
        m = SaturationConcurrencyModel(0.0, stream_overhead=0.1)
        assert m.duration(ops_of((1, 0.2), (1, 0.2))) == pytest.approx(1.1)
        # singletons unaffected
        assert m.duration(ops_of((1, 0.2))) == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SaturationConcurrencyModel(-0.1)
        with pytest.raises(ValueError):
            SaturationConcurrencyModel(0.1, stream_overhead=-1)

    @given(
        costs=st.lists(st.floats(0.01, 10, allow_nan=False), min_size=1, max_size=6),
        occs=st.lists(st.floats(0.01, 1.0, allow_nan=False), min_size=6, max_size=6),
        lam=st.floats(0, 0.5),
        kappa=st.floats(0, 0.5),
    )
    def test_invariants(self, costs, occs, lam, kappa):
        m = SaturationConcurrencyModel(lam, kappa)
        ops = [
            Operator(f"v{i}", cost=c, occupancy=occs[i]) for i, c in enumerate(costs)
        ]
        d = m.duration(ops)
        # never faster than the longest member
        assert d >= max(c for c in costs) - 1e-12
        # never slower than fully serialized with both penalties applied
        ceiling = sum(costs) * (1 + lam * len(costs)) * (1 + kappa * len(costs))
        assert d <= ceiling + 1e-9


class TestTable:
    def test_hit_and_fallback(self):
        t = TableConcurrencyModel(fallback=MaxConcurrencyModel())
        ops = ops_of((2, 1), (3, 1))
        assert t.duration(ops) == 3.0  # fallback
        t.record(["v0", "v1"], 4.5)
        assert t.duration(ops) == 4.5
        assert len(t) == 1

    def test_order_insensitive_keys(self):
        t = TableConcurrencyModel()
        t.record(["b", "a"], 7.0)
        ops = [Operator("a"), Operator("b")]
        assert t.duration(ops) == 7.0
        assert t.duration(list(reversed(ops))) == 7.0

    def test_negative_duration_rejected(self):
        t = TableConcurrencyModel()
        with pytest.raises(ValueError):
            t.record(["a"], -1.0)

    def test_initial_table(self):
        t = TableConcurrencyModel({frozenset({"a"}): 9.0})
        assert t.duration([Operator("a", cost=1.0)]) == 9.0

    def test_default_fallback_is_saturation(self):
        t = TableConcurrencyModel()
        (op,) = ops_of((2.0, 1.0))
        assert t.duration([op]) == pytest.approx(2.0)
