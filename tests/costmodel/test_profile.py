"""Unit tests for CostProfile."""

import pytest

from repro.core import OpGraph
from repro.costmodel import CostProfile, MaxConcurrencyModel


def graph():
    return OpGraph.from_edges({"a": 1.0, "b": 2.0}, [("a", "b", 0.5)])


class TestCostProfile:
    def test_defaults(self):
        p = CostProfile(graph=graph())
        assert p.num_gpus == 2
        assert p.max_streams == 0
        assert p.send_blocking is True

    def test_stage_time(self):
        p = CostProfile(graph=graph(), concurrency=MaxConcurrencyModel())
        assert p.stage_time(["a", "b"]) == 2.0
        assert p.stage_time(["a"]) == 1.0

    def test_stage_width(self):
        p = CostProfile(graph=graph(), max_streams=2)
        assert p.stage_width_ok(2)
        assert not p.stage_width_ok(3)
        unbounded = CostProfile(graph=graph())
        assert unbounded.stage_width_ok(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostProfile(graph=graph(), num_gpus=0)
        with pytest.raises(ValueError):
            CostProfile(graph=graph(), max_streams=-1)

    def test_cyclic_graph_rejected(self):
        g = OpGraph()
        g.add_operator("a")
        g.add_operator("b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(Exception):
            CostProfile(graph=g)
