"""Unit tests for the t(u,v) transfer models."""

import pytest

from repro.core import OpGraph, Operator
from repro.costmodel import (
    BytesTransferModel,
    ConstantTransferModel,
    RatioTransferModel,
    ZeroTransferModel,
    apply_transfer_model,
)


def two_ops(cost_u=2.0, bytes_u=1000):
    u = Operator("u", cost=cost_u, output_bytes=bytes_u)
    v = Operator("v", cost=1.0)
    return u, v


class TestModels:
    def test_zero(self):
        u, v = two_ops()
        assert ZeroTransferModel().transfer_time(u, v) == 0.0

    def test_constant(self):
        u, v = two_ops()
        assert ConstantTransferModel(0.25).transfer_time(u, v) == 0.25
        with pytest.raises(ValueError):
            ConstantTransferModel(-1)

    def test_ratio_above_floor(self):
        u, v = two_ops(cost_u=2.0)
        m = RatioTransferModel(ratio=0.8, floor=0.1)
        assert m.transfer_time(u, v) == pytest.approx(1.6)

    def test_ratio_floor_applies(self):
        u, v = two_ops(cost_u=0.05)
        m = RatioTransferModel(ratio=0.8, floor=0.1)
        assert m.transfer_time(u, v) == 0.1

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            RatioTransferModel(ratio=-1)
        with pytest.raises(ValueError):
            RatioTransferModel(floor=-1)

    def test_bytes_model(self):
        u, v = two_ops(bytes_u=5000)
        m = BytesTransferModel(bandwidth_bytes_per_ms=1000.0, latency_ms=0.5)
        assert m.transfer_time(u, v) == pytest.approx(5.5)

    def test_bytes_validation(self):
        with pytest.raises(ValueError):
            BytesTransferModel(0.0)
        with pytest.raises(ValueError):
            BytesTransferModel(1.0, latency_ms=-1)


class TestApply:
    def test_rewrites_edges_only(self):
        g = OpGraph.from_edges({"a": 2.0, "b": 1.0}, [("a", "b", 99.0)])
        out = apply_transfer_model(g, RatioTransferModel(0.5, floor=0.0))
        assert out.transfer("a", "b") == pytest.approx(1.0)
        assert out.cost("a") == 2.0
        # original untouched
        assert g.transfer("a", "b") == 99.0
