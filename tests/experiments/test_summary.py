"""Tests for the paper-vs-measured report builder."""

import json


from repro.experiments.summary import CLAIMS, build_report, load_result, load_results


def write_artifact(tmp_path, stem, x, series, **extra):
    doc = {
        "figure": stem,
        "title": "t",
        "x_label": "x",
        "y_label": "y",
        "x": x,
        "series": series,
        "notes": "",
    }
    doc.update(extra)
    (tmp_path / f"{stem}.json").write_text(json.dumps(doc))


class TestLoading:
    def test_load_result(self, tmp_path):
        write_artifact(tmp_path, "fig9", [400, 600], {"a": [1.0, 2.0]})
        r = load_result(tmp_path / "fig9.json")
        assert r.figure == "fig9"
        assert r.series["a"] == [1.0, 2.0]

    def test_load_results_directory(self, tmp_path):
        write_artifact(tmp_path, "fig9", [1], {"a": [1.0]})
        write_artifact(tmp_path, "fig10", [1], {"a": [1.0]})
        loaded = load_results(tmp_path)
        assert set(loaded) == {"fig9", "fig10"}


class TestClaims:
    def test_every_claim_has_fields(self):
        for claim in CLAIMS:
            assert claim.figure
            assert claim.paper
            assert callable(claim.describe)
            assert callable(claim.check)

    def test_fig7_claim_logic(self, tmp_path):
        write_artifact(
            tmp_path,
            "fig7",
            [2, 12],
            {
                "sequential": [400.0, 400.0],
                "hios-lp": [270.0, 115.0],
                "hios-mr": [360.0, 235.0],
            },
        )
        claim = next(c for c in CLAIMS if c.figure == "fig7")
        result = load_result(tmp_path / "fig7.json")
        assert claim.check(result)
        assert "HIOS-LP" in claim.describe(result)

    def test_fig7_claim_fails_on_flat_lp(self, tmp_path):
        write_artifact(
            tmp_path,
            "fig7",
            [2, 12],
            {
                "sequential": [400.0, 400.0],
                "hios-lp": [390.0, 380.0],
                "hios-mr": [360.0, 235.0],
            },
        )
        claim = next(c for c in CLAIMS if c.figure == "fig7")
        assert not claim.check(load_result(tmp_path / "fig7.json"))


class TestBuildReport:
    def test_missing_artifacts_marked(self, tmp_path):
        report = build_report(tmp_path)
        assert "*(not run)*" in report
        assert report.count("|") > 10  # it's a markdown table

    def test_report_with_one_artifact(self, tmp_path):
        write_artifact(
            tmp_path,
            "fig9",
            [400, 500, 600],
            {
                "sequential": [400.0, 400.0, 400.0],
                "hios-lp": [190.0, 210.0, 240.0],
                "hios-mr": [290.0, 300.0, 330.0],
            },
        )
        report = build_report(tmp_path)
        assert "fig9" in report
        line = next(l for l in report.splitlines() if l.startswith("| fig9"))
        assert "| yes |" in line

    def test_report_against_real_benchmark_artifacts(self, tmp_path):
        """End-to-end: generate one artifact via the real driver and
        check the claim passes on it."""
        from repro.experiments import EXPERIMENTS

        r = EXPERIMENTS["fig1"]()
        doc = {
            "figure": r.figure,
            "title": r.title,
            "x_label": r.x_label,
            "y_label": r.y_label,
            "x": r.x,
            "series": r.series,
            "notes": r.notes,
        }
        (tmp_path / "fig1.json").write_text(json.dumps(doc))
        report = build_report(tmp_path)
        line = next(l for l in report.splitlines() if l.startswith("| fig1"))
        assert "| yes |" in line
