"""Quantitative shape checks against the paper's headline claims.

Runs the real experiment drivers at a reduced instance count and
asserts the claims within generous bands — these are the statements a
reader would check the reproduction against:

* Fig. 7  — HIOS-LP speedup grows with GPU count (1.4 -> 3.8 in the
  paper); HIOS-MR plateaus (<= ~1.5); IOS/sequential flat.
* Fig. 8  — HIOS-LP holds ~2x over sequential across model sizes and
  ~1.5x over HIOS-MR.
* Fig. 9  — speedups decline as dependencies densify.
* Fig. 10 — single-GPU algorithms flat in the layer sweep; HIOS-LP
  adapts to the available parallelism.
* Fig. 11 — speedups decline as the comm ratio p grows.
* Figs. 12/13 — on the engine, HIOS-LP beats IOS and HIOS-MR at large
  inputs for both CNNs; inter-GPU mapping dominates the gain.
* Fig. 14 — IOS's scheduling cost grows much faster with input size.
"""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentConfig

CFG = ExperimentConfig(fast=True, instances=2)


@pytest.fixture(scope="module")
def fig7():
    return EXPERIMENTS["fig7"](CFG)


@pytest.fixture(scope="module")
def fig8():
    return EXPERIMENTS["fig8"](CFG)


@pytest.fixture(scope="module")
def fig11():
    return EXPERIMENTS["fig11"](CFG)


class TestFig7Claims:
    def test_lp_scales(self, fig7):
        lp = fig7.speedup("sequential", "hios-lp")
        assert 1.2 <= lp[0] <= 2.3  # 2 GPUs (paper: ~1.4)
        assert lp[-1] >= 2.5  # 12 GPUs (paper: ~3.8)
        assert lp[-1] > lp[0] * 1.5

    def test_mr_plateaus(self, fig7):
        mr = fig7.speedup("sequential", "hios-mr")
        assert max(mr) <= 2.1  # paper: <= ~1.5
        # MR stops improving in the upper half of the sweep
        assert mr[-1] <= mr[len(mr) // 2] * 1.15

    def test_single_gpu_flat(self, fig7):
        for alg in ("sequential", "ios"):
            ys = fig7.series[alg]
            assert max(ys) / min(ys) < 1.001

    def test_ios_gain_band(self, fig7):
        ios = fig7.speedup("sequential", "ios")
        assert 1.0 <= ios[0] <= 1.4  # paper: ~1.1

    def test_lp_beats_mr_at_four_gpus(self, fig7):
        i = fig7.x.index(4)
        ratio = fig7.series["hios-mr"][i] / fig7.series["hios-lp"][i]
        assert ratio >= 1.2  # paper: ~1.5


class TestFig8Claims:
    def test_lp_speedup_band(self, fig8):
        lp = fig8.speedup("sequential", "hios-lp")
        assert all(1.6 <= s <= 2.9 for s in lp)  # paper: 2.01-2.12

    def test_lp_vs_ios(self, fig8):
        ratios = [
            i / l for i, l in zip(fig8.series["ios"], fig8.series["hios-lp"])
        ]
        assert all(r > 1.4 for r in ratios)  # paper: 1.81-1.91

    def test_intra_gpu_contributions(self, fig8):
        intra_lp = [
            (a - b) / a
            for a, b in zip(fig8.series["inter-lp"], fig8.series["hios-lp"])
        ]
        intra_mr = [
            (a - b) / a
            for a, b in zip(fig8.series["inter-mr"], fig8.series["hios-mr"])
        ]
        # paper: 5.7-7.7% on LP, 13.3-14.6% on MR; we land lower on MR
        # (documented in EXPERIMENTS.md) but both must be positive and
        # MR's must not trail LP's dramatically
        assert all(0.0 <= v <= 0.2 for v in intra_lp)
        assert all(0.0 <= v <= 0.25 for v in intra_mr)
        assert sum(intra_mr) > 0.5 * sum(intra_lp)


class TestFig9And10Claims:
    def test_fig9_density_decline(self):
        r = EXPERIMENTS["fig9"](CFG)
        lp = r.speedup("sequential", "hios-lp")
        mr = r.speedup("sequential", "hios-mr")
        assert lp[0] > lp[-1] * 1.1  # paper: 2.06 -> 1.64
        assert mr[0] > mr[-1]

    def test_fig10_adaptivity(self):
        r = EXPERIMENTS["fig10"](CFG)
        for alg in ("sequential", "ios", "hios-mr"):
            ys = r.series[alg]
            assert max(ys) / min(ys) < 1.2, f"{alg} should be ~flat"
        lp = r.series["hios-lp"]
        # more parallelism (fewer layers) must not hurt HIOS-LP
        assert lp[0] <= lp[-1] * 1.05


class TestFig11Claims:
    def test_lp_declines_with_p(self, fig11):
        lp = fig11.speedup("sequential", "hios-lp")
        assert lp[0] > lp[-1] * 1.15  # paper: 2.23 -> 1.78
        assert lp[-1] > 1.3

    def test_mr_declines_faster(self, fig11):
        mr = fig11.speedup("sequential", "hios-mr")
        lp = fig11.speedup("sequential", "hios-lp")
        assert mr[0] / mr[-1] > lp[0] / lp[-1] * 0.95
        assert mr[-1] < 1.6  # paper: 1.10 at p=1.2


class TestRealModelClaims:
    @pytest.fixture(scope="class")
    def measurements(self):
        from repro.experiments.realmodels import MODEL_BUILDERS, default_profiler, run_model

        profiler = default_profiler()
        out = {}
        for model, size in (("inception_v3", 1024), ("nasnet", 1024)):
            profile = profiler.profile(MODEL_BUILDERS[model](size))
            out[model] = {
                alg: run_model(model, size, alg, profiler=profiler, profile=profile)
                for alg in ("sequential", "ios", "hios-mr", "hios-lp", "inter-lp")
            }
        return out

    def test_lp_beats_everyone_at_large_inputs(self, measurements):
        for model, runs in measurements.items():
            lp = runs["hios-lp"].measured_ms
            assert lp < runs["ios"].measured_ms, model
            assert lp < runs["hios-mr"].measured_ms, model
            assert lp < runs["sequential"].measured_ms, model

    def test_inter_gpu_mapping_dominates_gain(self, measurements):
        # paper §VI-E: LP inter-GPU mapping accounts for >= ~80% of
        # HIOS-LP's total reduction
        for model, runs in measurements.items():
            seq = runs["sequential"].measured_ms
            full = seq - runs["hios-lp"].measured_ms
            inter = seq - runs["inter-lp"].measured_ms
            assert full > 0
            assert inter / full > 0.7, model

    def test_inception_lp_vs_ios_band(self, measurements):
        runs = measurements["inception_v3"]
        reduction = 1 - runs["hios-lp"].measured_ms / runs["ios"].measured_ms
        # paper: up to 16.5%
        assert 0.05 <= reduction <= 0.35


class TestFig14Claims:
    def test_ios_cost_grows_fastest(self):
        r = EXPERIMENTS["fig14_inception"](CFG)
        ios = r.series["ios"]
        lp = r.series["hios-lp"]
        assert ios[-1] / ios[0] > 2.0
        assert ios[-1] > 3.0 * lp[-1]
