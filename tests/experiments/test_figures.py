"""Shape tests for the per-figure experiment drivers.

These run tiny configurations (1 instance, reduced sweeps) and check
the *qualitative* claims of each paper figure — who wins, in which
direction curves move — not absolute numbers.
"""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentConfig
from repro.experiments import (
    fig01_contention,
    fig02_comm_ratio,
    fig12_real_models,
    fig14_scheduling_cost,
)
from repro.experiments.simsweep import sweep_random_dags
from repro.models.randomdag import random_dag_profile

TINY = ExperimentConfig(fast=True, instances=1)


class TestFig1:
    def test_crossover(self):
        r = fig01_contention.run()
        ratio = dict(zip(r.x, r.series["ratio"]))
        # under-occupied regime: concurrency wins
        for size in (8, 16, 32, 64):
            assert ratio[size] < 1.0
        # saturated regime: contention loses
        for size in (128, 256, 512, 1024):
            assert ratio[size] > 1.0

    def test_occupancy_monotone(self):
        r = fig01_contention.run()
        occ = r.series["occupancy"]
        assert occ == sorted(occ)


class TestFig2:
    def test_pcie_worst(self):
        r = fig02_comm_ratio.run()
        nvlink = r.series["dual-A40 (NVLink)"]
        pcie = r.series["dual-V100S (PCIe Gen3)"]
        assert all(p > n for n, p in zip(nvlink, pcie))

    def test_ratios_not_negligible(self):
        r = fig02_comm_ratio.run()
        for series in r.series.values():
            assert all(v > 0.1 for v in series)


class TestSimFigures:
    """Figs. 7-11 on one seed each (full claims checked in the slower
    test_paper_claims module)."""

    def test_fig7_lp_scales_mr_plateaus(self):
        r = EXPERIMENTS["fig7"](TINY)
        lp = r.speedup("sequential", "hios-lp")
        mr = r.speedup("sequential", "hios-mr")
        assert lp[-1] > lp[0]  # LP keeps gaining with more GPUs
        assert lp[r.x.index(4)] > mr[r.x.index(4)]  # LP beats MR at 4 GPUs
        assert max(mr) < max(lp)

    def test_fig9_density_hurts(self):
        r = EXPERIMENTS["fig9"](TINY)
        lp = r.speedup("sequential", "hios-lp")
        assert lp[0] > lp[-1]  # speedup declines with dependency count

    def test_fig11_comm_ratio_hurts(self):
        r = EXPERIMENTS["fig11"](TINY)
        lp = r.speedup("sequential", "hios-lp")
        mr = r.speedup("sequential", "hios-mr")
        assert lp[0] > lp[-1]
        assert mr[0] > mr[-1]

    def test_sweep_helper_series_shape(self):
        r = sweep_random_dags(
            figure="t",
            title="t",
            x_label="m",
            x_values=[2, 4],
            profile_factory=lambda m, seed: random_dag_profile(
                seed=seed, num_gpus=int(m), num_ops=40, num_layers=5
            ),
            config=TINY,
            algorithms=("sequential", "hios-lp"),
            graph_varies_with_x=False,
        )
        assert set(r.series) == {"sequential", "hios-lp"}
        assert len(r.series["hios-lp"]) == 2
        # sequential identical across x (single-GPU cache path)
        assert r.series["sequential"][0] == r.series["sequential"][1]


@pytest.fixture(scope="module")
def small_real_config():
    return ExperimentConfig(fast=True, instances=1)


class TestRealModelFigures:
    def test_fig12_smoke(self, small_real_config, monkeypatch):
        # trim to one size for speed
        monkeypatch.setattr(
            fig12_real_models, "model_sizes", lambda m, c: (299,)
        )
        r = fig12_real_models.run(small_real_config, "inception_v3")
        assert r.x == [299]
        assert set(r.series) == {"sequential", "ios", "hios-mr", "hios-lp"}
        # HIOS-LP never loses to plain sequential on the engine here
        assert r.value("hios-lp", 299) < r.value("sequential", 299)

    def test_fig14_accounting(self, small_real_config, monkeypatch):
        monkeypatch.setattr(
            fig14_scheduling_cost, "model_sizes", lambda m, c: (299,)
        )
        r = fig14_scheduling_cost.run(small_real_config, "inception_v3")
        assert set(r.series) == {"ios", "hios-mr", "hios-lp"}
        for alg in r.series:
            assert r.series[alg][0] > 0
        # IOS profiles far more candidate groups than the HIOS passes
        assert r.value("ios", 299) > r.value("hios-lp", 299)


class TestMeasurementRecorder:
    def test_records_only_multi_op_sets(self):
        from repro.core import Operator
        from repro.costmodel import MaxConcurrencyModel
        from repro.experiments.fig14_scheduling_cost import MeasurementRecorder

        rec = MeasurementRecorder(MaxConcurrencyModel())
        a, b = Operator("a", cost=1.0), Operator("b", cost=2.0)
        assert rec.duration([a]) == 1.0
        assert rec.duration([a, b]) == 2.0
        rec.duration([b, a])  # same set, not double-counted
        assert len(rec.groups) == 1
        assert rec.group_measurement_ms == 2.0


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {
            "fig1",
            "fig2",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12_inception",
            "fig12_nasnet",
            "fig13",
            "fig14_inception",
            "fig14_nasnet",
        }
        assert expected <= set(EXPERIMENTS)


class TestStdTracking:
    def test_sweep_records_per_point_stddev(self):
        from repro.experiments import ExperimentConfig
        from repro.experiments.simsweep import sweep_random_dags
        from repro.models.randomdag import random_dag_profile

        r = sweep_random_dags(
            figure="t",
            title="t",
            x_label="m",
            x_values=[2],
            profile_factory=lambda m, seed: random_dag_profile(
                seed=seed, num_gpus=2, num_ops=30, num_layers=4
            ),
            config=ExperimentConfig(instances=3),
            algorithms=("sequential", "hios-lp"),
        )
        stds = r.extras["std"]
        assert set(stds) == {"sequential", "hios-lp"}
        # three different seeds -> nonzero spread
        assert stds["sequential"][0] > 0
