"""Tests for experiment configuration and reporting helpers."""

import pytest

from repro.experiments import ExperimentConfig, SeriesResult, default_config, format_table


class TestConfig:
    def test_defaults_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        cfg = default_config()
        assert cfg.fast and cfg.instances == 3

    def test_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        cfg = default_config()
        assert not cfg.fast and cfg.instances == 30

    def test_env_zero_means_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "0")
        assert default_config().fast

    def test_with_(self):
        cfg = ExperimentConfig().with_(instances=7)
        assert cfg.instances == 7
        assert cfg.fast  # others untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(instances=0)
        with pytest.raises(ValueError):
            ExperimentConfig(num_gpus=0)


class TestFormatTable:
    def test_alignment(self):
        txt = format_table(["x", "value"], [[1, 2.34567], [100, 9.0]], precision=2)
        lines = txt.splitlines()
        assert len(lines) == 4
        assert "2.35" in lines[2]
        assert "100" in lines[3]

    def test_empty_rows(self):
        txt = format_table(["a"], [])
        assert "a" in txt


class TestSeriesResult:
    def make(self):
        return SeriesResult(
            figure="figX",
            title="t",
            x_label="x",
            y_label="y",
            x=[1, 2],
            series={"seq": [10.0, 20.0], "lp": [5.0, 8.0]},
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SeriesResult("f", "t", "x", "y", x=[1], series={"a": [1.0, 2.0]})

    def test_value_and_speedup(self):
        r = self.make()
        assert r.value("seq", 2) == 20.0
        assert r.speedup("seq", "lp") == [2.0, 2.5]

    def test_to_text(self):
        txt = self.make().to_text()
        assert "figX" in txt
        assert "seq" in txt and "lp" in txt
        r2 = self.make()
        r2.notes = "hello"
        assert "# hello" in r2.to_text()
