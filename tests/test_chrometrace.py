"""Tests for the Chrome trace-event exporter."""

import json

import pytest

from repro.core import OpGraph, Schedule
from repro.substrate import EngineConfig, MultiGpuEngine
from repro.utils import save_chrome_trace, trace_to_events


@pytest.fixture
def traced_run():
    g = OpGraph.from_edges({"a": 1.0, "b": 2.0}, [("a", "b", 0.5)])
    s = Schedule(2)
    s.append_op(0, "a")
    s.append_op(1, "b")
    eng = MultiGpuEngine(EngineConfig(launch_overhead_ms=0.0, launch_included_in_cost=False))
    trace = eng.run(g, s)
    return trace, {op: s.gpu_of(op) for op in g.names}


class TestTraceToEvents:
    def test_kernel_events(self, traced_run):
        trace, gpu_of = traced_run
        events = trace_to_events(trace, gpu_of)
        kernels = [e for e in events if e.get("cat") == "kernel"]
        assert {e["name"] for e in kernels} == {"a", "b"}
        a = next(e for e in kernels if e["name"] == "a")
        assert a["ts"] == pytest.approx(0.0)
        assert a["dur"] == pytest.approx(1000.0)  # 1 ms in us
        assert a["tid"] == 0

    def test_transfer_events_on_link_lane(self, traced_run):
        trace, gpu_of = traced_run
        events = trace_to_events(trace, gpu_of)
        transfers = [e for e in events if e.get("cat") == "transfer"]
        assert len(transfers) == 1
        assert transfers[0]["name"] == "a->b"
        assert transfers[0]["dur"] == pytest.approx(500.0)
        lane_meta = [
            e for e in events if e.get("ph") == "M" and "link" in str(e["args"])
        ]
        assert len(lane_meta) == 1

    def test_thread_metadata_per_gpu(self, traced_run):
        trace, gpu_of = traced_run
        events = trace_to_events(trace, gpu_of)
        names = [
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "thread_name"
        ]
        assert "GPU 0" in names and "GPU 1" in names

    def test_save_loadable_json(self, traced_run, tmp_path):
        trace, gpu_of = traced_run
        out = tmp_path / "trace.json"
        save_chrome_trace(trace, gpu_of, out)
        doc = json.loads(out.read_text())
        assert "traceEvents" in doc
        assert any(e.get("cat") == "kernel" for e in doc["traceEvents"])
