"""Shared fixtures: one profiled model + schedule + engine trace."""

import pytest

from repro.core.api import schedule_graph
from repro.experiments.realmodels import default_profiler
from repro.models.inception import inception_v3


@pytest.fixture(scope="package")
def profiled():
    """(profiler, profile) for Inception-v3@299 on the dual-A40."""
    profiler = default_profiler(num_gpus=2)
    profile = profiler.profile(inception_v3(299))
    return profiler, profile


@pytest.fixture(scope="package")
def traced(profiled):
    """(trace, op_gpu, result) of one HIOS-LP run on the engine."""
    profiler, profile = profiled
    result = schedule_graph(profile, "hios-lp")
    trace = profiler.engine().run(profile.graph, result.schedule)
    op_gpu = {op: result.schedule.gpu_of(op) for op in result.schedule.operators()}
    return trace, op_gpu, result
