"""Decision logging: capture semantics, scheduler hooks, JSONL output."""

import json

import pytest

from repro.core.api import schedule_graph
from repro.obs import DecisionLog, capture_decisions
from repro.obs import declog


class TestCaptureSemantics:
    def test_inactive_is_none(self):
        assert declog.active() is None

    def test_module_emit_is_noop_when_inactive(self):
        declog.emit("lp-path", winner=0)  # must not raise

    def test_capture_activates_and_restores(self):
        with capture_decisions() as log:
            assert declog.active() is log
            declog.emit("test", x=1)
        assert declog.active() is None
        assert len(log) == 1

    def test_seq_numbers_are_monotone(self):
        log = DecisionLog()
        log.emit("a")
        log.emit("b", y=2)
        assert [r["seq"] for r in log] == [0, 1]
        assert log.records[1] == {"seq": 1, "event": "b", "y": 2}

    def test_nested_capture_isolates(self):
        with capture_decisions() as outer:
            declog.emit("outer-event")
            with capture_decisions() as inner:
                declog.emit("inner-event")
            declog.emit("outer-event")
        assert [r["event"] for r in outer] == ["outer-event", "outer-event"]
        assert [r["event"] for r in inner] == ["inner-event"]

    def test_events_filter(self):
        log = DecisionLog()
        log.emit("a", n=1)
        log.emit("b")
        log.emit("a", n=2)
        assert [r["n"] for r in log.events("a")] == [1, 2]

    def test_jsonl_round_trip(self, tmp_path):
        log = DecisionLog()
        log.emit("window", gpu=0, outcome="accepted", latency_ms=1.25)
        path = tmp_path / "decisions.jsonl"
        log.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        rec = json.loads(lines[0])
        assert rec == {
            "seq": 0,
            "event": "window",
            "gpu": 0,
            "outcome": "accepted",
            "latency_ms": 1.25,
        }


class TestSchedulerHooks:
    def test_hios_lp_emits_one_record_per_path(self, profiled):
        _, profile = profiled
        with capture_decisions() as log:
            result = schedule_graph(profile, "hios-lp")
        lp = log.events("lp-path")
        assert len(lp) == result.stats["paths"]
        # path indices are the full contiguous range
        assert sorted(r["path_index"] for r in lp) == list(range(len(lp)))
        winners = {r["winner"] for r in lp}
        assert winners <= {0, 1}
        # the first path is pinned to GPU 0 by construction
        pinned = [r for r in lp if r.get("pinned")]
        assert pinned and pinned[0]["winner"] == 0
        # contested paths record the per-GPU candidate latencies
        contested = [r for r in lp if not r.get("pinned")]
        assert contested
        for r in contested:
            assert set(r["candidates_ms"]) == {"0", "1"}
            assert r["latency_ms"] == min(r["candidates_ms"].values())

    def test_window_merge_accepted_matches_groups_formed(self, profiled):
        _, profile = profiled
        with capture_decisions() as log:
            result = schedule_graph(profile, "hios-lp")
        accepted = log.events("window-merge")
        assert all(r["outcome"] == "accepted" for r in accepted)
        assert len(accepted) == result.stats["intra_gpu"].groups_formed
        # every accepted merge names at least two concurrent operators
        assert all(len(r["ops"]) >= 2 for r in accepted)

    def test_window_rejections_have_known_outcomes(self, profiled):
        _, profile = profiled
        with capture_decisions() as log:
            schedule_graph(profile, "hios-lp")
        outcomes = {r["outcome"] for r in log.events("window")}
        assert outcomes <= {
            "rejected-dependent",
            "rejected-cyclic",
            "rejected-slower",
            "improves",
        }
        assert "improves" in outcomes

    def test_scheduling_without_capture_emits_nothing(self, profiled):
        _, profile = profiled
        result = schedule_graph(profile, "hios-lp")  # no active log
        assert declog.active() is None
        assert result.schedule.num_stages > 0

    def test_capture_does_not_change_the_schedule(self, profiled):
        _, profile = profiled
        plain = schedule_graph(profile, "hios-lp")
        with capture_decisions():
            logged = schedule_graph(profile, "hios-lp")
        assert logged.schedule.to_dict() == plain.schedule.to_dict()
        assert logged.latency == pytest.approx(plain.latency)
