"""Latency attribution: bucket invariants, realized critical path.

The headline acceptance test: on every algorithm the four per-GPU
buckets sum to the measured latency up to float round-off.
"""

import math

import pytest

from repro.core.api import schedule_graph
from repro.obs import (
    AttributionReport,
    attribute_latency,
    realized_critical_path,
)
from repro.substrate.engine import ExecutionTrace
from repro.substrate.mpi import TransferRecord

ALGORITHMS = ("sequential", "ios", "hios-mr", "hios-lp")


def make_trace(**kwargs):
    base = dict(
        latency=0.0,
        op_launch={},
        op_start={},
        op_finish={},
        transfers=[],
        gpu_busy={},
    )
    base.update(kwargs)
    return ExecutionTrace(**base)


def xfer(src, dst, tag, start, finish, post=None):
    return TransferRecord(
        src=src,
        dst=dst,
        tag=tag,
        post_time=start if post is None else post,
        start_time=start,
        finish_time=finish,
        num_bytes=4,
    )


class TestBucketsSumToLatency:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_algorithms(self, profiled, algorithm):
        profiler, profile = profiled
        result = schedule_graph(profile, algorithm)
        trace = profiler.engine().run(profile.graph, result.schedule)
        op_gpu = {
            op: result.schedule.gpu_of(op)
            for op in result.schedule.operators()
        }
        report = attribute_latency(trace, op_gpu)
        assert report.per_gpu
        for b in report.per_gpu:
            assert b.total == pytest.approx(trace.latency, abs=1e-6)
            for part in (b.compute, b.transfer, b.overhead, b.idle):
                assert part >= -1e-12

    def test_idle_gpu_still_gets_a_row(self):
        trace = make_trace(
            latency=3.0,
            op_start={"a": 0.0},
            op_finish={"a": 3.0},
            op_launch={"a": 0.0},
            gpu_busy={0: 3.0, 1: 0.0},
        )
        report = attribute_latency(trace, {"a": 0})
        by_gpu = {b.gpu: b for b in report.per_gpu}
        assert set(by_gpu) == {0, 1}
        assert by_gpu[1].idle == pytest.approx(3.0)
        assert by_gpu[1].compute == 0.0


class TestBucketPrecedence:
    def test_compute_wins_over_transfer(self):
        # GPU 0 computes 0-2 while also receiving 1-3: the overlap
        # is compute; only the non-overlapped tail is transfer.
        trace = make_trace(
            latency=4.0,
            op_start={"a": 0.0},
            op_finish={"a": 2.0},
            op_launch={"a": 0.0},
            transfers=[xfer(1, 0, "x->a", 1.0, 3.0)],
            gpu_busy={0: 2.0, 1: 0.0},
        )
        [b0] = [b for b in attribute_latency(trace, {"a": 0}).per_gpu if b.gpu == 0]
        assert b0.compute == pytest.approx(2.0)
        assert b0.transfer == pytest.approx(1.0)
        assert b0.idle == pytest.approx(1.0)

    def test_launch_to_start_window_is_overhead(self):
        trace = make_trace(
            latency=3.0,
            op_start={"a": 1.0},
            op_finish={"a": 3.0},
            op_launch={"a": 0.2},
            gpu_busy={0: 2.0},
        )
        [b0] = attribute_latency(trace, {"a": 0}).per_gpu
        assert b0.overhead == pytest.approx(0.8)
        assert b0.compute == pytest.approx(2.0)
        assert b0.idle == pytest.approx(0.2)

    def test_sender_side_counts_transfer_too(self):
        # blocking send: the producer's GPU is stalled for the flight
        trace = make_trace(
            latency=3.0,
            op_start={"a": 0.0, "b": 2.0},
            op_finish={"a": 1.0, "b": 3.0},
            op_launch={"a": 0.0, "b": 0.0},
            transfers=[xfer(0, 1, "a->b", 1.0, 2.0)],
            gpu_busy={0: 1.0, 1: 1.0},
        )
        by_gpu = {
            b.gpu: b for b in attribute_latency(trace, {"a": 0, "b": 1}).per_gpu
        }
        assert by_gpu[0].transfer == pytest.approx(1.0)
        assert by_gpu[1].transfer == pytest.approx(1.0)


class TestPartialFailureTraces:
    def test_inflight_op_cut_at_failure(self):
        # hand-built partial trace: "b" started but never finished
        trace = make_trace(
            latency=2.5,
            op_start={"a": 0.0, "b": 1.0},
            op_finish={"a": 1.0},
            op_launch={"a": 0.0, "b": 0.5},
            gpu_busy={0: 2.5},
        )
        [b0] = attribute_latency(trace, {"a": 0, "b": 0}).per_gpu
        # b occupies 1.0..latency despite having no finish
        assert b0.compute == pytest.approx(2.5)
        assert b0.total == pytest.approx(2.5)


class TestRealizedCriticalPath:
    def test_empty_trace(self):
        assert realized_critical_path(make_trace(), {}) == ()

    def test_transfer_bound_chain(self):
        # a on GPU 0 feeds b on GPU 1 through a 1-ms transfer; the path
        # must be compute(a) -> transfer -> compute(b), spanning latency.
        trace = make_trace(
            latency=4.0,
            op_start={"a": 0.0, "b": 2.0},
            op_finish={"a": 1.0, "b": 4.0},
            op_launch={"a": 0.0, "b": 0.0},
            transfers=[xfer(0, 1, "a->b", 1.0, 2.0)],
            gpu_busy={0: 1.0, 1: 2.0},
        )
        path = realized_critical_path(trace, {"a": 0, "b": 1})
        kinds = [s.kind for s in path]
        labels = [s.label for s in path]
        assert kinds == ["compute", "transfer", "compute"]
        assert labels == ["a", "a->b", "b"]
        assert path[0].start == pytest.approx(0.0)
        assert path[-1].end == pytest.approx(4.0)

    def test_barrier_bound_chain(self):
        # two kernels back-to-back on one GPU: barrier, not transfer
        trace = make_trace(
            latency=3.0,
            op_start={"a": 0.0, "b": 1.0},
            op_finish={"a": 1.0, "b": 3.0},
            op_launch={"a": 0.0, "b": 0.0},
            gpu_busy={0: 3.0},
        )
        path = realized_critical_path(trace, {"a": 0, "b": 0})
        assert [s.label for s in path] == ["a", "b"]
        assert all(s.kind == "compute" for s in path)

    def test_wait_segment_fills_gap(self):
        # b starts 0.5 ms after the transfer delivers: a wait appears
        trace = make_trace(
            latency=4.5,
            op_start={"a": 0.0, "b": 2.5},
            op_finish={"a": 1.0, "b": 4.5},
            op_launch={"a": 0.0, "b": 0.0},
            transfers=[xfer(0, 1, "a->b", 1.0, 2.0)],
            gpu_busy={0: 1.0, 1: 2.0},
        )
        path = realized_critical_path(trace, {"a": 0, "b": 1})
        waits = [s for s in path if s.kind == "wait"]
        assert len(waits) == 1
        assert waits[0].duration == pytest.approx(0.5)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_path_is_contiguous_and_spans_latency(self, profiled, algorithm):
        profiler, profile = profiled
        result = schedule_graph(profile, algorithm)
        trace = profiler.engine().run(profile.graph, result.schedule)
        op_gpu = {
            op: result.schedule.gpu_of(op)
            for op in result.schedule.operators()
        }
        path = realized_critical_path(trace, op_gpu)
        assert len(path) > 1
        assert path[-1].end == pytest.approx(trace.latency)
        # consecutive segments chain: each starts no later than the
        # previous one ends (transfer side-branches may back up)
        for seg in path:
            assert seg.end >= seg.start - 1e-9
            assert math.isfinite(seg.duration)

    def test_report_path_duration_properties(self):
        trace = make_trace(
            latency=4.0,
            op_start={"a": 0.0, "b": 2.0},
            op_finish={"a": 1.0, "b": 4.0},
            op_launch={"a": 0.0, "b": 0.0},
            transfers=[xfer(0, 1, "a->b", 1.0, 2.0)],
            gpu_busy={0: 1.0, 1: 2.0},
        )
        report = attribute_latency(trace, {"a": 0, "b": 1})
        assert isinstance(report, AttributionReport)
        assert report.critical_path_compute == pytest.approx(3.0)
        assert report.critical_path_transfer == pytest.approx(1.0)
        assert report.critical_path_wait == pytest.approx(0.0)
        total = (
            report.critical_path_compute
            + report.critical_path_transfer
            + report.critical_path_wait
        )
        assert total == pytest.approx(trace.latency)

    def test_to_dict_round_trip_shape(self):
        trace = make_trace(
            latency=1.0,
            op_start={"a": 0.0},
            op_finish={"a": 1.0},
            op_launch={"a": 0.0},
            gpu_busy={0: 1.0},
        )
        d = attribute_latency(trace, {"a": 0}).to_dict()
        assert d["latency_ms"] == pytest.approx(1.0)
        assert d["completed"] is True
        assert d["per_gpu"][0]["compute_ms"] == pytest.approx(1.0)
        assert d["critical_path"][0]["kind"] == "compute"
