"""Text renderers and the structural trace diff."""

import pytest

from repro.obs import (
    attribute_latency,
    diff_traces,
    render_attribution,
    render_trace_diff,
)
from repro.substrate.engine import ExecutionTrace
from repro.substrate.mpi import TransferRecord


def make_trace(**kwargs):
    base = dict(
        latency=0.0,
        op_launch={},
        op_start={},
        op_finish={},
        transfers=[],
        gpu_busy={},
    )
    base.update(kwargs)
    return ExecutionTrace(**base)


def two_op_trace(b_start=2.0, b_finish=4.0, latency=4.0):
    return make_trace(
        latency=latency,
        op_start={"a": 0.0, "b": b_start},
        op_finish={"a": 1.0, "b": b_finish},
        op_launch={"a": 0.0, "b": 0.0},
        transfers=[
            TransferRecord(
                src=0,
                dst=1,
                tag="a->b",
                post_time=1.0,
                start_time=1.0,
                finish_time=2.0,
                num_bytes=4,
            )
        ],
        gpu_busy={0: 1.0, 1: b_finish - b_start},
    )


class TestRenderAttribution:
    def test_mentions_every_gpu_and_bucket(self):
        report = attribute_latency(two_op_trace(), {"a": 0, "b": 1})
        text = render_attribution(report, title="demo")
        assert text.startswith("demo")
        assert "end-to-end latency: 4.000 ms (completed)" in text
        for word in ("compute", "transfer", "overhead", "idle"):
            assert word in text
        assert "realized critical path" in text
        assert "a->b" in text

    def test_partial_trace_is_flagged(self):
        trace = make_trace(
            latency=1.0,
            op_start={"a": 0.0},
            op_finish={},
            op_launch={"a": 0.0},
            gpu_busy={0: 1.0},
        )
        report = attribute_latency(trace, {"a": 0})
        # no FailureEvent object, but completed comes from trace.failure
        assert "completed" in render_attribution(report)

    def test_zero_latency_report_renders(self):
        text = render_attribution(attribute_latency(make_trace(), {}))
        assert "0.000 ms" in text


class TestDiffTraces:
    def test_identical(self):
        a = two_op_trace()
        d = diff_traces(a, a)
        assert d.identical
        assert d.latency_delta == 0.0
        assert not d.shifted and not d.only_a and not d.only_b
        assert "traces are identical" in render_trace_diff(d)

    def test_shifted_operator(self):
        a = two_op_trace()
        b = two_op_trace(b_start=2.5, b_finish=4.5, latency=4.5)
        d = diff_traces(a, b)
        assert not d.identical
        assert d.latency_delta == pytest.approx(0.5)
        assert [op for op, _, _ in d.shifted] == ["b"]
        [(_, ds, df)] = d.shifted
        assert ds == pytest.approx(0.5)
        assert df == pytest.approx(0.5)

    def test_disjoint_operators(self):
        a = make_trace(
            latency=1.0,
            op_start={"a": 0.0},
            op_finish={"a": 1.0},
            op_launch={"a": 0.0},
            gpu_busy={0: 1.0},
        )
        b = make_trace(
            latency=1.0,
            op_start={"z": 0.0},
            op_finish={"z": 1.0},
            op_launch={"z": 0.0},
            gpu_busy={0: 1.0},
        )
        d = diff_traces(a, b)
        assert d.only_a == ("a",)
        assert d.only_b == ("z",)
        text = render_trace_diff(d, name_a="left", name_b="right")
        assert "only in left: a" in text
        assert "only in right: z" in text

    def test_to_dict_shape(self):
        d = diff_traces(two_op_trace(), two_op_trace(b_finish=4.25, latency=4.25))
        doc = d.to_dict()
        assert doc["latency_delta_ms"] == pytest.approx(0.25)
        assert doc["shifted"] == [
            {"op": "b", "start_delta_ms": 0.0, "finish_delta_ms": 0.25}
        ]

    def test_render_ranks_largest_shift_first(self):
        a = make_trace(
            latency=3.0,
            op_start={"a": 0.0, "b": 1.0},
            op_finish={"a": 1.0, "b": 3.0},
            op_launch={"a": 0.0, "b": 0.0},
            gpu_busy={0: 3.0},
        )
        b = make_trace(
            latency=5.0,
            op_start={"a": 0.1, "b": 3.0},
            op_finish={"a": 1.1, "b": 5.0},
            op_launch={"a": 0.0, "b": 0.0},
            gpu_busy={0: 5.0},
        )
        text = render_trace_diff(diff_traces(a, b))
        lines = [ln for ln in text.splitlines() if ln.startswith("  ")]
        assert lines[0].split()[0] == "b"  # |delta| 2.0 beats a's 0.1
