"""Chrome/Perfetto export: event structure, flows, failure marker."""

import json

import pytest

from repro.core import OpGraph, Schedule
from repro.lint import lint_chrome_trace
from repro.obs import (
    CHROME_TRACE_FORMAT,
    chrome_trace_document,
    save_chrome_trace,
    trace_to_events,
)
from repro.substrate import EngineConfig, MultiGpuEngine
from repro.substrate.faults import FaultPlan, GpuFailure


def two_gpu_run():
    g = OpGraph.from_edges({"a": 1.0, "b": 2.0}, [("a", "b", 0.5)])
    s = Schedule(2)
    s.append_op(0, "a")
    s.append_op(1, "b")
    cfg = EngineConfig(
        launch_overhead_ms=0.0,
        launch_included_in_cost=False,
        contention_penalty=0.0,
        transfer_from_edges=True,
    )
    trace = MultiGpuEngine(cfg).run(g, s)
    return trace, {"a": 0, "b": 1}


class TestEventStructure:
    def test_kernel_events_in_microseconds(self):
        trace, op_gpu = two_gpu_run()
        events = trace_to_events(trace, op_gpu)
        kernels = {e["name"]: e for e in events if e.get("cat") == "kernel"}
        assert set(kernels) == {"a", "b"}
        assert kernels["a"]["ph"] == "X"
        assert kernels["a"]["tid"] == 0
        assert kernels["b"]["tid"] == 1
        # a runs 0-1 ms -> 0-1000 us; b runs 1.5-3.5 ms
        assert kernels["a"]["dur"] == pytest.approx(1000.0)
        assert kernels["b"]["ts"] == pytest.approx(1500.0)
        assert kernels["b"]["dur"] == pytest.approx(2000.0)

    def test_gpu_tracks_are_named(self):
        trace, op_gpu = two_gpu_run()
        events = trace_to_events(trace, op_gpu)
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[0] == "GPU 0"
        assert names[1] == "GPU 1"
        # the transfer lane gets its own named row after the GPUs
        assert any("link 0->1" in n for n in names.values())

    def test_transfer_slice_and_flow_pair(self):
        trace, op_gpu = two_gpu_run()
        events = trace_to_events(trace, op_gpu)
        transfers = [e for e in events if e.get("cat") == "transfer"]
        assert len(transfers) == 1
        assert transfers[0]["dur"] == pytest.approx(500.0)
        flows = [e for e in events if e.get("cat") == "flow"]
        starts = [e for e in flows if e["ph"] == "s"]
        finishes = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        assert finishes[0]["ts"] >= starts[0]["ts"]
        # the arrow lands on the consumer's GPU row
        assert finishes[0]["tid"] == 1

    def test_document_carries_format_marker(self):
        trace, op_gpu = two_gpu_run()
        doc = chrome_trace_document(trace, op_gpu)
        assert doc["otherData"]["format"] == CHROME_TRACE_FORMAT
        assert doc["otherData"]["completed"] is True
        assert doc["otherData"]["latency_ms"] == pytest.approx(trace.latency)
        assert doc["displayTimeUnit"] == "ms"

    def test_save_round_trips_through_json(self, tmp_path):
        trace, op_gpu = two_gpu_run()
        path = tmp_path / "trace.json"
        save_chrome_trace(trace, op_gpu, path)
        doc = json.loads(path.read_text())
        assert doc["otherData"]["format"] == CHROME_TRACE_FORMAT
        assert len(doc["traceEvents"]) >= 4


class TestFailureTraces:
    def failed_run(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 2.0}, [("a", "b", 0.5)])
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        cfg = EngineConfig(
            launch_overhead_ms=0.0,
            launch_included_in_cost=False,
            contention_penalty=0.0,
            transfer_from_edges=True,
            faults=FaultPlan([GpuFailure(gpu=1, at=2.0)]),
        )
        trace = MultiGpuEngine(cfg).run(g, s)
        assert trace.failure is not None
        return trace, {"a": 0, "b": 1}

    def test_failure_instant_event(self):
        trace, op_gpu = self.failed_run()
        events = trace_to_events(trace, op_gpu)
        [instant] = [e for e in events if e["ph"] == "i"]
        assert instant["cat"] == "failure"
        assert instant["s"] == "g"
        assert instant["ts"] == pytest.approx(trace.failure.time * 1000.0)
        assert instant["args"]["gpu"] == 1
        assert "b" in instant["args"]["in_flight"]

    def test_inflight_kernel_cut_at_failure(self):
        trace, op_gpu = self.failed_run()
        events = trace_to_events(trace, op_gpu)
        [b] = [e for e in events if e.get("cat") == "kernel" and e["name"] == "b"]
        assert b["args"]["unfinished"] is True
        assert b["ts"] + b["dur"] == pytest.approx(trace.latency * 1000.0)

    def test_partial_document_flags_completed_false(self):
        trace, op_gpu = self.failed_run()
        doc = chrome_trace_document(trace, op_gpu)
        assert doc["otherData"]["completed"] is False


class TestExporterOutputIsLintClean:
    def test_synthetic(self):
        trace, op_gpu = two_gpu_run()
        report = lint_chrome_trace(chrome_trace_document(trace, op_gpu))
        assert not report.diagnostics

    def test_partial_failure(self):
        trace, op_gpu = TestFailureTraces().failed_run()
        report = lint_chrome_trace(chrome_trace_document(trace, op_gpu))
        assert not report.diagnostics

    def test_real_model(self, traced):
        trace, op_gpu, _ = traced
        report = lint_chrome_trace(chrome_trace_document(trace, op_gpu))
        assert not report.diagnostics
