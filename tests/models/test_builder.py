"""Unit tests for GraphBuilder / ModelGraph."""

import pytest

from repro.core import GraphError
from repro.models import Conv2d, Concat, GraphBuilder, TensorShape
from repro.models.builder import INPUT


def toy_builder():
    b = GraphBuilder("toy", TensorShape(3, 32, 32))
    c1 = b.add("c1", Conv2d(8, 3), b.input)
    c2 = b.add("c2", Conv2d(8, 3), b.input)
    b.add("cat", Concat(), c1, c2)
    return b


class TestBuilder:
    def test_shapes_inferred(self):
        b = toy_builder()
        assert b.shape("c1") == TensorShape(8, 32, 32)
        assert b.shape("cat") == TensorShape(16, 32, 32)
        assert b.shape(INPUT) == TensorShape(3, 32, 32)

    def test_edge_and_op_counts(self):
        m = toy_builder().build()
        assert len(m) == 3
        # input -> c1/c2 edges do not count as operator dependencies
        assert m.num_edges == 2

    def test_duplicate_name_rejected(self):
        b = toy_builder()
        with pytest.raises(GraphError):
            b.add("c1", Conv2d(8), b.input)

    def test_unknown_tensor_rejected(self):
        b = toy_builder()
        with pytest.raises(GraphError):
            b.add("x", Conv2d(8), "nope")

    def test_no_inputs_rejected(self):
        b = toy_builder()
        with pytest.raises(GraphError):
            b.add("x", Conv2d(8))

    def test_auto_names_unique(self):
        b = GraphBuilder("t", TensorShape(3, 8, 8))
        n1 = b.auto(Conv2d(4), b.input)
        n2 = b.auto(Conv2d(4), b.input)
        assert n1 != n2
        assert n1.startswith("conv2d_")

    def test_empty_build_rejected(self):
        b = GraphBuilder("t", TensorShape(3, 8, 8))
        with pytest.raises(GraphError):
            b.build()


class TestModelGraph:
    def test_node_access(self):
        m = toy_builder().build()
        node = m.node("cat")
        assert node.inputs == ("c1", "c2")
        with pytest.raises(GraphError):
            m.node("zz")
        assert "c1" in m and "zz" not in m

    def test_input_shapes(self):
        m = toy_builder().build()
        assert m.input_shapes("cat") == [TensorShape(8, 32, 32)] * 2

    def test_to_op_graph(self):
        m = toy_builder().build()
        costs = {n.name: 1.0 for n in m.nodes()}
        occ = {n.name: 0.5 for n in m.nodes()}
        transfers = {("c1", "cat"): 0.25, ("c2", "cat"): 0.25}
        g = m.to_op_graph(costs, occ, transfers)
        assert len(g) == 3
        assert g.transfer("c1", "cat") == 0.25
        assert g.operator("c1").output_bytes == TensorShape(8, 32, 32).bytes
        assert g.operator("c1").kind == "conv2d"
        g.validate()
