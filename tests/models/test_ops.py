"""Unit tests for the CNN operator library (shape/work inference)."""

import pytest

from repro.models import (
    Activation,
    Add,
    AvgPool2d,
    Concat,
    Conv2d,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    SeparableConv2d,
    TensorShape,
)
from repro.models.ops import DTYPE_BYTES


class TestTensorShape:
    def test_numel_bytes(self):
        t = TensorShape(3, 4, 5)
        assert t.numel == 60
        assert t.bytes == 60 * DTYPE_BYTES
        assert str(t) == "3x4x5"

    def test_validation(self):
        with pytest.raises(ValueError):
            TensorShape(0, 1, 1)


class TestConv2d:
    def test_same_padding_shape(self):
        out = Conv2d(16, 3).infer([TensorShape(8, 32, 32)])
        assert out == TensorShape(16, 32, 32)

    def test_stride_and_valid_padding(self):
        out = Conv2d(16, 3, stride=2, padding=0).infer([TensorShape(8, 33, 33)])
        assert out == TensorShape(16, 16, 16)

    def test_flops_formula(self):
        x = TensorShape(8, 10, 10)
        spec = Conv2d(16, 3)
        out = spec.infer([x])
        flops, rd, wr, blocks = spec.work_items([x], out)
        assert flops == 2 * 9 * 8 * 16 * 10 * 10
        assert wr == out.bytes
        assert rd == x.bytes + 9 * 8 * 16 * DTYPE_BYTES
        assert blocks >= 1

    def test_too_small_input(self):
        with pytest.raises(ValueError):
            Conv2d(4, 7, stride=1, padding=0).infer([TensorShape(1, 3, 3)])

    def test_single_input_enforced(self):
        with pytest.raises(ValueError):
            Conv2d(4).infer([TensorShape(1, 8, 8), TensorShape(1, 8, 8)])


class TestSeparableConv:
    def test_shape(self):
        out = SeparableConv2d(32, 3, stride=2).infer([TensorShape(16, 32, 32)])
        assert out.c == 32
        assert out.h == 16

    def test_cheaper_than_dense(self):
        x = TensorShape(64, 16, 16)
        dense = Conv2d(64, 3)
        sep = SeparableConv2d(64, 3)
        fd, *_ = dense.work_items([x], dense.infer([x]))
        fs, *_ = sep.work_items([x], sep.infer([x]))
        assert fs < fd


class TestPooling:
    def test_maxpool_shape(self):
        out = MaxPool2d(3, 2).infer([TensorShape(8, 32, 32)])
        assert out == TensorShape(8, 16, 16)

    def test_avgpool_defaults(self):
        out = AvgPool2d(3, 1).infer([TensorShape(8, 17, 17)])
        assert out == TensorShape(8, 17, 17)

    def test_global_avg(self):
        spec = GlobalAvgPool()
        out = spec.infer([TensorShape(128, 8, 8)])
        assert out == TensorShape(128, 1, 1)
        flops, *_ = spec.work_items([TensorShape(128, 8, 8)], out)
        assert flops == 128 * 64


class TestJoins:
    def test_concat(self):
        out = Concat().infer([TensorShape(8, 4, 4), TensorShape(16, 4, 4)])
        assert out == TensorShape(24, 4, 4)

    def test_concat_spatial_mismatch(self):
        with pytest.raises(ValueError):
            Concat().infer([TensorShape(8, 4, 4), TensorShape(8, 5, 5)])

    def test_concat_empty(self):
        with pytest.raises(ValueError):
            Concat().infer([])

    def test_concat_zero_flops(self):
        x = [TensorShape(8, 4, 4)] * 2
        out = Concat().infer(x)
        flops, rd, wr, _ = Concat().work_items(x, out)
        assert flops == 0.0
        assert rd == wr == out.bytes

    def test_add(self):
        x = [TensorShape(8, 4, 4)] * 3
        out = Add().infer(x)
        assert out == TensorShape(8, 4, 4)
        flops, *_ = Add().work_items(x, out)
        assert flops == 2 * out.numel

    def test_add_mismatch(self):
        with pytest.raises(ValueError):
            Add().infer([TensorShape(8, 4, 4), TensorShape(9, 4, 4)])
        with pytest.raises(ValueError):
            Add().infer([TensorShape(8, 4, 4)])


class TestOthers:
    def test_activation_identity_shape(self):
        out = Activation("relu").infer([TensorShape(4, 4, 4)])
        assert out == TensorShape(4, 4, 4)

    def test_linear(self):
        spec = Linear(1000)
        out = spec.infer([TensorShape(2048, 1, 1)])
        assert out == TensorShape(1000, 1, 1)
        flops, *_ = spec.work_items([TensorShape(2048, 1, 1)], out)
        assert flops == 2 * 2048 * 1000

    def test_kind_tags(self):
        assert Conv2d(8).kind == "conv2d"
        assert Concat().kind == "concat"
