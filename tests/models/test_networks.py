"""Tests for the Inception-v3 / NASNet builders (paper Section VI-B)."""

import pytest

from repro.models import (
    INCEPTION_V3_DEPS,
    INCEPTION_V3_OPS,
    NASNET_DEPS,
    NASNET_OPS,
    inception_v3,
    nasnet,
)
from repro.substrate import PlatformProfiler, dual_a40


class TestInceptionV3:
    def test_paper_counts(self):
        m = inception_v3()
        assert len(m) == INCEPTION_V3_OPS == 119
        assert m.num_edges == INCEPTION_V3_DEPS == 153

    def test_counts_stable_across_sizes(self):
        for size in (299, 512, 1024):
            m = inception_v3(size)
            assert len(m) == INCEPTION_V3_OPS
            assert m.num_edges == INCEPTION_V3_DEPS

    def test_single_sink_head(self):
        m = inception_v3()
        graph = m.to_op_graph(
            {n.name: 1.0 for n in m.nodes()},
            {n.name: 1.0 for n in m.nodes()},
            {
                (t, n.name): 0.0
                for n in m.nodes()
                for t in n.inputs
                if t in m
            },
        )
        assert graph.sinks() == ["head_gap"]
        graph.validate()

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            inception_v3(32)

    def test_costs_scale_with_input(self):
        pp = PlatformProfiler(dual_a40())
        small = pp.price_graph(inception_v3(299)).total_cost()
        large = pp.price_graph(inception_v3(1024)).total_cost()
        assert large > 4 * small

    def test_branches_are_parallel(self):
        # InceptionA branch heads must be mutually independent
        pp = PlatformProfiler(dual_a40())
        g = pp.price_graph(inception_v3())
        heads = ["a1_1x1", "a1_5x5_1", "a1_3x3dbl_1", "a1_pool"]
        assert g.independent(heads)


class TestNasnet:
    def test_paper_counts(self):
        m = nasnet()
        assert len(m) == NASNET_OPS == 374
        assert m.num_edges == NASNET_DEPS == 576

    def test_counts_stable_across_sizes(self):
        for size in (331, 512):
            m = nasnet(size)
            assert len(m) == NASNET_OPS
            assert m.num_edges == NASNET_DEPS

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            nasnet(16)

    def test_custom_config_skips_count_assert(self):
        m = nasnet(stacks=(2, 2))
        assert len(m) < NASNET_OPS

    def test_validates_as_dag(self):
        pp = PlatformProfiler(dual_a40())
        g = pp.price_graph(nasnet())
        g.validate()
        assert g.sinks() == ["head_gap"]

    def test_denser_than_inception(self):
        # the paper notes NASNet's dependency density limits intra-GPU
        # parallelism: deps per op must exceed Inception's
        assert NASNET_DEPS / NASNET_OPS > INCEPTION_V3_DEPS / INCEPTION_V3_OPS
