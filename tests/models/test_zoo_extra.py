"""Tests for the contrast models (ResNet-50, RandWire)."""

import pytest

from repro.core import schedule_graph
from repro.models import RESNET50_DEPS, RESNET50_OPS, randwire, resnet50
from repro.substrate import PlatformProfiler, dual_a40, nvswitch_platform


class TestResnet50:
    def test_counts(self):
        m = resnet50()
        assert len(m) == RESNET50_OPS == 71
        assert m.num_edges == RESNET50_DEPS == 86

    def test_counts_stable_across_sizes(self):
        assert len(resnet50(512)) == RESNET50_OPS

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            resnet50(16)

    def test_nearly_chain_shaped(self):
        """The skip connections add only short parallel branches: the
        computation-only critical path covers most of the total work —
        the regime where HIOS cannot help much."""
        from repro.core import critical_path_length

        pp = PlatformProfiler(dual_a40())
        g = pp.price_graph(resnet50(512))
        cp = critical_path_length(g, include_transfers=False)
        assert cp / g.total_cost() > 0.8

    def test_hios_gain_is_small(self):
        pp = PlatformProfiler(dual_a40())
        prof = pp.profile(resnet50(512))
        seq = schedule_graph(prof, "sequential").latency
        lp = schedule_graph(prof, "hios-lp").latency
        assert lp <= seq + 1e-9
        assert (seq - lp) / seq < 0.15  # minimal headroom by design


class TestRandwire:
    def test_deterministic(self):
        a = randwire(seed=3)
        b = randwire(seed=3)
        assert [n.name for n in a.nodes()] == [n.name for n in b.nodes()]
        assert a.num_edges == b.num_edges

    def test_seeds_differ(self):
        assert randwire(seed=1).num_edges != randwire(seed=2).num_edges

    def test_edge_prob_densifies(self):
        sparse = randwire(seed=0, edge_prob=0.05)
        dense = randwire(seed=0, edge_prob=0.6)
        assert dense.num_edges > sparse.num_edges

    def test_validation(self):
        with pytest.raises(ValueError):
            randwire(num_nodes=1)
        with pytest.raises(ValueError):
            randwire(edge_prob=1.5)

    def test_wide_parallelism_pays_on_nvswitch(self):
        pp = PlatformProfiler(nvswitch_platform(4))
        prof = pp.profile(randwire(512))
        seq = schedule_graph(prof, "sequential").latency
        lp = schedule_graph(prof, "hios-lp").latency
        assert (seq - lp) / seq > 0.25  # branchy graph, cheap fabric

    def test_is_dag_and_schedulable(self):
        pp = PlatformProfiler(dual_a40())
        prof = pp.profile(randwire(224, num_nodes=16, seed=5))
        prof.graph.validate()
        res = schedule_graph(prof, "hios-mr")
        res.schedule.validate(prof.graph)
