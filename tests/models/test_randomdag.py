"""Tests for the Section V random layered DAG generator."""

import pytest

from repro.models import RandomDagConfig, random_dag_profile, random_layered_dag


class TestGeneration:
    def test_default_paper_settings(self):
        g = random_layered_dag(seed=0)
        assert len(g) == 200
        assert g.num_edges == 400

    def test_costs_in_range(self):
        g = random_layered_dag(seed=1)
        for op in g.operators():
            assert 0.1 <= op.cost <= 4.0

    def test_occupancy_calibration(self):
        cfg = RandomDagConfig(saturation_ms=3.0)
        g = random_layered_dag(cfg, seed=2)
        for op in g.operators():
            assert op.occupancy == pytest.approx(min(1.0, op.cost / 3.0))

    def test_transfer_rule(self):
        g = random_layered_dag(seed=3, transfer_ratio=0.8, transfer_floor=0.1)
        for u, v, w in g.edges():
            assert w == pytest.approx(max(0.1, 0.8 * g.cost(u)))

    def test_layering_respected(self):
        g = random_layered_dag(seed=4)
        for u, v, _ in g.edges():
            assert g.operator(u).attrs["layer"] < g.operator(v).attrs["layer"]

    def test_every_layer_nonempty(self):
        g = random_layered_dag(seed=5, num_ops=30, num_layers=10)
        layers = {op.attrs["layer"] for op in g.operators()}
        assert layers == set(range(10))

    def test_non_first_layer_ops_have_parents(self):
        g = random_layered_dag(seed=6)
        for op in g.operators():
            if op.attrs["layer"] > 0:
                assert g.in_degree(op.name) >= 1

    def test_is_dag(self):
        random_layered_dag(seed=7).validate()

    def test_determinism(self):
        a = random_layered_dag(seed=8)
        b = random_layered_dag(seed=8)
        assert a.edges() == b.edges()
        assert [op.cost for op in a.operators()] == [op.cost for op in b.operators()]

    def test_seeds_differ(self):
        a = random_layered_dag(seed=9)
        b = random_layered_dag(seed=10)
        assert a.edges() != b.edges()

    def test_custom_edge_count(self):
        g = random_layered_dag(seed=11, num_edges=550)
        assert g.num_edges == 550


class TestValidation:
    def test_config_bounds(self):
        with pytest.raises(ValueError):
            RandomDagConfig(num_ops=0)
        with pytest.raises(ValueError):
            RandomDagConfig(num_layers=0)
        with pytest.raises(ValueError):
            RandomDagConfig(num_ops=5, num_layers=6)
        with pytest.raises(ValueError):
            RandomDagConfig(cost_min=0)
        with pytest.raises(ValueError):
            RandomDagConfig(transfer_ratio=-1)
        with pytest.raises(ValueError):
            RandomDagConfig(saturation_ms=0)

    def test_edge_target_too_low(self):
        with pytest.raises(ValueError, match="mandatory"):
            random_layered_dag(seed=0, num_ops=100, num_layers=10, num_edges=10)

    def test_edge_target_too_high(self):
        with pytest.raises(ValueError, match="capacity"):
            random_layered_dag(seed=0, num_ops=10, num_layers=5, num_edges=1000)

    def test_config_and_kwargs_exclusive(self):
        with pytest.raises(TypeError):
            random_layered_dag(RandomDagConfig(), seed=0, num_ops=10)


class TestProfileFactory:
    def test_profile_defaults(self):
        p = random_dag_profile(seed=0)
        assert p.num_gpus == 4
        assert len(p.graph) == 200

    def test_kwargs_passthrough(self):
        p = random_dag_profile(seed=0, num_gpus=2, num_ops=50, num_layers=5)
        assert p.num_gpus == 2
        assert len(p.graph) == 50
