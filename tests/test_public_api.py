"""Public-API integrity: every name each package exports must resolve,
and the headline entry points must be importable from the top level."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.costmodel",
    "repro.lint",
    "repro.substrate",
    "repro.serve",
    "repro.models",
    "repro.experiments",
    "repro.utils",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), f"{package} must declare __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} listed in __all__ but missing"


def test_top_level_surface():
    import repro

    for name in (
        "schedule_graph",
        "make_profile",
        "OpGraph",
        "Operator",
        "Schedule",
        "Stage",
        "CostProfile",
        "evaluate_schedule",
        "ALGORITHMS",
    ):
        assert name in repro.__all__


def test_version():
    import repro

    assert repro.__version__.count(".") == 2


def test_model_registry_and_sizes():
    from repro.experiments import ExperimentConfig
    from repro.experiments.realmodels import MODEL_BUILDERS, model_sizes

    cfg = ExperimentConfig()
    assert set(MODEL_BUILDERS) == {"inception_v3", "nasnet", "resnet50", "randwire"}
    for name in MODEL_BUILDERS:
        sizes = model_sizes(name, cfg)
        assert len(sizes) >= 3
    with pytest.raises(ValueError):
        model_sizes("alexnet", cfg)


def test_run_model_on_contrast_workloads():
    from repro.experiments.realmodels import run_model

    run = run_model("resnet50", 224, "hios-lp")
    assert run.measured_ms > 0
    assert run.predicted_ms > 0
    assert run.algorithm == "hios-lp"
    assert run.model == "resnet50"
