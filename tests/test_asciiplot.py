"""Tests for the ASCII line-chart renderer."""

import pytest

from repro.experiments.reporting import SeriesResult
from repro.utils import ascii_plot, plot_series_result


class TestAsciiPlot:
    def test_basic_chart(self):
        out = ascii_plot({"a": [1.0, 2.0, 3.0]}, x_labels=[10, 20, 30], width=30, height=8)
        assert "o" in out
        assert "o a" in out  # legend
        assert "10" in out and "30" in out  # x axis endpoints
        assert "3" in out.splitlines()[0]  # max label on top row

    def test_multiple_series_distinct_markers(self):
        out = ascii_plot({"a": [1, 2], "b": [2, 1]}, width=20, height=6)
        assert "o a" in out and "x b" in out

    def test_extremes_on_first_and_last_rows(self):
        out = ascii_plot({"a": [0.0, 10.0]}, width=20, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        assert "o" in rows[0]  # max on top
        assert "o" in rows[-1]  # min on bottom

    def test_constant_series(self):
        out = ascii_plot({"a": [5.0, 5.0, 5.0]}, width=10, height=4)
        assert "o" in out  # no division by zero

    def test_empty_and_mismatched(self):
        assert ascii_plot({}) == "(no data)"
        with pytest.raises(ValueError):
            ascii_plot({"a": [1.0], "b": [1.0, 2.0]})

    def test_y_label_first_line(self):
        out = ascii_plot({"a": [1, 2]}, y_label="latency")
        assert out.splitlines()[0] == "latency"

    def test_single_point(self):
        out = ascii_plot({"a": [3.0]}, width=10, height=4)
        assert "o" in out


class TestPlotSeriesResult:
    def test_wraps_series_result(self):
        r = SeriesResult(
            figure="figX", title="t", x_label="n", y_label="ms",
            x=[1, 2, 3], series={"seq": [3.0, 2.0, 1.0]},
        )
        out = plot_series_result(r)
        assert "figX" in out
        assert "seq" in out
