"""Unit tests for longest valid path extraction (Alg. 1 line 5)."""

import pytest

from repro.core import GraphError, OpGraph, longest_valid_path
from repro.models.worked_examples import fig4_graph


class TestBasics:
    def test_single_vertex(self):
        g = OpGraph.from_edges({"a": 3.0}, [])
        p = longest_valid_path(g, {"a"})
        assert p.vertices == ("a",)
        assert p.length == 3.0
        assert len(p) == 1
        assert list(p) == ["a"]

    def test_chain_all_unscheduled(self):
        g = OpGraph.from_edges(
            {"a": 1, "b": 2, "c": 3}, [("a", "b", 0.5), ("b", "c", 0.5)]
        )
        p = longest_valid_path(g, {"a", "b", "c"})
        assert p.vertices == ("a", "b", "c")
        assert p.length == 1 + 0.5 + 2 + 0.5 + 3

    def test_picks_heavier_branch(self):
        g = OpGraph.from_edges(
            {"a": 1, "b": 10, "c": 1}, [("a", "b", 0.0), ("a", "c", 0.0)]
        )
        p = longest_valid_path(g, set(g.names))
        assert p.vertices == ("a", "b")

    def test_empty_unscheduled_rejected(self):
        g = OpGraph.from_edges({"a": 1}, [])
        with pytest.raises(GraphError):
            longest_valid_path(g, set())

    def test_unknown_vertex_rejected(self):
        g = OpGraph.from_edges({"a": 1}, [])
        with pytest.raises(GraphError):
            longest_valid_path(g, {"zz"})


class TestAnchors:
    def test_anchor_edges_count_toward_length(self):
        # a (scheduled) -> b -> c (scheduled): path {b} gains both
        # anchor edge weights
        g = OpGraph.from_edges(
            {"a": 1, "b": 2, "c": 1}, [("a", "b", 3.0), ("b", "c", 4.0)]
        )
        p = longest_valid_path(g, {"b"})
        assert p.vertices == ("b",)
        assert p.length == 3.0 + 2 + 4.0

    def test_best_anchor_chosen(self):
        g = OpGraph.from_edges(
            {"a": 1, "a2": 1, "b": 2},
            [("a", "b", 1.0), ("a2", "b", 5.0)],
        )
        p = longest_valid_path(g, {"b"})
        assert p.length == 5.0 + 2


class TestValidityConstraint:
    def test_fig4_second_path_avoids_scheduled_neighbor(self):
        """The paper's walk-through: after mapping v1 v2 v4 v6 v8, the
        longer candidate through v7 is invalid because its intermediate
        vertex v5 has an edge to the scheduled v6."""
        g = fig4_graph()
        p1 = longest_valid_path(g, set(g.names))
        assert p1.vertices == ("v1", "v2", "v4", "v6", "v8")
        remaining = set(g.names) - set(p1.vertices)
        p2 = longest_valid_path(g, remaining)
        assert p2.vertices == ("v3", "v5")
        # length: anchor e2 (1) + v3 (2) + e4 (1) + v5 (3) + anchor (1)
        assert p2.length == 8.0
        remaining -= set(p2.vertices)
        p3 = longest_valid_path(g, remaining)
        assert p3.vertices == ("v7",)
        assert p3.length == 1 + 2 + 1  # e7 + v7 + e9

    def test_endpoints_exempt_from_constraint(self):
        # x (scheduled) <- a -> b, with a also feeding the scheduled y:
        # a is a path END or START, so it may touch scheduled vertices
        g = OpGraph.from_edges(
            {"x": 1, "a": 2, "b": 2, "y": 1},
            [("x", "a", 1.0), ("a", "b", 1.0), ("a", "y", 0.5)],
        )
        p = longest_valid_path(g, {"a", "b"})
        assert p.vertices == ("a", "b")

    def test_interior_vertex_touching_scheduled_blocks_path(self):
        # chain a -> b -> c where b also feeds scheduled s: the 3-vertex
        # path would make b interior (invalid); the best valid path
        # must stop or start at b.
        g = OpGraph.from_edges(
            {"a": 1, "b": 1, "c": 1, "s": 1},
            [("a", "b", 0.1), ("b", "c", 0.1), ("b", "s", 0.1)],
        )
        p = longest_valid_path(g, {"a", "b", "c"})
        assert set(p.vertices) != {"a", "b", "c"} or len(p.vertices) < 3
        # a->b is valid (b is the last vertex) and collects the b->s anchor
        assert p.vertices in (("a", "b"), ("b", "c"))


class TestDeterminism:
    def test_repeatable(self):
        g = fig4_graph()
        a = longest_valid_path(g, set(g.names))
        b = longest_valid_path(g, set(g.names))
        assert a.vertices == b.vertices
        assert a.length == b.length
