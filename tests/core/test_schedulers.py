"""Tests for the scheduling algorithms (sequential, IOS, HIOS-LP/MR,
inter-GPU-only variants, brute force) on hand-built graphs."""

import pytest

from repro.core import (
    ALGORITHMS,
    OpGraph,
    evaluate_latency,
    make_profile,
    schedule_brute_force,
    schedule_graph,
    schedule_hios_lp,
    schedule_hios_mr,
    schedule_ios,
    schedule_sequential,
)
from repro.costmodel import CostProfile, MaxConcurrencyModel


def diamond(transfer=0.5) -> OpGraph:
    return OpGraph.from_edges(
        {"a": 2.0, "b": 3.0, "c": 1.0, "d": 2.0},
        [("a", "b", transfer), ("a", "c", transfer), ("b", "d", transfer), ("c", "d", transfer)],
    )


class TestSequential:
    def test_latency_is_total_cost(self):
        prof = make_profile(diamond(), num_gpus=2)
        res = schedule_sequential(prof)
        assert res.latency == 8.0
        assert res.algorithm == "sequential"
        assert res.schedule.used_gpus() == [0]
        assert all(len(st) == 1 for st in res.schedule.all_stages())

    def test_explicit_gpu(self):
        prof = make_profile(diamond(), num_gpus=2)
        res = schedule_sequential(prof, gpu=1)
        assert res.schedule.used_gpus() == [1]
        with pytest.raises(ValueError):
            schedule_sequential(prof, gpu=5)


class TestIos:
    def test_exact_groups_small_ops(self):
        # with an idealized max model, b and c should share a stage
        g = diamond()
        prof = CostProfile(graph=g, num_gpus=1, concurrency=MaxConcurrencyModel())
        res = schedule_ios(prof, mode="exact")
        assert res.latency == 2 + 3 + 2  # a, {b,c}, d
        widths = sorted(len(st) for st in res.schedule.all_stages())
        assert widths == [1, 1, 2]
        assert res.stats["beam_used"] is False

    def test_exact_matches_brute_force_single_gpu(self):
        g = OpGraph.from_edges(
            {"a": 1, "b": 2, "c": 1.5, "d": 1, "e": 2},
            [("a", "b"), ("a", "c"), ("a", "d"), ("b", "e"), ("c", "e"), ("d", "e")],
            occupancy={"a": 1.0, "b": 0.4, "c": 0.4, "d": 0.4, "e": 1.0},
        )
        prof = CostProfile(graph=g, num_gpus=1)
        ios = schedule_ios(prof, mode="exact", max_stage_ops=5)
        brute = schedule_brute_force(prof)
        assert ios.latency == pytest.approx(brute.latency)

    def test_beam_never_better_than_exact(self):
        g = diamond()
        prof = CostProfile(graph=g, num_gpus=1, concurrency=MaxConcurrencyModel())
        exact = schedule_ios(prof, mode="exact")
        beam = schedule_ios(prof, mode="beam", beam_width=1)
        assert beam.latency >= exact.latency - 1e-12

    def test_never_worse_than_sequential(self):
        prof = make_profile(diamond(), num_gpus=1)
        assert (
            schedule_ios(prof).latency
            <= schedule_sequential(prof).latency + 1e-12
        )

    def test_auto_fallback_flag(self):
        prof = make_profile(diamond(), num_gpus=1)
        res = schedule_ios(prof, mode="auto", state_limit=2)
        assert res.stats["beam_used"] is True

    def test_respects_max_streams(self):
        g = diamond()
        prof = CostProfile(
            graph=g, num_gpus=1, concurrency=MaxConcurrencyModel(), max_streams=1
        )
        res = schedule_ios(prof, mode="exact")
        assert res.schedule.max_stage_width() == 1

    def test_bad_params(self):
        prof = make_profile(diamond())
        with pytest.raises(ValueError):
            schedule_ios(prof, mode="nope")
        with pytest.raises(ValueError):
            schedule_ios(prof, max_stage_ops=0)
        with pytest.raises(ValueError):
            schedule_ios(prof, gpu=9)

    def test_schedule_is_valid(self):
        prof = make_profile(diamond(), num_gpus=2)
        res = schedule_ios(prof)
        res.schedule.validate(prof.graph)
        assert evaluate_latency(prof, res.schedule) == pytest.approx(res.latency)


class TestHiosLp:
    def test_diamond_uses_two_gpus(self):
        prof = make_profile(diamond(), num_gpus=2)
        res = schedule_hios_lp(prof)
        assert res.latency < schedule_sequential(prof).latency
        assert len(res.schedule.used_gpus()) == 2
        assert res.stats["paths"] >= 2

    def test_single_gpu_degenerates_to_sequentialish(self):
        prof = make_profile(diamond(), num_gpus=1)
        res = schedule_hios_lp(prof, intra_gpu=False)
        assert res.latency == pytest.approx(8.0)

    def test_intra_gpu_never_hurts(self):
        prof = make_profile(diamond(), num_gpus=2)
        with_intra = schedule_hios_lp(prof, intra_gpu=True)
        without = schedule_hios_lp(prof, intra_gpu=False)
        assert with_intra.latency <= without.latency + 1e-12

    def test_expensive_transfers_keep_one_gpu(self):
        prof = make_profile(diamond(transfer=100.0), num_gpus=2)
        res = schedule_hios_lp(prof, intra_gpu=False)
        assert len(res.schedule.used_gpus()) == 1
        assert res.latency == pytest.approx(8.0)

    def test_algorithm_labels(self):
        prof = make_profile(diamond(), num_gpus=2)
        assert schedule_hios_lp(prof).algorithm == "hios-lp"
        assert schedule_hios_lp(prof, intra_gpu=False).algorithm == "inter-lp"

    def test_schedule_valid_and_consistent(self):
        prof = make_profile(diamond(), num_gpus=3)
        res = schedule_hios_lp(prof)
        res.schedule.validate(prof.graph)
        assert evaluate_latency(prof, res.schedule) == pytest.approx(res.latency)


class TestHiosMr:
    def test_diamond(self):
        prof = make_profile(diamond(), num_gpus=2)
        res = schedule_hios_mr(prof)
        res.schedule.validate(prof.graph)
        assert res.latency <= schedule_sequential(prof).latency + 1e-12
        assert evaluate_latency(prof, res.schedule) == pytest.approx(res.latency)

    def test_single_gpu(self):
        prof = make_profile(diamond(), num_gpus=1)
        res = schedule_hios_mr(prof, intra_gpu=False)
        assert res.latency == pytest.approx(8.0)

    def test_first_operator_on_gpu_zero(self):
        prof = make_profile(diamond(), num_gpus=4)
        res = schedule_hios_mr(prof, intra_gpu=False)
        # v1 (the unique source, highest priority) goes to GPU 1 (index 0)
        assert res.schedule.gpu_of("a") == 0

    def test_labels(self):
        prof = make_profile(diamond(), num_gpus=2)
        assert schedule_hios_mr(prof).algorithm == "hios-mr"
        assert schedule_hios_mr(prof, intra_gpu=False).algorithm == "inter-mr"

    def test_empty_graph(self):
        prof = CostProfile(graph=OpGraph(), num_gpus=2)
        res = schedule_hios_mr(prof)
        assert res.latency == 0.0
        assert res.schedule.num_stages == 0


class TestBruteForce:
    def test_rejects_large_graphs(self):
        g = OpGraph.from_edges({f"v{i}": 1.0 for i in range(12)}, [])
        with pytest.raises(ValueError):
            schedule_brute_force(CostProfile(graph=g, num_gpus=2), max_ops=10)

    def test_optimal_on_diamond(self):
        prof = make_profile(diamond(), num_gpus=2)
        brute = schedule_brute_force(prof)
        for alg in ("hios-lp", "hios-mr", "ios", "sequential"):
            assert schedule_graph(prof, alg).latency >= brute.latency - 1e-9


class TestApi:
    def test_registry_contents(self):
        assert set(ALGORITHMS) == {
            "sequential",
            "ios",
            "hios-lp",
            "hios-mr",
            "inter-lp",
            "inter-mr",
            "hios-lp-ls",
        }

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            schedule_graph(diamond(), "magic")

    def test_accepts_graph_or_profile(self):
        g = diamond()
        by_graph = schedule_graph(g, "sequential", num_gpus=2)
        by_profile = schedule_graph(make_profile(g, num_gpus=2), "sequential")
        assert by_graph.latency == by_profile.latency

    def test_kwargs_forwarded(self):
        g = diamond()
        res = schedule_graph(g, "hios-lp", num_gpus=2, window=2)
        assert res.algorithm == "hios-lp"
        res = schedule_graph(g, "ios", num_gpus=1, mode="exact")
        assert res.stats["beam_used"] is False

    def test_scheduling_time_recorded(self):
        res = schedule_graph(diamond(), "hios-lp", num_gpus=2)
        assert res.scheduling_time >= 0.0
