"""Degraded-mode schedule repair: the fail-stop acceptance scenario,
trace splicing, and repair-input validation."""

from dataclasses import replace

import pytest

from repro.core import schedule_graph
from repro.core.repair import (
    RepairError,
    repair_schedule,
    run_with_repair,
    splice_traces,
)
from repro.models import random_dag_profile
from repro.substrate import (
    EngineConfig,
    FailureEvent,
    FaultPlan,
    GpuFailure,
    MultiGpuEngine,
)


def _config(**kwargs) -> EngineConfig:
    return EngineConfig(
        launch_overhead_ms=0.0,
        launch_included_in_cost=False,
        contention_penalty=0.06,
        transfer_from_edges=True,
        **kwargs,
    )


@pytest.fixture(scope="module")
def scenario():
    """4-GPU hios-lp schedule of an 80-op random DAG plus its
    fault-free latency — the acceptance-criterion workload."""
    profile = random_dag_profile(seed=7, num_ops=80, num_layers=8, num_gpus=4)
    res = schedule_graph(profile, "hios-lp")
    clean = MultiGpuEngine(_config()).run(profile.graph, res.schedule)
    return profile, res.schedule, clean


class TestAcceptance:
    """A GpuFailure mid-run on a 4-GPU hios-lp schedule completes via
    repair on 3 GPUs, beats the sequential-on-one-GPU fallback, and the
    seeded plan reproduces the identical trace twice."""

    def test_repair_completes_and_beats_sequential_fallback(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan([GpuFailure(gpu=1, at=clean.latency * 0.4)], seed=7)
        cfg = _config(faults=plan)

        repaired, repair = run_with_repair(profile, schedule, config=cfg)
        assert repair is not None
        assert repaired.failure is not None
        assert repair.survivors == (0, 2, 3)
        assert repair.algorithm == "hios-lp"
        assert 1 not in repair.schedule.used_gpus()
        # every operator is accounted for exactly once
        assert set(repaired.op_finish) == set(profile.graph.names)
        # finished ops keep their pre-failure times
        for op in repaired.failure.finished:
            assert repaired.op_finish[op] == clean.op_finish[op] or op in clean.op_finish

        fallback, fb_repair = run_with_repair(
            profile, schedule, config=cfg, algorithm="sequential"
        )
        assert fb_repair is not None
        assert len(fb_repair.schedule.used_gpus()) == 1
        assert repaired.latency < fallback.latency

    def test_seeded_plan_reproduces_identical_trace(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan([GpuFailure(gpu=1, at=clean.latency * 0.4)], seed=7)
        cfg = _config(faults=plan)
        t1, r1 = run_with_repair(profile, schedule, config=cfg)
        t2, r2 = run_with_repair(profile, schedule, config=cfg)
        assert t1 == t2  # dataclass equality: every timestamp and record
        assert r1.schedule == r2.schedule

    def test_clean_run_returns_no_repair(self, scenario):
        profile, schedule, clean = scenario
        trace, repair = run_with_repair(profile, schedule, config=_config())
        assert repair is None
        assert trace == clean


class TestRepairSchedule:
    def test_repair_only_schedules_unfinished(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan([GpuFailure(gpu=1, at=clean.latency * 0.4)])
        head = MultiGpuEngine(_config(faults=plan)).run(profile.graph, schedule)
        repair = repair_schedule(profile, head.failure)
        expected = head.failure.unfinished(profile.graph.names)
        assert set(repair.subgraph.names) == set(expected)
        assert set(repair.schedule.operators()) == set(expected)
        assert repair.predicted_tail_latency > 0

    def test_nothing_to_repair(self):
        profile = random_dag_profile(seed=0, num_ops=8, num_layers=2, num_gpus=2)
        done = FailureEvent(
            gpu=0,
            time=1.0,
            finished=frozenset(profile.graph.names),
            in_flight=frozenset(),
        )
        with pytest.raises(RepairError, match="nothing to repair"):
            repair_schedule(profile, done)

    def test_no_survivors(self):
        profile = random_dag_profile(seed=0, num_ops=8, num_layers=2, num_gpus=1)
        failure = FailureEvent(
            gpu=0, time=0.1, finished=frozenset(), in_flight=frozenset()
        )
        with pytest.raises(RepairError, match="no surviving"):
            repair_schedule(profile, failure)

    def test_out_of_range_failure_gpu(self):
        profile = random_dag_profile(seed=0, num_ops=8, num_layers=2, num_gpus=2)
        failure = FailureEvent(
            gpu=9, time=0.1, finished=frozenset(), in_flight=frozenset()
        )
        with pytest.raises(RepairError, match="GPU 9"):
            repair_schedule(profile, failure)

    def test_heterogeneous_speeds_remapped_to_survivors(self):
        base = random_dag_profile(seed=3, num_ops=24, num_layers=4, num_gpus=3)
        profile = replace(base, gpu_speeds=(1.0, 0.5, 2.0))
        failure = FailureEvent(
            gpu=1,
            time=0.0,
            finished=frozenset(),
            in_flight=frozenset(),
        )
        repair = repair_schedule(profile, failure)
        assert repair.survivors == (0, 2)
        # slow GPU 1 gone: the compacted profile keeps speeds (1.0, 2.0)
        assert repair.result.schedule.num_gpus == 2


class TestSplice:
    def test_splice_requires_failed_head(self, scenario):
        profile, schedule, clean = scenario
        with pytest.raises(RepairError, match="did not fail"):
            splice_traces(clean, clean)

    def test_splice_rejects_failed_tail(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan([GpuFailure(gpu=1, at=clean.latency * 0.4)])
        head = MultiGpuEngine(_config(faults=plan)).run(profile.graph, schedule)
        with pytest.raises(RepairError, match="tail trace failed"):
            splice_traces(head, head)

    def test_spliced_timestamps_are_shifted(self, scenario):
        profile, schedule, clean = scenario
        at = clean.latency * 0.4
        plan = FaultPlan([GpuFailure(gpu=1, at=at)])
        combined, repair = run_with_repair(
            profile, schedule, config=_config(faults=plan)
        )
        assert combined.latency >= at
        for op in repair.subgraph.names:
            assert combined.op_start[op] >= at - 1e-9
        for op in combined.failure.finished:
            assert combined.op_finish[op] <= at + 1e-9
