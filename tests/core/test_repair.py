"""Degraded-mode schedule repair: the fail-stop acceptance scenario,
cascading multi-failure repair, trace splicing (including its edge
cases and associativity), warm-started rescheduling, and repair-input
validation."""

from dataclasses import replace

import pytest

from repro.core import OpGraph, Schedule, Stage, priority_order, schedule_graph
from repro.core.repair import (
    RepairError,
    _warm_spatial_seed,
    repair_schedule,
    resize_schedule,
    run_with_repair,
    splice_traces,
)
from repro.costmodel.concurrency import SaturationConcurrencyModel
from repro.costmodel.profile import CostProfile
from repro.models import random_dag_profile
from repro.sanitize import analyze
from repro.substrate import (
    EngineConfig,
    FailureEvent,
    FaultPlan,
    GpuFailure,
    MultiGpuEngine,
)
from repro.sweep import ScheduleCache


def _config(**kwargs) -> EngineConfig:
    return EngineConfig(
        launch_overhead_ms=0.0,
        launch_included_in_cost=False,
        contention_penalty=0.06,
        transfer_from_edges=True,
        **kwargs,
    )


@pytest.fixture(scope="module")
def scenario():
    """4-GPU hios-lp schedule of an 80-op random DAG plus its
    fault-free latency — the acceptance-criterion workload."""
    profile = random_dag_profile(seed=7, num_ops=80, num_layers=8, num_gpus=4)
    res = schedule_graph(profile, "hios-lp")
    clean = MultiGpuEngine(_config()).run(profile.graph, res.schedule)
    return profile, res.schedule, clean


class TestAcceptance:
    """A GpuFailure mid-run on a 4-GPU hios-lp schedule completes via
    repair on 3 GPUs, beats the sequential-on-one-GPU fallback, and the
    seeded plan reproduces the identical trace twice."""

    def test_repair_completes_and_beats_sequential_fallback(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan([GpuFailure(gpu=1, at=clean.latency * 0.4)], seed=7)
        cfg = _config(faults=plan)

        repaired, repairs = run_with_repair(profile, schedule, config=cfg)
        assert len(repairs) == 1
        (repair,) = repairs
        assert repaired.failure is not None
        assert repair.survivors == (0, 2, 3)
        assert repair.algorithm == "hios-lp"
        assert 1 not in repair.schedule.used_gpus()
        # every operator is accounted for exactly once
        assert set(repaired.op_finish) == set(profile.graph.names)
        assert repaired.unfinished_ops(profile.graph.names) == []
        # finished ops keep their pre-failure times
        for op in repaired.failure.finished:
            assert repaired.op_finish[op] == clean.op_finish[op] or op in clean.op_finish

        fallback, fb_repairs = run_with_repair(
            profile, schedule, config=cfg, algorithm="sequential"
        )
        assert len(fb_repairs) == 1
        assert len(fb_repairs[0].schedule.used_gpus()) == 1
        assert repaired.latency < fallback.latency

    def test_seeded_plan_reproduces_identical_trace(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan([GpuFailure(gpu=1, at=clean.latency * 0.4)], seed=7)
        cfg = _config(faults=plan)
        t1, r1 = run_with_repair(profile, schedule, config=cfg)
        t2, r2 = run_with_repair(profile, schedule, config=cfg)
        assert t1 == t2  # dataclass equality: every timestamp and record
        assert [r.schedule for r in r1] == [r.schedule for r in r2]

    def test_clean_run_returns_no_repairs(self, scenario):
        profile, schedule, clean = scenario
        trace, repairs = run_with_repair(profile, schedule, config=_config())
        assert repairs == ()
        assert trace == clean


class TestCascade:
    """Repeated failures: the tail faces the remaining plan
    (resume_after) and run_with_repair keeps repairing until a tail
    runs clean — the generalization past the single-failure model."""

    def test_two_failures_complete_via_two_rounds(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan(
            [
                GpuFailure(gpu=1, at=clean.latency * 0.3),
                GpuFailure(gpu=2, at=clean.latency * 0.6),
            ],
            seed=7,
        )
        trace, repairs = run_with_repair(profile, schedule, config=_config(faults=plan))
        assert len(repairs) == 2
        assert repairs[0].survivors == (0, 2, 3)
        assert repairs[1].survivors == (0, 3)  # GPU 1 stays excluded
        assert trace.unfinished_ops(profile.graph.names) == []
        assert set(trace.op_finish) == set(profile.graph.names)
        # the spliced trace carries the *last* failure marker
        assert trace.failure is not None
        assert trace.failure.gpu == 2

    def test_cascade_is_deterministic(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan(
            [
                GpuFailure(gpu=1, at=clean.latency * 0.3),
                GpuFailure(gpu=2, at=clean.latency * 0.6),
            ],
            seed=7,
        )
        t1, _ = run_with_repair(profile, schedule, config=_config(faults=plan))
        t2, _ = run_with_repair(profile, schedule, config=_config(faults=plan))
        assert t1 == t2

    def test_max_repairs_strict_raises(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan(
            [
                GpuFailure(gpu=1, at=clean.latency * 0.3),
                GpuFailure(gpu=2, at=clean.latency * 0.6),
            ],
            seed=7,
        )
        with pytest.raises(RepairError, match="budget exhausted"):
            run_with_repair(
                profile, schedule, config=_config(faults=plan), max_repairs=1
            )

    def test_max_repairs_lenient_returns_partial(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan(
            [
                GpuFailure(gpu=1, at=clean.latency * 0.3),
                GpuFailure(gpu=2, at=clean.latency * 0.6),
            ],
            seed=7,
        )
        trace, repairs = run_with_repair(
            profile, schedule, config=_config(faults=plan), max_repairs=1, strict=False
        )
        assert len(repairs) == 1
        assert trace.failure is not None
        assert trace.unfinished_ops(profile.graph.names)

    def test_all_gpus_lost_strict_raises_lenient_returns(self):
        profile = random_dag_profile(seed=3, num_ops=30, num_layers=5, num_gpus=2)
        res = schedule_graph(profile, "hios-lp")
        clean = MultiGpuEngine(_config()).run(profile.graph, res.schedule)
        plan = FaultPlan(
            [
                GpuFailure(gpu=0, at=clean.latency * 0.2),
                GpuFailure(gpu=1, at=clean.latency * 0.5),
            ],
            seed=3,
        )
        with pytest.raises(RepairError, match="no surviving"):
            run_with_repair(profile, res.schedule, config=_config(faults=plan))
        trace, repairs = run_with_repair(
            profile, res.schedule, config=_config(faults=plan), strict=False
        )
        assert len(repairs) == 1  # onto the last GPU, which then died too
        assert trace.failure is not None
        assert trace.unfinished_ops(profile.graph.names)


class TestRepairSchedule:
    def test_repair_only_schedules_unfinished(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan([GpuFailure(gpu=1, at=clean.latency * 0.4)])
        head = MultiGpuEngine(_config(faults=plan)).run(profile.graph, schedule)
        repair = repair_schedule(profile, head.failure)
        expected = head.failure.unfinished(profile.graph.names)
        assert set(repair.subgraph.names) == set(expected)
        assert set(repair.schedule.operators()) == set(expected)
        assert repair.predicted_tail_latency > 0

    def test_dead_gpus_excluded_from_survivors(self, scenario):
        profile, schedule, clean = scenario
        failure = FailureEvent(
            gpu=2, time=1.0, finished=frozenset(), in_flight=frozenset()
        )
        repair = repair_schedule(profile, failure, dead=(1,))
        assert repair.survivors == (0, 3)

    def test_nothing_to_repair(self):
        profile = random_dag_profile(seed=0, num_ops=8, num_layers=2, num_gpus=2)
        done = FailureEvent(
            gpu=0,
            time=1.0,
            finished=frozenset(profile.graph.names),
            in_flight=frozenset(),
        )
        with pytest.raises(RepairError, match="nothing to repair"):
            repair_schedule(profile, done)

    def test_no_survivors(self):
        profile = random_dag_profile(seed=0, num_ops=8, num_layers=2, num_gpus=1)
        failure = FailureEvent(
            gpu=0, time=0.1, finished=frozenset(), in_flight=frozenset()
        )
        with pytest.raises(RepairError, match="no surviving"):
            repair_schedule(profile, failure)

    def test_out_of_range_failure_gpu(self):
        profile = random_dag_profile(seed=0, num_ops=8, num_layers=2, num_gpus=2)
        failure = FailureEvent(
            gpu=9, time=0.1, finished=frozenset(), in_flight=frozenset()
        )
        with pytest.raises(RepairError, match="GPU 9"):
            repair_schedule(profile, failure)

    def test_heterogeneous_speeds_remapped_to_survivors(self):
        base = random_dag_profile(seed=3, num_ops=24, num_layers=4, num_gpus=3)
        profile = replace(base, gpu_speeds=(1.0, 0.5, 2.0))
        failure = FailureEvent(
            gpu=1,
            time=0.0,
            finished=frozenset(),
            in_flight=frozenset(),
        )
        repair = repair_schedule(profile, failure)
        assert repair.survivors == (0, 2)
        # slow GPU 1 gone: the compacted profile keeps speeds (1.0, 2.0)
        assert repair.result.schedule.num_gpus == 2


class TestWarmStart:
    """Warm-started repair: the seed projection, the margin/cold
    fallback, schedule validity (validate + happens-before clean), and
    the persistent-cache seam for cold repairs."""

    @staticmethod
    def _wide_profile(
        num_ops: int = 12, num_gpus: int = 4, occupancy: float = 0.4
    ) -> CostProfile:
        g = OpGraph()
        for i in range(num_ops):
            g.add_operator(f"v{i}", cost=1.0, occupancy=occupancy)
        return CostProfile(
            graph=g,
            concurrency=SaturationConcurrencyModel(0.06),
            num_gpus=num_gpus,
        )

    def test_wide_graph_keeps_surviving_assignment(self):
        profile = self._wide_profile()
        res = schedule_graph(profile, "hios-lp")
        failure = FailureEvent(
            gpu=3, time=0.0, finished=frozenset(), in_flight=frozenset()
        )
        repair = repair_schedule(profile, failure, warm_start_from=res.schedule)
        assert repair.warm_started is True
        assert 3 not in repair.schedule.used_gpus()
        repair.schedule.validate(repair.subgraph)
        assert analyze(repair.subgraph, repair.schedule).ok
        # the warm repair is as good as the cold one here: the wide
        # graph's balanced survivors are already an optimal mapping
        cold = repair_schedule(profile, failure)
        assert repair.result.latency <= cold.result.latency

    def test_seed_projection_compacts_and_rehomes(self):
        g = OpGraph()
        for name, cost in [("a", 5.0), ("b", 1.0), ("c", 2.0), ("d", 2.0)]:
            g.add_operator(name, cost=cost, occupancy=0.5)
        prev = Schedule(3)
        prev.append_stage(Stage(0, ("a",)))
        prev.append_stage(Stage(1, ("b",)))
        prev.append_stage(Stage(2, ("c", "d")))
        seed = _warm_spatial_seed(g, prev, survivors=(0, 2))
        # a keeps slot 0; c,d compact GPU 2 -> slot 1; stranded b
        # re-homes onto the least-loaded survivor (slot 1: 4.0 < 5.0)
        assert seed == {"a": 0, "c": 1, "d": 1, "b": 1}

    def test_seed_projection_requires_full_coverage(self):
        g = OpGraph()
        g.add_operator("a", cost=1.0, occupancy=0.5)
        g.add_operator("zz", cost=1.0, occupancy=0.5)
        prev = Schedule(2)
        prev.append_stage(Stage(0, ("a",)))
        assert _warm_spatial_seed(g, prev, survivors=(0,)) is None

    def test_bad_seed_falls_back_to_cold(self, scenario):
        """A previous schedule that piled everything onto one survivor
        is a terrible seed: the margin check rejects it, the cold run
        wins, and the result is bit-identical to a plain cold repair."""
        profile, schedule, clean = scenario
        plan = FaultPlan([GpuFailure(gpu=1, at=clean.latency * 0.4)])
        head = MultiGpuEngine(_config(faults=plan)).run(profile.graph, schedule)
        allzero = Schedule(profile.num_gpus)
        for op in priority_order(profile.graph):
            allzero.append_stage(Stage(0, (op,)))
        warm = repair_schedule(profile, head.failure, warm_start_from=allzero)
        cold = repair_schedule(profile, head.failure)
        assert warm.warm_started is False
        assert warm.schedule == cold.schedule
        assert warm.result.latency == cold.result.latency

    def test_run_with_repair_warm_start_is_deterministic(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan([GpuFailure(gpu=1, at=clean.latency * 0.4)], seed=7)
        cfg = _config(faults=plan)
        t1, r1 = run_with_repair(profile, schedule, config=cfg, warm_start=True)
        t2, r2 = run_with_repair(profile, schedule, config=cfg, warm_start=True)
        assert t1 == t2
        assert [r.warm_started for r in r1] == [r.warm_started for r in r2]
        assert t1.unfinished_ops(profile.graph.names) == []
        for r in r1:
            r.schedule.validate(r.subgraph)
            assert analyze(r.subgraph, r.schedule).ok

    def test_sched_cache_serves_cold_repairs(self, scenario, tmp_path):
        profile, schedule, clean = scenario
        plan = FaultPlan([GpuFailure(gpu=1, at=clean.latency * 0.4)])
        head = MultiGpuEngine(_config(faults=plan)).run(profile.graph, schedule)
        cache = ScheduleCache(tmp_path)
        first = repair_schedule(profile, head.failure, sched_cache=cache)
        assert cache.stats()["entries"] == 1
        second = repair_schedule(profile, head.failure, sched_cache=cache)
        assert second.schedule == first.schedule
        assert second.result.latency == first.result.latency
        assert cache.hits >= 1

    def test_warm_results_are_never_persisted(self, tmp_path):
        # occupancy 1.0 puts the warm latency within the margin of the
        # lower bound, so no cold fallback runs — and a margin-accepted
        # warm schedule must never be written to the persistent cache
        # (it is seeded by a run-specific previous schedule)
        profile = self._wide_profile(occupancy=1.0)
        res = schedule_graph(profile, "hios-lp")
        failure = FailureEvent(
            gpu=3, time=0.0, finished=frozenset(), in_flight=frozenset()
        )
        cache = ScheduleCache(tmp_path)
        repair = repair_schedule(
            profile, failure, warm_start_from=res.schedule, sched_cache=cache
        )
        assert repair.warm_started is True
        assert cache.stats()["entries"] == 0


class TestSplice:
    def test_splice_requires_failed_head(self, scenario):
        profile, schedule, clean = scenario
        with pytest.raises(RepairError, match="did not fail"):
            splice_traces(clean, clean)

    def test_spliced_timestamps_are_shifted(self, scenario):
        profile, schedule, clean = scenario
        at = clean.latency * 0.4
        plan = FaultPlan([GpuFailure(gpu=1, at=at)])
        combined, repairs = run_with_repair(
            profile, schedule, config=_config(faults=plan)
        )
        assert combined.latency >= at
        for op in repairs[0].subgraph.names:
            assert combined.op_start[op] >= at - 1e-9
        for op in combined.failure.finished:
            assert combined.op_finish[op] <= at + 1e-9

    def test_failure_at_time_zero(self, scenario):
        """A fail-stop at t=0: the head finishes nothing, the whole
        graph re-runs on the survivors, and the splice is a pure shift
        by zero."""
        profile, schedule, clean = scenario
        plan = FaultPlan([GpuFailure(gpu=1, at=0.0)])
        trace, repairs = run_with_repair(profile, schedule, config=_config(faults=plan))
        assert len(repairs) == 1
        assert repairs[0].failure.time == 0.0
        assert repairs[0].failure.finished == frozenset()
        assert set(repairs[0].subgraph.names) == set(profile.graph.names)
        assert trace.unfinished_ops(profile.graph.names) == []

    def test_head_with_zero_finished_ops_on_failed_gpu(self, scenario):
        """Failing a GPU before it completes anything still splices: the
        head contributes only what *other* GPUs finished."""
        profile, schedule, clean = scenario
        ops_on_1 = [op for op in schedule.operators() if schedule.gpu_of(op) == 1]
        first_finish = min(clean.op_finish[op] for op in ops_on_1)
        plan = FaultPlan([GpuFailure(gpu=1, at=first_finish * 0.5)])
        head = MultiGpuEngine(_config(faults=plan)).run(profile.graph, schedule)
        assert not (head.failure.finished & set(ops_on_1))
        trace, repairs = run_with_repair(profile, schedule, config=_config(faults=plan))
        assert len(repairs) == 1
        assert trace.unfinished_ops(profile.graph.names) == []
        assert set(ops_on_1) <= set(repairs[0].subgraph.names)

    def test_double_splice_is_associative(self, scenario):
        """splice(splice(a, b), c) == splice(a, splice(b, c)) — the
        property that lets run_with_repair left-fold a cascade one
        segment at a time."""
        profile, schedule, clean = scenario
        plan = FaultPlan(
            [
                GpuFailure(gpu=1, at=clean.latency * 0.3),
                GpuFailure(gpu=2, at=clean.latency * 0.6),
            ],
            seed=7,
        )
        cfg = _config(faults=plan)
        engine = MultiGpuEngine(cfg)
        a = engine.run(profile.graph, schedule)
        r1 = repair_schedule(profile, a.failure)
        tail_plan = plan.resume_after(a.failure.time, dead=[a.failure.gpu])
        b = MultiGpuEngine(replace(cfg, faults=tail_plan)).run(
            r1.subgraph, r1.schedule
        )
        assert b.failure is not None  # the second failure struck the tail
        r2 = repair_schedule(
            profile,
            splice_traces(a, b).failure,
            dead=(a.failure.gpu,),
        )
        tail2_plan = tail_plan.resume_after(
            b.failure.time, dead=[a.failure.gpu, b.failure.gpu]
        )
        c = MultiGpuEngine(replace(cfg, faults=tail2_plan)).run(
            r2.subgraph, r2.schedule
        )
        assert c.failure is None

        left = splice_traces(splice_traces(a, b), c)
        right = splice_traces(a, splice_traces(b, c))
        # equal up to float rounding: the two orders sum the same shifts
        assert left.latency == pytest.approx(right.latency)
        assert set(left.op_finish) == set(right.op_finish)
        for op, t in left.op_finish.items():
            assert t == pytest.approx(right.op_finish[op])
        assert left.failure == right.failure
        # and the left-fold matches what run_with_repair produced exactly
        folded, repairs = run_with_repair(profile, schedule, config=cfg)
        assert len(repairs) == 2
        assert folded == left

    def test_splice_partial_tail_merges_failure_state(self, scenario):
        profile, schedule, clean = scenario
        plan = FaultPlan(
            [
                GpuFailure(gpu=1, at=clean.latency * 0.3),
                GpuFailure(gpu=2, at=clean.latency * 0.6),
            ],
            seed=7,
        )
        cfg = _config(faults=plan)
        a = MultiGpuEngine(cfg).run(profile.graph, schedule)
        r1 = repair_schedule(profile, a.failure)
        tail_plan = plan.resume_after(a.failure.time, dead=[a.failure.gpu])
        b = MultiGpuEngine(replace(cfg, faults=tail_plan)).run(
            r1.subgraph, r1.schedule
        )
        combined = splice_traces(a, b)
        assert combined.failure.gpu == b.failure.gpu
        assert combined.failure.time == pytest.approx(
            a.failure.time + b.failure.time
        )
        assert combined.failure.finished == a.failure.finished | b.failure.finished
        assert combined.failure.in_flight == b.failure.in_flight


class TestResumeAfter:
    def test_dead_specs_dropped_and_clock_shifted(self):
        plan = FaultPlan.from_strings(
            ["fail:1@5", "fail:2@9", "slow:0@2x0.5", "loss:0.1"], seed=4
        )
        tail = plan.resume_after(5.0, dead=[1])
        kinds = [type(sp).__name__ for sp in tail.specs]
        assert kinds == ["GpuFailure", "GpuSlowdown", "TransferLoss"]
        fail, slow, loss = tail.specs
        assert (fail.gpu, fail.at) == (2, 4.0)  # 9 - 5
        assert (slow.gpu, slow.at) == (0, 0.0)  # persistent state re-fires at 0
        assert loss.prob == 0.1  # kept verbatim
        assert tail.seed == 4

    def test_already_fired_failures_disappear(self):
        plan = FaultPlan.from_strings(["fail:0@1", "fail:1@3"], seed=0)
        tail = plan.resume_after(2.0, dead=[0])
        assert [type(sp).__name__ for sp in tail.specs] == ["GpuFailure"]
        assert tail.specs[0].at == 1.0

    def test_same_instant_failure_refires_at_zero(self):
        # a failure at exactly the cut on a *surviving* GPU re-fires at
        # t=0 in the tail (at < cut drops, at == cut keeps)
        plan = FaultPlan.from_strings(["fail:0@5", "fail:1@5"], seed=0)
        tail = plan.resume_after(5.0, dead=[0])
        assert len(tail.specs) == 1
        assert tail.specs[0].gpu == 1
        assert tail.specs[0].at == 0.0

    def test_negative_cut_rejected(self):
        plan = FaultPlan.from_strings(["fail:0@5"], seed=0)
        with pytest.raises(Exception, match="negative resume cut"):
            plan.resume_after(-1.0)


class TestResizeSchedule:
    """Elastic re-planning: the unfinished remainder of a query is
    re-scheduled at a different GPU count, warm-started from the old
    assignment projected through the lease slot map."""

    @staticmethod
    def _assignment(schedule: Schedule) -> dict[str, int]:
        return {
            op: g
            for g in range(schedule.num_gpus)
            for st in schedule.stages_on(g)
            for op in st.ops
        }

    @pytest.fixture(scope="class")
    def widths(self):
        """The same random DAG profiled at widths 2 and 4."""
        narrow = random_dag_profile(seed=7, num_ops=40, num_layers=6, num_gpus=2)
        wide = random_dag_profile(seed=7, num_ops=40, num_layers=6, num_gpus=4)
        assert narrow.graph.names == wide.graph.names
        return narrow, wide

    def test_grow_replans_only_the_remainder(self, widths):
        narrow, wide = widths
        old = schedule_graph(narrow, "hios-lp").schedule
        finished = frozenset(priority_order(narrow.graph)[:15])
        rr = resize_schedule(
            wide,
            finished,
            prev_assignment=self._assignment(old),
            slot_map={0: 0, 1: 1},  # surviving GPUs keep their slots
            algorithm="hios-lp",
        )
        assert set(rr.subgraph.names) == set(narrow.graph.names) - finished
        assert set(rr.schedule.operators()) == set(rr.subgraph.names)
        assert rr.schedule.num_gpus == 4
        assert rr.result.latency > 0

    def test_shrink_seed_rehomes_stranded_ops(self, widths):
        from repro.core.repair import _resize_spatial_seed

        narrow, wide = widths
        old = schedule_graph(wide, "hios-lp").schedule
        finished = frozenset(priority_order(wide.graph)[:10])
        assignment = self._assignment(old)
        # shrink 4 -> 2: slots 1 and 3 survive as the new 0 and 1;
        # operators stranded on the dropped slots are re-homed
        rr = resize_schedule(
            narrow,
            finished,
            prev_assignment=assignment,
            slot_map={1: 0, 3: 1},
            algorithm="hios-lp",
        )
        assert rr.schedule.num_gpus == 2
        assert set(rr.schedule.operators()) == set(wide.graph.names) - finished
        # the projected seed covers every remaining op within the new width
        seed = _resize_spatial_seed(rr.subgraph, assignment, {1: 0, 3: 1}, 2)
        assert seed is not None
        assert set(seed) == set(rr.subgraph.names)
        assert set(seed.values()) <= {0, 1}
        # surviving slots map through; ops from dropped slots are re-homed
        for op, g in assignment.items():
            if op in seed and g in (1, 3):
                assert seed[op] == {1: 0, 3: 1}[g]

    def test_missing_seed_falls_back_to_cold(self, widths):
        narrow, wide = widths
        finished = frozenset(priority_order(wide.graph)[:10])
        rr = resize_schedule(
            narrow,
            finished,
            prev_assignment=None,  # no prior assignment at all
            slot_map=None,
            algorithm="hios-lp",
        )
        assert not rr.warm_started
        assert set(rr.schedule.operators()) == set(wide.graph.names) - finished

    def test_nothing_left_to_plan_raises(self, widths):
        narrow, _ = widths
        with pytest.raises(RepairError, match="nothing"):
            resize_schedule(narrow, frozenset(narrow.graph.names))

    def test_resize_is_deterministic(self, widths):
        narrow, wide = widths
        old = schedule_graph(narrow, "hios-lp").schedule
        finished = frozenset(priority_order(narrow.graph)[:15])
        kwargs = dict(
            prev_assignment=self._assignment(old),
            slot_map={0: 0, 1: 1},
            algorithm="hios-lp",
        )
        r1 = resize_schedule(wide, finished, **kwargs)
        r2 = resize_schedule(wide, finished, **kwargs)
        assert r1.schedule.all_stages() == r2.schedule.all_stages()
        assert r1.result.latency == r2.result.latency
