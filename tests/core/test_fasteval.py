"""Differential tests for the incremental evaluation engine.

The contract of :mod:`repro.core.fasteval` is *bit-identity*: every
fast path must produce exactly the floats (and therefore exactly the
schedules) of the retained reference implementations.  These tests
exercise the engine both directly (PrefixReplayer / StageGraphEvaluator
against the from-scratch evaluators) and end-to-end (``fast=True`` vs.
``fast=False`` runs of every scheduler), across blocking and
non-blocking communication and homogeneous and heterogeneous GPUs.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    EvalCounters,
    OpGraph,
    PrefixReplayer,
    Stage,
    StageGraphEvaluator,
    build_singleton_schedule,
    evaluate_latency,
    local_search_assignment,
    make_profile,
    parallelize,
    priority_order,
    schedule_graph,
)
from repro.core.list_schedule import list_schedule_latency
from repro.models import random_dag_profile

from .test_properties import dag_profiles


def _rand_graph(seed: int, n: int = 18) -> OpGraph:
    rng = random.Random(seed)
    g = OpGraph()
    for i in range(n):
        g.add_operator(f"v{i}", cost=rng.uniform(0.1, 4.0), occupancy=rng.uniform(0.1, 1.0))
    for v in range(1, n):
        for u in range(v):
            if rng.random() < 0.25:
                g.add_edge(f"v{u}", f"v{v}", rng.uniform(0.0, 2.0))
    return g


# ---------------------------------------------------------------------------
# PrefixReplayer vs. list_schedule_latency


@pytest.mark.parametrize("blocking", [True, False])
@pytest.mark.parametrize("speeds", [None, (1.0, 1.5, 0.75)])
def test_prefix_replay_matches_reference(blocking, speeds):
    g = _rand_graph(seed=11)
    M = 3
    order = priority_order(g)
    rng = random.Random(7)
    assignment = {v: rng.randrange(M) for v in order}
    replayer = PrefixReplayer(g, M, send_blocking=blocking, gpu_speeds=speeds)
    for trial in range(20):
        varying = rng.sample(order, rng.randint(1, 4))
        replayer.snapshot(order, assignment, varying)
        for _ in range(M):
            for v in varying:
                assignment[v] = rng.randrange(M)
            want = list_schedule_latency(
                g, assignment, order, M, send_blocking=blocking, gpu_speeds=speeds
            )
            got = replayer.replay(assignment)
            assert got == want  # bit-identical, not approx


def test_prefix_replay_handles_partial_assignments():
    """The spatial-mapping use case: unmapped operators absent from the
    assignment and from the simulated order."""
    g = _rand_graph(seed=23)
    M = 2
    order = priority_order(g)
    rng = random.Random(3)
    half = order[: len(order) // 2]
    assignment = {v: rng.randrange(M) for v in half[: len(half) - 3]}
    varying = half[len(half) - 3 :]
    sub_order = [v for v in order if v in assignment or v in varying]
    replayer = PrefixReplayer(g, M)
    replayer.snapshot(sub_order, assignment, varying)
    for gpu in range(M):
        for v in varying:
            assignment[v] = gpu
        want = list_schedule_latency(g, assignment, sub_order, M)
        assert replayer.replay(assignment) == want
    for v in varying:
        del assignment[v]


def test_prefix_boundary_covers_predecessor_sends():
    """Under sender blocking, a predecessor's send loop reads the
    varying operator's assignment, so the boundary must not extend past
    the earliest predecessor."""
    g = OpGraph.from_edges(
        {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
        [("a", "b", 0.5), ("a", "c", 0.5), ("b", "d", 0.5), ("c", "d", 0.5)],
    )
    order = priority_order(g)
    pos = {v: i for i, v in enumerate(order)}
    blocking = PrefixReplayer(g, 2, send_blocking=True)
    nonblocking = PrefixReplayer(g, 2, send_blocking=False)
    # earliest predecessor of d, whichever of b/c the order puts first
    assert blocking.prefix_boundary(order, ["d"]) == min(pos["b"], pos["c"])
    assert nonblocking.prefix_boundary(order, ["d"]) == pos["d"]


# ---------------------------------------------------------------------------
# StageGraphEvaluator vs. evaluate_latency


@pytest.mark.parametrize("blocking", [True, False])
def test_stage_evaluator_matches_reference_on_merges(blocking):
    prof = random_dag_profile(seed=9, num_gpus=2, num_ops=30, num_layers=5)
    prof = replace(prof, send_blocking=blocking)
    graph = prof.graph
    order = priority_order(graph)
    assignment = {v: i % 2 for i, v in enumerate(order)}
    schedule = build_singleton_schedule(assignment, order, 2)
    ev = StageGraphEvaluator(prof, schedule)
    assert ev.evaluate() == evaluate_latency(prof, schedule)

    checked = 0
    for gpu in range(2):
        stages = schedule.stages_on(gpu)
        for pos in range(len(stages) - 1):
            for p in (1, 2):
                if pos + p >= len(stages):
                    break
                group = tuple(
                    st.ops[0] for st in stages[pos : pos + p + 1]
                )
                if not graph.independent(group):
                    continue
                merged = stages[:pos] + [Stage(gpu, group)] + stages[pos + 1 + p :]
                candidate = schedule.with_stages_on_gpu(gpu, merged)
                try:
                    want = evaluate_latency(prof, candidate)
                except Exception:
                    want = None
                got = ev.try_merge(gpu, pos, p, group)
                assert got == want
                checked += 1
    assert checked > 10  # the sweep actually exercised merges


def test_stage_evaluator_detects_cycles():
    # a -> b -> c with a, c on GPU 0 and b on GPU 1: grouping a with c
    # puts b both downstream and upstream of the merged stage
    g = OpGraph.from_edges(
        {"a": 1.0, "b": 1.0, "c": 1.0}, [("a", "b", 0.1), ("b", "c", 0.1)]
    )
    prof = make_profile(g, num_gpus=2)
    schedule = build_singleton_schedule({"a": 0, "b": 1, "c": 0}, ["a", "b", "c"], 2)
    ev = StageGraphEvaluator(prof, schedule)
    assert ev.try_merge(0, 0, 1, ("a", "c")) is None


# ---------------------------------------------------------------------------
# End-to-end: fast schedulers are bit-identical to the references

DIFF_ALGOS = ["ios", "hios-lp", "hios-mr", "hios-lp-ls"]


@settings(max_examples=30, deadline=None)
@given(
    profile=dag_profiles(),
    alg=st.sampled_from(DIFF_ALGOS),
    hetero=st.booleans(),
)
def test_fast_schedulers_match_reference(profile, alg, hetero):
    """Satellite property: optimized vs. reference on random DAGs, all
    four algorithms, blocking and non-blocking, homogeneous and
    heterogeneous speeds."""
    if hetero:
        speeds = tuple(1.0 + 0.5 * g for g in range(profile.num_gpus))
        profile = replace(profile, gpu_speeds=speeds)
    fast = schedule_graph(profile, alg, fast=True)
    ref = schedule_graph(profile, alg, fast=False)
    assert fast.schedule.to_dict() == ref.schedule.to_dict()
    assert abs(fast.latency - ref.latency) <= 1e-12
    assert fast.latency == ref.latency  # the engine's actual contract


def test_fast_matches_reference_on_larger_fixed_seeds():
    for seed in range(3):
        prof = random_dag_profile(seed=seed, num_gpus=4, num_ops=60, num_layers=8)
        for alg in DIFF_ALGOS:
            fast = schedule_graph(prof, alg, fast=True)
            ref = schedule_graph(prof, alg, fast=False)
            assert fast.latency == ref.latency
            assert fast.schedule.to_dict() == ref.schedule.to_dict()


def test_stats_counters_present_and_plausible():
    prof = random_dag_profile(seed=2, num_gpus=3, num_ops=40, num_layers=6)
    res = schedule_graph(prof, "hios-lp", fast=True)
    for key in ("evals", "suffix_replays", "window_delta_evals", "cache_hits"):
        assert key in res.stats
        assert res.stats[key] >= 0
    assert res.stats["suffix_replays"] > 0  # the replayer actually ran
    assert res.stats["window_delta_evals"] > 0  # Alg. 2 used the delta path
    assert "phase_times" in res.stats
    assert "spatial_mapping" in res.stats["phase_times"]

    ref = schedule_graph(prof, "hios-lp", fast=False)
    assert ref.stats["suffix_replays"] == 0
    assert ref.stats["window_delta_evals"] == 0


# ---------------------------------------------------------------------------
# Bitset closure on OpGraph


def test_closure_matches_bfs_reference():
    g = _rand_graph(seed=31, n=24)
    names = g.names
    for u in names:
        for v in names:
            assert g.reachable(u, v) == g._reachable_bfs(u, v) or u == v
    rng = random.Random(5)
    for _ in range(60):
        group = rng.sample(names, rng.randint(2, 5))
        assert g.independent(group) == g._independent_bfs(group)


def test_closure_invalidated_by_mutation():
    g = OpGraph.from_edges({"a": 1.0, "b": 1.0, "c": 1.0}, [("a", "b", 0.0)])
    assert g.reachable("a", "b")
    assert not g.reachable("a", "c")
    g.add_edge("b", "c", 0.0)
    assert g.reachable("a", "c")


def test_reachable_falls_back_on_cyclic_graph():
    g = OpGraph()
    g.add_operator("a", cost=1.0)
    g.add_operator("b", cost=1.0)
    g.add_edge("a", "b", 0.0)
    g.add_edge("b", "a", 0.0)  # cycle: closure unavailable, BFS must serve
    assert g.reachable("a", "b")
    assert g.reachable("b", "a")
    assert not g.independent(["a", "b"])


# ---------------------------------------------------------------------------
# stage_time memoization


def test_stage_time_memo_hits_and_matches():
    prof = random_dag_profile(seed=8, num_gpus=2, num_ops=20, num_layers=4)
    names = prof.graph.names[:3]
    uncached = replace(prof, stage_time_cache=False)
    a = prof.stage_time(names, gpu=1)
    b = prof.stage_time(tuple(names), gpu=1)  # list/tuple key-compatible
    assert a == b == uncached.stage_time(names, gpu=1)
    assert prof.stage_time_cache_hits == 1


def test_stage_time_memo_invalidated_by_graph_mutation():
    prof = random_dag_profile(seed=8, num_gpus=2, num_ops=20, num_layers=4)
    name = prof.graph.names[0]
    before = prof.stage_time([name])
    op = prof.graph.operator(name)
    prof.graph.replace_operator(replace(op, cost=op.cost * 2))
    after = prof.stage_time([name])
    assert after == pytest.approx(before * 2)


# ---------------------------------------------------------------------------
# parallelize validate knob + local-search fixed point


def test_parallelize_validate_knob_equivalent():
    prof = random_dag_profile(seed=12, num_gpus=2, num_ops=30, num_layers=5)
    res = schedule_graph(prof, "inter-lp")
    a = parallelize(prof, res.schedule, validate=True)
    b = parallelize(prof, res.schedule, validate=False)
    assert a[1] == b[1]
    assert a[0].to_dict() == b[0].to_dict()


def test_parallelize_validate_rejects_corrupt_schedule():
    prof = random_dag_profile(seed=12, num_gpus=2, num_ops=10, num_layers=3)
    schedule = build_singleton_schedule(
        {v: 0 for v in prof.graph.names[:-1]},  # one operator missing
        prof.graph.names[:-1],
        2,
    )
    with pytest.raises(Exception):
        parallelize(prof, schedule, validate=True)


def test_local_search_fast_reaches_same_fixed_point():
    """Satellite regression: removing the redundant post-move
    re-evaluation (and adding suffix replay) must not change the moves
    taken nor the fixed point reached."""
    for seed in (3, 5, 9):
        prof = random_dag_profile(seed=seed, num_gpus=3, num_ops=50, num_layers=6)
        order = priority_order(prof.graph)
        assignment = {v: i % 3 for i, v in enumerate(order)}
        fast = local_search_assignment(prof, assignment, order, max_rounds=6, fast=True)
        ref = local_search_assignment(prof, assignment, order, max_rounds=6, fast=False)
        assert fast == ref
        # the returned latency is exactly the latency of the returned
        # assignment (the old code recomputed it; the new code must not
        # drift from that value)
        refined, lat, _moves = fast
        assert lat == list_schedule_latency(
            prof.graph, refined, order, prof.num_gpus,
            send_blocking=prof.send_blocking, gpu_speeds=prof.gpu_speeds,
        )


def test_counters_shared_across_phases():
    counters = EvalCounters()
    prof = random_dag_profile(seed=4, num_gpus=2, num_ops=30, num_layers=5)
    order = priority_order(prof.graph)
    assignment = {v: i % 2 for i, v in enumerate(order)}
    local_search_assignment(prof, assignment, order, counters=counters)
    assert counters.evals > 0
    assert counters.suffix_replays > 0
    d = counters.to_stats()
    assert set(d) == {
        "evals",
        "suffix_replays",
        "window_delta_evals",
        "soa_evals",
        "cache_hits",
    }


# ---------------------------------------------------------------------------
# soa_latency (the vectorized final-evaluation core) vs. evaluate_schedule


@pytest.mark.parametrize("blocking", [False, True])
@pytest.mark.parametrize("hetero", [False, True])
@pytest.mark.parametrize("alg", DIFF_ALGOS)
def test_soa_latency_matches_reference_evaluator(alg, blocking, hetero):
    """The SoA sweep must reproduce evaluate_schedule to the exact
    float on real scheduler output, across blocking and heterogeneous
    configurations — this is the seam the fast=True final evaluations
    of ios/hios-lp/hios-mr/hios-lp-ls go through."""
    from repro.core import evaluate_schedule, soa_latency

    prof = random_dag_profile(seed=9, num_gpus=3, num_ops=40, num_layers=6)
    prof = replace(prof, send_blocking=blocking)
    if hetero:
        prof = replace(prof, gpu_speeds=(1.0, 1.5, 0.75))
    schedule = schedule_graph(prof, alg).schedule
    counters = EvalCounters()
    got = soa_latency(prof, schedule, validate=True, counters=counters)
    want = evaluate_schedule(prof, schedule, validate=True).latency
    assert got == want  # bit-identical, no tolerance
    assert counters.soa_evals == 1
