"""Unit tests for Stage/Schedule (repro.core.schedule)."""

import pytest

from repro.core import OpGraph, Schedule, ScheduleError, Stage


def chain_graph() -> OpGraph:
    return OpGraph.from_edges({"a": 1, "b": 1, "c": 1}, [("a", "b"), ("b", "c")])


def wide_graph() -> OpGraph:
    return OpGraph.from_edges(
        {"a": 1, "b": 1, "c": 1, "d": 1}, [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    )


class TestStage:
    def test_basic(self):
        st = Stage(0, ("a", "b"))
        assert len(st) == 2
        assert "a" in st
        assert list(st) == ["a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(ScheduleError):
            Stage(0, ())

    def test_negative_gpu_rejected(self):
        with pytest.raises(ScheduleError):
            Stage(-1, ("a",))

    def test_duplicates_rejected(self):
        with pytest.raises(ScheduleError):
            Stage(0, ("a", "a"))


class TestScheduleConstruction:
    def test_append_and_query(self):
        s = Schedule(2)
        s.append_stage(Stage(0, ("a",)))
        s.append_stage(Stage(1, ("b", "c")))
        s.append_op(0, "d")
        assert s.gpu_of("a") == 0
        assert s.gpu_of("c") == 1
        assert s.stage_index_of("d") == 1
        assert s.stage_of("b").ops == ("b", "c")
        assert s.num_stages == 3
        assert s.used_gpus() == [0, 1]
        assert s.gpu_order(0) == ["a", "d"]
        assert s.max_stage_width() == 2
        assert "a" in s and "zz" not in s

    def test_zero_gpus_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule(0)

    def test_gpu_out_of_range(self):
        s = Schedule(1)
        with pytest.raises(ScheduleError):
            s.append_stage(Stage(1, ("a",)))
        with pytest.raises(ScheduleError):
            s.stages_on(1)

    def test_double_scheduling_rejected(self):
        s = Schedule(2)
        s.append_op(0, "a")
        with pytest.raises(ScheduleError):
            s.append_op(1, "a")

    def test_unscheduled_lookup_raises(self):
        s = Schedule(1)
        with pytest.raises(ScheduleError):
            s.gpu_of("a")
        with pytest.raises(ScheduleError):
            s.stage_index_of("a")


class TestValidation:
    def test_valid_schedule(self):
        g = wide_graph()
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_stage(Stage(0, ("b", "c")))
        s.append_op(1, "d")
        s.validate(g)  # no raise

    def test_missing_operator(self):
        g = chain_graph()
        s = Schedule(1)
        s.append_op(0, "a")
        with pytest.raises(ScheduleError, match="not scheduled"):
            s.validate(g)

    def test_unknown_operator(self):
        g = chain_graph()
        s = Schedule(1)
        for op in ("a", "b", "c", "zz"):
            s.append_op(0, op)
        with pytest.raises(ScheduleError, match="unknown"):
            s.validate(g)

    def test_dependent_ops_in_stage(self):
        g = chain_graph()
        s = Schedule(1)
        s.append_stage(Stage(0, ("a", "b")))
        s.append_op(0, "c")
        with pytest.raises(ScheduleError, match="dependent"):
            s.validate(g)

    def test_local_order_violation_is_cycle(self):
        # b before a on the same GPU while a -> b: chain edge forward,
        # dependency edge backward => stage-graph cycle
        g = chain_graph()
        s = Schedule(1)
        s.append_op(0, "b")
        s.append_op(0, "a")
        s.append_op(0, "c")
        with pytest.raises(ScheduleError, match="cycle"):
            s.validate(g)

    def test_cross_gpu_cycle(self):
        # GPU0: [a, d], GPU1: [c, b] with a->b, c->d creates
        # S(a)->S(b) wait chain both ways
        g = OpGraph.from_edges(
            {"a": 1, "b": 1, "c": 1, "d": 1}, [("a", "b"), ("c", "d")]
        )
        s = Schedule(2)
        s.append_op(0, "d")
        s.append_op(0, "a")
        s.append_op(1, "b")
        s.append_op(1, "c")
        with pytest.raises(ScheduleError, match="cycle"):
            s.validate(g)


class TestTransforms:
    def test_copy(self):
        s = Schedule(2)
        s.append_op(0, "a")
        c = s.copy()
        c.append_op(1, "b")
        assert "b" not in s
        assert s == Schedule(2, [Stage(0, ("a",))])

    def test_with_stages_on_gpu(self):
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(0, "b")
        s.append_op(1, "c")
        merged = s.with_stages_on_gpu(0, [Stage(0, ("a", "b"))])
        assert merged.stage_of("a").ops == ("a", "b")
        assert merged.gpu_of("c") == 1
        # original untouched
        assert s.stage_of("a").ops == ("a",)

    def test_with_stages_wrong_gpu_rejected(self):
        s = Schedule(2)
        s.append_op(0, "a")
        with pytest.raises(ScheduleError):
            s.with_stages_on_gpu(0, [Stage(1, ("a",))])


class TestJson:
    def test_roundtrip(self):
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_stage(Stage(1, ("b", "c")))
        restored = Schedule.from_json(s.to_json())
        assert restored == s

    def test_dict_shape(self):
        s = Schedule(2, [Stage(1, ("x",))])
        d = s.to_dict()
        assert d["num_gpus"] == 2
        assert d["gpus"][0]["stages"] == []
        assert d["gpus"][1]["stages"] == [["x"]]

    def test_malformed_document(self):
        with pytest.raises(ScheduleError):
            Schedule.from_dict({"gpus": []})
        with pytest.raises(ScheduleError):
            Schedule.from_dict({"num_gpus": 1, "gpus": [{"stages": [["a"]]}]})

    def test_equality(self):
        a = Schedule(1, [Stage(0, ("x",))])
        b = Schedule(1, [Stage(0, ("x",))])
        c = Schedule(2, [Stage(0, ("x",))])
        assert a == b
        assert a != c
        assert a != "not a schedule"
