"""Property-based tests (hypothesis) for the scheduling core.

Random small DAGs are generated and every scheduler is checked against
the structural invariants of Section III:

* every operator is scheduled exactly once, stages hold independent
  operators, and the stage graph is acyclic (``Schedule.validate``);
* the reported latency equals the evaluator's latency of the returned
  schedule;
* no schedule beats the critical-path/work lower bounds;
* single-GPU optimizers never lose to the sequential baseline;
* Alg. 2 never increases latency.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core import (
    OpGraph,
    critical_path_length,
    evaluate_latency,
    parallelize,
    priority_indicators,
    priority_order,
    schedule_graph,
    schedule_sequential,
)
from repro.costmodel import CostProfile, SaturationConcurrencyModel


@st.composite
def small_dags(draw, max_ops: int = 12) -> OpGraph:
    """Random layered DAG with random costs/occupancies/transfers."""
    n = draw(st.integers(2, max_ops))
    costs = draw(
        st.lists(
            st.floats(0.1, 5.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    occs = draw(
        st.lists(st.floats(0.05, 1.0, allow_nan=False), min_size=n, max_size=n)
    )
    g = OpGraph()
    for i in range(n):
        g.add_operator(f"v{i}", cost=costs[i], occupancy=occs[i])
    # edges only from lower to higher index: guaranteed acyclic
    for v in range(1, n):
        for u in range(v):
            if draw(st.booleans()) and draw(st.integers(0, 2)) == 0:
                g.add_edge(f"v{u}", f"v{v}", draw(st.floats(0.0, 3.0)))
    return g


@st.composite
def dag_profiles(draw) -> CostProfile:
    g = draw(small_dags())
    m = draw(st.integers(1, 4))
    blocking = draw(st.booleans())
    return CostProfile(
        graph=g,
        num_gpus=m,
        concurrency=SaturationConcurrencyModel(0.06),
        send_blocking=blocking,
    )


ALGOS = ["sequential", "ios", "hios-lp", "hios-mr", "inter-lp", "inter-mr"]


@settings(max_examples=40, deadline=None)
@given(profile=dag_profiles(), alg=st.sampled_from(ALGOS))
def test_schedule_is_feasible_and_latency_consistent(profile, alg):
    res = schedule_graph(profile, alg)
    res.schedule.validate(profile.graph)  # raises on any violation
    assert set(res.schedule.operators()) == set(profile.graph.names)
    assert evaluate_latency(profile, res.schedule) == math.nextafter(
        res.latency, res.latency
    ) or abs(evaluate_latency(profile, res.schedule) - res.latency) < 1e-9


@settings(max_examples=40, deadline=None)
@given(profile=dag_profiles(), alg=st.sampled_from(ALGOS))
def test_latency_respects_lower_bounds(profile, alg):
    res = schedule_graph(profile, alg)
    g = profile.graph
    # computation-only critical path: unavoidable by any schedule
    cp = critical_path_length(g, include_transfers=False)
    assert res.latency >= cp - 1e-9
    # total work over all GPUs (t(S) >= sum of t*u on one GPU, but the
    # safe bound is max over ops of cost)
    assert res.latency >= max(op.cost for op in g.operators()) - 1e-9


@settings(max_examples=30, deadline=None)
@given(profile=dag_profiles())
def test_ios_never_loses_to_sequential(profile):
    ios = schedule_graph(profile, "ios")
    seq = schedule_sequential(profile)
    assert ios.latency <= seq.latency + 1e-9


@settings(max_examples=30, deadline=None)
@given(profile=dag_profiles(), alg=st.sampled_from(["inter-lp", "inter-mr"]))
def test_parallelize_never_increases_latency(profile, alg):
    res = schedule_graph(profile, alg)
    before = evaluate_latency(profile, res.schedule)
    _, after, _ = parallelize(profile, res.schedule, window=3)
    assert after <= before + 1e-9


@settings(max_examples=40, deadline=None)
@given(graph=small_dags())
def test_priority_order_is_topological_permutation(graph):
    order = priority_order(graph)
    assert sorted(order) == sorted(graph.names)
    pos = {v: i for i, v in enumerate(order)}
    for u, v, _ in graph.edges():
        assert pos[u] < pos[v]


@settings(max_examples=40, deadline=None)
@given(graph=small_dags())
def test_priority_indicator_recurrence(graph):
    p = priority_indicators(graph)
    for v in graph.names:
        succ_best = max(
            (graph.transfer(v, s) + p[s] for s in graph.successors(v)), default=0.0
        )
        assert p[v] == graph.cost(v) + succ_best


@settings(max_examples=25, deadline=None)
@given(graph=small_dags(max_ops=8))
def test_longest_valid_path_partitions_graph(graph):
    """Iterating path extraction consumes every vertex exactly once."""
    from repro.core import longest_valid_path

    remaining = set(graph.names)
    seen: set[str] = set()
    while remaining:
        path = longest_valid_path(graph, remaining)
        assert path.vertices
        assert set(path.vertices) <= remaining
        assert not (set(path.vertices) & seen)
        seen |= set(path.vertices)
        remaining -= set(path.vertices)
    assert seen == set(graph.names)
