"""Unit tests for priority indicators and critical-path utilities."""


from repro.core import (
    OpGraph,
    critical_path,
    critical_path_length,
    priority_indicators,
    priority_order,
)
from repro.models.worked_examples import fig4_graph


class TestPriorityIndicators:
    def test_chain(self):
        g = OpGraph.from_edges({"a": 1, "b": 2, "c": 3}, [("a", "b", 0.5), ("b", "c", 0.5)])
        p = priority_indicators(g)
        assert p["c"] == 3
        assert p["b"] == 2 + 0.5 + 3
        assert p["a"] == 1 + 0.5 + 5.5

    def test_fork_takes_max(self):
        g = OpGraph.from_edges(
            {"a": 1, "b": 10, "c": 2}, [("a", "b", 1.0), ("a", "c", 5.0)]
        )
        p = priority_indicators(g)
        assert p["a"] == 1 + max(1 + 10, 5 + 2)

    def test_fig4_values(self):
        # priorities along the longest path of the worked example
        p = priority_indicators(fig4_graph())
        assert p["v8"] == 2
        assert p["v6"] == 3 + 1 + 2
        assert p["v1"] == max(p[s] + 1 for s in ("v2", "v3")) + 2

    def test_empty_graph(self):
        assert priority_indicators(OpGraph()) == {}


class TestPriorityOrder:
    def test_is_topological(self):
        g = fig4_graph()
        order = priority_order(g)
        pos = {v: i for i, v in enumerate(order)}
        for u, v, _ in g.edges():
            assert pos[u] < pos[v]

    def test_descending_priorities(self):
        g = fig4_graph()
        p = priority_indicators(g)
        order = priority_order(g)
        values = [p[v] for v in order]
        assert values == sorted(values, reverse=True)

    def test_deterministic(self):
        g = fig4_graph()
        assert priority_order(g) == priority_order(fig4_graph())


class TestCriticalPath:
    def test_length_with_and_without_transfers(self):
        g = OpGraph.from_edges({"a": 1, "b": 2}, [("a", "b", 10.0)])
        assert critical_path_length(g) == 13.0
        assert critical_path_length(g, include_transfers=False) == 3.0

    def test_path_vertices(self):
        g = fig4_graph()
        path = critical_path(g)
        assert path == ["v1", "v2", "v4", "v6", "v8"]
        total = sum(g.cost(v) for v in path) + sum(
            g.transfer(u, v) for u, v in zip(path, path[1:])
        )
        assert total == critical_path_length(g)

    def test_disconnected_vertices(self):
        g = OpGraph.from_edges({"a": 5, "b": 1}, [])
        assert critical_path_length(g) == 5.0
        assert critical_path(g) == ["a"]

    def test_empty(self):
        g = OpGraph()
        assert critical_path_length(g) == 0.0
        assert critical_path(g) == []
