"""Tests for schedule analysis metrics."""

import pytest

from repro.core import analyze_schedule, schedule_graph
from repro.models import random_dag_profile
from repro.models.worked_examples import fig4_profile


class TestFig4Metrics:
    def test_basic_metrics(self):
        prof = fig4_profile()
        res = schedule_graph(prof, "inter-lp")
        m = analyze_schedule(prof, res.schedule)
        assert m.num_operators == 8
        assert m.num_gpus_used == 2
        assert m.latency == pytest.approx(res.latency)
        assert sum(m.gpu_load.values()) == pytest.approx(prof.graph.total_cost())
        # the longest path v1 v2 v4 v6 v8 lives on one GPU
        assert m.critical_path_local_fraction == 1.0

    def test_sequential_has_no_crossings(self):
        prof = fig4_profile()
        res = schedule_graph(prof, "sequential")
        m = analyze_schedule(prof, res.schedule)
        assert m.num_cross_edges == 0
        assert m.comm_time_total == 0.0
        assert m.num_gpus_used == 1
        assert m.load_imbalance == pytest.approx(1.0)

    def test_summary_text(self):
        prof = fig4_profile()
        m = analyze_schedule(prof, schedule_graph(prof, "hios-lp").schedule)
        text = m.summary()
        assert "ops" in text and "latency" in text


class TestPaperNarrative:
    def test_lp_crosses_less_than_mr(self):
        """The paper's explanation of HIOS-LP's win: whole-path mapping
        avoids communication that HIOS-MR's greedy placement incurs."""
        prof = random_dag_profile(seed=0, num_gpus=4)
        lp = analyze_schedule(prof, schedule_graph(prof, "inter-lp").schedule)
        mr = analyze_schedule(prof, schedule_graph(prof, "inter-mr").schedule)
        assert lp.comm_time_total < mr.comm_time_total
        assert lp.latency < mr.latency

    def test_parallel_efficiency_bounds(self):
        prof = random_dag_profile(seed=1, num_gpus=4)
        m = analyze_schedule(prof, schedule_graph(prof, "hios-lp").schedule)
        assert 0.0 < m.parallel_efficiency <= 1.0 + 1e-9

    def test_stage_widths_after_alg2(self):
        prof = random_dag_profile(seed=2, num_gpus=4)
        inter = analyze_schedule(prof, schedule_graph(prof, "inter-lp").schedule)
        full = analyze_schedule(prof, schedule_graph(prof, "hios-lp").schedule)
        assert inter.max_stage_width == 1
        assert full.max_stage_width >= 2
        assert full.num_stages < inter.num_stages
