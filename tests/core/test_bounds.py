"""Tests for latency lower bounds and the optimality gap."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    OpGraph,
    bottleneck_bound,
    critical_path_bound,
    latency_lower_bound,
    make_profile,
    optimality_gap,
    schedule_graph,
    work_bound,
)
from repro.costmodel import CostProfile
from repro.models import random_dag_profile


def chain_profile(num_gpus=2):
    g = OpGraph.from_edges({"a": 2.0, "b": 3.0}, [("a", "b", 5.0)])
    return make_profile(g, num_gpus=num_gpus)


class TestIndividualBounds:
    def test_critical_path_ignores_transfers(self):
        assert critical_path_bound(chain_profile()) == 5.0

    def test_work_bound(self):
        # occupancy defaults to 1 -> work = 5, fleet speed = 2
        assert work_bound(chain_profile(2)) == pytest.approx(2.5)

    def test_bottleneck(self):
        assert bottleneck_bound(chain_profile()) == 3.0

    def test_combined_takes_max(self):
        prof = chain_profile()
        assert latency_lower_bound(prof) == 5.0

    def test_empty_graph(self):
        prof = CostProfile(graph=OpGraph(), num_gpus=2)
        assert bottleneck_bound(prof) == 0.0
        assert latency_lower_bound(prof) == 0.0

    def test_heterogeneous_speeds(self):
        g = OpGraph.from_edges({"a": 4.0}, [])
        prof = CostProfile(graph=g, num_gpus=2, gpu_speeds=(1.0, 2.0))
        assert bottleneck_bound(prof) == pytest.approx(2.0)
        assert critical_path_bound(prof) == pytest.approx(2.0)
        assert work_bound(prof) == pytest.approx(4.0 / 3.0)


class TestGap:
    def test_sequential_single_gpu_chain_is_optimal(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [("a", "b")])
        prof = make_profile(g, num_gpus=1)
        res = schedule_graph(prof, "sequential")
        assert optimality_gap(prof, res) == pytest.approx(1.0)

    def test_gap_at_least_one_for_all_algorithms(self):
        prof = random_dag_profile(seed=3, num_gpus=4, num_ops=60, num_layers=6)
        for alg in ("sequential", "ios", "hios-lp", "hios-mr"):
            res = schedule_graph(prof, alg)
            assert optimality_gap(prof, res) >= 1.0 - 1e-9

    def test_hios_lp_near_bound_on_wide_graphs(self):
        """At 4 GPUs on the Section V workloads, HIOS-LP lands within a
        modest factor of the proven lower bound."""
        prof = random_dag_profile(seed=4, num_gpus=4)
        res = schedule_graph(prof, "hios-lp")
        assert optimality_gap(prof, res) < 2.5


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), m=st.integers(1, 4))
def test_bounds_never_exceed_any_schedule(seed, m):
    prof = random_dag_profile(seed=seed, num_gpus=m, num_ops=30, num_layers=4)
    bound = latency_lower_bound(prof)
    for alg in ("sequential", "hios-lp", "hios-mr"):
        res = schedule_graph(prof, alg)
        assert res.latency >= bound - 1e-9
