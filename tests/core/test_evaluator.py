"""Unit tests for the stage-timing evaluator (repro.core.evaluator)."""

import pytest

from repro.core import (
    OpGraph,
    Schedule,
    ScheduleError,
    Stage,
    evaluate_latency,
    evaluate_schedule,
)
from repro.costmodel import CostProfile, MaxConcurrencyModel, SumConcurrencyModel


def profile_of(graph, num_gpus=2, send_blocking=True, concurrency=None):
    kwargs = {"concurrency": concurrency} if concurrency else {}
    return CostProfile(
        graph=graph, num_gpus=num_gpus, send_blocking=send_blocking, **kwargs
    )


class TestSequentialTiming:
    def test_chain_on_one_gpu(self):
        g = OpGraph.from_edges({"a": 1, "b": 2, "c": 3}, [("a", "b"), ("b", "c")])
        s = Schedule(1)
        for op in "abc":
            s.append_op(0, op)
        res = evaluate_schedule(profile_of(g, 1), s)
        assert res.latency == 6.0
        assert res.op_start == {"a": 0.0, "b": 1.0, "c": 3.0}
        assert res.op_finish == {"a": 1.0, "b": 3.0, "c": 6.0}
        assert res.gpu_finish(0) == 6.0

    def test_no_transfer_cost_within_gpu(self):
        g = OpGraph.from_edges({"a": 1, "b": 1}, [("a", "b", 100.0)])
        s = Schedule(1)
        s.append_op(0, "a")
        s.append_op(0, "b")
        assert evaluate_latency(profile_of(g, 1), s) == 2.0


class TestCrossGpuTiming:
    def test_transfer_delay(self):
        g = OpGraph.from_edges({"a": 1, "b": 1}, [("a", "b", 2.0)])
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        # a finishes at 1, transfer 2, b runs 3..4
        assert evaluate_latency(profile_of(g), s) == 4.0

    def test_send_blocking_serializes_sender(self):
        # a feeds two remote consumers; sends serialize on GPU0 and
        # delay GPU0's next stage.
        g = OpGraph.from_edges(
            {"a": 1, "b": 1, "c": 1, "d": 1},
            [("a", "b", 2.0), ("a", "c", 2.0)],
        )
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(0, "d")
        s.append_op(1, "b")
        s.append_op(1, "c")
        res = evaluate_schedule(profile_of(g, send_blocking=True), s)
        # a: 0-1; sends complete at 3 and 5; d starts at 5
        assert res.op_start["d"] == 5.0
        # b arrives at 3 and runs 3-4; c arrives at 5 and runs 5-6
        assert res.op_start["b"] == 3.0
        assert res.op_start["c"] == 5.0
        assert res.latency == 6.0

    def test_non_blocking_transfers_overlap(self):
        g = OpGraph.from_edges(
            {"a": 1, "b": 1, "c": 1, "d": 1},
            [("a", "b", 2.0), ("a", "c", 2.0)],
        )
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(0, "d")
        s.append_op(1, "b")
        s.append_op(1, "c")
        res = evaluate_schedule(profile_of(g, send_blocking=False), s)
        assert res.op_start["d"] == 1.0  # no send serialization
        # both consumers ready at 3; b 3-4, c 4-5
        assert res.latency == 5.0

    def test_trailing_send_counts_toward_latency(self):
        # last stage's send extends the makespan under blocking
        g = OpGraph.from_edges({"a": 1, "b": 0.5}, [("a", "b", 10.0)])
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        assert evaluate_latency(profile_of(g, send_blocking=True), s) == 11.5


class TestStageSemantics:
    def test_stage_duration_from_concurrency_model(self):
        g = OpGraph.from_edges({"a": 2, "b": 3}, [])
        s = Schedule(1, [Stage(0, ("a", "b"))])
        assert evaluate_latency(
            profile_of(g, 1, concurrency=MaxConcurrencyModel()), s
        ) == 3.0
        assert evaluate_latency(
            profile_of(g, 1, concurrency=SumConcurrencyModel()), s
        ) == 5.0

    def test_stage_waits_for_all_inputs(self):
        # stage {b, c}: b's producer finishes late, c must wait too
        g = OpGraph.from_edges(
            {"a": 5, "b": 1, "c": 1}, [("a", "b")]
        )
        s = Schedule(1)
        s.append_op(0, "a")
        s.append_stage(Stage(0, ("b", "c")))
        res = evaluate_schedule(profile_of(g, 1, concurrency=MaxConcurrencyModel()), s)
        assert res.op_start["c"] == 5.0

    def test_idle_gpu_finish_zero(self):
        g = OpGraph.from_edges({"a": 1}, [])
        s = Schedule(2)
        s.append_op(0, "a")
        res = evaluate_schedule(profile_of(g), s)
        assert res.gpu_finish(1) == 0.0


class TestErrors:
    def test_dependent_ops_in_stage(self):
        g = OpGraph.from_edges({"a": 1, "b": 1}, [("a", "b")])
        s = Schedule(1, [Stage(0, ("a", "b"))])
        with pytest.raises(ScheduleError):
            evaluate_schedule(profile_of(g, 1), s)

    def test_cycle_detected_without_validate(self):
        g = OpGraph.from_edges({"a": 1, "b": 1, "c": 1, "d": 1}, [("a", "b"), ("c", "d")])
        s = Schedule(2)
        s.append_op(0, "d")
        s.append_op(0, "a")
        s.append_op(1, "b")
        s.append_op(1, "c")
        with pytest.raises(ScheduleError):
            evaluate_schedule(profile_of(g), s, validate=False)

    def test_missing_operator_caught_by_validate(self):
        g = OpGraph.from_edges({"a": 1, "b": 1}, [])
        s = Schedule(1, [Stage(0, ("a",))])
        with pytest.raises(ScheduleError):
            evaluate_schedule(profile_of(g, 1), s, validate=True)


class TestStageTimingRecord:
    def test_timings_ordered_and_consistent(self):
        g = OpGraph.from_edges({"a": 1, "b": 2}, [("a", "b")])
        s = Schedule(1)
        s.append_op(0, "a")
        s.append_op(0, "b")
        res = evaluate_schedule(profile_of(g, 1), s)
        assert [t.stage.ops for t in res.stage_timings] == [("a",), ("b",)]
        for t in res.stage_timings:
            assert t.duration == pytest.approx(t.finish - t.start)
