"""Unit tests for the temporal list scheduler (Alg. 1 lines 10-13)."""

import pytest

from repro.core import (
    OpGraph,
    build_singleton_schedule,
    evaluate_latency,
    list_schedule_latency,
    priority_order,
)
from repro.costmodel import CostProfile
from repro.models.randomdag import random_layered_dag


class TestBasics:
    def test_single_gpu_is_sum(self):
        g = OpGraph.from_edges({"a": 1, "b": 2, "c": 3}, [("a", "b"), ("b", "c")])
        order = priority_order(g)
        assignment = {v: 0 for v in g.names}
        assert list_schedule_latency(g, assignment, order, 1) == 6.0

    def test_cross_gpu_transfer_charged(self):
        g = OpGraph.from_edges({"a": 1, "b": 1}, [("a", "b", 2.0)])
        lat = list_schedule_latency(g, {"a": 0, "b": 1}, ["a", "b"], 2)
        assert lat == 4.0

    def test_partial_assignment_ignores_unassigned_preds(self):
        g = OpGraph.from_edges({"a": 5, "b": 1}, [("a", "b", 1.0)])
        # only b assigned: a's constraint invisible in this iteration
        assert list_schedule_latency(g, {"b": 0}, ["b"], 1) == 1.0

    def test_send_blocking_vs_not(self):
        g = OpGraph.from_edges(
            {"a": 1, "b": 1, "d": 1}, [("a", "b", 3.0)]
        )
        order = ["a", "b", "d"]
        assignment = {"a": 0, "b": 1, "d": 0}
        blocking = list_schedule_latency(g, assignment, order, 2, send_blocking=True)
        free = list_schedule_latency(g, assignment, order, 2, send_blocking=False)
        # blocking: a 0-1, send 1-4, d 4-5, b 4-5 -> 5
        assert blocking == 5.0
        # free: d 1-2, b 4-5 -> 5? no: b arrives at 4 -> finishes 5; but
        # no sender stall so latency max(2, 5) = 5.. both 5 here, so use
        # a tighter check on the sender GPU: add op e after d
        assert free == 5.0

    def test_sender_stall_propagates(self):
        g = OpGraph.from_edges(
            {"a": 1, "b": 0.1, "d": 1, "e": 1}, [("a", "b", 3.0)]
        )
        order = ["a", "b", "d", "e"]
        assignment = {"a": 0, "b": 1, "d": 0, "e": 0}
        blocking = list_schedule_latency(g, assignment, order, 2, send_blocking=True)
        free = list_schedule_latency(g, assignment, order, 2, send_blocking=False)
        # blocking: sends stall d and e -> GPU0 busy until 6
        assert blocking == 6.0
        # free: GPU0 finishes at 3; b finishes at 4.1
        assert free == pytest.approx(4.1)


class TestConsistencyWithEvaluator:
    """A full assignment list-scheduled in priority order must time out
    exactly like the equivalent singleton-stage schedule under the
    evaluator — HIOS-LP's inner objective equals the final measure."""

    @pytest.mark.parametrize("send_blocking", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graphs(self, seed, send_blocking):
        g = random_layered_dag(num_ops=40, num_layers=6, seed=seed)
        order = priority_order(g)
        # deterministic pseudo-assignment across 3 GPUs
        assignment = {v: i % 3 for i, v in enumerate(order)}
        lat = list_schedule_latency(g, assignment, order, 3, send_blocking=send_blocking)
        sched = build_singleton_schedule(assignment, order, 3)
        profile = CostProfile(graph=g, num_gpus=3, send_blocking=send_blocking)
        assert lat == pytest.approx(evaluate_latency(profile, sched, validate=True))


class TestBuildSingletonSchedule:
    def test_per_gpu_order_follows_priority(self):
        g = random_layered_dag(num_ops=20, num_layers=4, seed=3)
        order = priority_order(g)
        assignment = {v: i % 2 for i, v in enumerate(order)}
        sched = build_singleton_schedule(assignment, order, 2)
        for gpu in (0, 1):
            ops = sched.gpu_order(gpu)
            expected = [v for v in order if assignment[v] == gpu]
            assert ops == expected
        assert all(len(st) == 1 for st in sched.all_stages())
