"""Unit tests for the computation graph (repro.core.graph)."""

import pytest

from repro.core import GraphError, Operator, OpGraph


def diamond() -> OpGraph:
    return OpGraph.from_edges(
        {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0},
        [("a", "b", 0.5), ("a", "c", 0.5), ("b", "d", 0.5), ("c", "d", 0.5)],
    )


class TestOperator:
    def test_defaults(self):
        op = Operator("x")
        assert op.cost == 1.0
        assert op.occupancy == 1.0
        assert op.kind == "op"

    def test_negative_cost_rejected(self):
        with pytest.raises(GraphError):
            Operator("x", cost=-1.0)

    def test_occupancy_bounds(self):
        with pytest.raises(GraphError):
            Operator("x", occupancy=0.0)
        with pytest.raises(GraphError):
            Operator("x", occupancy=1.5)
        Operator("x", occupancy=1.0)  # boundary OK

    def test_negative_output_bytes_rejected(self):
        with pytest.raises(GraphError):
            Operator("x", output_bytes=-1)


class TestConstruction:
    def test_add_operator_by_name(self):
        g = OpGraph()
        op = g.add_operator("a", cost=2.0)
        assert op.cost == 2.0
        assert "a" in g

    def test_add_operator_object_with_kwargs_rejected(self):
        g = OpGraph()
        with pytest.raises(TypeError):
            g.add_operator(Operator("a"), cost=2.0)

    def test_duplicate_operator_rejected(self):
        g = OpGraph()
        g.add_operator("a")
        with pytest.raises(GraphError):
            g.add_operator("a")

    def test_edge_requires_known_vertices(self):
        g = OpGraph()
        g.add_operator("a")
        with pytest.raises(GraphError):
            g.add_edge("a", "b")

    def test_self_loop_rejected(self):
        g = OpGraph()
        g.add_operator("a")
        with pytest.raises(GraphError):
            g.add_edge("a", "a")

    def test_duplicate_edge_rejected(self):
        g = OpGraph()
        g.add_operator("a")
        g.add_operator("b")
        g.add_edge("a", "b")
        with pytest.raises(GraphError):
            g.add_edge("a", "b")

    def test_negative_transfer_rejected(self):
        g = OpGraph()
        g.add_operator("a")
        g.add_operator("b")
        with pytest.raises(GraphError):
            g.add_edge("a", "b", -0.1)

    def test_set_transfer(self):
        g = diamond()
        g.set_transfer("a", "b", 9.0)
        assert g.transfer("a", "b") == 9.0
        with pytest.raises(GraphError):
            g.set_transfer("b", "a", 1.0)

    def test_replace_operator(self):
        g = diamond()
        g.replace_operator(Operator("a", cost=42.0))
        assert g.cost("a") == 42.0
        with pytest.raises(GraphError):
            g.replace_operator(Operator("zz"))


class TestQueries:
    def test_len_iter_names(self):
        g = diamond()
        assert len(g) == 4
        assert sorted(g) == ["a", "b", "c", "d"]
        assert set(g.names) == {"a", "b", "c", "d"}

    def test_unknown_operator_raises(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.operator("zz")
        with pytest.raises(GraphError):
            g.successors("zz")
        with pytest.raises(GraphError):
            g.predecessors("zz")
        with pytest.raises(GraphError):
            g.transfer("a", "d")

    def test_degrees_and_neighbors(self):
        g = diamond()
        assert sorted(g.successors("a")) == ["b", "c"]
        assert sorted(g.predecessors("d")) == ["b", "c"]
        assert g.out_degree("a") == 2
        assert g.in_degree("d") == 2

    def test_edges_and_count(self):
        g = diamond()
        assert g.num_edges == 4
        assert ("a", "b", 0.5) in g.edges()
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_sources_sinks(self):
        g = diamond()
        assert g.sources() == ["a"]
        assert g.sinks() == ["d"]

    def test_total_cost(self):
        assert diamond().total_cost() == 10.0


class TestAlgorithms:
    def test_topological_order_valid(self):
        g = diamond()
        order = g.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for u, v, _ in g.edges():
            assert pos[u] < pos[v]

    def test_cycle_detected(self):
        g = OpGraph()
        for n in "abc":
            g.add_operator(n)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        assert not g.is_dag()
        with pytest.raises(GraphError):
            g.validate()

    def test_ancestors_descendants(self):
        g = diamond()
        assert g.ancestors("d") == {"a", "b", "c"}
        assert g.descendants("a") == {"b", "c", "d"}
        assert g.ancestors("a") == set()
        assert g.descendants("d") == set()

    def test_reachable(self):
        g = diamond()
        assert g.reachable("a", "d")
        assert g.reachable("a", "a")
        assert not g.reachable("d", "a")
        assert not g.reachable("b", "c")

    def test_independent(self):
        g = diamond()
        assert g.independent(["b", "c"])
        assert not g.independent(["a", "d"])  # path a -> d
        assert not g.independent(["a", "b"])  # direct edge
        assert not g.independent(["b", "b"])  # duplicates
        assert g.independent(["b"])

    def test_subgraph(self):
        g = diamond()
        sub = g.subgraph(["a", "b", "d"])
        assert len(sub) == 3
        assert sub.has_edge("a", "b")
        assert sub.has_edge("b", "d")
        assert not sub.has_edge("a", "d")

    def test_copy_independent(self):
        g = diamond()
        h = g.copy()
        h.add_operator("e")
        assert "e" not in g

    def test_map_costs(self):
        g = diamond()
        doubled = g.map_costs(vertex=lambda op: op.cost * 2, edge=lambda u, v, w: w + 1)
        assert doubled.cost("a") == 2.0
        assert doubled.transfer("a", "b") == 1.5
        # original untouched
        assert g.cost("a") == 1.0

    def test_from_edges_two_tuple(self):
        g = OpGraph.from_edges({"a": 1, "b": 2}, [("a", "b")])
        assert g.transfer("a", "b") == 0.0

    def test_from_edges_occupancy_map(self):
        g = OpGraph.from_edges({"a": 1, "b": 2}, [], occupancy={"a": 0.5})
        assert g.operator("a").occupancy == 0.5
        assert g.operator("b").occupancy == 1.0

    def test_empty_graph(self):
        g = OpGraph()
        assert len(g) == 0
        assert g.topological_order() == []
        assert g.sources() == []
