"""Tests for computation-graph (de)serialization."""

import json

import pytest

from repro.core import (
    GraphError,
    OpGraph,
    Operator,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.models import inception_v3
from repro.substrate import PlatformProfiler, dual_a40


def sample_graph() -> OpGraph:
    g = OpGraph()
    g.add_operator(
        Operator("a", cost=1.5, occupancy=0.4, output_bytes=1024, kind="conv",
                 attrs={"shape": "8x8x8"})
    )
    g.add_operator(Operator("b", cost=2.0))
    g.add_edge("a", "b", 0.25)
    return g


class TestRoundTrip:
    def test_dict_roundtrip(self):
        g = sample_graph()
        restored = graph_from_dict(graph_to_dict(g))
        assert restored.names == g.names
        assert restored.edges() == g.edges()
        a = restored.operator("a")
        assert a.cost == 1.5
        assert a.occupancy == 0.4
        assert a.output_bytes == 1024
        assert a.kind == "conv"
        assert a.attrs["shape"] == "8x8x8"

    def test_file_roundtrip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "graph.json"
        save_graph(g, path, indent=2)
        restored = load_graph(path)
        assert restored.edges() == g.edges()
        # document is real JSON
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro.opgraph/v1"

    def test_priced_inception_roundtrip(self, tmp_path):
        profiler = PlatformProfiler(dual_a40())
        g = profiler.price_graph(inception_v3(299))
        path = tmp_path / "inception.json"
        save_graph(g, path)
        restored = load_graph(path)
        assert len(restored) == 119
        assert restored.num_edges == 153
        assert restored.total_cost() == pytest.approx(g.total_cost())


class TestValidation:
    def test_unknown_format(self):
        with pytest.raises(GraphError, match="format"):
            graph_from_dict({"format": "nope", "operators": [], "edges": []})

    def test_malformed_operator(self):
        with pytest.raises(GraphError, match="malformed"):
            graph_from_dict(
                {"format": "repro.opgraph/v1", "operators": [{"cost": 1}], "edges": []}
            )

    def test_cycle_rejected(self):
        doc = {
            "format": "repro.opgraph/v1",
            "operators": [{"name": "a", "cost": 1}, {"name": "b", "cost": 1}],
            "edges": [
                {"src": "a", "dst": "b", "transfer": 0},
                {"src": "b", "dst": "a", "transfer": 0},
            ],
        }
        with pytest.raises(GraphError):
            graph_from_dict(doc)

    def test_defaults_applied(self):
        doc = {
            "format": "repro.opgraph/v1",
            "operators": [{"name": "a", "cost": 1}],
            "edges": [],
        }
        g = graph_from_dict(doc)
        op = g.operator("a")
        assert op.occupancy == 1.0
        assert op.output_bytes == 0
        assert op.kind == "op"
