"""Regression tests for the paper's worked examples (Figs. 4-6).

The figures omit concrete weights, so :mod:`repro.models.worked_examples`
fixes weights consistent with every step of the narrative; these tests
pin the narrative itself.
"""

import pytest

from repro.core import (
    evaluate_latency,
    longest_valid_path,
    schedule_brute_force,
    schedule_hios_lp,
    schedule_hios_mr,
)
from repro.models.worked_examples import fig4_graph, fig4_profile


class TestFig4:
    """HIOS-LP walk-through on the eight-operator graph."""

    def test_graph_shape(self):
        g = fig4_graph()
        assert len(g) == 8
        assert g.num_edges == 9
        assert g.sources() == ["v1"]
        assert g.sinks() == ["v8"]

    def test_path_extraction_sequence(self):
        g = fig4_graph()
        unscheduled = set(g.names)
        p1 = longest_valid_path(g, unscheduled)
        assert p1.vertices == ("v1", "v2", "v4", "v6", "v8")
        unscheduled -= set(p1.vertices)
        p2 = longest_valid_path(g, unscheduled)
        # NOT the longer candidate through v7 — v5 touches scheduled v6
        assert p2.vertices == ("v3", "v5")
        unscheduled -= set(p2.vertices)
        p3 = longest_valid_path(g, unscheduled)
        assert p3.vertices == ("v7",)

    def test_lp_maps_side_paths_to_second_gpu(self):
        res = schedule_hios_lp(fig4_profile(), intra_gpu=False)
        sched = res.schedule
        assert {sched.gpu_of(v) for v in ("v1", "v2", "v4", "v6", "v8")} == {0}
        assert {sched.gpu_of(v) for v in ("v3", "v5", "v7")} == {1}

    def test_lp_finds_optimal_latency(self):
        prof = fig4_profile()
        res = schedule_hios_lp(prof, intra_gpu=False)
        brute = schedule_brute_force(prof)
        assert res.latency == pytest.approx(brute.latency) == pytest.approx(14.0)


class TestFig6:
    """HIOS-MR (Alg. 3) on the same graph: the greedy table-based
    mapping also reaches the optimum on this small example."""

    def test_mr_result(self):
        prof = fig4_profile()
        res = schedule_hios_mr(prof, intra_gpu=False)
        res.schedule.validate(prof.graph)
        assert res.latency == pytest.approx(14.0)
        assert res.schedule.gpu_of("v1") == 0  # v1 pinned to GPU 1

    def test_mr_vs_lp_consistency(self):
        prof = fig4_profile()
        lp = schedule_hios_lp(prof)
        mr = schedule_hios_mr(prof)
        for res in (lp, mr):
            assert evaluate_latency(prof, res.schedule) == pytest.approx(res.latency)
