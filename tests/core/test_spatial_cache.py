"""The shared spatial-mapping seam (``cached_spatial_lp`` /
``cached_spatial_mr``).

Alg. 1's LP path mapping and Alg. 3's MR table fill are
window-independent pure functions of the profile, so one computation
can serve every window of ``hios-lp``/``hios-mr``, the ``inter-*``
ablations and ``hios-lp-ls``.  The contract: cache hits are
*bit-identical* to fresh computations, and handed-out copies cannot
poison the cache.
"""

from __future__ import annotations

import inspect

import pytest

from repro.core import schedule_graph
from repro.core.api import ALGORITHMS, SPATIAL_CACHE_ALGORITHMS
from repro.core.hios_lp import cached_spatial_lp
from repro.core.hios_mr import cached_spatial_mr
from repro.models import random_dag_profile


@pytest.fixture(scope="module")
def profile():
    return random_dag_profile(seed=3, num_gpus=4, num_ops=50, num_layers=8)


def identical(a, b):
    assert a.latency == b.latency  # float == : bit-identical
    assert a.schedule.to_dict() == b.schedule.to_dict()


class TestSharedAcrossAlgorithms:
    def test_lp_family_shares_one_mapping(self, profile):
        cache: dict = {}
        for window in (2, 3, 4):
            fresh = schedule_graph(profile, "hios-lp", window=window)
            shared = schedule_graph(
                profile, "hios-lp", window=window, spatial_cache=cache
            )
            identical(fresh, shared)
        identical(
            schedule_graph(profile, "inter-lp"),
            schedule_graph(profile, "inter-lp", spatial_cache=cache),
        )
        identical(
            schedule_graph(profile, "hios-lp-ls"),
            schedule_graph(profile, "hios-lp-ls", spatial_cache=cache),
        )
        assert "lp" in cache

    def test_mr_family_shares_one_mapping(self, profile):
        cache: dict = {}
        for window in (2, 3, 4):
            fresh = schedule_graph(profile, "hios-mr", window=window)
            shared = schedule_graph(
                profile, "hios-mr", window=window, spatial_cache=cache
            )
            identical(fresh, shared)
        identical(
            schedule_graph(profile, "inter-mr"),
            schedule_graph(profile, "inter-mr", spatial_cache=cache),
        )
        assert "mr" in cache


class TestCacheMechanics:
    def test_lp_hit_equals_miss_and_copies_are_safe(self, profile):
        cache: dict = {}
        a1, o1, p1 = cached_spatial_lp(profile, spatial_cache=cache)
        a2, o2, p2 = cached_spatial_lp(profile, spatial_cache=cache)
        assert (a2, o2, p2) == (a1, o1, p1)
        # mutating a handed-out copy must not poison later hits
        a2["poison"] = 99
        o2.append("poison")
        a3, o3, _ = cached_spatial_lp(profile, spatial_cache=cache)
        assert (a3, o3) == (a1, o1)

    def test_mr_hit_equals_miss_and_copies_are_safe(self, profile):
        cache: dict = {}
        a1, o1 = cached_spatial_mr(profile, spatial_cache=cache)
        a2, o2 = cached_spatial_mr(profile, spatial_cache=cache)
        assert (a2, o2) == (a1, o1)
        a2["poison"] = 99
        o2.append("poison")
        a3, o3 = cached_spatial_mr(profile, spatial_cache=cache)
        assert (a3, o3) == (a1, o1)

    def test_no_cache_argument_still_works(self, profile):
        a, o, p = cached_spatial_lp(profile)
        cache: dict = {}
        b, q, r = cached_spatial_lp(profile, spatial_cache=cache)
        assert (a, o, p) == (b, q, r)


def test_registry_matches_signatures():
    """SPATIAL_CACHE_ALGORITHMS must list exactly the registry entries
    that accept the kwarg — the executor injects based on this set."""
    for name, fn in ALGORITHMS.items():
        accepts = "spatial_cache" in inspect.signature(fn).parameters
        assert accepts == (name in SPATIAL_CACHE_ALGORITHMS), name
