"""Differential tests for :class:`repro.core.fastpath.LongestPathEngine`.

The engine's contract is *bit-identity* with
:func:`repro.core.longest_path.longest_valid_path`: the same vertices,
the same float length, the same errors, for every graph and every
unscheduled set.  These tests compare the two exhaustively on a pinned
graph (every non-empty subset), randomly (hypothesis), across the
scheduler's own shrinking unscheduled sets, and through graph mutation
(the engine must rebuild when :attr:`OpGraph.version` moves).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GraphError, OpGraph, longest_valid_path, schedule_graph
from repro.core.fastpath import LongestPathEngine
from repro.models import random_dag_profile

from .test_properties import small_dags


def _rand_graph(seed: int, n: int) -> OpGraph:
    rng = random.Random(seed)
    g = OpGraph()
    for i in range(n):
        g.add_operator(
            f"v{i}", cost=rng.uniform(0.1, 4.0), occupancy=rng.uniform(0.1, 1.0)
        )
    for v in range(1, n):
        for u in range(v):
            if rng.random() < 0.3:
                g.add_edge(f"v{u}", f"v{v}", rng.uniform(0.0, 2.0))
    return g


def _assert_identical(engine: LongestPathEngine, graph: OpGraph, unscheduled):
    want = longest_valid_path(graph, unscheduled)
    got = engine.longest_valid_path(unscheduled)
    assert got.vertices == want.vertices
    assert got.length == want.length  # exact float, no tolerance


class TestExhaustive:
    def test_every_subset_of_a_pinned_graph(self):
        g = _rand_graph(seed=11, n=10)
        engine = LongestPathEngine(g)
        names = g.names
        for mask in range(1, 1 << len(names)):
            subset = {names[i] for i in range(len(names)) if mask >> i & 1}
            _assert_identical(engine, g, subset)

    def test_scheduler_shrinking_sets(self):
        """Replay Alg. 1's own query sequence: peel the returned path
        off the unscheduled set until it is empty, comparing every
        intermediate query."""
        g = _rand_graph(seed=23, n=40)
        engine = LongestPathEngine(g)
        unscheduled = set(g.names)
        while unscheduled:
            want = longest_valid_path(g, unscheduled)
            got = engine.longest_valid_path(unscheduled)
            assert got == want
            unscheduled -= set(want.vertices)


class TestRandomized:
    @settings(max_examples=60, deadline=None)
    @given(graph=small_dags(), data=st.data())
    def test_random_graph_random_subset(self, graph, data):
        names = sorted(graph.names)
        subset = data.draw(
            st.sets(st.sampled_from(names), min_size=1, max_size=len(names))
        )
        _assert_identical(LongestPathEngine(graph), graph, subset)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_dense_and_sparse_graphs(self, seed):
        g = _rand_graph(seed=seed, n=25)
        engine = LongestPathEngine(g)
        rng = random.Random(seed + 100)
        for _ in range(30):
            k = rng.randint(1, len(g.names))
            subset = set(rng.sample(g.names, k))
            _assert_identical(engine, g, subset)


class TestEndToEnd:
    @pytest.mark.parametrize("alg", ["hios-lp", "inter-lp", "hios-lp-ls"])
    def test_fast_schedulers_match_reference(self, alg):
        profile = random_dag_profile(seed=9, num_ops=60, num_layers=6, num_gpus=3)
        fast = schedule_graph(profile, alg, fast=True)
        ref = schedule_graph(profile, alg, fast=False)
        assert fast.schedule == ref.schedule
        assert fast.latency == ref.latency


class TestContract:
    def test_empty_unscheduled_rejected(self):
        g = _rand_graph(seed=1, n=4)
        with pytest.raises(GraphError, match="no unscheduled vertices"):
            LongestPathEngine(g).longest_valid_path(set())

    def test_unknown_vertex_rejected(self):
        g = _rand_graph(seed=1, n=4)
        with pytest.raises(GraphError, match="not in graph"):
            LongestPathEngine(g).longest_valid_path({"zz"})

    def test_engine_rebuilds_after_graph_mutation(self):
        g = _rand_graph(seed=5, n=12)
        engine = LongestPathEngine(g)
        _assert_identical(engine, g, set(g.names))
        # mutate: the version bump must invalidate the cached CSR
        g.add_operator("extra", cost=9.0, occupancy=0.5)
        g.add_edge(g.names[0], "extra", 1.5)
        _assert_identical(engine, g, set(g.names))
        _assert_identical(engine, g, {"extra"})
