"""Tests for the heterogeneous-GPU extension (per-GPU speed factors).

The paper assumes homogeneous GPUs; this library optionally accepts
``gpu_speeds`` so mixed fleets can be scheduled.  These tests pin the
semantics (latency scaling) and the schedulers' use of the faster
device.
"""

import pytest

from repro.core import (
    OpGraph,
    Schedule,
    evaluate_latency,
    schedule_graph,
    schedule_hios_lp,
    schedule_hios_mr,
)
from repro.costmodel import CostProfile
from repro.models import random_dag_profile
from repro.substrate import EngineConfig, MultiGpuEngine


def chain_graph():
    return OpGraph.from_edges({"a": 2.0, "b": 4.0}, [("a", "b", 0.0)])


class TestProfileValidation:
    def test_speed_count_must_match(self):
        with pytest.raises(ValueError):
            CostProfile(graph=chain_graph(), num_gpus=2, gpu_speeds=(1.0,))

    def test_speeds_positive(self):
        with pytest.raises(ValueError):
            CostProfile(graph=chain_graph(), num_gpus=2, gpu_speeds=(1.0, 0.0))

    def test_heterogeneous_flag(self):
        g = chain_graph()
        assert not CostProfile(graph=g, num_gpus=2).heterogeneous
        assert not CostProfile(graph=g, num_gpus=2, gpu_speeds=(1.0, 1.0)).heterogeneous
        assert CostProfile(graph=g, num_gpus=2, gpu_speeds=(1.0, 2.0)).heterogeneous


class TestEvaluatorScaling:
    def test_stage_time_scales(self):
        prof = CostProfile(graph=chain_graph(), num_gpus=2, gpu_speeds=(1.0, 2.0))
        assert prof.stage_time(["b"], gpu=0) == pytest.approx(4.0)
        assert prof.stage_time(["b"], gpu=1) == pytest.approx(2.0)
        assert prof.stage_time(["b"]) == pytest.approx(4.0)  # unscaled

    def test_schedule_latency_scales(self):
        prof = CostProfile(graph=chain_graph(), num_gpus=2, gpu_speeds=(1.0, 2.0))
        fast = Schedule(2)
        fast.append_op(1, "a")
        fast.append_op(1, "b")
        slow = Schedule(2)
        slow.append_op(0, "a")
        slow.append_op(0, "b")
        assert evaluate_latency(prof, fast) == pytest.approx(3.0)
        assert evaluate_latency(prof, slow) == pytest.approx(6.0)


class TestSchedulersPreferFastGpu:
    def test_hios_lp_uses_fast_gpu_for_critical_path(self):
        prof = CostProfile(
            graph=chain_graph(), num_gpus=2, gpu_speeds=(1.0, 3.0)
        )
        res = schedule_hios_lp(prof, intra_gpu=False)
        # the whole chain belongs on the 3x GPU: latency 2.0 not 6.0
        assert res.schedule.gpu_of("a") == 1
        assert res.schedule.gpu_of("b") == 1
        assert res.latency == pytest.approx(2.0)

    def test_hios_mr_uses_fast_gpu(self):
        prof = CostProfile(graph=chain_graph(), num_gpus=2, gpu_speeds=(1.0, 3.0))
        res = schedule_hios_mr(prof, intra_gpu=False)
        assert res.latency == pytest.approx(2.0)

    def test_faster_fleet_never_hurts(self):
        base = random_dag_profile(seed=11, num_gpus=3, num_ops=40, num_layers=5)
        boosted = CostProfile(
            graph=base.graph,
            concurrency=base.concurrency,
            num_gpus=3,
            gpu_speeds=(1.0, 1.0, 2.0),
        )
        for alg in ("hios-lp", "hios-mr"):
            plain = schedule_graph(base, alg).latency
            fast = schedule_graph(boosted, alg).latency
            assert fast <= plain + 1e-9

    def test_latency_consistent_with_evaluator(self):
        prof = CostProfile(
            graph=random_dag_profile(seed=12, num_gpus=2, num_ops=30, num_layers=4).graph,
            num_gpus=2,
            gpu_speeds=(1.0, 1.5),
        )
        for alg in ("hios-lp", "hios-mr", "hios-lp-ls"):
            res = schedule_graph(prof, alg)
            assert evaluate_latency(prof, res.schedule, validate=True) == (
                pytest.approx(res.latency)
            )


class TestEngineScaling:
    def test_kernel_duration_scales(self):
        g = chain_graph()
        s = Schedule(2)
        s.append_op(1, "a")
        s.append_op(1, "b")
        eng = MultiGpuEngine(
            EngineConfig(
                launch_overhead_ms=0.0,
                launch_included_in_cost=False,
                gpu_speeds=(1.0, 2.0),
            )
        )
        tr = eng.run(g, s)
        assert tr.latency == pytest.approx(3.0)

    def test_invalid_speeds_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(gpu_speeds=(1.0, -1.0))
