"""Tests for the local-search refinement extension."""

import pytest

from repro.core import (
    OpGraph,
    evaluate_latency,
    local_search_assignment,
    make_profile,
    priority_order,
    schedule_graph,
    schedule_hios_lp_ls,
)
from repro.core.list_schedule import list_schedule_latency
from repro.models import random_dag_profile


class TestLocalSearch:
    def test_never_worse(self):
        prof = random_dag_profile(seed=3, num_gpus=3, num_ops=60, num_layers=6)
        order = priority_order(prof.graph)
        assignment = {v: i % 3 for i, v in enumerate(order)}
        before = list_schedule_latency(prof.graph, assignment, order, 3)
        refined, after, moves = local_search_assignment(prof, assignment, order)
        assert after <= before + 1e-9
        assert moves >= 0
        assert set(refined) == set(assignment)

    def test_zero_rounds_is_identity(self):
        prof = random_dag_profile(seed=4, num_gpus=2, num_ops=30, num_layers=4)
        order = priority_order(prof.graph)
        assignment = {v: 0 for v in order}
        refined, lat, moves = local_search_assignment(
            prof, assignment, order, max_rounds=0
        )
        assert refined == assignment
        assert moves == 0

    def test_negative_rounds_rejected(self):
        prof = random_dag_profile(seed=4, num_gpus=2, num_ops=20, num_layers=4)
        with pytest.raises(ValueError):
            local_search_assignment(
                prof, {v: 0 for v in prof.graph.names},
                priority_order(prof.graph), max_rounds=-1,
            )

    def test_moves_converge_to_same_fixed_point(self):
        """Regression: the applied move now reuses the latency computed
        during the scan instead of re-evaluating (the old code did
        both, redundantly) — the move sequence and the fixed point must
        be unchanged, and the returned latency must equal the latency
        of the returned assignment."""
        for seed in (1, 2, 7):
            prof = random_dag_profile(seed=seed, num_gpus=3, num_ops=40, num_layers=5)
            order = priority_order(prof.graph)
            assignment = {v: i % 3 for i, v in enumerate(order)}
            fast = local_search_assignment(prof, assignment, order, max_rounds=8)
            ref = local_search_assignment(
                prof, assignment, order, max_rounds=8, fast=False
            )
            assert fast == ref
            refined, lat, _ = fast
            assert lat == list_schedule_latency(
                prof.graph, refined, order, prof.num_gpus,
                send_blocking=prof.send_blocking, gpu_speeds=prof.gpu_speeds,
            )

    def test_finds_obvious_move(self):
        # two independent heavy ops both dumped on GPU 0: the search
        # must move one to GPU 1
        g = OpGraph.from_edges({"a": 10.0, "b": 10.0}, [])
        prof = make_profile(g, num_gpus=2)
        order = priority_order(g)
        refined, lat, moves = local_search_assignment(
            prof, {"a": 0, "b": 0}, order
        )
        assert moves == 1
        assert lat == pytest.approx(10.0)
        assert refined["a"] != refined["b"]


class TestScheduleHiosLpLs:
    def test_never_worse_than_hios_lp_inter(self):
        prof = random_dag_profile(seed=5, num_gpus=4, num_ops=80, num_layers=8)
        plain = schedule_graph(prof, "inter-lp")
        refined = schedule_hios_lp_ls(prof, intra_gpu=False)
        assert refined.latency <= plain.latency + 1e-9

    def test_result_consistent(self):
        prof = random_dag_profile(seed=6, num_gpus=3, num_ops=50, num_layers=6)
        res = schedule_graph(prof, "hios-lp-ls", max_rounds=2)
        res.schedule.validate(prof.graph)
        assert evaluate_latency(prof, res.schedule) == pytest.approx(res.latency)
        assert res.algorithm == "hios-lp-ls"
        assert "local_search_moves" in res.stats
