"""Tests for Alg. 2 (intra-GPU inter-operator parallelization)."""

import pytest

from repro.core import (
    OpGraph,
    Schedule,
    ScheduleError,
    evaluate_latency,
    parallelize,
)
from repro.costmodel import CostProfile, MaxConcurrencyModel, SumConcurrencyModel, TableConcurrencyModel


def simple_profile(concurrency=None, max_streams=0):
    g = OpGraph.from_edges(
        {"a": 1.0, "b": 2.0, "c": 2.0, "d": 1.0},
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
    )
    return CostProfile(
        graph=g,
        num_gpus=1,
        concurrency=concurrency or MaxConcurrencyModel(),
        max_streams=max_streams,
    )


def sequential_schedule(profile, gpu=0):
    from repro.core import priority_order

    s = Schedule(profile.num_gpus)
    for v in priority_order(profile.graph):
        s.append_op(gpu, v)
    return s


class TestGrouping:
    def test_groups_independent_pair(self):
        prof = simple_profile()
        sched = sequential_schedule(prof)
        out, lat, stats = parallelize(prof, sched, window=2)
        assert lat == 4.0  # a, {b,c} at max=2, d
        assert stats.groups_formed == 1
        merged = [st for st in out.all_stages() if len(st) == 2]
        assert len(merged) == 1 and set(merged[0].ops) == {"b", "c"}

    def test_never_increases_latency(self):
        prof = simple_profile(concurrency=SumConcurrencyModel())
        sched = sequential_schedule(prof)
        before = evaluate_latency(prof, sched)
        _, lat, stats = parallelize(prof, sched, window=3)
        assert lat == before  # summing model: no grouping can help
        assert stats.groups_formed == 0

    def test_window_one_is_noop(self):
        prof = simple_profile()
        sched = sequential_schedule(prof)
        out, lat, stats = parallelize(prof, sched, window=1)
        assert stats.windows_tried == 0
        assert lat == evaluate_latency(prof, sched)

    def test_invalid_window(self):
        prof = simple_profile()
        with pytest.raises(ValueError):
            parallelize(prof, sequential_schedule(prof), window=0)

    def test_max_streams_limits_group_size(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0, "c": 1.0}, [])
        prof = CostProfile(
            graph=g, num_gpus=1, concurrency=MaxConcurrencyModel(), max_streams=2
        )
        s = Schedule(1)
        for v in ("a", "b", "c"):
            s.append_op(0, v)
        out, _, _ = parallelize(prof, s, window=3)
        assert out.max_stage_width() <= 2

    def test_dependent_window_rejected(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [("a", "b")])
        prof = CostProfile(graph=g, num_gpus=1, concurrency=MaxConcurrencyModel())
        s = Schedule(1)
        s.append_op(0, "a")
        s.append_op(0, "b")
        _, lat, stats = parallelize(prof, s, window=2)
        assert stats.rejected_dependent == 1
        assert stats.groups_formed == 0
        assert lat == 2.0

    def test_missing_operator_in_schedule(self):
        prof = simple_profile()
        s = Schedule(1)
        s.append_op(0, "a")
        with pytest.raises(ScheduleError):
            parallelize(prof, s, window=2)


class TestCycleRejection:
    def test_cross_gpu_cycle_rejected(self):
        """a and b are independent, yet merging GPU0's [b, a] into one
        stage creates a stage-graph cycle through GPU1's chain:
        {a,b} -> y1 -> y2 -> {a,b} (b feeds y1, y2 feeds a)."""
        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0, "y1": 1.0, "y2": 1.0},
            [("b", "y1", 0.1), ("y2", "a", 0.1)],
        )
        assert g.independent(["a", "b"])
        table = TableConcurrencyModel()
        table.record(["a", "b"], 0.5)  # grouping looks very attractive
        prof = CostProfile(graph=g, num_gpus=2, concurrency=table)
        s = Schedule(2)
        s.append_op(0, "b")
        s.append_op(0, "a")
        s.append_op(1, "y1")
        s.append_op(1, "y2")
        s.validate(g)  # the ungrouped schedule is feasible
        out, lat, stats = parallelize(prof, s, window=2)
        assert stats.rejected_cyclic == 1
        assert stats.groups_formed == 0
        assert all(len(st) == 1 for st in out.all_stages())


class TestPaperExample:
    def test_fig5_walkthrough(self):
        from repro.models.worked_examples import fig5_initial_schedule, fig5_profile

        prof = fig5_profile()
        sched = fig5_initial_schedule()
        before = evaluate_latency(prof, sched)
        out, lat, stats = parallelize(prof, sched, window=2)
        assert before == 14.0
        assert lat == 10.0
        assert stats.groups_formed == 2
        groups = {frozenset(st.ops) for st in out.all_stages() if len(st) > 1}
        assert groups == {frozenset({"v2", "v4"}), frozenset({"v5", "v7"})}
