"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_figure_choices(self):
        args = build_parser().parse_args(["run", "fig1"])
        assert args.figure == "fig1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.model == "inception_v3"
        assert args.algorithm == "hios-lp"
        assert args.gpus == 2

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.model == "inception_v3"
        assert args.gpus == 4
        assert args.fault == []
        assert args.seed == 0
        assert args.watchdog == 0.0
        assert not args.no_repair
        assert args.max_repairs is None

    def test_faults_repeatable_spec(self):
        args = build_parser().parse_args(
            ["faults", "--fault", "fail:1@2.0", "--fault", "loss:0.1"]
        )
        assert args.fault == ["fail:1@2.0", "loss:0.1"]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.scenario == "steady-state"
        assert args.config is None
        assert args.seed is None
        assert args.horizon is None
        assert not args.json

    def test_serve_scenario_and_config_are_exclusive(self):
        args = build_parser().parse_args(["serve", "--scenario", "gpu-loss"])
        assert args.scenario == "gpu-loss"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--scenario", "nope"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--scenario", "gpu-loss", "--config", "c.json"]
            )


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "hios-lp" in out
        assert "nasnet" in out

    def test_run_fig1(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "ratio" in out

    def test_run_instances_override(self, capsys):
        assert main(["run", "fig11", "--instances", "1"]) == 0
        assert "latency" in capsys.readouterr().out

    def test_schedule_inception(self, capsys):
        assert (
            main(
                [
                    "schedule",
                    "--model",
                    "inception_v3",
                    "--size",
                    "299",
                    "--algorithm",
                    "sequential",
                    "--stages",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "predicted" in out and "measured" in out
        assert "GPU 0" in out

    def test_schedule_json_output(self, capsys):
        assert (
            main(
                [
                    "schedule",
                    "--model",
                    "inception_v3",
                    "--size",
                    "299",
                    "--algorithm",
                    "hios-mr",
                    "--json",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert '"num_gpus": 2' in out


class TestValidateCommand:
    @pytest.fixture
    def artifacts(self, tmp_path):
        from repro.core import OpGraph, Schedule, save_graph

        g = OpGraph.from_edges({"a": 1.0, "b": 2.0}, [("a", "b", 0.5)])
        gpath = tmp_path / "g.json"
        save_graph(g, gpath)
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        spath = tmp_path / "s.json"
        spath.write_text(s.to_json())
        return str(gpath), str(spath), tmp_path

    def test_valid_schedule(self, artifacts, capsys):
        gpath, spath, _ = artifacts
        assert main(["validate", gpath, spath]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK")
        assert "latency" in out

    def test_invalid_schedule(self, artifacts, capsys):
        from repro.core import Schedule

        gpath, _, tmp = artifacts
        bad = Schedule(1)
        bad.append_op(0, "b")
        bad.append_op(0, "a")
        bpath = tmp / "bad.json"
        bpath.write_text(bad.to_json())
        assert main(["validate", gpath, str(bpath)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_gpu_mismatch(self, artifacts, capsys):
        gpath, spath, _ = artifacts
        assert main(["validate", gpath, spath, "--gpus", "4"]) == 2


class TestFaultsCommand:
    ARGS = ["faults", "--model", "inception_v3", "--size", "299", "--gpus", "4"]

    def test_failure_is_repaired(self, capsys):
        assert (
            main(
                self.ARGS
                + ["--algorithms", "sequential", "hios-lp", "--fault", "fail:1@1.0"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fail@1.000" in out
        assert "repaired ms" in out
        assert "rounds" in out
        assert "fail:1@1.0" in out

    def test_cascade_reports_rounds(self, capsys):
        assert (
            main(
                self.ARGS
                + [
                    "--algorithms",
                    "hios-lp",
                    "--fault",
                    "fail:1@0.5",
                    "--fault",
                    "fail:2@0.9",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fail@0.500" in out
        # both failures struck, so two repair rounds ran
        assert any("2" in line for line in out.splitlines() if "hios-lp" in line)

    def test_fault_free_when_no_spec(self, capsys):
        assert main(self.ARGS + ["--algorithms", "sequential"]) == 0
        out = capsys.readouterr().out
        assert "none (fault-free)" in out
        assert "fail@" not in out

    def test_no_repair_reports_failure_and_exits_1(self, capsys):
        assert (
            main(
                self.ARGS
                + ["--algorithms", "sequential", "--fault", "fail:1@1.0", "--no-repair"]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "fail@1.000" in out
        assert "unrecovered" in out

    def test_exhausted_budget_exits_1(self, capsys):
        # two failures but a budget of one repair: unrecovered, exit 1
        assert (
            main(
                self.ARGS
                + [
                    "--algorithms",
                    "hios-lp",
                    "--fault",
                    "fail:1@0.5",
                    "--fault",
                    "fail:2@0.9",
                    "--max-repairs",
                    "1",
                ]
            )
            == 1
        )
        assert "unrecovered" in capsys.readouterr().out

    def test_bad_spec_exits_2(self, capsys):
        assert main(["faults", "--fault", "bogus:1@2"]) == 2
        assert "error" in capsys.readouterr().out


class TestServeCommand:
    def test_steady_state_text_report(self, capsys):
        assert main(["serve", "--scenario", "steady-state"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "tenant search" in out and "tenant feed" in out

    def test_json_report_carries_format_marker(self, capsys):
        import json

        assert main(["serve", "--scenario", "gpu-loss", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro.servereport/v1"
        assert doc["failed"] == 0
        assert doc["repairs"] >= 1
        assert "requests" not in doc

    def test_json_requests_included_on_demand(self, capsys):
        import json

        assert main(["serve", "--scenario", "steady-state", "--json", "--requests"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["requests"]) == doc["arrivals"]

    def test_config_file_round_trip(self, tmp_path, capsys):
        import json

        from repro.serve import scenario_config

        path = tmp_path / "serve.json"
        path.write_text(json.dumps(scenario_config("steady-state").to_dict()))
        assert main(["serve", "--config", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["completed"] == 26

    def test_bad_config_exits_2(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro.serve/v1", "tenants": []}))
        assert main(["serve", "--config", str(path)]) == 2
        assert "V00" in capsys.readouterr().out

    def test_seed_override_changes_arrivals(self, capsys):
        import json

        assert main(["serve", "--scenario", "steady-state", "--json"]) == 0
        base = json.loads(capsys.readouterr().out)
        assert main(["serve", "--scenario", "steady-state", "--seed", "99", "--json"]) == 0
        reseeded = json.loads(capsys.readouterr().out)
        # reseeding redraws the Poisson streams, so the report shifts
        assert base != reseeded
        assert base["makespan_ms"] != reseeded["makespan_ms"]

    def test_artifacts_written_and_lint_clean(self, tmp_path, capsys):
        import json

        chrome = tmp_path / "chrome.json"
        decisions = tmp_path / "decisions.jsonl"
        assert (
            main(
                [
                    "serve",
                    "--scenario",
                    "gpu-loss",
                    "--trace-out",
                    str(chrome),
                    "--decisions-out",
                    str(decisions),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "decision record(s)" in out
        doc = json.loads(chrome.read_text())
        assert doc["otherData"]["format"] == "repro.chrometrace/v1"
        events = {
            json.loads(line)["event"] for line in decisions.read_text().splitlines()
        }
        assert {"serve-admit", "serve-dispatch", "serve-gpu-fail"} <= events
        assert main(["lint", str(chrome)]) == 0

    def test_serve_config_lints_from_file(self, tmp_path, capsys):
        import json

        from repro.serve import scenario_config

        path = tmp_path / "serve.json"
        path.write_text(json.dumps(scenario_config("burst-overload").to_dict()))
        assert main(["lint", str(path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_table(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--model",
                    "inception_v3",
                    "--size",
                    "299",
                    "--algorithms",
                    "sequential",
                    "hios-lp",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "lower bound" in out
        assert "sequential" in out and "hios-lp" in out
        assert "gap" in out


class TestLintCommand:
    @pytest.fixture
    def artifacts(self, tmp_path):
        import json

        from repro.core import OpGraph, Schedule, save_graph

        g = OpGraph.from_edges({"a": 1.0, "b": 2.0}, [("a", "b", 0.5)])
        gpath = tmp_path / "g.json"
        save_graph(g, gpath)
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        spath = tmp_path / "s.json"
        spath.write_text(s.to_json())
        bad = {
            "num_gpus": 2,
            "gpus": [
                {"gpu": 0, "stages": [["a"]]},
                {"gpu": 1, "stages": [["a"]]},
            ],
        }
        bpath = tmp_path / "bad.json"
        bpath.write_text(json.dumps(bad))
        return str(gpath), str(spath), str(bpath), tmp_path

    def test_clean_pair_exits_0(self, artifacts, capsys):
        gpath, spath, _, _ = artifacts
        assert main(["lint", gpath, spath]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_duplicate_placement_exits_1(self, artifacts, capsys):
        gpath, _, bpath, _ = artifacts
        assert main(["lint", gpath, bpath]) == 1
        out = capsys.readouterr().out
        assert "S003" in out and "placed twice" in out

    def test_json_output_carries_catalog(self, artifacts, capsys):
        import json

        gpath, spath, _, _ = artifacts
        assert main(["lint", gpath, spath, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert len(doc["rules"]) >= 18

    def test_rules_catalog(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "G001" in out and "S001" in out and "T001" in out and "F001" in out

    def test_fault_specs_only(self, capsys):
        assert (
            main(
                [
                    "lint",
                    "--fault",
                    "fail:7@1",
                    "--gpus",
                    "2",
                ]
            )
            == 1
        )
        assert "F001" in capsys.readouterr().out

    def test_trace_lints_clean(self, artifacts, capsys):
        import json

        from repro.core import Schedule, load_graph
        from repro.substrate.engine import MultiGpuEngine

        gpath, spath, _, tmp = artifacts
        g = load_graph(gpath)
        s = Schedule.from_json((tmp / "s.json").read_text())
        trace = MultiGpuEngine().run(g, s)
        tpath = tmp / "t.json"
        tpath.write_text(json.dumps(trace.to_dict()))
        assert main(["lint", gpath, spath, str(tpath)]) == 0

    def test_nothing_to_lint_exits_2(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().out

    def test_unreadable_file_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_unclassifiable_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "odd.json"
        path.write_text('{"hello": "world"}')
        assert main(["lint", str(path)]) == 2
        assert "cannot classify" in capsys.readouterr().out


class TestTraceCommands:
    @pytest.fixture
    def artifacts(self, tmp_path):
        import json

        from repro.core import OpGraph, Schedule
        from repro.substrate import EngineConfig, MultiGpuEngine

        g = OpGraph.from_edges({"a": 1.0, "b": 2.0}, [("a", "b", 0.5)])
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        cfg = EngineConfig(
            launch_overhead_ms=0.0,
            launch_included_in_cost=False,
            contention_penalty=0.0,
            transfer_from_edges=True,
        )
        trace = MultiGpuEngine(cfg).run(g, s)
        tpath = tmp_path / "t.json"
        tpath.write_text(json.dumps(trace.to_dict()))
        spath = tmp_path / "s.json"
        spath.write_text(s.to_json())
        return str(tpath), str(spath), tmp_path

    def test_parser_subcommands(self):
        args = build_parser().parse_args(
            ["trace", "export", "t.json", "--schedule", "s.json"]
        )
        assert args.trace_command == "export"
        assert args.process_name == "hios"
        args = build_parser().parse_args(
            ["trace", "diff", "a.json", "b.json", "--json"]
        )
        assert args.trace_command == "diff"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])  # subcommand required
        with pytest.raises(SystemExit):
            # export without --schedule
            build_parser().parse_args(["trace", "export", "t.json"])

    def test_schedule_flags_parse(self):
        args = build_parser().parse_args(
            ["schedule", "--trace-out", "x.json", "--decisions-out", "d.jsonl"]
        )
        assert args.trace_out == "x.json"
        assert args.decisions_out == "d.jsonl"
        args = build_parser().parse_args(["run", "fig12_inception", "--trace-out", "traces"])
        assert args.trace_out == "traces"

    def test_export_to_file_lints_clean(self, artifacts, capsys):
        import json

        tpath, spath, tmp = artifacts
        out = tmp / "chrome.json"
        assert (
            main(
                ["trace", "export", tpath, "--schedule", spath, "-o", str(out)]
            )
            == 0
        )
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["otherData"]["format"] == "repro.chrometrace/v1"
        assert main(["lint", str(out)]) == 0

    def test_export_to_stdout(self, artifacts, capsys):
        import json

        tpath, spath, _ = artifacts
        assert main(["trace", "export", tpath, "--schedule", spath]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(e.get("cat") == "kernel" for e in doc["traceEvents"])

    def test_report_text_and_json(self, artifacts, capsys):
        import json

        tpath, spath, _ = artifacts
        assert main(["trace", "report", tpath, "--schedule", spath]) == 0
        text = capsys.readouterr().out
        assert "end-to-end latency" in text
        assert "realized critical path" in text
        assert main(["trace", "report", tpath, "--schedule", spath, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["completed"] is True
        total = sum(
            doc["per_gpu"][0][k]
            for k in ("compute_ms", "transfer_ms", "overhead_ms", "idle_ms")
        )
        assert total == pytest.approx(doc["latency_ms"])

    def test_self_diff_is_identical(self, artifacts, capsys):
        tpath, _, _ = artifacts
        assert main(["trace", "diff", tpath, tpath]) == 0
        assert "traces are identical" in capsys.readouterr().out

    def test_diff_json(self, artifacts, capsys):
        import json

        tpath, _, _ = artifacts
        assert main(["trace", "diff", tpath, tpath, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["latency_delta_ms"] == 0.0
        assert doc["shifted"] == []

    def test_missing_trace_exits_2(self, artifacts, capsys):
        _, spath, tmp = artifacts
        code = main(
            ["trace", "report", str(tmp / "nope.json"), "--schedule", spath]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().out

    def test_malformed_trace_exits_2(self, artifacts, capsys):
        _, spath, tmp = artifacts
        bad = tmp / "bad.json"
        bad.write_text('{"format": "repro.trace/v1", "latency": "soon"}')
        assert main(["trace", "report", str(bad), "--schedule", spath]) == 2
        assert "malformed trace document" in capsys.readouterr().out

    def test_mismatched_schedule_exits_2(self, artifacts, capsys):
        from repro.core import Schedule

        tpath, _, tmp = artifacts
        other = Schedule(2)
        other.append_op(0, "x")
        opath = tmp / "other.json"
        opath.write_text(other.to_json())
        assert main(["trace", "report", tpath, "--schedule", str(opath)]) == 2
        assert "does not place" in capsys.readouterr().out

    def test_schedule_command_writes_both_artifacts(self, tmp_path, capsys):
        import json

        chrome = tmp_path / "chrome.json"
        decisions = tmp_path / "decisions.jsonl"
        assert (
            main(
                [
                    "schedule",
                    "--trace-out",
                    str(chrome),
                    "--decisions-out",
                    str(decisions),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "decision record(s)" in out
        doc = json.loads(chrome.read_text())
        assert doc["otherData"]["format"] == "repro.chrometrace/v1"
        records = [
            json.loads(line) for line in decisions.read_text().splitlines()
        ]
        assert records
        assert {"lp-path", "window-merge"} <= {r["event"] for r in records}


class TestSanitizeCommand:
    @pytest.fixture
    def artifacts(self, tmp_path):
        import json

        from repro.core import OpGraph, Schedule, save_graph
        from repro.substrate import EngineConfig, MultiGpuEngine

        g = OpGraph.from_edges({"a": 1.0, "b": 2.0}, [("a", "b", 0.5)])
        gpath = tmp_path / "g.json"
        save_graph(g, gpath)
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        spath = tmp_path / "s.json"
        spath.write_text(s.to_json())
        cfg = EngineConfig(
            launch_overhead_ms=0.0,
            launch_included_in_cost=False,
            contention_penalty=0.0,
            transfer_from_edges=True,
        )
        trace = MultiGpuEngine(cfg).run(g, s)
        tpath = tmp_path / "t.json"
        tpath.write_text(json.dumps(trace.to_dict()))
        return str(gpath), str(spath), str(tpath), tmp_path

    @pytest.fixture
    def deadlock_artifacts(self, tmp_path):
        from repro.core import OpGraph, Schedule, save_graph

        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
            [("a", "b"), ("c", "d")],
        )
        gpath = tmp_path / "dg.json"
        save_graph(g, gpath)
        s = Schedule(2)
        for gpu, op in [(0, "d"), (0, "a"), (1, "b"), (1, "c")]:
            s.append_op(gpu, op)
        spath = tmp_path / "ds.json"
        spath.write_text(s.to_json())
        return str(gpath), str(spath)

    def test_clean_triple_exits_0(self, artifacts, capsys):
        gpath, spath, tpath, _ = artifacts
        assert main(["sanitize", gpath, spath, tpath]) == 0
        out = capsys.readouterr().out
        assert "clean: no hazards found" in out

    def test_deadlock_exits_1_with_witness(self, deadlock_artifacts, capsys):
        gpath, spath = deadlock_artifacts
        assert main(["sanitize", gpath, spath]) == 1
        out = capsys.readouterr().out
        assert "ERROR [deadlock]" in out
        assert "--[" in out  # the witness cycle renders its edges

    def test_deadlock_detected_without_running_the_engine(
        self, deadlock_artifacts, monkeypatch
    ):
        """The acceptance criterion: the verdict is static — no engine,
        no watchdog, no event loop is ever involved."""
        from repro.substrate import MultiGpuEngine

        def boom(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("sanitize must never invoke the engine")

        monkeypatch.setattr(MultiGpuEngine, "run", boom)
        gpath, spath = deadlock_artifacts
        assert main(["sanitize", gpath, spath]) == 1

    def test_json_report_lints_clean(self, artifacts, capsys, tmp_path):
        import json

        gpath, spath, tpath, _ = artifacts
        assert main(["sanitize", gpath, spath, tpath, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro.hbreport/v1"
        rpath = tmp_path / "hb.json"
        rpath.write_text(json.dumps(doc))
        # the emitted report is itself a lintable artifact (H0xx pack)
        assert main(["lint", str(rpath)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_model_flags_change_the_analysis(self, artifacts, capsys):
        gpath, spath, _, _ = artifacts
        assert main(["sanitize", gpath, spath, "--no-data-wait"]) == 1
        out = capsys.readouterr().out
        assert "race" in out and "unsynchronized" in out

    def test_scenario_timelines(self, capsys):
        assert main(["sanitize", "--scenario", "steady-state"]) == 0
        out = capsys.readouterr().out
        assert "serve timeline(s) linearizable: steady-state" in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["sanitize", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_schedule_without_graph_exits_2(self, artifacts, capsys):
        _, spath, _, _ = artifacts
        assert main(["sanitize", spath]) == 2
        assert "graph and the schedule together" in capsys.readouterr().out

    def test_trace_without_pair_exits_2(self, artifacts, capsys):
        _, _, tpath, _ = artifacts
        assert main(["sanitize", tpath]) == 2

    def test_nothing_to_analyze_exits_2(self, capsys):
        assert main(["sanitize"]) == 2
