"""HB graph construction: every edge kind the engine enforces."""

import pytest

from repro.core import OpGraph, Schedule, Stage
from repro.sanitize import ExecModel, build_hb_graph
from repro.sanitize.hbgraph import (
    ev_finish,
    ev_launch,
    ev_recv,
    ev_send,
    ev_start,
)
from repro.substrate import EngineConfig


def edge_set(hb):
    return {(src, dst, kind) for src, dst, kind in hb.iter_edges()}


class TestLifecycleAndProgramOrder:
    def test_op_lifecycle_edges(self, chain, split_schedule):
        hb = build_hb_graph(chain, split_schedule)
        edges = edge_set(hb)
        for op in ("a", "b"):
            assert (ev_launch(op), ev_start(op), "op") in edges
            assert (ev_start(op), ev_finish(op), "op") in edges

    def test_program_order_follows_stage_order(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0, "c": 1.0}, [])
        s = Schedule(1, [Stage(0, ("a",)), Stage(0, ("b", "c"))])
        hb = build_hb_graph(g, s)
        edges = edge_set(hb)
        assert (ev_launch("a"), ev_launch("b"), "program") in edges
        assert (ev_launch("b"), ev_launch("c"), "program") in edges

    def test_stage_barrier_edges(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0, "c": 1.0}, [])
        s = Schedule(1, [Stage(0, ("a", "b")), Stage(0, ("c",))])
        hb = build_hb_graph(g, s)
        edges = edge_set(hb)
        # every op of stage 0 must finish before stage 1's head launches
        assert (ev_finish("a"), ev_launch("c"), "stage") in edges
        assert (ev_finish("b"), ev_launch("c"), "stage") in edges

    def test_ops_missing_from_schedule_are_skipped(self, chain):
        s = Schedule(1, [Stage(0, ("a",))])  # 'b' never placed
        hb = build_hb_graph(chain, s)
        assert "b" not in hb.gpu_of
        assert hb.index.get(ev_start("b")) is None
        assert not hb.requirements  # the a->b dep involves an unknown op


class TestStreamLanes:
    def test_round_robin_lane_serialization(self):
        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}, []
        )
        s = Schedule(1, [Stage(0, ("a", "b", "c", "d"))])
        hb = build_hb_graph(g, s, ExecModel(max_streams=2))
        edges = edge_set(hb)
        # lanes: a,c on stream 0; b,d on stream 1 (i % 2)
        assert (ev_finish("a"), ev_start("c"), "stream") in edges
        assert (ev_finish("b"), ev_start("d"), "stream") in edges
        assert (ev_finish("a"), ev_start("b"), "stream") not in edges

    def test_serial_device_has_no_stream_edges(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [])
        s = Schedule(1, [Stage(0, ("a", "b"))])
        hb = build_hb_graph(g, s, ExecModel(max_streams=0))
        assert all(kind != "stream" for _, _, kind in hb.iter_edges())


class TestTransferEdges:
    def test_blocking_mode_host_edges(self, chain, split_schedule):
        hb = build_hb_graph(chain, split_schedule, ExecModel())
        edges = edge_set(hb)
        assert (ev_finish("a"), ev_send("a", "b"), "send") in edges
        assert (ev_send("a", "b"), ev_recv("a", "b"), "xfer") in edges
        assert (ev_recv("a", "b"), ev_launch("b"), "host") in edges
        assert all(kind != "data" for _, _, kind in edges)

    def test_overlap_mode_data_edges(self, chain, split_schedule):
        hb = build_hb_graph(
            chain, split_schedule, ExecModel(overlap_launch=True)
        )
        edges = edge_set(hb)
        assert (ev_recv("a", "b"), ev_start("b"), "data") in edges
        assert all(kind != "host" for _, _, kind in edges)

    def test_no_data_wait_drops_both(self, chain, split_schedule):
        hb = build_hb_graph(
            chain, split_schedule, ExecModel(data_wait=False)
        )
        kinds = {kind for _, _, kind in hb.iter_edges()}
        assert "host" not in kinds and "data" not in kinds
        assert "send" in kinds and "xfer" in kinds  # physics still holds

    def test_same_gpu_dependency_has_no_message_events(self, chain):
        s = Schedule(1, [Stage(0, ("a",)), Stage(0, ("b",))])
        hb = build_hb_graph(chain, s)
        assert hb.index.get(ev_send("a", "b")) is None
        (req,) = hb.requirements
        assert not req.cross and req.transfer == 0.0

    def test_blocking_send_chain_in_sorted_consumer_order(self):
        g = OpGraph.from_edges(
            {"p": 1.0, "x": 1.0, "y": 1.0, "z": 1.0},
            [("p", "x", 0.5), ("p", "y", 0.5), ("p", "z", 0.5)],
        )
        s = Schedule(
            2,
            [
                Stage(0, ("p",)),
                Stage(1, ("x",)),
                Stage(1, ("y",)),
                Stage(1, ("z",)),
            ],
        )
        hb = build_hb_graph(g, s, ExecModel())
        edges = edge_set(hb)
        assert (ev_recv("p", "x"), ev_send("p", "y"), "chain") in edges
        assert (ev_recv("p", "y"), ev_send("p", "z"), "chain") in edges
        # overlap mode posts sends eagerly: no chain
        hb2 = build_hb_graph(g, s, ExecModel(overlap_launch=True))
        assert all(kind != "chain" for _, _, kind in hb2.iter_edges())


class TestGraphQueries:
    def test_topological_order_none_on_cycle(self, deadlock_pair):
        graph, schedule = deadlock_pair
        hb = build_hb_graph(graph, schedule)
        assert hb.topological_order() is None

    def test_topological_order_complete_on_dag(self, chain, split_schedule):
        hb = build_hb_graph(chain, split_schedule)
        order = hb.topological_order()
        assert order is not None
        assert sorted(order) == list(range(hb.num_events))
        pos = {i: k for k, i in enumerate(order)}
        for a in range(hb.num_events):
            for b, _kind in hb.out_edges(a):
                assert pos[a] < pos[b]

    def test_without_kinds_keeps_events_and_requirements(
        self, chain, split_schedule
    ):
        hb = build_hb_graph(chain, split_schedule)
        stripped = hb.without_kinds(frozenset({"host"}))
        assert stripped.num_events == hb.num_events
        assert stripped.requirements == hb.requirements
        assert stripped.num_edges == hb.num_edges - 1
        assert hb.num_edges == len(list(hb.iter_edges()))  # original intact

    def test_labels_carry_gpu_and_channel(self, chain, split_schedule):
        hb = build_hb_graph(chain, split_schedule)
        assert hb.label(hb.index[ev_start("a")]) == "start('a') on GPU 0"
        assert (
            hb.label(hb.index[ev_send("a", "b")])
            == "send('a'->'b') on channel GPU 0->1"
        )

    def test_unknown_edge_kind_rejected(self, chain, split_schedule):
        hb = build_hb_graph(chain, split_schedule)
        with pytest.raises(ValueError, match="unknown HB edge kind"):
            hb.add_edge(ev_start("a"), ev_finish("a"), "telepathy")


class TestExecModel:
    def test_from_engine_config(self):
        cfg = EngineConfig(
            overlap_launch=True, send_blocking=False, max_streams=3
        )
        model = ExecModel.from_engine_config(cfg)
        assert model.overlap_launch and not model.send_blocking
        assert model.max_streams == 3
        assert model.data_wait  # always on for the simulated engine

    def test_describe_mentions_every_knob(self):
        text = ExecModel().describe()
        for knob in (
            "overlap_launch",
            "send_blocking",
            "max_streams",
            "data_wait",
        ):
            assert knob in text
