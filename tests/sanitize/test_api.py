"""The ``analyze`` entry point and the ``repro.hbreport/v1`` document."""

import json

from repro.core import OpGraph, Schedule, Stage
from repro.sanitize import (
    FINDING_KINDS,
    HBREPORT_FORMAT,
    ExecModel,
    SanitizeFinding,
    SanitizeReport,
    analyze,
)

from .conftest import make_engine


class TestAnalyzeClean:
    def test_report_shape(self, diamond, diamond_schedule):
        report = analyze(diamond, diamond_schedule)
        assert report.ok
        assert report.findings == ()
        assert report.stats["operators"] == 4
        assert report.stats["gpus"] == 2
        assert report.stats["events"] > 0
        assert report.stats["edges"] > 0
        assert report.stats["requirements"] == 4  # the diamond's edges

    def test_traces_fold_into_the_report(self, diamond, diamond_schedule):
        trace = make_engine().run(diamond, diamond_schedule)
        report = analyze(diamond, diamond_schedule, traces=[trace])
        assert report.ok

    def test_to_text_clean(self, diamond, diamond_schedule):
        text = analyze(diamond, diamond_schedule).to_text()
        assert "happens-before analysis" in text
        assert "clean: no hazards found" in text


class TestAnalyzeDeadlock:
    def test_deadlock_finding_with_witness_steps(self, deadlock_pair):
        graph, schedule = deadlock_pair
        report = analyze(graph, schedule)
        assert not report.ok
        (finding,) = report.findings
        assert finding.kind == "deadlock" and finding.severity == "error"
        assert "cyclic wait" in finding.message
        assert len(finding.witness) >= 2
        # every witness step names a real enforced-edge kind
        kinds = {edge for _, edge in finding.witness}
        assert kinds <= {
            "op", "program", "stage", "stream", "send", "chain",
            "xfer", "host", "data", "lease", "dep", "transfer",
        }

    def test_deadlock_subsumes_other_detectors(self, deadlock_pair):
        graph, schedule = deadlock_pair
        # even with hazard-prone model knobs, the deadlock is the only
        # finding (reachability is ill-defined on a cyclic graph)
        report = analyze(
            graph, schedule, ExecModel(overlap_launch=True, max_streams=4)
        )
        assert [f.kind for f in report.findings] == ["deadlock"]

    def test_deadlock_renders_witness_arrows(self, deadlock_pair):
        graph, schedule = deadlock_pair
        text = analyze(graph, schedule).to_text()
        assert "ERROR [deadlock]" in text
        assert "--[" in text and "]-->" in text
        assert "summary: 1 error(s)" in text


class TestFindingOrdering:
    def test_with_findings_sorts_by_severity(self):
        report = SanitizeReport(findings=(), model=ExecModel(), stats={})
        merged = report.with_findings(
            [
                SanitizeFinding("nondeterminism", "info", "i"),
                SanitizeFinding("race", "error", "e"),
                SanitizeFinding("transfer-hazard", "warning", "w"),
            ]
        )
        assert [f.severity for f in merged.findings] == [
            "error",
            "warning",
            "info",
        ]
        assert merged.errors == (merged.findings[0],)
        assert merged.warnings == (merged.findings[1],)
        assert not merged.ok

    def test_warnings_and_info_keep_ok(self):
        report = SanitizeReport(
            findings=(), model=ExecModel(), stats={}
        ).with_findings(
            [
                SanitizeFinding("transfer-hazard", "warning", "w"),
                SanitizeFinding("nondeterminism", "info", "i"),
            ]
        )
        assert report.ok  # only errors flip ok


class TestTaxonomy:
    def test_finding_kinds_cover_every_analyze_kind(self):
        assert FINDING_KINDS == {
            "deadlock": "error",
            "race": "error",
            "linearization": "error",
            "timeline": "error",
            "transfer-hazard": "warning",
            "nondeterminism": "info",
        }

    def test_mixed_severity_report(self):
        # overlap mode on a split chain: data-edge hazard (warning) +
        # nondeterministic kernel pairs (info), but no error
        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0, "c": 1.0}, [("a", "b", 0.5)]
        )
        s = Schedule(2, [Stage(0, ("a", "c")), Stage(1, ("b",))])
        report = analyze(
            g, s, ExecModel(overlap_launch=True, max_streams=2)
        )
        kinds = {f.kind for f in report.findings}
        assert "transfer-hazard" in kinds
        assert "nondeterminism" in kinds
        assert report.ok


class TestHbReportDocument:
    def test_to_dict_round_trips_json(self, diamond, diamond_schedule):
        doc = analyze(diamond, diamond_schedule).to_dict()
        assert doc == json.loads(json.dumps(doc))
        assert doc["format"] == HBREPORT_FORMAT
        assert set(doc["model"]) == {
            "overlap_launch",
            "send_blocking",
            "max_streams",
            "data_wait",
        }
        assert doc["summary"] == {"errors": 0, "warnings": 0, "info": 0}

    def test_witness_serialized_as_steps(self, deadlock_pair):
        graph, schedule = deadlock_pair
        doc = analyze(graph, schedule).to_dict()
        (finding,) = doc["findings"]
        assert finding["witness"]
        for step in finding["witness"]:
            assert set(step) == {"event", "edge"}

    def test_summary_counts_match_findings(self, deadlock_pair):
        graph, schedule = deadlock_pair
        doc = analyze(graph, schedule).to_dict()
        sev = [f["severity"] for f in doc["findings"]]
        assert doc["summary"]["errors"] == sev.count("error")
        assert doc["summary"]["warnings"] == sev.count("warning")
        assert doc["summary"]["info"] == sev.count("info")
