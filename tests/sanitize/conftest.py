"""Shared fixtures: tiny graphs/schedules with known HB structure."""

import pytest

from repro.core import OpGraph, Schedule, Stage
from repro.substrate import EngineConfig, MultiGpuEngine


def make_engine(**kwargs):
    """An engine with the timing knobs zeroed so traces are easy to
    reason about (the idiom of the substrate test suite)."""
    defaults = dict(
        launch_overhead_ms=0.0,
        launch_included_in_cost=False,
        contention_penalty=0.0,
        transfer_from_edges=True,
    )
    defaults.update(kwargs)
    return MultiGpuEngine(EngineConfig(**defaults))


@pytest.fixture
def chain():
    """a -> b with a 0.5 ms transfer."""
    return OpGraph.from_edges({"a": 1.0, "b": 1.0}, [("a", "b", 0.5)])


@pytest.fixture
def split_schedule():
    """The chain split across two GPUs, one stage each."""
    return Schedule(2, [Stage(0, ("a",)), Stage(1, ("b",))])


@pytest.fixture
def diamond():
    """a -> {b, c} -> d, uniform costs, 0.5 ms transfers."""
    return OpGraph.from_edges(
        {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
        [("a", "b", 0.5), ("a", "c", 0.5), ("b", "d", 0.5), ("c", "d", 0.5)],
    )


@pytest.fixture
def diamond_schedule():
    """The diamond on two GPUs: b stays with a, c crosses over."""
    return Schedule(
        2,
        [
            Stage(0, ("a",)),
            Stage(1, ("c",)),
            Stage(0, ("b",)),
            Stage(0, ("d",)),
        ],
    )


@pytest.fixture
def deadlock_pair():
    """Two independent chains a->b and c->d scheduled in a cyclic wait:
    GPU 0 runs d then a, GPU 1 runs b then c — each GPU's first stage
    waits on the other's second (the substrate suite's classic case)."""
    graph = OpGraph.from_edges(
        {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}, [("a", "b"), ("c", "d")]
    )
    schedule = Schedule(2)
    for gpu, op in [(0, "d"), (0, "a"), (1, "b"), (1, "c")]:
        schedule.append_op(gpu, op)
    return graph, schedule
