"""Vector clocks + the trace linearization checkers."""

from dataclasses import replace

import pytest

from repro.core import OpGraph, Schedule, Stage
from repro.sanitize import (
    CyclicHbGraphError,
    ExecModel,
    HbClocks,
    build_hb_graph,
    check_engine_trace,
    check_timeline,
    dependency_violations,
    timeline_hb_graph,
    transfer_violations,
)
from repro.sanitize.hbgraph import ev_finish, ev_launch, ev_start
from repro.sanitize.vclock import thread_of
from repro.substrate.engine import ExecutionTrace

from .conftest import make_engine


class TestHbClocks:
    def test_cyclic_graph_rejected(self, deadlock_pair):
        graph, schedule = deadlock_pair
        hb = build_hb_graph(graph, schedule)
        with pytest.raises(CyclicHbGraphError, match="cyclic"):
            HbClocks(hb)

    def test_precedes_is_transitive_reachability(self, chain, split_schedule):
        hb = build_hb_graph(chain, split_schedule)
        clocks = HbClocks(hb)
        # the full pipeline is a chain: launch(a) ... start(b) ... finish(b)
        assert clocks.precedes_events(ev_launch("a"), ev_finish("b"))
        assert clocks.precedes_events(ev_finish("a"), ev_start("b"))
        assert not clocks.precedes_events(ev_start("b"), ev_finish("a"))
        ia = hb.index[ev_start("a")]
        assert not clocks.precedes(ia, ia)  # strict order

    def test_concurrent_is_symmetric_and_irreflexive(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [])
        s = Schedule(2, [Stage(0, ("a",)), Stage(1, ("b",))])
        hb = build_hb_graph(g, s)
        clocks = HbClocks(hb)
        ia, ib = hb.index[ev_start("a")], hb.index[ev_start("b")]
        assert clocks.concurrent(ia, ib) and clocks.concurrent(ib, ia)
        assert not clocks.concurrent(ia, ia)

    def test_clock_of_componentwise_equivalence(self, diamond, diamond_schedule):
        """The textbook property: a HB b iff clock(a) <= clock(b)
        componentwise (and a != b)."""
        hb = build_hb_graph(diamond, diamond_schedule)
        clocks = HbClocks(hb)
        materialized = [clocks.clock_of(i) for i in range(hb.num_events)]

        def leq(ca, cb):
            return all(cb.get(thread, 0) >= pos for thread, pos in ca.items())

        for a in range(hb.num_events):
            for b in range(hb.num_events):
                if a == b:
                    continue
                assert clocks.precedes(a, b) == leq(
                    materialized[a], materialized[b]
                ), (hb.events[a], hb.events[b])

    def test_clock_of_includes_own_thread(self, chain, split_schedule):
        hb = build_hb_graph(chain, split_schedule)
        clocks = HbClocks(hb)
        clock = clocks.clock_of(hb.index[ev_start("a")])
        assert clock[thread_of(ev_start("a"))] == 2  # launch=1 < start=2


class TestRequirementLayer:
    def _trace(self, **overrides):
        base = dict(
            latency=2.6,
            op_launch={"a": 0.0, "b": 0.1},
            op_start={"a": 0.0, "b": 1.6},
            op_finish={"a": 1.0, "b": 2.6},
            transfers=[],
            gpu_busy={0: 1.0, 1: 1.0},
        )
        base.update(overrides)
        return ExecutionTrace(**base)

    def test_clean_trace_no_violations(self, chain, split_schedule):
        trace = self._trace()
        assert not list(dependency_violations(chain, trace))
        assert not list(transfer_violations(chain, split_schedule, trace))

    def test_missing_producer(self, chain):
        trace = self._trace(op_finish={"b": 2.6})
        (vio,) = dependency_violations(chain, trace)
        assert vio.kind == "dep" and vio.t_src is None
        assert (vio.u, vio.v) == ("a", "b")
        assert "never happened" in vio.describe()

    def test_late_start(self, chain):
        trace = self._trace(op_start={"a": 0.0, "b": 0.5})
        (vio,) = dependency_violations(chain, trace)
        assert vio.t_src == 1.0 and vio.t_dst == 0.5

    def test_transfer_slack_enforced(self, chain, split_schedule):
        trace = self._trace(op_start={"a": 0.0, "b": 1.2})
        assert not list(dependency_violations(chain, trace))
        (vio,) = transfer_violations(chain, split_schedule, trace)
        assert vio.kind == "transfer" and vio.transfer == 0.5
        assert "transfer 0.5" in vio.describe()

    def test_checkpointed_producer_exempt(self, chain, split_schedule):
        trace = self._trace(op_start={"a": 0.0, "b": 1.2})
        assert not list(
            transfer_violations(
                chain, split_schedule, trace, checkpointed=frozenset({"a"})
            )
        )

    def test_same_gpu_edge_has_no_transfer_requirement(self, chain):
        s = Schedule(1, [Stage(0, ("a",)), Stage(0, ("b",))])
        trace = self._trace(op_start={"a": 0.0, "b": 1.0})
        assert not list(transfer_violations(chain, s, trace))


class TestCheckEngineTrace:
    def test_engine_trace_linearizes(self, diamond, diamond_schedule):
        trace = make_engine().run(diamond, diamond_schedule)
        assert check_engine_trace(diamond, diamond_schedule, trace) == []

    def test_overlap_trace_needs_matching_model(self, diamond, diamond_schedule):
        trace = make_engine(overlap_launch=True).run(diamond, diamond_schedule)
        model = ExecModel(overlap_launch=True)
        assert (
            check_engine_trace(diamond, diamond_schedule, trace, model) == []
        )

    def test_reordered_trace_fails_with_witness_edge(
        self, diamond, diamond_schedule
    ):
        trace = make_engine().run(diamond, diamond_schedule)
        # pretend 'd' started before its producer 'b' finished
        corrupt = replace(
            trace,
            op_start={**trace.op_start, "d": trace.op_finish["b"] - 0.4},
        )
        violations = check_engine_trace(diamond, diamond_schedule, corrupt)
        assert violations
        kinds = {vio.kind for vio in violations}
        assert "dep" in kinds  # the requirement layer names the edge
        dep = next(vio for vio in violations if vio.kind == "dep")
        assert (dep.u, dep.v) in {("b", "d"), ("c", "d")}

    def test_structural_layer_catches_stage_barrier_breaks(
        self, diamond, diamond_schedule
    ):
        trace = make_engine().run(diamond, diamond_schedule)
        # move a launch before its program-order predecessor: no
        # requirement (dataflow) is violated, only the enforced order
        corrupt = replace(
            trace,
            op_launch={**trace.op_launch, "d": trace.op_launch["a"] - 1.0},
        )
        violations = check_engine_trace(diamond, diamond_schedule, corrupt)
        kinds = {vio.kind for vio in violations}
        assert kinds & {"program", "stage", "op", "host"}

    def test_partial_failure_trace_skips_structural(self, chain, split_schedule):
        from repro.substrate import FaultPlan, GpuFailure

        plan = FaultPlan([GpuFailure(gpu=1, at=1.2)])
        trace = make_engine(faults=plan, sanitize=False).run(
            chain, split_schedule
        )
        assert trace.failure is not None
        assert check_engine_trace(chain, split_schedule, trace) == []

    def test_structural_false_skips_enforced_layer(
        self, diamond, diamond_schedule
    ):
        trace = make_engine().run(diamond, diamond_schedule)
        corrupt = replace(
            trace,
            op_launch={**trace.op_launch, "d": trace.op_launch["a"] - 1.0},
        )
        assert (
            check_engine_trace(
                diamond, diamond_schedule, corrupt, structural=False
            )
            == []
        )


class TestTimeline:
    def _timeline(self, spans):
        """spans: name -> (start, finish, gpu)."""
        return (
            ExecutionTrace(
                latency=max(f for _, f, _ in spans.values()),
                op_launch={n: s for n, (s, _, _) in spans.items()},
                op_start={n: s for n, (s, _, _) in spans.items()},
                op_finish={n: f for n, (_, f, _) in spans.items()},
                transfers=[],
                gpu_busy={},
            ),
            {n: g for n, (_, _, g) in spans.items()},
        )

    def test_serial_leases_linearize(self):
        trace, op_gpu = self._timeline(
            {"q1": (0.0, 1.0, 0), "q2": (1.0, 2.0, 0), "q3": (0.5, 1.5, 1)}
        )
        assert check_timeline(trace, op_gpu) == []

    def test_overlapping_leases_on_one_gpu_flagged(self):
        trace, op_gpu = self._timeline(
            {"q1": (0.0, 1.0, 0), "q2": (0.5, 1.5, 0)}
        )
        (vio,) = check_timeline(trace, op_gpu)
        assert vio.kind == "lease"
        assert "exclusive GPU lease" in vio.describe()

    def test_lease_chain_ordered_by_dispatch_not_launch(self):
        # q2 arrives (launches) first but dispatches second: the lease
        # chain must follow dispatch order, so this is clean
        trace = ExecutionTrace(
            latency=2.0,
            op_launch={"q1": 0.5, "q2": 0.0},
            op_start={"q1": 0.5, "q2": 1.0},
            op_finish={"q1": 1.0, "q2": 2.0},
            transfers=[],
            gpu_busy={},
        )
        assert check_timeline(trace, {"q1": 0, "q2": 0}) == []

    def test_timeline_hb_graph_has_lease_edges(self):
        trace, op_gpu = self._timeline(
            {"q1": (0.0, 1.0, 0), "q2": (1.0, 2.0, 0)}
        )
        hb = timeline_hb_graph(trace, op_gpu)
        assert (ev_finish("q1"), ev_start("q2"), "lease") in set(
            hb.iter_edges()
        )


class TestLintParity:
    """T004/T005 delegate here — the differential test keeps them honest."""

    def test_dependency_parity_with_t004(self, chain):
        from repro.lint import LintContext, Linter

        trace = ExecutionTrace(
            latency=2.6,
            op_launch={"a": 0.0, "b": 0.1},
            op_start={"a": 0.0, "b": 0.5},
            op_finish={"a": 1.0, "b": 2.6},
            transfers=[],
            gpu_busy={},
        )
        report = Linter.for_packs("trace").run(
            LintContext(graph=chain, trace=trace)
        )
        t004 = [d for d in report.diagnostics if d.rule == "T004"]
        direct = list(dependency_violations(chain, trace))
        assert len(t004) == len(direct) == 1
        # the lint message embeds exactly the checker's numbers
        assert str(direct[0].t_dst) in t004[0].message
        assert str(direct[0].t_src) in t004[0].message

    def test_transfer_parity_with_t005(self, chain, split_schedule):
        from repro.lint import LintContext, Linter

        trace = ExecutionTrace(
            latency=2.6,
            op_launch={"a": 0.0, "b": 0.1},
            op_start={"a": 0.0, "b": 1.2},
            op_finish={"a": 1.0, "b": 2.6},
            transfers=[],
            gpu_busy={},
        )
        report = Linter.for_packs("trace").run(
            LintContext(graph=chain, schedule=split_schedule, trace=trace)
        )
        t005 = [d for d in report.diagnostics if d.rule == "T005"]
        direct = list(transfer_violations(chain, split_schedule, trace))
        assert len(t005) == len(direct) == 1
        assert f"t(u,v) {direct[0].transfer}" in t005[0].message
