"""The TSan-style engine sanitizer (``HIOS_SANITIZE=1``)."""

import pytest

from repro.core import OpGraph, Schedule, Stage, priority_order
from repro.core.api import make_profile, schedule_graph
from repro.models.randomdag import random_layered_dag
from repro.sanitize import RuntimeSanitizer, SanitizeViolation, sanitize_enabled
from repro.sanitize.runtime import sanitizer_for
from repro.substrate import EngineConfig, FaultPlan, MultiGpuEngine

from .conftest import make_engine


class TestEnvGating:
    @pytest.mark.parametrize("value", ["0", "false", "off", "no", "", "  "])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("HIOS_SANITIZE", value)
        assert not sanitize_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv("HIOS_SANITIZE", value)
        assert sanitize_enabled()

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv("HIOS_SANITIZE", raising=False)
        assert not sanitize_enabled()

    def test_config_overrides_env(self, chain, split_schedule, monkeypatch):
        monkeypatch.setenv("HIOS_SANITIZE", "1")
        assert (
            sanitizer_for(chain, split_schedule, EngineConfig(sanitize=False))
            is None
        )
        monkeypatch.setenv("HIOS_SANITIZE", "0")
        assert (
            sanitizer_for(chain, split_schedule, EngineConfig(sanitize=True))
            is not None
        )

    def test_env_decides_when_config_is_none(
        self, chain, split_schedule, monkeypatch
    ):
        cfg = EngineConfig()
        assert cfg.sanitize is None
        monkeypatch.setenv("HIOS_SANITIZE", "0")
        assert sanitizer_for(chain, split_schedule, cfg) is None
        monkeypatch.setenv("HIOS_SANITIZE", "1")
        assert sanitizer_for(chain, split_schedule, cfg) is not None


class TestStaticDeadlockPreemption:
    """A cyclic-wait schedule must fail *statically* — before any
    kernel, transfer or watchdog tick — with the witness cycle."""

    def test_raises_before_event_loop(self, deadlock_pair, monkeypatch):
        graph, schedule = deadlock_pair
        from repro.substrate import engine as engine_mod

        started = []
        monkeypatch.setattr(
            engine_mod.EventQueue,
            "push",
            lambda self, *a, **k: started.append(a),
        )
        with pytest.raises(SanitizeViolation) as err:
            make_engine(sanitize=True).run(graph, schedule, validate=False)
        assert "witness cycle" in str(err.value)
        assert "watchdog" not in str(err.value)
        assert started == []  # the event loop never saw a single event

    def test_watchdog_never_reached(self, deadlock_pair):
        graph, schedule = deadlock_pair
        # an absurdly tight watchdog would fire instantly if the run
        # ever started; the static check preempts it
        with pytest.raises(SanitizeViolation) as err:
            make_engine(sanitize=True, watchdog_horizon_ms=1e-9).run(
                graph, schedule, validate=False
            )
        assert "deadlocks before any kernel runs" in str(err.value)

    def test_constructor_rejects_cyclic_schedule(self, deadlock_pair):
        graph, schedule = deadlock_pair
        with pytest.raises(SanitizeViolation, match="witness cycle"):
            RuntimeSanitizer(graph, schedule)


class TestObserve:
    def test_clean_run_replays_event_by_event(self, diamond, diamond_schedule):
        """Replaying a recorded clean trace through the sanitizer in
        causal time order raises nothing and checks every event."""
        sanitizer = RuntimeSanitizer(diamond, diamond_schedule)
        trace = make_engine(sanitize=False).run(diamond, diamond_schedule)
        # (time, tiebreak) ordering: at equal timestamps predecessors
        # must be observed first (finish < send < recv < launch < start)
        timeline = []
        for rank, kind in enumerate(("finish", "send", "recv", "launch", "start")):
            if kind in ("send", "recv"):
                continue
            for op, t in getattr(trace, f"op_{kind}").items():
                timeline.append((t, rank, kind, (op,)))
        for rec in trace.transfers:
            u, _, v = rec.tag.partition("->")
            timeline.append((rec.post_time, 1, "send", (u, v)))
            timeline.append((rec.finish_time, 2, "recv", (u, v)))
        for t, _rank, kind, args in sorted(timeline):
            getattr(sanitizer, f"observe_{kind}")(*args, t)
        assert sanitizer.checked_events == len(timeline)

    def test_out_of_order_event_raises_with_causal_chain(
        self, chain, split_schedule
    ):
        sanitizer = RuntimeSanitizer(chain, split_schedule)
        sanitizer.observe_launch("a", 0.0)
        sanitizer.observe_start("a", 0.0)
        with pytest.raises(SanitizeViolation) as err:
            # finish(a) claims a time before start(a): lifecycle broken
            sanitizer.observe_finish("a", -1.0)
        msg = str(err.value)
        assert "happens-before violation" in msg
        assert "causal chain" in msg
        assert "kernel lifecycle order" in msg

    def test_unobserved_predecessor_raises(self, chain, split_schedule):
        sanitizer = RuntimeSanitizer(chain, split_schedule)
        with pytest.raises(SanitizeViolation, match="has not happened"):
            sanitizer.observe_start("a", 0.5)  # launch(a) never observed

    def test_same_gpu_dependency_checked_as_requirement(self, chain):
        # dependent ops sharing a stage on separate stream lanes: the
        # appended same-GPU requirement edge is the only guard left
        from repro.sanitize import ExecModel

        s = Schedule(1, [Stage(0, ("a", "b"))])
        sanitizer = RuntimeSanitizer(chain, s, ExecModel(max_streams=2))
        sanitizer.observe_launch("a", 0.0)
        sanitizer.observe_launch("b", 0.0)
        sanitizer.observe_start("a", 0.0)
        sanitizer.observe_finish("a", 1.0)
        with pytest.raises(SanitizeViolation, match="dataflow dependency"):
            sanitizer.observe_start("b", 0.5)  # before finish(a)

    def test_observe_is_idempotent(self, chain, split_schedule):
        sanitizer = RuntimeSanitizer(chain, split_schedule)
        sanitizer.observe_launch("a", 0.0)
        checked = sanitizer.checked_events
        sanitizer.observe_launch("a", 99.0)  # later duplicate: ignored
        assert sanitizer.checked_events == checked

    def test_unknown_events_are_ignored(self, chain, split_schedule):
        sanitizer = RuntimeSanitizer(chain, split_schedule)
        sanitizer.observe_start("not-an-op", 0.0)  # no crash, no count
        assert sanitizer.checked_events == 0


class TestEngineIntegration:
    """HIOS_SANITIZE=1 (the suite default, see tests/conftest.py) must
    be violation-free across schedulers, engine modes and fault plans —
    the acceptance matrix of the sanitizer."""

    @pytest.mark.parametrize(
        "algorithm", ["sequential", "ios", "hios-lp", "hios-mr"]
    )
    @pytest.mark.parametrize("overlap", [False, True])
    def test_algorithms_by_engine_mode(self, algorithm, overlap):
        graph = random_layered_dag(num_ops=24, num_layers=5, seed=7)
        profile = make_profile(graph, num_gpus=2)
        schedule = schedule_graph(profile, algorithm).schedule
        cfg = EngineConfig(overlap_launch=overlap, sanitize=True)
        trace = MultiGpuEngine(cfg).run(graph, schedule)
        assert trace.failure is None and trace.latency > 0.0

    def test_heterogeneous_speeds_and_streams(self):
        graph = random_layered_dag(num_ops=20, num_layers=4, seed=3)
        schedule = schedule_graph(make_profile(graph, num_gpus=2), "hios-lp").schedule
        cfg = EngineConfig(
            gpu_speeds=(1.0, 0.7), max_streams=2, sanitize=True
        )
        trace = MultiGpuEngine(cfg).run(graph, schedule)
        assert trace.failure is None

    def test_fault_plans_stay_clean(self):
        graph = random_layered_dag(num_ops=20, num_layers=4, seed=11)
        order = priority_order(graph)
        schedule = Schedule(2)
        for i, op in enumerate(order):
            schedule.append_stage(Stage(i % 2, (op,)))
        plan = FaultPlan.from_strings(
            ["slow:1@0.5x2.0", "fail:0@1.5"], seed=0
        )
        trace = make_engine(faults=plan, sanitize=True).run(graph, schedule)
        # the failure cut the run short, but nothing it *did* emit may
        # contradict the happens-before model
        assert trace.failure is not None

    def test_sanitized_trace_equals_unsanitized(self, diamond, diamond_schedule):
        base = make_engine(sanitize=False).run(diamond, diamond_schedule)
        checked = make_engine(sanitize=True).run(diamond, diamond_schedule)
        assert checked == base  # observation must not perturb the run
