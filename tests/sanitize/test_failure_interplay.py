"""Sanitizer x fault tolerance: partial traces, cascading repair
splices and deliberately corrupted histories."""

from dataclasses import replace

import pytest

from repro.core import OpGraph, Schedule, Stage, priority_order
from repro.core.api import make_profile
from repro.core.repair import run_with_repair, splice_traces
from repro.models.randomdag import random_layered_dag
from repro.sanitize import (
    analyze,
    check_engine_trace,
    dependency_violations,
    trace_findings,
)
from repro.substrate import EngineConfig, FaultPlan, MultiGpuEngine

from .conftest import make_engine


def _round_robin(graph, num_gpus=2):
    schedule = Schedule(num_gpus)
    for i, op in enumerate(priority_order(graph)):
        schedule.append_stage(Stage(i % num_gpus, (op,)))
    return schedule


class TestPartialTraces:
    def test_failure_mid_transfer_linearizes(self, chain, split_schedule):
        # GPU 1 dies at t=1.2 while the a->b transfer (1.0..1.5) is in
        # flight: 'b' never starts, the trace is cut mid-message
        plan = FaultPlan.from_strings(["fail:1@1.2"])
        trace = make_engine(faults=plan, sanitize=True).run(
            chain, split_schedule
        )
        assert trace.failure is not None
        assert "b" not in trace.op_start
        assert check_engine_trace(chain, split_schedule, trace) == []
        assert trace_findings(chain, split_schedule, trace) == []

    def test_partial_trace_passes_analyze(self, chain, split_schedule):
        plan = FaultPlan.from_strings(["fail:1@1.2"])
        trace = make_engine(faults=plan, sanitize=True).run(
            chain, split_schedule
        )
        report = analyze(chain, split_schedule, traces=[trace])
        assert report.ok


class TestRepairSplices:
    def test_cascading_repair_splice_linearizes(self):
        graph = random_layered_dag(num_ops=16, num_layers=4, seed=5)
        schedule = _round_robin(graph, num_gpus=3)
        profile = make_profile(graph, num_gpus=3)
        cfg = EngineConfig(
            launch_overhead_ms=0.0,
            launch_included_in_cost=False,
            contention_penalty=0.0,
            transfer_from_edges=True,
            faults=FaultPlan.from_strings(["fail:1@2.0"]),
        )
        trace, repairs = run_with_repair(profile, schedule, cfg)
        assert repairs  # the failure really struck
        assert trace.failure is not None  # splices keep the marker
        assert not trace.unfinished_ops(graph.names)
        # the tail re-ran under a *repaired* schedule, so the structural
        # layer and the placement-dependent transfer slack no longer
        # apply — but dataflow order is placement-independent and must
        # survive the splice intact
        assert list(dependency_violations(graph, trace)) == []

    def test_spliced_trace_carries_merged_finished_set(self, chain, split_schedule):
        plan = FaultPlan.from_strings(["fail:1@1.2"])
        head = make_engine(faults=plan).run(chain, split_schedule)
        tail_schedule = Schedule(1, [Stage(0, ("b",))])
        tail = make_engine().run(
            OpGraph.from_edges({"b": 1.0}, []), tail_schedule
        )
        combined = splice_traces(head, tail)
        assert combined.failure is not None
        assert "a" in combined.failure.finished
        assert (
            check_engine_trace(chain, split_schedule, combined, structural=False)
            == []
        )


class TestCorruptedHistories:
    def test_reordered_partial_trace_still_fails_requirements(
        self, chain, split_schedule
    ):
        """The structural layer is off for partial traces, but the
        requirement layer still catches a consumer outrunning its
        producer — with the witness edge named."""
        plan = FaultPlan.from_strings(["fail:1@1.2"])
        trace = make_engine(faults=plan, sanitize=False).run(
            chain, split_schedule
        )
        assert trace.failure is not None  # genuinely partial
        # fabricate a start for the op the failure cut off, *before*
        # its producer finished
        corrupt = replace(trace, op_start={**trace.op_start, "b": 0.2})
        violations = check_engine_trace(chain, split_schedule, corrupt)
        kinds = {vio.kind for vio in violations}
        assert "dep" in kinds
        dep = next(vio for vio in violations if vio.kind == "dep")
        assert (dep.u, dep.v) == ("a", "b")
        # b at 0.2 breaks both dataflow and transfer slack; every
        # finding names the same witness edge
        findings = trace_findings(chain, split_schedule, corrupt)
        assert findings
        assert all(f.kind == "linearization" for f in findings)
        assert all(f.location == "edge:a->b" for f in findings)

    def test_engine_rejects_corrupted_replay_live(self, deadlock_pair):
        """The runtime sanitizer is the last line: an engine driven
        into a cyclic wait dies with the witness, not the watchdog."""
        graph, schedule = deadlock_pair
        from repro.sanitize import SanitizeViolation

        with pytest.raises(SanitizeViolation, match="witness cycle"):
            MultiGpuEngine(EngineConfig(sanitize=True)).run(
                graph, schedule, validate=False
            )
