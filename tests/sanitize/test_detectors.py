"""Static detectors: deadlock witness, races, hazards, nondeterminism."""

from repro.core import OpGraph, Schedule, Stage
from repro.sanitize import (
    ExecModel,
    HbClocks,
    HbGraph,
    build_hb_graph,
    find_deadlock,
    find_nondeterminism,
    find_races,
    find_transfer_hazards,
)
from repro.sanitize.hbgraph import ev_finish, ev_launch, ev_start


def clocks_and_stages(graph, schedule, model=None):
    hb = build_hb_graph(graph, schedule, model)
    clocks = HbClocks(hb)
    stage_of = {
        op: (schedule.gpu_of(op), schedule.stage_index_of(op))
        for op in hb.gpu_of
    }
    stages = [
        (g, st.ops)
        for g in range(schedule.num_gpus)
        for st in schedule.stages_on(g)
    ]
    return hb, clocks, stage_of, stages


class TestDeadlock:
    def test_clean_schedule_has_no_cycle(self, diamond, diamond_schedule):
        hb = build_hb_graph(diamond, diamond_schedule)
        assert find_deadlock(hb) is None

    def test_cyclic_wait_yields_witness(self, deadlock_pair):
        graph, schedule = deadlock_pair
        hb = build_hb_graph(graph, schedule)
        cycle = find_deadlock(hb)
        assert cycle is not None
        assert len(cycle.events) == len(cycle.kinds)
        # the witness walks real enforced orderings, GPU-annotated
        assert any("program" == k for k in cycle.kinds)
        assert any("on GPU" in e or "on channel" in e for e in cycle.events)

    def test_witness_describe_renders_arrows(self, deadlock_pair):
        graph, schedule = deadlock_pair
        cycle = find_deadlock(build_hb_graph(graph, schedule))
        text = cycle.describe()
        assert "witness cycle" in text
        assert "-->" in text and "(closing the cycle)" in text
        # the cycle closes back on its first event
        assert text.strip().endswith(cycle.events[0])

    def test_witness_is_minimal_cycle(self):
        """With a 2-cycle and a 3-cycle present, the witness is the
        2-cycle (smallest SCC, then shortest cycle inside it)."""
        hb = HbGraph(model=ExecModel())
        # 2-cycle between a-events, disjoint 3-cycle between b/c/d
        hb.add_edge(ev_launch("a"), ev_start("a"), "op")
        hb.add_edge(ev_start("a"), ev_launch("a"), "program")
        hb.add_edge(ev_launch("b"), ev_launch("c"), "program")
        hb.add_edge(ev_launch("c"), ev_launch("d"), "program")
        hb.add_edge(ev_launch("d"), ev_launch("b"), "program")
        cycle = find_deadlock(hb)
        assert cycle is not None and len(cycle) == 2


class TestRaces:
    def test_clean_schedule_has_no_races(self, diamond, diamond_schedule):
        hb, clocks, stage_of, _ = clocks_and_stages(diamond, diamond_schedule)
        assert find_races(hb, clocks, stage_of) == []

    def test_no_sync_backend_flags_cross_gpu_edges(self, chain, split_schedule):
        hb, clocks, stage_of, _ = clocks_and_stages(
            chain, split_schedule, ExecModel(data_wait=False)
        )
        (race,) = find_races(hb, clocks, stage_of)
        assert race.requirement.cross
        assert "unsynchronized" in race.describe()

    def test_same_stage_dependency_is_stream_hazard(self):
        # dependent ops dealt into different stream lanes of one stage:
        # nothing serializes them
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [("a", "b")])
        s = Schedule(1, [Stage(0, ("a", "b"))])
        hb, clocks, stage_of, _ = clocks_and_stages(
            g, s, ExecModel(max_streams=2)
        )
        (race,) = find_races(hb, clocks, stage_of)
        assert race.same_stage and not race.requirement.cross
        assert "WAR/WAW" in race.describe()
        assert "share a stage" in race.describe()

    def test_same_lane_dependency_is_serialized(self):
        # three ops, one lane pair: a and c share lane 0 of a 2-stream
        # device, so the a->c dependency is ordered by the lane
        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0, "c": 1.0}, [("a", "c")]
        )
        s = Schedule(1, [Stage(0, ("a", "b", "c"))])
        hb, clocks, stage_of, _ = clocks_and_stages(
            g, s, ExecModel(max_streams=2)
        )
        assert find_races(hb, clocks, stage_of) == []


class TestTransferHazards:
    def test_overlap_mode_flags_data_only_orderings(
        self, chain, split_schedule
    ):
        hb, clocks, _, _ = clocks_and_stages(
            chain, split_schedule, ExecModel(overlap_launch=True)
        )
        (hazard,) = find_transfer_hazards(hb, clocks)
        assert hazard.requirement.u == "a" and hazard.requirement.v == "b"
        assert "per-kernel" in hazard.describe()

    def test_blocking_mode_is_hazard_free(self, chain, split_schedule):
        # the host blocks in MPI_Recv before launching: the ordering
        # survives without any data edge
        hb, clocks, _, _ = clocks_and_stages(chain, split_schedule)
        assert find_transfer_hazards(hb, clocks) == []

    def test_single_gpu_schedule_short_circuits(self, chain):
        s = Schedule(1, [Stage(0, ("a",)), Stage(0, ("b",))])
        hb, clocks, _, _ = clocks_and_stages(chain, s)
        assert find_transfer_hazards(hb, clocks) == []


class TestNondeterminism:
    def test_deterministic_schedule_returns_none(self, chain, split_schedule):
        hb, clocks, _, stages = clocks_and_stages(chain, split_schedule)
        assert find_nondeterminism(hb, clocks, stages) is None

    def test_concurrent_same_stage_kernels_counted(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [])
        s = Schedule(1, [Stage(0, ("a", "b"))])
        hb, clocks, _, stages = clocks_and_stages(
            g, s, ExecModel(max_streams=2)
        )
        report = find_nondeterminism(hb, clocks, stages)
        assert report is not None
        assert report.kernel_pairs == 1 and report.channel_pairs == 0
        assert "overlap" in report.describe()

    def test_unordered_same_channel_sends_counted(self):
        # two producers on GPU 0 each feeding GPU 1 in overlap mode:
        # sends are posted eagerly, so channel delivery order varies
        g = OpGraph.from_edges(
            {"p": 1.0, "q": 1.0, "x": 1.0, "y": 1.0},
            [("p", "x", 0.5), ("q", "y", 0.5)],
        )
        s = Schedule(
            2,
            [
                Stage(0, ("p", "q")),
                Stage(1, ("x",)),
                Stage(1, ("y",)),
            ],
        )
        hb, clocks, _, stages = clocks_and_stages(
            g, s, ExecModel(overlap_launch=True, max_streams=2)
        )
        report = find_nondeterminism(hb, clocks, stages)
        assert report is not None
        assert report.channel_pairs == 1
        assert "channel GPU 0->1" in report.describe()

    def test_exemplars_are_bounded(self):
        g = OpGraph.from_edges({f"o{i}": 1.0 for i in range(8)}, [])
        s = Schedule(1, [Stage(0, tuple(f"o{i}" for i in range(8)))])
        hb, clocks, _, stages = clocks_and_stages(
            g, s, ExecModel(max_streams=8)
        )
        report = find_nondeterminism(hb, clocks, stages)
        assert report is not None
        assert report.kernel_pairs == 8 * 7 // 2
        assert len(report.exemplars) <= 3
