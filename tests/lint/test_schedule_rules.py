"""S0xx rules: each has one triggering and one passing case."""

import pytest

from repro.core.graph import OpGraph
from repro.core.schedule import Schedule, ScheduleError, Stage
from repro.lint import LintContext, Linter, lint_schedule, lint_schedule_document


def diamond():
    g = OpGraph()
    for name in "abcd":
        g.add_operator(name, cost=1.0)
    g.add_edge("a", "b", transfer=0.2)
    g.add_edge("a", "c", transfer=0.2)
    g.add_edge("b", "d", transfer=0.2)
    g.add_edge("c", "d", transfer=0.2)
    return g


def good_schedule():
    return Schedule(
        2,
        [
            Stage(0, ("a",)),
            Stage(0, ("b",)),
            Stage(1, ("c",)),
            Stage(0, ("d",)),
        ],
    )


def object_rules_fired(graph, schedule, **kwargs):
    report = Linter().run(LintContext(graph=graph, schedule=schedule, **kwargs))
    return set(report.rule_ids())


def doc_rules_fired(doc):
    return set(lint_schedule_document(doc).rule_ids())


GOOD_DOC = {
    "num_gpus": 2,
    "gpus": [
        {"gpu": 0, "stages": [["a"], ["b"], ["d"]]},
        {"gpu": 1, "stages": [["c"]]},
    ],
}


class TestS001AllPlaced:
    def test_trigger(self):
        sched = Schedule(2, [Stage(0, ("a",)), Stage(0, ("b",)), Stage(1, ("c",))])
        report = lint_schedule(diamond(), sched)
        [d] = [d for d in report.errors if d.rule == "S001"]
        assert "not scheduled" in d.message and "'d'" in d.message

    def test_pass(self):
        assert "S001" not in object_rules_fired(diamond(), good_schedule())


class TestS002KnownOps:
    def test_trigger(self):
        sched = good_schedule()
        sched.append_stage(Stage(1, ("ghost",)))
        report = lint_schedule(diamond(), sched)
        [d] = [d for d in report.errors if d.rule == "S002"]
        assert "unknown operator" in d.message

    def test_pass(self):
        assert "S002" not in object_rules_fired(diamond(), good_schedule())


class TestS003DocDuplicates:
    def test_trigger(self):
        doc = {
            "num_gpus": 2,
            "gpus": [
                {"gpu": 0, "stages": [["a"], ["b"]]},
                {"gpu": 1, "stages": [["a"]]},
            ],
        }
        report = lint_schedule_document(doc)
        [d] = [d for d in report.errors if d.rule == "S003"]
        assert "placed twice" in d.message

    def test_pass(self):
        assert "S003" not in doc_rules_fired(GOOD_DOC)


class TestS004DocGpus:
    def test_trigger_missing_num_gpus(self):
        assert "S004" in doc_rules_fired({"gpus": []})

    def test_trigger_out_of_range_index(self):
        doc = {"num_gpus": 1, "gpus": [{"gpu": 3, "stages": [["a"]]}]}
        assert "S004" in doc_rules_fired(doc)

    def test_trigger_duplicate_gpu_entry(self):
        doc = {
            "num_gpus": 2,
            "gpus": [
                {"gpu": 0, "stages": [["a"]]},
                {"gpu": 0, "stages": [["b"]]},
            ],
        }
        report = lint_schedule_document(doc)
        assert any("duplicate entry" in d.message for d in report.errors)

    def test_pass(self):
        assert "S004" not in doc_rules_fired(GOOD_DOC)


class TestS005DocStages:
    def test_trigger_missing_gpu_key(self):
        doc = {"num_gpus": 1, "gpus": [{"stages": [["a"]]}]}
        assert "S005" in doc_rules_fired(doc)

    def test_trigger_empty_stage(self):
        doc = {"num_gpus": 1, "gpus": [{"gpu": 0, "stages": [[]]}]}
        assert "S005" in doc_rules_fired(doc)

    def test_trigger_non_string_op(self):
        doc = {"num_gpus": 1, "gpus": [{"gpu": 0, "stages": [[42]]}]}
        assert "S005" in doc_rules_fired(doc)

    def test_pass(self):
        assert "S005" not in doc_rules_fired(GOOD_DOC)


class TestS006StageIndependence:
    def test_trigger(self):
        sched = Schedule(1, [Stage(0, ("a", "b")), Stage(0, ("c",)), Stage(0, ("d",))])
        report = lint_schedule(diamond(), sched)
        [d] = [d for d in report.errors if d.rule == "S006"]
        assert "dependent" in d.message

    def test_pass_independent_pair(self):
        sched = Schedule(1, [Stage(0, ("a",)), Stage(0, ("b", "c")), Stage(0, ("d",))])
        assert "S006" not in object_rules_fired(diamond(), sched)


class TestS007IntraGpuOrder:
    def test_trigger(self):
        sched = Schedule(1, [Stage(0, ("d",)), Stage(0, ("c",)), Stage(0, ("b",)), Stage(0, ("a",))])
        report = lint_schedule(diamond(), sched)
        assert any(d.rule == "S007" for d in report.errors)

    def test_pass(self):
        assert "S007" not in object_rules_fired(diamond(), good_schedule())


class TestS008StageGraphAcyclic:
    def test_trigger_cross_gpu_deadlock(self):
        # a->b and c->d, with GPU0 running (b then c) and GPU1 (d then a):
        # GPU0's c needs nothing, but a (GPU1) runs after d, d needs c...
        g = OpGraph()
        for name in "abcd":
            g.add_operator(name, cost=1.0)
        g.add_edge("a", "b")
        g.add_edge("c", "d")
        sched = Schedule(
            2,
            [
                Stage(0, ("b",)),
                Stage(0, ("c",)),
                Stage(1, ("d",)),
                Stage(1, ("a",)),
            ],
        )
        report = lint_schedule(g, sched)
        [d] = [d for d in report.errors if d.rule == "S008"]
        assert "cycle" in d.message and "deadlock" in d.message

    def test_pass(self):
        assert "S008" not in object_rules_fired(diamond(), good_schedule())


class TestS009Window:
    def test_trigger(self):
        g = OpGraph()
        for i in range(4):
            g.add_operator(f"p{i}", cost=1.0)
        sched = Schedule(1, [Stage(0, ("p0", "p1", "p2", "p3"))])
        report = Linter().run(LintContext(graph=g, schedule=sched, window=2))
        [d] = [d for d in report.warnings if d.rule == "S009"]
        assert "w=2" in d.message

    def test_pass_without_window(self):
        g = OpGraph()
        for i in range(4):
            g.add_operator(f"p{i}", cost=1.0)
        sched = Schedule(1, [Stage(0, ("p0", "p1", "p2", "p3"))])
        assert "S009" not in object_rules_fired(g, sched)  # window unset

    def test_pass_within_window(self):
        assert "S009" not in object_rules_fired(
            diamond(), good_schedule(), window=3
        )


class TestS010IdleGpus:
    def test_trigger(self):
        sched = Schedule(
            3,
            [Stage(0, ("a",)), Stage(0, ("b",)), Stage(0, ("c",)), Stage(0, ("d",))],
        )
        report = lint_schedule(diamond(), sched)
        idle = [d for d in report.warnings if d.rule == "S010"]
        assert len(idle) == 2  # GPUs 1 and 2

    def test_pass_single_gpu(self):
        sched = Schedule(
            1,
            [Stage(0, ("a",)), Stage(0, ("b", "c")), Stage(0, ("d",))],
        )
        assert "S010" not in object_rules_fired(diamond(), sched)


class TestS011SingletonStages:
    def test_trigger(self):
        # b and c are independent but run in consecutive singleton stages
        sched = Schedule(
            1,
            [Stage(0, ("a",)), Stage(0, ("b",)), Stage(0, ("c",)), Stage(0, ("d",))],
        )
        report = lint_schedule(diamond(), sched)
        [d] = [d for d in report.infos if d.rule == "S011"]
        assert "singleton" in d.message

    def test_pass(self):
        sched = Schedule(
            1,
            [Stage(0, ("a",)), Stage(0, ("b", "c")), Stage(0, ("d",))],
        )
        assert "S011" not in object_rules_fired(diamond(), sched)


class TestS012CriticalPath:
    def test_trigger(self):
        # chain a->b->c with heavy transfers, split across GPUs
        g = OpGraph()
        for name in "abc":
            g.add_operator(name, cost=1.0)
        g.add_edge("a", "b", transfer=5.0)
        g.add_edge("b", "c", transfer=5.0)
        sched = Schedule(2, [Stage(0, ("a",)), Stage(1, ("b",)), Stage(0, ("c",))])
        report = lint_schedule(g, sched)
        [d] = [d for d in report.warnings if d.rule == "S012"]
        assert "critical-path" in d.message

    def test_pass_colocated(self):
        g = OpGraph()
        for name in "abc":
            g.add_operator(name, cost=1.0)
        g.add_edge("a", "b", transfer=5.0)
        g.add_edge("b", "c", transfer=5.0)
        sched = Schedule(2, [Stage(0, ("a",)), Stage(0, ("b",)), Stage(0, ("c",))])
        assert "S012" not in object_rules_fired(g, sched)


class TestScheduleValidateWrapper:
    def test_reports_every_violation_at_once(self):
        sched = Schedule(1, [Stage(0, ("a", "b"))])  # dependent AND missing c, d
        with pytest.raises(ScheduleError) as exc:
            sched.validate(diamond())
        msg = str(exc.value)
        assert "not scheduled" in msg and "dependent" in msg

    def test_ok(self):
        good_schedule().validate(diamond())


class TestFromDictHardening:
    def test_rejects_duplicate_placement_across_gpus(self):
        doc = {
            "num_gpus": 2,
            "gpus": [
                {"gpu": 0, "stages": [["a"]]},
                {"gpu": 1, "stages": [["a"]]},
            ],
        }
        with pytest.raises(ScheduleError, match="placed twice"):
            Schedule.from_dict(doc)

    def test_rejects_bad_gpu_index(self):
        doc = {"num_gpus": 1, "gpus": [{"gpu": 5, "stages": [["a"]]}]}
        with pytest.raises(ScheduleError, match="malformed schedule document"):
            Schedule.from_dict(doc)

    def test_rejects_missing_gpu_key(self):
        doc = {"num_gpus": 1, "gpus": [{"stages": [["a"]]}]}
        with pytest.raises(ScheduleError):
            Schedule.from_dict(doc)

    def test_accepts_good_doc(self):
        sched = Schedule.from_dict(GOOD_DOC)
        assert sched.num_gpus == 2
        assert sched.gpu_of("c") == 1
