"""T1xx rules: each has one triggering and one passing case."""

from repro.lint import lint_chrome_trace
from repro.lint.chrome_rules import CHROME_TRACE_FORMAT


def doc(events=None, **other_overrides):
    other = {
        "format": CHROME_TRACE_FORMAT,
        "completed": True,
        "latency_ms": 2.0,
    }
    other.update(other_overrides)
    if events is None:
        events = [
            {"ph": "M", "pid": 0, "tid": 0, "name": "thread_name",
             "args": {"name": "GPU 0"}},
            {"ph": "X", "pid": 0, "tid": 0, "ts": 0.0, "dur": 1000.0,
             "name": "a", "cat": "kernel", "args": {}},
        ]
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}


def fired(document):
    return set(lint_chrome_trace(document).rule_ids())


def test_well_formed_document_is_clean():
    assert fired(doc()) == set()


class TestT101Shape:
    def test_bare_array_form(self):
        report = lint_chrome_trace({"otherData": {"format": CHROME_TRACE_FORMAT}})
        [d] = [d for d in report.errors if d.rule == "T101"]
        assert "traceEvents" in d.message

    def test_non_object_event(self):
        assert "T101" in fired(doc(events=["not-an-event"]))

    def test_pass(self):
        assert "T101" not in fired(doc())


class TestT102FormatMarker:
    def test_wrong_marker(self):
        assert "T102" in fired(doc(format="repro.trace/v1"))

    def test_missing_other_data(self):
        assert "T102" in fired(
            {"traceEvents": [], "displayTimeUnit": "ms"}
        )

    def test_pass(self):
        assert "T102" not in fired(doc())


class TestT103EventStructure:
    def test_unknown_phase(self):
        bad = doc()
        bad["traceEvents"][1]["ph"] = "Z"
        assert "T103" in fired(bad)

    def test_non_integer_pid(self):
        bad = doc()
        bad["traceEvents"][1]["pid"] = "zero"
        assert "T103" in fired(bad)

    def test_negative_ts(self):
        bad = doc()
        bad["traceEvents"][1]["ts"] = -5.0
        assert "T103" in fired(bad)

    def test_missing_dur_on_complete_event(self):
        bad = doc()
        del bad["traceEvents"][1]["dur"]
        assert "T103" in fired(bad)

    def test_metadata_event_needs_no_ts(self):
        assert "T103" not in fired(doc())


class TestT104FlowPairs:
    def flow(self, ph, fid, ts):
        return {
            "ph": ph, "pid": 0, "tid": 0, "ts": ts, "id": fid,
            "name": "dep", "cat": "flow",
        }

    def test_unpaired_start(self):
        bad = doc()
        bad["traceEvents"].append(self.flow("s", 7, 100.0))
        assert "T104" in fired(bad)

    def test_unpaired_finish(self):
        bad = doc()
        bad["traceEvents"].append(self.flow("f", 7, 100.0))
        assert "T104" in fired(bad)

    def test_finish_before_start(self):
        bad = doc()
        bad["traceEvents"] += [self.flow("s", 7, 500.0), self.flow("f", 7, 100.0)]
        assert "T104" in fired(bad)

    def test_duplicate_start(self):
        bad = doc()
        bad["traceEvents"] += [
            self.flow("s", 7, 0.0), self.flow("s", 7, 1.0), self.flow("f", 7, 2.0),
        ]
        assert "T104" in fired(bad)

    def test_pass(self):
        ok = doc()
        ok["traceEvents"] += [self.flow("s", 7, 100.0), self.flow("f", 7, 200.0)]
        assert "T104" not in fired(ok)


class TestT105NamedTracks:
    def test_undeclared_tid(self):
        bad = doc()
        bad["traceEvents"][1]["tid"] = 42
        report = lint_chrome_trace(bad)
        assert "T105" in set(report.rule_ids())
        assert "T105" not in {d.rule for d in report.errors}  # warning

    def test_deduped_per_tid(self):
        bad = doc()
        bad["traceEvents"][1]["tid"] = 42
        bad["traceEvents"].append(dict(bad["traceEvents"][1], name="b"))
        report = lint_chrome_trace(bad)
        assert len([d for d in report.diagnostics if d.rule == "T105"]) == 1

    def test_pass(self):
        assert "T105" not in fired(doc())


class TestT106FailureMarker:
    def test_partial_without_instant(self):
        assert "T106" in fired(doc(completed=False))

    def test_partial_with_instant(self):
        ok = doc(completed=False)
        ok["traceEvents"].append(
            {"ph": "i", "pid": 0, "tid": 0, "ts": 800.0, "s": "g",
             "name": "gpu failure", "cat": "failure", "args": {}}
        )
        assert "T106" not in fired(ok)

    def test_completed_trace_needs_no_marker(self):
        assert "T106" not in fired(doc())


def test_errors_only_drops_warnings():
    bad = doc()
    bad["traceEvents"][1]["tid"] = 42  # T105 warning only
    assert not lint_chrome_trace(bad, errors_only=True).diagnostics
