"""The diagnostic framework: rules, contexts, reports."""

import json

import pytest

from repro.core.graph import OpGraph
from repro.core.schedule import Schedule, Stage
from repro.lint import (
    Diagnostic,
    Finding,
    LintContext,
    Linter,
    Severity,
    all_rules,
    get_rule,
    rule_catalog,
)
from repro.lint.framework import SUBJECTS, rule


def diamond():
    g = OpGraph()
    for name in "abcd":
        g.add_operator(name, cost=1.0)
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "d")
    g.add_edge("c", "d")
    return g


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank

    def test_str(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.INFO) == "info"


class TestDiagnostic:
    def test_format(self):
        d = Diagnostic(
            rule="S001", severity=Severity.ERROR, message="boom", location="op:a"
        )
        assert d.format() == "error[S001] op:a: boom"

    def test_format_without_location(self):
        d = Diagnostic(rule="G001", severity=Severity.WARNING, message="hm")
        assert d.format() == "warning[G001]: hm"

    def test_to_dict_omits_absent_fields(self):
        d = Diagnostic(rule="T001", severity=Severity.INFO, message="m")
        assert d.to_dict() == {"rule": "T001", "severity": "info", "message": "m"}


class TestRegistry:
    def test_rule_count_and_packs(self):
        rules = all_rules()
        assert len(rules) >= 18
        packs = {r.pack for r in rules}
        assert packs == {
            "graph", "schedule", "trace", "faults", "cache", "chrome", "serve",
            "hb",
        }

    def test_rule_ids_unique_and_well_formed(self):
        ids = [r.id for r in all_rules()]
        assert len(ids) == len(set(ids))
        for rid in ids:
            assert rid[0] in "GSTFCVH" and rid[1:].isdigit() and len(rid) == 4

    def test_get_rule(self):
        assert get_rule("G001").pack == "graph"
        with pytest.raises(KeyError):
            get_rule("Z999")

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            @rule("G001", severity=Severity.INFO, pack="graph",
                  title="dup", requires=("graph",))
            def dup(ctx):
                return iter(())

    def test_unknown_subject_rejected(self):
        with pytest.raises(ValueError, match="unknown subject"):
            @rule("X999", severity=Severity.INFO, pack="graph",
                  title="bad", requires=("nonsense",))
            def bad(ctx):
                return iter(())

    def test_catalog_is_serializable(self):
        catalog = rule_catalog()
        assert len(catalog) == len(all_rules())
        json.dumps(catalog)  # must not raise
        for entry in catalog:
            assert set(entry) == {"id", "severity", "pack", "title", "requires"}
            assert all(s in SUBJECTS for s in entry["requires"])


class TestLintContext:
    def test_has(self):
        ctx = LintContext(graph=diamond())
        assert ctx.has("graph")
        assert not ctx.has("schedule")

    def test_rules_skip_missing_subjects(self):
        report = Linter().run(LintContext())  # empty context: nothing applies
        assert report.diagnostics == ()


class TestLinter:
    def test_collects_all_findings_not_first(self):
        g = diamond()
        g.add_operator("iso1", cost=1.0)
        g.add_operator("iso2", cost=1.0)
        report = Linter().run(LintContext(graph=g))
        isolated = [d for d in report.diagnostics if d.rule == "G002"]
        assert len(isolated) == 2  # one finding per isolated op, not one total

    def test_errors_only(self):
        g = diamond()
        g.add_operator("iso", cost=1.0)  # would be a G002 warning
        report = Linter.errors_only().run(LintContext(graph=g))
        assert report.ok
        assert not report.diagnostics

    def test_for_packs(self):
        sub = Linter().for_packs("faults")
        assert {r.pack for r in sub.rules} == {"faults"}

    def test_report_sorted_by_severity(self):
        g = OpGraph()
        g.add_operator("a", cost=float("nan"))  # G007 error
        g.add_operator("iso", cost=1.0)  # G002 warning (with >1 ops)
        report = Linter().run(LintContext(graph=g))
        ranks = [d.severity.rank for d in report.diagnostics]
        assert ranks == sorted(ranks)

    def test_report_raise_errors(self):
        g = OpGraph()
        g.add_operator("a", cost=float("nan"))
        report = Linter().run(LintContext(graph=g))
        with pytest.raises(ValueError, match="non-finite cost"):
            report.raise_errors(ValueError)

    def test_report_raise_errors_noop_when_clean(self):
        report = Linter().run(LintContext(graph=diamond()))
        report.raise_errors(ValueError)  # must not raise

    def test_report_json_round_trip(self):
        g = diamond()
        sched = Schedule(2, [Stage(0, ("a",)), Stage(0, ("b", "c")), Stage(0, ("d",))])
        report = Linter().run(LintContext(graph=g, schedule=sched))
        doc = json.loads(report.to_json())
        assert doc["errors"] == 0
        assert doc["ok"] is True
        assert isinstance(doc["diagnostics"], list)

    def test_to_text_has_summary_line(self):
        report = Linter().run(LintContext(graph=diamond()))
        assert report.to_text().endswith("0 error(s), 0 warning(s), 0 info(s)")

    def test_merged(self):
        g = OpGraph()
        g.add_operator("a", cost=float("nan"))
        r1 = Linter().run(LintContext(graph=g))
        r2 = Linter().run(LintContext(graph=diamond()))
        merged = r1.merged(r2)
        assert len(merged.diagnostics) == len(r1.diagnostics) + len(r2.diagnostics)


class TestFindingHintOverride:
    def test_rule_hint_used_when_finding_has_none(self):
        g = OpGraph()
        g.add_operator("a", cost=float("nan"))
        report = Linter().run(LintContext(graph=g))
        d = next(d for d in report.diagnostics if d.rule == "G007")
        assert d.hint is not None  # inherited from the rule

    def test_finding_is_frozen(self):
        f = Finding("msg")
        with pytest.raises(AttributeError):
            f.message = "other"
