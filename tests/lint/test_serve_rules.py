"""Tests for the serve rule pack (V0xx) on repro.serve/v1 documents."""

import pytest

from repro.lint import lint_serve_config, lint_serve_report
from repro.serve import scenario_config


def doc(**overrides):
    """A minimal clean serving document, with overrides applied."""
    base = {
        "format": "repro.serve/v1",
        "num_gpus": 4,
        "gpus_per_query": 2,
        "degraded_gpus": 1,
        "horizon_ms": 500.0,
        "queue_capacity": 16,
        "overload_queue": 8,
        "max_retries": 2,
        "tenants": [
            {"name": "a", "model": "tiny", "rate_qps": 10.0, "deadline_ms": 100.0}
        ],
    }
    base.update(overrides)
    return base


def fired(document):
    return set(lint_serve_config(document).rule_ids())


def test_clean_document():
    assert fired(doc()) == set()


@pytest.mark.parametrize(
    "name", ["steady-state", "burst-overload", "gpu-loss", "gpu-loss-recovery"]
)
def test_real_scenarios_are_clean(name):
    assert fired(scenario_config(name).to_dict()) == set()


class TestV001Format:
    def test_wrong_marker(self):
        assert "V001" in fired(doc(format="repro.cache/v1"))

    def test_missing_marker(self):
        d = doc()
        del d["format"]
        assert "V001" in fired(d)


class TestV002Tenants:
    def test_empty_list(self):
        assert "V002" in fired(doc(tenants=[]))

    def test_not_a_list(self):
        assert "V002" in fired(doc(tenants="everyone"))

    def test_duplicate_names(self):
        t = {"name": "a", "model": "tiny", "rate_qps": 1.0}
        assert "V002" in fired(doc(tenants=[t, dict(t)]))

    def test_missing_model(self):
        assert "V002" in fired(doc(tenants=[{"name": "a", "rate_qps": 1.0}]))


class TestV003Arrivals:
    def test_negative_rate(self):
        assert "V003" in fired(
            doc(tenants=[{"name": "a", "model": "tiny", "rate_qps": -1.0}])
        )

    def test_no_request_source(self):
        assert "V003" in fired(doc(tenants=[{"name": "a", "model": "tiny"}]))

    def test_bad_arrival_time(self):
        assert "V003" in fired(
            doc(
                tenants=[
                    {"name": "a", "model": "tiny", "arrivals_ms": [1.0, "soon"]}
                ]
            )
        )

    def test_bad_deadline(self):
        assert "V003" in fired(
            doc(
                tenants=[
                    {
                        "name": "a",
                        "model": "tiny",
                        "rate_qps": 1.0,
                        "deadline_ms": 0,
                    }
                ]
            )
        )


class TestV004Pool:
    def test_lease_exceeds_pool(self):
        assert "V004" in fired(doc(num_gpus=2, gpus_per_query=3))

    def test_degraded_exceeds_lease(self):
        assert "V004" in fired(doc(gpus_per_query=2, degraded_gpus=3))

    def test_bad_horizon(self):
        assert "V004" in fired(doc(horizon_ms=-5))


class TestV005Algorithms:
    def test_unknown_algorithm(self):
        assert "V005" in fired(doc(algorithm="magic"))
        assert "V005" in fired(doc(degraded_algorithm="magic"))

    def test_absent_fields_use_defaults(self):
        assert "V005" not in fired(doc())


class TestV006Faults:
    def test_unparseable_spec(self):
        assert "V006" in fired(doc(faults=["bogus:1@2"]))

    def test_out_of_pool_target(self):
        assert "V006" in fired(doc(num_gpus=2, faults=["fail:5@1"]))

    def test_valid_specs_pass(self):
        assert "V006" not in fired(
            doc(faults=["fail:1@10", "slow:0@5x0.5", "loss:0.1:jitter"])
        )


class TestV007OverloadReachable:
    def test_unreachable_threshold_warns(self):
        report = lint_serve_config(doc(queue_capacity=4, overload_queue=8))
        assert "V007" in set(report.rule_ids())
        assert not report.errors  # warning, not error

    def test_errors_only_drops_warning(self):
        report = lint_serve_config(
            doc(queue_capacity=4, overload_queue=8), errors_only=True
        )
        assert "V007" not in set(report.rule_ids())


class TestV008RetryBudget:
    def test_zero_retries_with_failures_warns(self):
        assert "V008" in fired(doc(max_retries=0, faults=["fail:1@10"]))

    def test_zero_retries_without_failures_ok(self):
        assert "V008" not in fired(doc(max_retries=0))

    def test_bad_backoff(self):
        assert "V008" in fired(doc(retry_backoff_ms=-1.0))


class TestV004MaxBatch:
    def test_zero_and_non_integer_rejected(self):
        assert "V004" in fired(doc(max_batch=0))
        assert "V004" in fired(doc(max_batch=2.5))

    def test_absent_defaults_to_one(self):
        assert "V004" not in fired(doc())


def report_doc(**overrides):
    """A minimal clean servereport document, with overrides applied."""
    base = {
        "format": "repro.servereport/v1",
        "arrivals": 10,
        "admitted": 8,
        "completed": 6,
        "shed_queue_full": 2,
        "shed_deadline": 1,
        "failed": 1,
        "deadline_misses": 1,
        "retries": 0,
        "displaced": 0,
        "repairs": 0,
        "degraded_dispatches": 0,
        "revived": 0,
        "batched": 0,
        "elastic_grows": 0,
        "elastic_shrinks": 0,
    }
    base.update(overrides)
    return base


def report_fired(document):
    return set(lint_serve_report(document).rule_ids())


class TestV009ReportCounters:
    def test_clean_report(self):
        assert report_fired(report_doc()) == set()

    def test_real_report_is_clean(self):
        from repro.serve import run_scenario

        result = run_scenario("gpu-loss-recovery")
        document = result.report.to_dict()
        document["requests"] = [r.to_dict() for r in result.records]
        assert report_fired(document) == set()

    def test_wrong_format(self):
        assert "V009" in report_fired(report_doc(format="repro.serve/v1"))

    def test_non_integer_counter(self):
        assert "V009" in report_fired(report_doc(completed="six"))
        assert "V009" in report_fired(report_doc(revived=-1))
        assert "V009" in report_fired(report_doc(batched=True))

    def test_admission_identity(self):
        # an arrival that is neither admitted nor shed at the door
        assert "V009" in report_fired(report_doc(arrivals=11))

    def test_terminal_identity(self):
        # an admitted request with no terminal status
        assert "V009" in report_fired(report_doc(admitted=9, arrivals=11))

    def test_misses_bounded_by_completions(self):
        assert "V009" in report_fired(report_doc(deadline_misses=7))


class TestV010ReportRecords:
    def _records(self):
        return [
            {"id": "a-q0000", "status": "completed", "deadline_met": True},
            {
                "id": "a-q0001",
                "status": "completed",
                "deadline_met": True,
                "batched_with": "a-q0000",
            },
            {"id": "a-q0002", "status": "shed-queue"},
        ]

    def _doc(self, **overrides):
        base = report_doc(
            arrivals=3,
            admitted=2,
            completed=2,
            shed_queue_full=1,
            shed_deadline=0,
            failed=0,
            deadline_misses=0,
            batched=1,
            requests=self._records(),
        )
        base.update(overrides)
        return base

    def test_consistent_records_pass(self):
        assert report_fired(self._doc()) == set()

    def test_absent_records_skip_the_rule(self):
        assert report_fired(report_doc()) == set()

    def test_records_not_a_list(self):
        assert "V010" in report_fired(self._doc(requests="all of them"))

    def test_status_mismatch(self):
        records = self._records()
        records[0]["status"] = "failed"
        assert "V010" in report_fired(self._doc(requests=records))

    def test_batched_mismatch(self):
        assert "V010" in report_fired(self._doc(batched=0))

    def test_resize_sum_mismatch(self):
        records = self._records()
        records[0]["resizes"] = 2
        assert "V010" in report_fired(self._doc(requests=records))
