"""Tests for the serve rule pack (V0xx) on repro.serve/v1 documents."""

import pytest

from repro.lint import lint_serve_config
from repro.serve import scenario_config


def doc(**overrides):
    """A minimal clean serving document, with overrides applied."""
    base = {
        "format": "repro.serve/v1",
        "num_gpus": 4,
        "gpus_per_query": 2,
        "degraded_gpus": 1,
        "horizon_ms": 500.0,
        "queue_capacity": 16,
        "overload_queue": 8,
        "max_retries": 2,
        "tenants": [
            {"name": "a", "model": "tiny", "rate_qps": 10.0, "deadline_ms": 100.0}
        ],
    }
    base.update(overrides)
    return base


def fired(document):
    return set(lint_serve_config(document).rule_ids())


def test_clean_document():
    assert fired(doc()) == set()


@pytest.mark.parametrize("name", ["steady-state", "burst-overload", "gpu-loss"])
def test_real_scenarios_are_clean(name):
    assert fired(scenario_config(name).to_dict()) == set()


class TestV001Format:
    def test_wrong_marker(self):
        assert "V001" in fired(doc(format="repro.cache/v1"))

    def test_missing_marker(self):
        d = doc()
        del d["format"]
        assert "V001" in fired(d)


class TestV002Tenants:
    def test_empty_list(self):
        assert "V002" in fired(doc(tenants=[]))

    def test_not_a_list(self):
        assert "V002" in fired(doc(tenants="everyone"))

    def test_duplicate_names(self):
        t = {"name": "a", "model": "tiny", "rate_qps": 1.0}
        assert "V002" in fired(doc(tenants=[t, dict(t)]))

    def test_missing_model(self):
        assert "V002" in fired(doc(tenants=[{"name": "a", "rate_qps": 1.0}]))


class TestV003Arrivals:
    def test_negative_rate(self):
        assert "V003" in fired(
            doc(tenants=[{"name": "a", "model": "tiny", "rate_qps": -1.0}])
        )

    def test_no_request_source(self):
        assert "V003" in fired(doc(tenants=[{"name": "a", "model": "tiny"}]))

    def test_bad_arrival_time(self):
        assert "V003" in fired(
            doc(
                tenants=[
                    {"name": "a", "model": "tiny", "arrivals_ms": [1.0, "soon"]}
                ]
            )
        )

    def test_bad_deadline(self):
        assert "V003" in fired(
            doc(
                tenants=[
                    {
                        "name": "a",
                        "model": "tiny",
                        "rate_qps": 1.0,
                        "deadline_ms": 0,
                    }
                ]
            )
        )


class TestV004Pool:
    def test_lease_exceeds_pool(self):
        assert "V004" in fired(doc(num_gpus=2, gpus_per_query=3))

    def test_degraded_exceeds_lease(self):
        assert "V004" in fired(doc(gpus_per_query=2, degraded_gpus=3))

    def test_bad_horizon(self):
        assert "V004" in fired(doc(horizon_ms=-5))


class TestV005Algorithms:
    def test_unknown_algorithm(self):
        assert "V005" in fired(doc(algorithm="magic"))
        assert "V005" in fired(doc(degraded_algorithm="magic"))

    def test_absent_fields_use_defaults(self):
        assert "V005" not in fired(doc())


class TestV006Faults:
    def test_unparseable_spec(self):
        assert "V006" in fired(doc(faults=["bogus:1@2"]))

    def test_out_of_pool_target(self):
        assert "V006" in fired(doc(num_gpus=2, faults=["fail:5@1"]))

    def test_valid_specs_pass(self):
        assert "V006" not in fired(
            doc(faults=["fail:1@10", "slow:0@5x0.5", "loss:0.1:jitter"])
        )


class TestV007OverloadReachable:
    def test_unreachable_threshold_warns(self):
        report = lint_serve_config(doc(queue_capacity=4, overload_queue=8))
        assert "V007" in set(report.rule_ids())
        assert not report.errors  # warning, not error

    def test_errors_only_drops_warning(self):
        report = lint_serve_config(
            doc(queue_capacity=4, overload_queue=8), errors_only=True
        )
        assert "V007" not in set(report.rule_ids())


class TestV008RetryBudget:
    def test_zero_retries_with_failures_warns(self):
        assert "V008" in fired(doc(max_retries=0, faults=["fail:1@10"]))

    def test_zero_retries_without_failures_ok(self):
        assert "V008" not in fired(doc(max_retries=0))

    def test_bad_backoff(self):
        assert "V008" in fired(doc(retry_backoff_ms=-1.0))
