"""Property-based lint checks (hypothesis).

Random small DAGs are scheduled by every algorithm and the result is
required to pass the error-severity lint rules — the linter and the
schedulers must agree on what a legal schedule is.  Engine traces for
those schedules must likewise satisfy the trace causality rules, both
with no fault plan at all and with an *empty* :class:`FaultPlan`
(which must behave identically to no plan).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import OpGraph, schedule_graph
from repro.lint import lint_schedule, lint_trace
from repro.substrate.engine import EngineConfig, MultiGpuEngine
from repro.substrate.faults import FaultPlan

ALGORITHMS = ("sequential", "ios", "hios-lp", "hios-mr")


@st.composite
def small_dags(draw, max_ops: int = 10) -> OpGraph:
    """Random DAG with index-ordered edges (guaranteed acyclic)."""
    n = draw(st.integers(2, max_ops))
    costs = draw(
        st.lists(
            st.floats(0.1, 5.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    g = OpGraph()
    for i in range(n):
        g.add_operator(f"v{i}", cost=costs[i])
    for v in range(1, n):
        for u in range(v):
            if draw(st.booleans()) and draw(st.integers(0, 2)) == 0:
                g.add_edge(f"v{u}", f"v{v}", draw(st.floats(0.0, 3.0)))
    return g


@settings(max_examples=25, deadline=None)
@given(graph=small_dags(), num_gpus=st.integers(1, 3), window=st.integers(2, 4))
def test_all_algorithms_lint_clean(graph, num_gpus, window):
    for algorithm in ALGORITHMS:
        kwargs = {"window": window} if algorithm.startswith("hios") else {}
        result = schedule_graph(graph, algorithm, num_gpus=num_gpus, **kwargs)
        report = lint_schedule(
            graph,
            result.schedule,
            window=window if algorithm.startswith("hios") else None,
        )
        assert not report.errors, (
            f"{algorithm} produced a schedule with lint errors: "
            + "; ".join(d.format() for d in report.errors)
        )


@settings(max_examples=15, deadline=None)
@given(graph=small_dags(max_ops=8), num_gpus=st.integers(1, 3))
def test_engine_traces_pass_causality_rules(graph, num_gpus):
    schedule = schedule_graph(graph, "hios-lp", num_gpus=num_gpus, window=3).schedule

    bare = MultiGpuEngine().run(graph, schedule)
    report = lint_trace(graph, schedule, bare)
    assert not report.errors, "; ".join(d.format() for d in report.errors)

    # an empty fault plan must be indistinguishable from no plan
    empty = MultiGpuEngine(EngineConfig(faults=FaultPlan())).run(graph, schedule)
    report = lint_trace(graph, schedule, empty)
    assert not report.errors, "; ".join(d.format() for d in report.errors)
    assert empty.latency == bare.latency
    assert empty.op_finish == bare.op_finish
