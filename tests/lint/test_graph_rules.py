"""G0xx rules: each has one triggering and one passing case."""

from repro.core.graph import OpGraph
from repro.lint import LintContext, Linter, lint_graph


def clean_chain():
    g = OpGraph()
    for name in "abc":
        g.add_operator(name, cost=1.0)
    g.add_edge("a", "b", transfer=0.5)
    g.add_edge("b", "c", transfer=0.5)
    return g


def rules_fired(graph, **ctx_kwargs):
    report = Linter().run(LintContext(graph=graph, **ctx_kwargs))
    return set(report.rule_ids())


def test_clean_graph_has_no_findings():
    assert rules_fired(clean_chain()) == set()


class TestG001Acyclic:
    def test_trigger(self):
        g = OpGraph()
        for name in "abc":
            g.add_operator(name, cost=1.0)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        report = lint_graph(g)
        [d] = [d for d in report.errors if d.rule == "G001"]
        assert "cycle" in d.message

    def test_pass(self):
        assert "G001" not in rules_fired(clean_chain())


class TestG002Isolated:
    def test_trigger(self):
        g = clean_chain()
        g.add_operator("floating", cost=1.0)
        report = lint_graph(g)
        [d] = [d for d in report.diagnostics if d.rule == "G002"]
        assert "floating" in d.message
        assert d.location == "op:floating"

    def test_pass_single_op_graph(self):
        g = OpGraph()
        g.add_operator("only", cost=1.0)
        assert "G002" not in rules_fired(g)


class TestG003Sources:
    def test_trigger(self):
        g = clean_chain()
        g.add_operator("extra_in", cost=1.0)
        g.add_edge("extra_in", "c")
        assert "G003" in rules_fired(g)

    def test_pass(self):
        assert "G003" not in rules_fired(clean_chain())


class TestG004Sinks:
    def test_trigger(self):
        g = clean_chain()
        g.add_operator("extra_out", cost=1.0)
        g.add_edge("a", "extra_out")
        assert "G004" in rules_fired(g)

    def test_pass(self):
        assert "G004" not in rules_fired(clean_chain())


class TestG005Weights:
    def test_trigger_zero_cost(self):
        g = clean_chain()
        g.add_operator("free", cost=0.0)
        g.add_edge("c", "free")
        [d] = [d for d in lint_graph(g).warnings if d.rule == "G005"]
        assert "zero cost" in d.message

    def test_pass(self):
        assert "G005" not in rules_fired(clean_chain())


class TestG006FanOut:
    def test_trigger(self):
        g = OpGraph()
        g.add_operator("hub", cost=1.0)
        for i in range(5):
            g.add_operator(f"c{i}", cost=1.0)
            g.add_edge("hub", f"c{i}")
        report = Linter().run(LintContext(graph=g, fanout_threshold=4))
        [d] = [d for d in report.diagnostics if d.rule == "G006"]
        assert "hub" in d.message

    def test_pass_below_threshold(self):
        g = OpGraph()
        g.add_operator("hub", cost=1.0)
        for i in range(5):
            g.add_operator(f"c{i}", cost=1.0)
            g.add_edge("hub", f"c{i}")
        assert "G006" not in rules_fired(g)  # default threshold is 16


class TestG007Finite:
    def test_trigger_nan_cost(self):
        g = clean_chain()
        # NaN passes Operator's `cost < 0` construction check: the
        # comparison is False for NaN, which is exactly why this rule exists
        g.add_operator("poisoned", cost=float("nan"))
        g.add_edge("c", "poisoned")
        [d] = [d for d in lint_graph(g).errors if d.rule == "G007"]
        assert "non-finite" in d.message

    def test_trigger_inf_transfer(self):
        g = clean_chain()
        g.add_operator("far", cost=1.0)
        g.add_edge("c", "far", transfer=float("inf"))
        assert any(d.rule == "G007" for d in lint_graph(g).errors)

    def test_pass(self):
        assert "G007" not in rules_fired(clean_chain())


class TestGraphValidateWrapper:
    def test_validate_raises_on_nan(self):
        import pytest

        from repro.core.graph import GraphError

        g = clean_chain()
        g.add_operator("poisoned", cost=float("nan"))
        g.add_edge("c", "poisoned")
        with pytest.raises(GraphError, match="non-finite"):
            g.validate()

    def test_validate_message_keeps_cycle_contract(self):
        import pytest

        from repro.core.graph import GraphError

        g = OpGraph()
        g.add_operator("a", cost=1.0)
        g.add_operator("b", cost=1.0)
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(GraphError, match="cycle"):
            g.validate()

    def test_validate_ok(self):
        clean_chain().validate()
