"""F0xx rules: each has one triggering and one passing case."""

from repro.lint import lint_fault_plan
from repro.substrate.faults import (
    FaultPlan,
    GpuFailure,
    GpuSlowdown,
    LinkDegradation,
    TransferLoss,
)


def fired(plan, **kwargs):
    return set(lint_fault_plan(plan, **kwargs).rule_ids())


def test_empty_plan_is_clean():
    assert fired(FaultPlan(), num_gpus=2, horizon=10.0) == set()


def test_sane_plan_is_clean():
    plan = FaultPlan(
        [
            GpuSlowdown(gpu=1, at=2.0, factor=0.5),
            LinkDegradation(src=0, dst=1, at=3.0, bw_factor=0.5),
            TransferLoss(prob=0.05, max_retries=5),
        ]
    )
    assert fired(plan, num_gpus=2, horizon=10.0) == set()


class TestF001TargetsExist:
    def test_trigger_gpu_out_of_range(self):
        plan = FaultPlan([GpuFailure(gpu=7, at=1.0)])
        report = lint_fault_plan(plan, num_gpus=2)
        [d] = [d for d in report.errors if d.rule == "F001"]
        assert "GPU 7" in d.message

    def test_trigger_link_endpoint(self):
        plan = FaultPlan([LinkDegradation(src=0, dst=9, at=1.0, bw_factor=0.5)])
        assert "F001" in fired(plan, num_gpus=2)

    def test_pass_without_gpu_count(self):
        # no num_gpus context: the rule cannot judge, stays quiet
        plan = FaultPlan([GpuFailure(gpu=7, at=1.0)])
        assert "F001" not in fired(plan)

    def test_pass(self):
        plan = FaultPlan([GpuFailure(gpu=1, at=1.0)])
        assert "F001" not in fired(plan, num_gpus=2)


class TestF002Horizon:
    def test_trigger(self):
        plan = FaultPlan([GpuSlowdown(gpu=0, at=50.0, factor=0.5)])
        report = lint_fault_plan(plan, num_gpus=2, horizon=10.0)
        [d] = [d for d in report.warnings if d.rule == "F002"]
        assert "horizon" in d.message

    def test_pass_without_horizon(self):
        plan = FaultPlan([GpuSlowdown(gpu=0, at=50.0, factor=0.5)])
        assert "F002" not in fired(plan, num_gpus=2)

    def test_pass(self):
        plan = FaultPlan([GpuSlowdown(gpu=0, at=5.0, factor=0.5)])
        assert "F002" not in fired(plan, num_gpus=2, horizon=10.0)


class TestF003Contradictions:
    def test_trigger_slowdown_after_failstop(self):
        plan = FaultPlan(
            [GpuFailure(gpu=0, at=2.0), GpuSlowdown(gpu=0, at=5.0, factor=0.5)]
        )
        report = lint_fault_plan(plan, num_gpus=2)
        [d] = [d for d in report.warnings if d.rule == "F003"]
        assert "unreachable" in d.message

    def test_trigger_second_failure_unreachable(self):
        plan = FaultPlan([GpuFailure(gpu=0, at=2.0), GpuFailure(gpu=1, at=5.0)])
        assert "F003" in fired(plan, num_gpus=2)

    def test_trigger_link_through_dead_gpu(self):
        plan = FaultPlan(
            [
                GpuFailure(gpu=1, at=2.0),
                LinkDegradation(src=0, dst=1, at=3.0, bw_factor=0.5),
            ]
        )
        assert "F003" in fired(plan, num_gpus=2)

    def test_pass_slowdown_before_failure(self):
        plan = FaultPlan(
            [GpuSlowdown(gpu=0, at=1.0, factor=0.5), GpuFailure(gpu=0, at=5.0)]
        )
        assert "F003" not in fired(plan, num_gpus=2)


class TestF004FiniteParams:
    def test_trigger_nan_time(self):
        # NaN passes the `at < 0` construction check — same trap as G007
        plan = FaultPlan([GpuFailure(gpu=0, at=float("nan"))])
        report = lint_fault_plan(plan, num_gpus=2)
        [d] = [d for d in report.errors if d.rule == "F004"]
        assert "nan" in d.message

    def test_pass(self):
        plan = FaultPlan([GpuFailure(gpu=0, at=2.0)])
        assert "F004" not in fired(plan, num_gpus=2)


class TestF005LossBudget:
    def test_trigger(self):
        plan = FaultPlan([TransferLoss(prob=0.9, max_retries=2)])
        report = lint_fault_plan(plan)
        [d] = [d for d in report.warnings if d.rule == "F005"]
        assert "retry" in d.message

    def test_pass(self):
        plan = FaultPlan([TransferLoss(prob=0.05, max_retries=5)])
        assert "F005" not in fired(plan)


class TestF006NoopSpecs:
    def test_trigger_slowdown(self):
        plan = FaultPlan([GpuSlowdown(gpu=0, at=1.0, factor=1.0)])
        report = lint_fault_plan(plan)
        [d] = [d for d in report.infos if d.rule == "F006"]
        assert "no effect" in d.message

    def test_trigger_link(self):
        plan = FaultPlan([LinkDegradation(src=0, dst=1, at=1.0, bw_factor=1.0)])
        assert "F006" in fired(plan)

    def test_pass(self):
        plan = FaultPlan([GpuSlowdown(gpu=0, at=1.0, factor=0.5)])
        assert "F006" not in fired(plan)
