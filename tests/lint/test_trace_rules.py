"""T0xx rules: each has one triggering and one passing case.

Triggering traces are hand-built (the engine never emits them — that is
the point); the passing cases use real engine output.
"""

from repro.core.graph import OpGraph
from repro.core.schedule import Schedule, Stage
from repro.lint import LintContext, Linter, lint_trace
from repro.substrate.engine import ExecutionTrace, MultiGpuEngine


def chain():
    g = OpGraph()
    for name in "ab":
        g.add_operator(name, cost=1.0)
    g.add_edge("a", "b", transfer=0.5)
    return g


def split_schedule():
    return Schedule(2, [Stage(0, ("a",)), Stage(1, ("b",))])


def make_trace(**overrides):
    """A physically consistent baseline trace for chain()+split_schedule()."""
    base = dict(
        latency=2.6,
        op_launch={"a": 0.0, "b": 0.1},
        op_start={"a": 0.0, "b": 1.6},
        op_finish={"a": 1.0, "b": 2.6},
        transfers=[],
        gpu_busy={0: 1.0, 1: 1.0},
    )
    base.update(overrides)
    return ExecutionTrace(**base)


def fired(trace, graph=None, schedule=None):
    ctx = LintContext(graph=graph, schedule=schedule, trace=trace)
    return set(Linter().for_packs("trace").run(ctx).rule_ids())


def test_baseline_trace_is_clean():
    assert fired(make_trace(), chain(), split_schedule()) == set()


def test_engine_trace_is_clean():
    g, s = chain(), split_schedule()
    trace = MultiGpuEngine().run(g, s)
    assert lint_trace(g, s, trace).ok


class TestT001Timestamps:
    def test_trigger_negative(self):
        t = make_trace(op_start={"a": -1.0, "b": 1.6})
        assert "T001" in fired(t)

    def test_trigger_nan_latency(self):
        t = make_trace(latency=float("nan"))
        assert "T001" in fired(t)

    def test_trigger_negative_busy(self):
        t = make_trace(gpu_busy={0: -0.5})
        assert "T001" in fired(t)

    def test_pass(self):
        assert "T001" not in fired(make_trace())


class TestT002FinishAfterStart:
    def test_trigger_reversed(self):
        t = make_trace(op_finish={"a": 1.0, "b": 1.0})  # b: start 1.6 > finish 1.0
        assert "T002" in fired(t)

    def test_trigger_finish_without_start(self):
        t = make_trace(op_start={"a": 0.0})
        assert "T002" in fired(t)

    def test_pass(self):
        assert "T002" not in fired(make_trace())


class TestT003LaunchBeforeStart:
    def test_trigger(self):
        t = make_trace(op_launch={"a": 0.0, "b": 2.0})  # b starts at 1.6 < launch
        assert "T003" in fired(t)

    def test_pass(self):
        assert "T003" not in fired(make_trace())


class TestT004Causality:
    def test_trigger_start_before_producer_finish(self):
        t = make_trace(op_start={"a": 0.0, "b": 0.5})  # a finishes at 1.0
        assert "T004" in fired(t, graph=chain())

    def test_trigger_producer_never_finished(self):
        t = make_trace(op_finish={"b": 2.6})
        assert "T004" in fired(t, graph=chain())

    def test_pass(self):
        assert "T004" not in fired(make_trace(), graph=chain())


class TestT005TransferCausality:
    def test_trigger_ignores_transfer_time(self):
        # b starts at 1.2: after a's finish (1.0) but before 1.0 + t(a,b)=0.5
        t = make_trace(op_start={"a": 0.0, "b": 1.2})
        assert "T005" in fired(t, graph=chain(), schedule=split_schedule())
        # and T004 stays quiet: plain causality holds
        assert "T004" not in fired(t, graph=chain(), schedule=split_schedule())

    def test_pass_same_gpu_needs_no_transfer(self):
        sched = Schedule(1, [Stage(0, ("a",)), Stage(0, ("b",))])
        t = make_trace(op_start={"a": 0.0, "b": 1.0}, op_finish={"a": 1.0, "b": 2.0},
                       latency=2.0, gpu_busy={0: 2.0})
        assert "T005" not in fired(t, graph=chain(), schedule=sched)

    def test_pass_checkpointed_producer_exempt(self):
        from repro.substrate.faults import FailureEvent

        failure = FailureEvent(
            gpu=0, time=1.1, finished=frozenset({"a"}), in_flight=frozenset()
        )
        # post-repair splice: b re-staged from the host checkpoint, so it
        # may start before finish(a) + transfer
        t = make_trace(op_start={"a": 0.0, "b": 1.2}, failure=failure)
        assert "T005" not in fired(t, graph=chain(), schedule=split_schedule())


class TestT006ScheduleAgreement:
    def test_trigger_unscheduled_op_in_trace(self):
        t = make_trace(op_finish={"a": 1.0, "b": 2.6, "ghost": 1.0})
        assert "T006" in fired(t, schedule=split_schedule())

    def test_trigger_scheduled_op_missing(self):
        t = make_trace(op_launch={"a": 0.0}, op_start={"a": 0.0},
                       op_finish={"a": 1.0}, latency=1.0)
        assert "T006" in fired(t, schedule=split_schedule())

    def test_pass_partial_failure_trace(self):
        from repro.substrate.faults import FailureEvent

        failure = FailureEvent(
            gpu=1, time=1.1, finished=frozenset({"a"}), in_flight=frozenset({"b"})
        )
        t = make_trace(op_finish={"a": 1.0}, latency=1.1, failure=failure)
        assert "T006" not in fired(t, schedule=split_schedule())

    def test_pass(self):
        assert "T006" not in fired(make_trace(), schedule=split_schedule())


class TestT007StageOverlap:
    def test_trigger(self):
        g = OpGraph()
        for name in "ab":
            g.add_operator(name, cost=1.0)  # independent: no edge
        sched = Schedule(1, [Stage(0, ("a",)), Stage(0, ("b",))])
        t = ExecutionTrace(
            latency=1.5,
            op_launch={"a": 0.0, "b": 0.0},
            op_start={"a": 0.0, "b": 0.5},  # b starts while a still runs
            op_finish={"a": 1.0, "b": 1.5},
            transfers=[],
            gpu_busy={0: 1.5},
        )
        assert "T007" in fired(t, graph=g, schedule=sched)

    def test_pass(self):
        sched = Schedule(1, [Stage(0, ("a",)), Stage(0, ("b",))])
        t = make_trace(op_start={"a": 0.0, "b": 1.0},
                       op_finish={"a": 1.0, "b": 2.0},
                       latency=2.0, gpu_busy={0: 2.0})
        assert "T007" not in fired(t, graph=chain(), schedule=sched)


class TestT008Latency:
    def test_trigger(self):
        t = make_trace(latency=1.0)  # last finish is 2.6
        assert "T008" in fired(t)

    def test_pass_failure_trace_exempt(self):
        from repro.substrate.faults import FailureEvent

        failure = FailureEvent(
            gpu=0, time=1.0, finished=frozenset({"a"}), in_flight=frozenset()
        )
        t = make_trace(latency=1.0, op_finish={"a": 1.0}, failure=failure)
        assert "T008" not in fired(t)

    def test_pass(self):
        assert "T008" not in fired(make_trace())


class TestTraceSerialization:
    def test_round_trip(self):
        import json

        g, s = chain(), split_schedule()
        trace = MultiGpuEngine().run(g, s)
        doc = json.loads(json.dumps(trace.to_dict()))
        assert doc["format"] == "repro.trace/v1"
        back = ExecutionTrace.from_dict(doc)
        assert back.latency == trace.latency
        assert back.op_finish == trace.op_finish
        assert back.gpu_busy == trace.gpu_busy
        assert back.transfers == trace.transfers

    def test_round_trip_with_failure(self):
        import dataclasses
        import json

        from repro.substrate.engine import EngineConfig
        from repro.substrate.faults import FaultPlan, parse_fault

        g, s = chain(), split_schedule()
        cfg = EngineConfig(faults=FaultPlan([parse_fault("fail:1@0.5")]))
        trace = MultiGpuEngine(cfg).run(g, s)
        assert trace.failure is not None
        back = ExecutionTrace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert dataclasses.asdict(back.failure) == dataclasses.asdict(trace.failure)

    def test_rejects_unknown_format(self):
        import pytest

        from repro.substrate.engine import EngineError

        with pytest.raises(EngineError, match="unsupported trace format"):
            ExecutionTrace.from_dict({"format": "repro.trace/v99", "latency": 1.0})
