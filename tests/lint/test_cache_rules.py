"""C0xx rules: each has one triggering and one passing case."""

import pytest

from repro.lint import lint_cache_document
from repro.sweep import RandomDagSpec, ResultCache, WorkUnit
from repro.sweep.cache import CACHE_FORMAT
from repro.sweep.keying import CACHE_SCHEMA_VERSION, content_key


def doc(**overrides):
    base = {
        "format": CACHE_FORMAT,
        "schema_version": CACHE_SCHEMA_VERSION,
        "key": content_key({"probe": 1}),
        "kind": "latency",
        "algorithm": "hios-lp",
        "payload": {"latency": 12.5},
        "meta": {"scheduling_time_s": 0.01},
    }
    base.update(overrides)
    return base


def fired(document):
    return set(lint_cache_document(document).rule_ids())


def test_well_formed_entry_is_clean():
    assert fired(doc()) == set()


def test_real_cache_entry_is_clean(tmp_path):
    # what ResultCache.put writes must pass its own lint rules
    import json

    unit = WorkUnit(
        figure="fig8",
        x=30,
        instance=0,
        algorithm="sequential",
        spec=RandomDagSpec(seed=0, num_ops=10, num_layers=3),
    )
    cache = ResultCache(tmp_path)
    cache.put(unit.key(), {"latency": 1.0}, kind=unit.kind, algorithm=unit.algorithm)
    entry = json.loads(cache.path_for(unit.key()).read_text())
    assert fired(entry) == set()


class TestC001Format:
    def test_trigger(self):
        report = lint_cache_document(doc(format="repro.trace/v1"))
        [d] = [d for d in report.errors if d.rule == "C001"]
        assert "repro.cache/v1" in d.message

    def test_missing_format(self):
        d = doc()
        del d["format"]
        assert "C001" in fired(d)


class TestC002SchemaVersionValid:
    def test_missing(self):
        d = doc()
        del d["schema_version"]
        assert "C002" in fired(d)

    @pytest.mark.parametrize("bad", [0, -1, "1", 1.0, True, None])
    def test_invalid(self, bad):
        assert "C002" in fired(doc(schema_version=bad))

    def test_pass(self):
        assert "C002" not in fired(doc())


class TestC003SchemaVersionCurrent:
    def test_stale_version_warns(self):
        report = lint_cache_document(doc(schema_version=CACHE_SCHEMA_VERSION + 7))
        assert "C003" in set(report.rule_ids())
        assert report.ok  # warning, not error

    def test_invalid_version_is_c002s_problem(self):
        assert "C003" not in fired(doc(schema_version=0))


class TestC004Key:
    @pytest.mark.parametrize(
        "bad",
        ["", "zz", "A" * 64, content_key({"x": 1}).upper(), 42, None],
    )
    def test_trigger(self, bad):
        assert "C004" in fired(doc(key=bad))

    def test_pass(self):
        assert "C004" not in fired(doc())


class TestC005Payload:
    @pytest.mark.parametrize(
        "bad",
        [None, {}, [], "x", {"latency": "fast"}, {"latency": True}, {"latency": None}],
    )
    def test_trigger(self, bad):
        assert "C005" in fired(doc(payload=bad))

    def test_non_finite_values_trigger(self):
        assert "C005" in fired(doc(payload={"latency": float("inf")}))
        assert "C005" in fired(doc(payload={"latency": float("nan")}))

    def test_pass_multi_field(self):
        clean = doc(payload={"measured_ms": 1.0, "predicted_ms": 2})
        assert "C005" not in fired(clean)


class TestC006Kind:
    def test_unknown_kind_warns(self):
        report = lint_cache_document(doc(kind="exotic"))
        assert "C006" in set(report.rule_ids())
        assert report.ok

    @pytest.mark.parametrize("kind", ["latency", "measured", "sched-cost"])
    def test_known_kinds_pass(self, kind):
        assert "C006" not in fired(doc(kind=kind))

    def test_missing_kind_tolerated(self):
        d = doc()
        del d["kind"]
        assert "C006" not in fired(d)
