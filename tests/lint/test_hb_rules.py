"""Tests for the hb rule pack (H0xx) on repro.hbreport/v1 documents."""

import pytest

from repro.core import OpGraph, Schedule, Stage
from repro.lint import lint_hb_report
from repro.sanitize import ExecModel, analyze


def doc(**overrides):
    """A real, clean analyzer report with overrides applied."""
    graph = OpGraph.from_edges(
        {"a": 1.0, "b": 1.0}, [("a", "b", 0.5)]
    )
    schedule = Schedule(2, [Stage(0, ("a",)), Stage(1, ("b",))])
    base = analyze(graph, schedule).to_dict()
    base.update(overrides)
    return base


def fired(document):
    return set(lint_hb_report(document).rule_ids())


def messages(document, rule_id):
    return [
        d.message
        for d in lint_hb_report(document).diagnostics
        if d.rule == rule_id
    ]


def test_clean_report():
    assert fired(doc()) == set()


class TestH001Format:
    def test_wrong_marker(self):
        assert "H001" in fired(doc(format="repro.trace/v1"))

    def test_missing_marker(self):
        d = doc()
        del d["format"]
        assert "H001" in fired(d)

    @pytest.mark.parametrize(
        "key, bad",
        [
            ("model", "fast"),
            ("stats", [1, 2]),
            ("findings", {"kind": "race"}),
            ("summary", None),
        ],
    )
    def test_section_shapes(self, key, bad):
        assert "H001" in fired(doc(**{key: bad}))


class TestH002Taxonomy:
    def test_unknown_kind(self):
        d = doc(
            findings=[
                {"kind": "ghost", "severity": "error", "message": "boo"}
            ]
        )
        assert "unknown kind 'ghost'" in messages(d, "H002")[0]

    def test_severity_mismatch(self):
        d = doc(
            findings=[
                {"kind": "race", "severity": "info", "message": "m"}
            ]
        )
        assert "the analyzer always emits 'error'" in messages(d, "H002")[0]

    def test_missing_message(self):
        d = doc(
            findings=[{"kind": "nondeterminism", "severity": "info"}]
        )
        assert "has no message" in messages(d, "H002")[0]

    def test_non_object_finding(self):
        assert "H002" in fired(doc(findings=["oops"]))


class TestH003CleanGate:
    def test_error_finding_fails_the_gate(self, deadlock_report):
        msgs = messages(deadlock_report, "H003")
        assert len(msgs) == 1
        assert "unresolved deadlock error" in msgs[0]

    def test_warnings_pass_the_gate(self):
        d = doc(
            findings=[
                {
                    "kind": "transfer-hazard",
                    "severity": "warning",
                    "message": "m",
                }
            ],
            summary={"errors": 0, "warnings": 1, "info": 0},
        )
        assert "H003" not in fired(d)


@pytest.fixture
def deadlock_report():
    graph = OpGraph.from_edges(
        {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}, [("a", "b"), ("c", "d")]
    )
    schedule = Schedule(2)
    for gpu, op in [(0, "d"), (0, "a"), (1, "b"), (1, "c")]:
        schedule.append_op(gpu, op)
    return analyze(graph, schedule).to_dict()


def test_real_deadlock_report_only_fails_the_gate(deadlock_report):
    # the analyzer's own output is always shape- and taxonomy-clean:
    # the only diagnostic is the H003 dirty-artifact gate
    assert fired(deadlock_report) == {"H003"}


class TestH004Consistency:
    def test_summary_counter_mismatch(self):
        d = doc(summary={"errors": 3, "warnings": 0, "info": 0})
        assert "summary.errors is 3" in messages(d, "H004")[0]

    def test_negative_stat(self):
        d = doc()
        d["stats"]["events"] = -1
        assert "non-negative integer" in messages(d, "H004")[0]

    def test_bool_stat_rejected(self):
        d = doc()
        d["stats"]["events"] = True
        assert "H004" in fired(d)

    def test_malformed_witness_step(self):
        d = doc(
            findings=[
                {
                    "kind": "deadlock",
                    "severity": "error",
                    "message": "m",
                    "witness": [{"event": "launch('a')"}],  # no edge
                }
            ],
            summary={"errors": 1, "warnings": 0, "info": 0},
        )
        assert any(
            "must be an object with event and edge" in m
            for m in messages(d, "H004")
        )

    def test_witness_not_a_list(self):
        d = doc(
            findings=[
                {
                    "kind": "deadlock",
                    "severity": "error",
                    "message": "m",
                    "witness": "a->b",
                }
            ],
            summary={"errors": 1, "warnings": 0, "info": 0},
        )
        assert any(
            "expected an array of steps" in m for m in messages(d, "H004")
        )


class TestH005ModelFlags:
    def test_missing_model_key(self):
        d = doc()
        del d["model"]["data_wait"]
        assert "model omits data_wait" in messages(d, "H005")[0]

    def test_no_sync_audit_mode_noted(self):
        graph = OpGraph.from_edges({"a": 1.0}, [])
        schedule = Schedule(1, [Stage(0, ("a",))])
        d = analyze(graph, schedule, ExecModel(data_wait=False)).to_dict()
        assert any("no-sync backend" in m for m in messages(d, "H005"))
