"""Serial / parallel / cache-warm runs of real figure drivers must be
bit-identical — the acceptance property of the sweep engine.

Reduced configurations (tiny DAGs, 2 instances) keep this fast while
still exercising multi-x, multi-instance, multi-algorithm aggregation.
"""

import functools

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments import fig08_num_operators, fig10_parallelism_degree
from repro.sweep import RandomDagSpec


def identical(a, b):
    """Bit-exact SeriesResult equality on everything the figure plots."""
    assert a.x == b.x
    assert a.series == b.series  # float == : bit-identical, no tolerance
    assert a.extras["std"] == b.extras["std"]


@pytest.fixture
def tiny_figures(monkeypatch):
    monkeypatch.setattr(fig08_num_operators, "OPERATOR_COUNTS_FAST", (30, 60))
    monkeypatch.setattr(fig10_parallelism_degree, "LAYER_COUNTS", (4, 6))
    # shrink fig10's 200-op default DAGs too
    monkeypatch.setattr(
        fig10_parallelism_degree,
        "RandomDagSpec",
        functools.partial(RandomDagSpec, num_ops=40),
    )


def config(**overrides):
    base = dict(fast=True, instances=2, jobs=1, use_cache=False, progress=False)
    base.update(overrides)
    return ExperimentConfig(**base)


class TestFig8:
    def test_parallel_matches_serial(self, tiny_figures):
        serial = fig08_num_operators.run(config(jobs=1))
        parallel = fig08_num_operators.run(config(jobs=4))
        identical(serial, parallel)
        assert parallel.extras["sweep"]["jobs"] == 4

    def test_batch_units_one_matches_serial(self, tiny_figures):
        # degenerate batching (one unit per batch) must change nothing
        serial = fig08_num_operators.run(config(jobs=1))
        forced = fig08_num_operators.run(config(jobs=4, batch_units=1))
        identical(serial, forced)

    def test_cache_warm_rerun_matches(self, tiny_figures, tmp_path):
        cfg = config(use_cache=True, cache_dir=str(tmp_path))
        cold = fig08_num_operators.run(cfg)
        warm = fig08_num_operators.run(cfg)
        identical(cold, warm)
        assert warm.extras["sweep"]["cache_hits"] > 0
        assert warm.extras["sweep"]["executed"] == 0

    def test_parallel_cold_then_serial_warm(self, tiny_figures, tmp_path):
        # results persisted during a parallel run must satisfy a serial reader
        cold = fig08_num_operators.run(
            config(jobs=4, use_cache=True, cache_dir=str(tmp_path))
        )
        warm = fig08_num_operators.run(
            config(jobs=1, use_cache=True, cache_dir=str(tmp_path))
        )
        identical(cold, warm)
        assert warm.extras["sweep"]["executed"] == 0


class TestFig10:
    def test_parallel_matches_serial(self, tiny_figures):
        serial = fig10_parallelism_degree.run(config(jobs=1))
        parallel = fig10_parallelism_degree.run(config(jobs=4))
        identical(serial, parallel)

    def test_batch_units_one_matches_serial(self, tiny_figures):
        serial = fig10_parallelism_degree.run(config(jobs=1))
        forced = fig10_parallelism_degree.run(config(jobs=4, batch_units=1))
        identical(serial, forced)

    def test_cache_warm_rerun_matches(self, tiny_figures, tmp_path):
        cfg = config(use_cache=True, cache_dir=str(tmp_path))
        cold = fig10_parallelism_degree.run(cfg)
        warm = fig10_parallelism_degree.run(cfg)
        identical(cold, warm)
        assert warm.extras["sweep"]["executed"] == 0


def test_seed_contract_extending_the_sweep(tiny_figures, monkeypatch):
    """Instance i uses seed0 + i for every x — so adding an x value
    cannot change the workloads (hence results) of existing points."""
    two = fig08_num_operators.run(config())
    assert two.x == [30, 60]
    monkeypatch.setattr(fig08_num_operators, "OPERATOR_COUNTS_FAST", (30, 60, 90))
    three = fig08_num_operators.run(config())
    for alg, values in two.series.items():
        assert three.series[alg][:2] == values
