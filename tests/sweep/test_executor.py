"""run_units: ordering, dedup, cache interplay, parallel dispatch."""

import io
import os

import pytest

from repro.sweep import (
    RandomDagSpec,
    ResultCache,
    SweepError,
    SweepProgress,
    WorkUnit,
    resolve_jobs,
    run_units,
)
import repro.sweep.executor as executor_mod

TINY = dict(num_ops=12, num_layers=4)


def unit(seed, algorithm="hios-lp", num_gpus=4):
    kwargs = (("window", 3),) if algorithm.startswith("hios") else ()
    return WorkUnit(
        figure="test",
        x=seed,
        instance=0,
        algorithm=algorithm,
        spec=RandomDagSpec(seed=seed, num_gpus=num_gpus, **TINY),
        schedule_kwargs=kwargs,
    )


class TestResolveJobs:
    def test_none_and_zero_mean_one_per_cpu(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit_value_kept(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)


class TestSerial:
    def test_payloads_in_input_order(self):
        units = [unit(s) for s in (3, 1, 2)]
        payloads, stats = run_units(units, jobs=1)
        assert [set(p) for p in payloads] == [{"latency"}] * 3
        # order matches input, not key/dispatch order: re-running each
        # unit alone must reproduce its slot
        for u, p in zip(units, payloads):
            alone, _ = run_units([u], jobs=1)
            assert alone[0] == p
        assert (stats.total, stats.executed, stats.deduped) == (3, 3, 0)

    def test_identical_units_execute_once(self, monkeypatch):
        calls = []
        real = executor_mod.execute_unit

        def counting(u):
            calls.append(u)
            return real(u)

        monkeypatch.setattr(executor_mod, "execute_unit", counting)
        units = [unit(1), unit(1), unit(1)]
        payloads, stats = run_units(units, jobs=1)
        assert len(calls) == 1
        assert payloads[0] == payloads[1] == payloads[2]
        assert (stats.executed, stats.deduped) == (1, 2)

    def test_single_gpu_baseline_dedups_across_gpu_counts(self, monkeypatch):
        calls = []
        real = executor_mod.execute_unit

        def counting(u):
            calls.append(u)
            return real(u)

        monkeypatch.setattr(executor_mod, "execute_unit", counting)
        units = [unit(1, "sequential", num_gpus=g) for g in (2, 3, 4)]
        payloads, stats = run_units(units, jobs=1)
        assert len(calls) == 1
        assert payloads[0] == payloads[1] == payloads[2]
        assert stats.deduped == 2

    def test_worker_error_propagates(self):
        with pytest.raises(Exception, match="bogus"):
            run_units([unit(1, algorithm="bogus")], jobs=1)


class TestCacheInterplay:
    def test_warm_rerun_executes_nothing(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        units = [unit(s) for s in (1, 2)]
        cold, stats_cold = run_units(units, jobs=1, cache=cache)
        assert (stats_cold.executed, stats_cold.cache_hits) == (2, 0)

        monkeypatch.setattr(
            executor_mod,
            "execute_unit",
            lambda u: pytest.fail("warm run must not execute"),
        )
        warm, stats_warm = run_units(units, jobs=1, cache=ResultCache(tmp_path))
        assert warm == cold
        assert (stats_warm.executed, stats_warm.cache_hits) == (0, 2)

    def test_interrupted_sweep_resumes(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_units([unit(1)], jobs=1, cache=cache)  # the part that completed
        _, stats = run_units(
            [unit(1), unit(2)], jobs=1, cache=ResultCache(tmp_path)
        )
        assert (stats.cache_hits, stats.executed) == (1, 1)

    def test_corrupt_entry_reexecuted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold, _ = run_units([unit(1)], jobs=1, cache=cache)
        cache.path_for(unit(1).key()).write_text("{broken")
        warm, stats = run_units([unit(1)], jobs=1, cache=ResultCache(tmp_path))
        assert warm == cold
        assert (stats.cache_hits, stats.executed) == (0, 1)


class TestParallel:
    def test_parallel_equals_serial(self):
        units = [unit(s, alg) for s in (1, 2) for alg in ("sequential", "hios-lp")]
        serial, _ = run_units(units, jobs=1)
        parallel, stats = run_units(units, jobs=3)
        assert parallel == serial
        assert stats.jobs == 3

    def test_parallel_populates_cache(self, tmp_path):
        units = [unit(s) for s in (1, 2, 3)]
        cold, _ = run_units(units, jobs=2, cache=ResultCache(tmp_path))
        warm, stats = run_units(units, jobs=2, cache=ResultCache(tmp_path))
        assert warm == cold
        assert (stats.cache_hits, stats.executed) == (3, 0)

    def test_worker_error_propagates(self):
        units = [unit(1), unit(2, algorithm="bogus"), unit(3)]
        with pytest.raises(Exception, match="bogus"):
            run_units(units, jobs=2)


def shared_spec_units():
    """Six units over two specs — three algorithms per spec, so the
    worker-side workload memo has two reuse opportunities per spec."""
    units = []
    for seed in (1, 2):
        spec = RandomDagSpec(seed=seed, num_gpus=4, **TINY)
        for alg in ("sequential", "inter-lp", "hios-lp"):
            kwargs = (("window", 3),) if alg == "hios-lp" else ()
            units.append(WorkUnit("test", seed, 0, alg, spec, kwargs))
    return units


class TestBatched:
    """The persistent-worker batched path: parity, counters, planning."""

    def test_inline_batched_path_parity_and_counters(self, monkeypatch):
        # cpu_count=1 caps workers at one, forcing the pool-free inline
        # batched path regardless of the machine running the tests
        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 1)
        units = shared_spec_units()
        serial, _ = run_units(units, jobs=1)
        batched, stats = run_units(units, jobs=4, batch_units=3)
        assert batched == serial
        assert stats.batches == 2  # one spec group per batch, kept whole
        assert stats.worker_workload_reuses == 4  # 2 reuses per 3-unit group

    def test_pool_path_parity_and_counters(self, monkeypatch):
        # pretend there are CPUs to spare so a real worker pool spins up
        # even on a single-core machine
        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 4)
        units = shared_spec_units()
        serial, _ = run_units(units, jobs=1)
        pooled, stats = run_units(units, jobs=2, batch_units=3)
        assert pooled == serial
        assert stats.batches == 2
        assert stats.worker_workload_reuses == 4

    def test_batch_units_one_matches_serial(self):
        units = shared_spec_units()
        serial, _ = run_units(units, jobs=1)
        forced, stats = run_units(units, jobs=2, batch_units=1)
        assert forced == serial
        assert stats.batches == len(units)  # every unit its own batch
        # reuse count is path-dependent here (workers persist across
        # singleton batches), so only parity and batching are pinned

    def test_batch_units_validated(self):
        with pytest.raises(ValueError, match="batch_units"):
            run_units([unit(1), unit(2)], jobs=2, batch_units=0)

    def test_missing_payload_raises_sweep_error(self, monkeypatch):
        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 1)
        real = executor_mod.execute_batch

        def dropping(specs, items):
            results, reuses = real(specs, items)
            return results[:-1], reuses  # lose the last unit of the batch

        monkeypatch.setattr(executor_mod, "execute_batch", dropping)
        with pytest.raises(SweepError, match=r"1 of 2 units \(input indices 1\)"):
            run_units([unit(1), unit(2)], jobs=2, batch_units=2)

    def test_plan_batches_keeps_spec_groups_whole(self):
        units = shared_spec_units()
        to_run = list(range(len(units)))
        batches = executor_mod._plan_batches(units, to_run, batch_size=2)
        # groups of 3 exceed batch_size but not 2x, so they stay whole
        assert batches == [[0, 1, 2], [3, 4, 5]]

    def test_plan_batches_splits_oversized_groups(self):
        spec = RandomDagSpec(seed=1, num_gpus=4, **TINY)
        units = [
            WorkUnit("test", 1, i, "hios-lp", spec, (("window", w),))
            for i, w in enumerate(range(1, 8))
        ]
        batches = executor_mod._plan_batches(units, list(range(7)), batch_size=2)
        # 7 > 2x2: cut into near-equal chunks, nothing dropped
        assert sorted(i for b in batches for i in b) == list(range(7))
        assert all(len(b) <= 3 for b in batches)


class TestProgress:
    def test_deterministic_lines(self):
        out = io.StringIO()
        progress = SweepProgress("fig8", 3, stream=out, eta=False)
        units = [unit(1), unit(1), unit(2)]
        run_units(units, jobs=1, progress=progress)
        lines = [line for line in out.getvalue().splitlines() if line]
        assert lines[-1].startswith("[fig8] 3/3 units (100%)")
        assert "1 deduped" in lines[-1]

    def test_disabled_progress_is_silent(self):
        out = io.StringIO()
        progress = SweepProgress("fig8", 1, stream=out, enabled=False)
        run_units([unit(1)], jobs=1, progress=progress)
        assert out.getvalue() == ""
