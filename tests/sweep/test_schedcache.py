"""ScheduleCache: keying, round-trip bit-identity, defensive reads,
uncacheable profiles, and kind-scoped maintenance alongside the sweep
cache in one shared tree."""

import json
from dataclasses import replace

import pytest

from repro.core import schedule_graph
from repro.costmodel.concurrency import (
    MaxConcurrencyModel,
    SaturationConcurrencyModel,
    SumConcurrencyModel,
    TableConcurrencyModel,
)
from repro.models import random_dag_profile
from repro.sweep import (
    ResultCache,
    ScheduleCache,
    cached_schedule,
    profile_fingerprint,
    schedule_key,
)
from repro.sweep.cache import CACHE_FORMAT
from repro.sweep.schedcache import (
    SCHED_CACHE_FORMAT,
    SCHED_CACHE_KIND,
    concurrency_fingerprint,
)


@pytest.fixture(scope="module")
def profile():
    return random_dag_profile(seed=5, num_ops=24, num_layers=4, num_gpus=2)


class TestKeying:
    def test_key_is_stable(self, profile):
        assert schedule_key(profile, "hios-lp", {"window": 3}) == schedule_key(
            profile, "hios-lp", {"window": 3}
        )

    def test_key_separates_algorithm_kwargs_and_profile(self, profile):
        base = schedule_key(profile, "hios-lp", {"window": 3})
        assert base != schedule_key(profile, "hios-mr", {"window": 3})
        assert base != schedule_key(profile, "hios-lp", {"window": 4})
        assert base != schedule_key(replace(profile, num_gpus=3), "hios-lp", {"window": 3})
        assert base != schedule_key(
            replace(profile, gpu_speeds=(1.0, 0.5)), "hios-lp", {"window": 3}
        )

    def test_concurrency_models_fingerprint_distinctly(self):
        prints = [
            concurrency_fingerprint(m)
            for m in (
                MaxConcurrencyModel(),
                SumConcurrencyModel(),
                SaturationConcurrencyModel(0.06),
                SaturationConcurrencyModel(0.2),
                TableConcurrencyModel({frozenset({"a", "b"}): 1.5}),
            )
        ]
        assert None not in prints
        assert len({json.dumps(p, sort_keys=True) for p in prints}) == len(prints)

    def test_unknown_concurrency_model_is_uncacheable(self, profile):
        class Custom(SaturationConcurrencyModel):
            """Subclass may override duration(): must not be trusted."""

        weird = replace(profile, concurrency=Custom(0.06))
        assert concurrency_fingerprint(weird.concurrency) is None
        assert profile_fingerprint(weird) is None
        assert schedule_key(weird, "hios-lp") is None

    def test_table_fallback_must_be_cacheable_too(self):
        class Custom(MaxConcurrencyModel):
            pass

        model = TableConcurrencyModel({}, fallback=Custom())
        assert concurrency_fingerprint(model) is None

    def test_non_json_kwargs_are_uncacheable(self, profile):
        assert schedule_key(profile, "hios-lp", {"window": object()}) is None


class TestRoundtrip:
    def test_miss_then_hit_is_bit_identical(self, profile, tmp_path):
        cache = ScheduleCache(tmp_path)
        cold, hit0 = cached_schedule(profile, "hios-lp", cache=cache, window=3)
        warm, hit1 = cached_schedule(profile, "hios-lp", cache=cache, window=3)
        assert (hit0, hit1) == (False, True)
        assert warm.schedule == cold.schedule
        assert warm.latency == cold.latency  # exact float replay
        assert warm.scheduling_time == 0.0
        assert warm.stats == {"sched_cache": "hit"}
        # the replay equals a fresh scheduler run, not just the cold one
        fresh = schedule_graph(profile, "hios-lp", window=3)
        assert warm.schedule == fresh.schedule
        assert warm.latency == fresh.latency

    def test_entry_is_a_self_describing_document(self, profile, tmp_path):
        cache = ScheduleCache(tmp_path)
        cached_schedule(profile, "hios-mr", cache=cache)
        key = schedule_key(profile, "hios-mr")
        doc = json.loads(cache.path_for(key).read_text())
        assert doc["format"] == SCHED_CACHE_FORMAT
        assert doc["kind"] == SCHED_CACHE_KIND
        assert doc["algorithm"] == "hios-mr"
        assert doc["meta"]["scheduling_time_s"] >= 0.0
        assert isinstance(doc["payload"]["schedule"], dict)

    def test_no_cache_is_plain_schedule_graph(self, profile):
        result, hit = cached_schedule(profile, "hios-lp", window=3)
        assert hit is False
        fresh = schedule_graph(profile, "hios-lp", window=3)
        assert result.schedule == fresh.schedule
        assert result.latency == fresh.latency

    def test_uncacheable_profile_writes_nothing(self, profile, tmp_path):
        class Custom(SaturationConcurrencyModel):
            pass

        weird = replace(profile, concurrency=Custom(0.06))
        cache = ScheduleCache(tmp_path)
        _, hit0 = cached_schedule(weird, "hios-lp", cache=cache)
        _, hit1 = cached_schedule(weird, "hios-lp", cache=cache)
        assert (hit0, hit1) == (False, False)
        assert cache.stats()["entries"] == 0


class TestDefensiveReads:
    def seed(self, profile, tmp_path):
        cache = ScheduleCache(tmp_path)
        cached_schedule(profile, "hios-lp", cache=cache)
        return cache, schedule_key(profile, "hios-lp")

    def test_garbage_bytes_are_a_miss(self, profile, tmp_path):
        cache, key = self.seed(profile, tmp_path)
        cache.path_for(key).write_text("{not json")
        assert cache.get_schedule(key) is None
        assert not cache.path_for(key).exists()

    def test_wrong_format_is_a_miss(self, profile, tmp_path):
        cache, key = self.seed(profile, tmp_path)
        doc = json.loads(cache.path_for(key).read_text())
        doc["format"] = CACHE_FORMAT  # a sweep entry is not a schedule
        cache.path_for(key).write_text(json.dumps(doc))
        assert cache.get_schedule(key) is None

    def test_malformed_schedule_payload_is_discarded(self, profile, tmp_path):
        # passes the shallow payload check but fails reconstruction
        cache, key = self.seed(profile, tmp_path)
        doc = json.loads(cache.path_for(key).read_text())
        del doc["payload"]["schedule"]["num_gpus"]
        cache.path_for(key).write_text(json.dumps(doc))
        assert cache.get_schedule(key) is None
        assert not cache.path_for(key).exists()

    def test_non_finite_latency_is_a_miss(self, profile, tmp_path):
        cache, key = self.seed(profile, tmp_path)
        doc = json.loads(cache.path_for(key).read_text())
        doc["payload"]["latency"] = "NaN"
        cache.path_for(key).write_text(json.dumps(doc).replace('"NaN"', "NaN"))
        assert cache.get_schedule(key) is None


class TestSharedTree:
    """Schedule entries and sweep entries cohabit one cache dir; stats
    and clear distinguish them by kind and format."""

    def seed_both(self, profile, tmp_path):
        sched = ScheduleCache(tmp_path)
        cached_schedule(profile, "hios-lp", cache=sched)
        sweep = ResultCache(tmp_path)
        sweep.put("0" * 64, {"latency": 1.0}, kind="latency", algorithm="ios")
        return sched, sweep

    def test_stats_break_down_by_kind_and_format(self, profile, tmp_path):
        sched, _ = self.seed_both(profile, tmp_path)
        stats = sched.stats()
        assert stats["entries"] == 2
        assert stats["by_kind"] == {SCHED_CACHE_KIND: 1, "latency": 1}
        assert stats["by_format"] == {SCHED_CACHE_FORMAT: 1, CACHE_FORMAT: 1}

    def test_clear_by_kind_spares_the_other_species(self, profile, tmp_path):
        sched, sweep = self.seed_both(profile, tmp_path)
        assert sched.clear(kind=SCHED_CACHE_KIND) == 1
        stats = sched.stats()
        assert stats["entries"] == 1
        assert stats["by_kind"] == {"latency": 1}
        assert sweep.get("0" * 64) == {"latency": 1.0}

    def test_cross_format_reads_never_alias(self, profile, tmp_path):
        # a ResultCache.get on a schedule entry's key must not return it
        sched, sweep = self.seed_both(profile, tmp_path)
        key = schedule_key(profile, "hios-lp")
        assert sweep.get(key) is None
