"""Trace replay: measured units reproduce their engine run on demand."""

import json

import pytest

from repro.experiments.realmodels import export_unit_traces
from repro.lint import lint_chrome_trace
from repro.sweep import (
    RandomDagSpec,
    RealModelSpec,
    WorkUnit,
    execute_unit,
    replay_unit_trace,
)

UNIT = WorkUnit(
    figure="fig12",
    x="inception_v3",
    instance=0,
    algorithm="hios-lp",
    spec=RealModelSpec(model="inception_v3", input_size=299),
    kind="measured",
)


def test_replay_matches_executed_payload():
    payload, _ = execute_unit(UNIT)
    trace, op_gpu = replay_unit_trace(UNIT)
    assert trace.latency == pytest.approx(payload["measured_ms"])
    assert set(op_gpu) >= set(trace.op_start)
    assert set(op_gpu.values()) <= {0, 1}


def test_replay_is_deterministic():
    t1, _ = replay_unit_trace(UNIT)
    t2, _ = replay_unit_trace(UNIT)
    assert t1.op_start == t2.op_start
    assert t1.op_finish == t2.op_finish
    assert t1.latency == t2.latency


def test_replay_rejects_latency_units():
    unit = WorkUnit(
        figure="fig8",
        x=30,
        instance=0,
        algorithm="hios-lp",
        spec=RandomDagSpec(seed=0, num_ops=10, num_layers=3),
    )
    with pytest.raises(ValueError, match="measured"):
        replay_unit_trace(unit)


def test_export_unit_traces_writes_lintable_files(tmp_path):
    latency_only = WorkUnit(
        figure="fig8",
        x=30,
        instance=0,
        algorithm="hios-lp",
        spec=RandomDagSpec(seed=0, num_ops=10, num_layers=3),
    )
    duplicate = WorkUnit(
        figure="fig12",
        x="inception_v3",
        instance=1,
        algorithm="hios-lp",
        spec=RealModelSpec(model="inception_v3", input_size=299),
        kind="measured",
    )
    written = export_unit_traces([UNIT, latency_only, duplicate], tmp_path)
    # the latency unit is skipped; the duplicate collapses onto one file
    assert len(written) == 1
    assert written[0].endswith("fig12-inception_v3-299-hios-lp.trace.json")
    doc = json.loads(open(written[0]).read())
    assert not lint_chrome_trace(doc).diagnostics
