"""ResultCache: roundtrip, defensive reads, stats/clear, env resolution."""

import json

from repro.sweep import ResultCache
from repro.sweep.cache import CACHE_FORMAT, default_cache_dir
from repro.sweep.keying import CACHE_SCHEMA_VERSION, content_key

KEY = content_key({"probe": 1})
PAYLOAD = {"latency": 12.5}


def put_one(cache, key=KEY, payload=PAYLOAD):
    cache.put(key, payload, kind="latency", algorithm="hios-lp", meta={"t": 0.1})


class TestRoundtrip:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(KEY) is None
        put_one(cache)
        assert cache.get(KEY) == PAYLOAD
        assert (cache.hits, cache.misses) == (1, 1)

    def test_entry_is_a_self_describing_document(self, tmp_path):
        cache = ResultCache(tmp_path)
        put_one(cache)
        doc = json.loads(cache.path_for(KEY).read_text())
        assert doc["format"] == CACHE_FORMAT
        assert doc["schema_version"] == CACHE_SCHEMA_VERSION
        assert doc["key"] == KEY
        assert doc["kind"] == "latency"
        assert doc["algorithm"] == "hios-lp"
        assert doc["payload"] == PAYLOAD
        assert doc["meta"] == {"t": 0.1}

    def test_entries_shard_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(KEY)
        assert path.parent.name == KEY[:2]
        assert path.parent.parent.name == f"v{CACHE_SCHEMA_VERSION}"

    def test_put_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        put_one(cache)
        put_one(cache, payload={"latency": 99.0})
        assert cache.get(KEY) == {"latency": 99.0}


class TestDefensiveReads:
    """A corrupt entry is discarded and treated as a miss — never fatal."""

    def corrupt(self, tmp_path, text):
        cache = ResultCache(tmp_path)
        put_one(cache)
        cache.path_for(KEY).write_text(text)
        return cache

    def test_garbage_bytes_discarded(self, tmp_path):
        cache = self.corrupt(tmp_path, "{not json")
        assert cache.get(KEY) is None
        assert not cache.path_for(KEY).exists()

    def test_truncated_write_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        put_one(cache)
        full = cache.path_for(KEY).read_text()
        cache.path_for(KEY).write_text(full[: len(full) // 2])
        assert cache.get(KEY) is None

    def mutate(self, tmp_path, **changes):
        cache = ResultCache(tmp_path)
        put_one(cache)
        doc = json.loads(cache.path_for(KEY).read_text())
        doc.update(changes)
        cache.path_for(KEY).write_text(json.dumps(doc))
        return cache

    def test_wrong_format_discarded(self, tmp_path):
        assert self.mutate(tmp_path, format="other/v1").get(KEY) is None

    def test_wrong_schema_version_discarded(self, tmp_path):
        cache = self.mutate(tmp_path, schema_version=CACHE_SCHEMA_VERSION + 1)
        assert cache.get(KEY) is None

    def test_key_filename_mismatch_discarded(self, tmp_path):
        assert self.mutate(tmp_path, key=content_key({"other": 1})).get(KEY) is None

    def test_empty_payload_discarded(self, tmp_path):
        assert self.mutate(tmp_path, payload={}).get(KEY) is None

    def test_non_numeric_payload_discarded(self, tmp_path):
        assert self.mutate(tmp_path, payload={"latency": "fast"}).get(KEY) is None

    def test_nan_payload_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        put_one(cache)
        text = cache.path_for(KEY).read_text().replace("12.5", "NaN")
        cache.path_for(KEY).write_text(text)
        assert cache.get(KEY) is None

    def test_bool_payload_discarded(self, tmp_path):
        assert self.mutate(tmp_path, payload={"latency": True}).get(KEY) is None


class TestStatsAndClear:
    def test_stats_counts_entries_and_kinds(self, tmp_path):
        cache = ResultCache(tmp_path)
        put_one(cache)
        cache.put(
            content_key({"probe": 2}),
            {"measured_ms": 1.0},
            kind="measured",
            algorithm="ios",
        )
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert stats["by_kind"] == {"latency": 1, "measured": 1}
        assert stats["cache_dir"] == str(tmp_path)

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        put_one(cache)
        put_one(cache, key=content_key({"probe": 2}))
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0
        assert cache.get(KEY) is None

    def test_empty_cache_stats(self, tmp_path):
        stats = ResultCache(tmp_path / "nope").stats()
        assert stats["entries"] == 0
        assert stats["by_kind"] == {}


class TestDefaultDir:
    def test_env_var_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_falls_back_to_home_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        path = default_cache_dir()
        assert path.name == "repro-hios"
        assert path.parent.name == ".cache"
