"""Cache-key semantics: what must hit, what must miss, what collapses."""

import json
import math

import pytest

from repro.sweep import RandomDagSpec, RealModelSpec, WorkUnit
from repro.sweep.keying import CACHE_SCHEMA_VERSION, canonical_json, content_key


def unit(**overrides):
    base = dict(
        figure="fig8",
        x=200,
        instance=0,
        algorithm="hios-lp",
        spec=RandomDagSpec(seed=42),
        schedule_kwargs=(("window", 3),),
        kind="latency",
    )
    base.update(overrides)
    return WorkUnit(**base)


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_minimal_separators(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"a": math.nan})

    def test_content_key_is_sha256_hex(self):
        key = content_key({"a": 1})
        assert len(key) == 64
        assert key == key.lower()
        int(key, 16)  # hex


class TestHits:
    def test_identical_units_share_a_key(self):
        assert unit().key() == unit().key()

    def test_reporting_fields_do_not_enter_the_key(self):
        # figure/x/instance identify the unit for aggregation only
        a = unit(figure="fig8", x=100, instance=0)
        b = unit(figure="fig10", x=14, instance=5)
        assert a.key() == b.key()

    def test_kwargs_order_does_not_matter(self):
        a = unit(schedule_kwargs=(("window", 3),))
        b = unit(schedule_kwargs=(("window", 3),))
        assert a.key() == b.key()


class TestMisses:
    @pytest.mark.parametrize(
        "change",
        [
            dict(algorithm="hios-mr"),
            dict(spec=RandomDagSpec(seed=43)),
            dict(spec=RandomDagSpec(seed=42, num_gpus=2)),
            dict(spec=RandomDagSpec(seed=42, num_ops=100)),
            dict(spec=RandomDagSpec(seed=42, transfer_ratio=0.2)),
            dict(schedule_kwargs=(("window", 5),)),
            dict(kind="measured", spec=RealModelSpec("inception_v3", 299)),
        ],
    )
    def test_any_content_change_misses(self, change):
        assert unit(**change).key() != unit().key()

    def test_schema_version_enters_the_key(self, monkeypatch):
        before = unit().key()
        import repro.sweep.units as units_mod

        monkeypatch.setattr(units_mod, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1)
        assert unit().key() != before

    def test_platform_enters_real_model_keys(self):
        a = unit(kind="measured", spec=RealModelSpec("inception_v3", 299, num_gpus=2))
        b = unit(kind="measured", spec=RealModelSpec("inception_v3", 299, num_gpus=4))
        assert a.key() != b.key()


class TestSingleGpuCanonicalization:
    """sequential/ios results are invariant under multi-GPU-only spec
    fields, so those fields are pinned in the key — the unit-level
    dedup that replaces the old single_cache reuse."""

    @pytest.mark.parametrize("alg", ["sequential", "ios"])
    def test_gpu_count_collapses(self, alg):
        a = unit(algorithm=alg, schedule_kwargs=(), spec=RandomDagSpec(seed=1, num_gpus=2))
        b = unit(algorithm=alg, schedule_kwargs=(), spec=RandomDagSpec(seed=1, num_gpus=8))
        assert a.key() == b.key()

    @pytest.mark.parametrize("alg", ["sequential", "ios"])
    def test_transfer_knobs_collapse(self, alg):
        a = unit(
            algorithm=alg,
            schedule_kwargs=(),
            spec=RandomDagSpec(seed=1, transfer_ratio=0.2, transfer_floor=0.0),
        )
        b = unit(
            algorithm=alg,
            schedule_kwargs=(),
            spec=RandomDagSpec(seed=1, transfer_ratio=1.4, transfer_floor=0.2),
        )
        assert a.key() == b.key()

    def test_multi_gpu_algorithms_do_not_collapse(self):
        a = unit(spec=RandomDagSpec(seed=1, num_gpus=2))
        b = unit(spec=RandomDagSpec(seed=1, num_gpus=8))
        assert a.key() != b.key()

    @pytest.mark.parametrize("alg", ["sequential", "ios"])
    def test_seed_still_distinguishes(self, alg):
        a = unit(algorithm=alg, schedule_kwargs=(), spec=RandomDagSpec(seed=1))
        b = unit(algorithm=alg, schedule_kwargs=(), spec=RandomDagSpec(seed=2))
        assert a.key() != b.key()


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown unit kind"):
        unit(kind="bogus")


def test_key_payload_is_json_stable():
    # the key is a hash of canonical JSON: stable across dict identity
    spec = RandomDagSpec(seed=7)
    doc = {
        "schema_version": CACHE_SCHEMA_VERSION,
        "kind": "latency",
        "algorithm": "hios-lp",
        "schedule_kwargs": {"window": 3},
        "workload": spec.key_fields("hios-lp"),
    }
    assert unit(spec=spec).key() == content_key(json.loads(canonical_json(doc)))
