"""SweepProgress: deterministic lines, executed-only ETA."""

import io

import repro.sweep.progress as progress_mod
from repro.sweep.progress import SweepProgress


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make(total, clock, **kwargs):
    stream = io.StringIO()
    p = SweepProgress("fig8", total, stream=stream, max_lines=total or 1, **kwargs)
    return p, stream


def test_counts_and_percent(monkeypatch):
    clock = FakeClock()
    monkeypatch.setattr(progress_mod.time, "perf_counter", clock)
    p, stream = make(4, clock, eta=False)
    p.update()
    p.update(cached=True)
    p.update(deduped=True)
    p.update()
    lines = stream.getvalue().splitlines()
    assert lines[-1] == "[fig8] 4/4 units (100%), 1 cache hits, 1 deduped"
    assert p.executed == 2


def test_no_eta_while_only_cache_hits(monkeypatch):
    # warm-cache resume: hits complete instantly; an ETA extrapolated
    # from them would be nonsense, so none is printed until a unit runs
    clock = FakeClock()
    monkeypatch.setattr(progress_mod.time, "perf_counter", clock)
    p, stream = make(10, clock)
    for _ in range(5):
        clock.now += 0.001
        p.update(cached=True)
    assert "ETA" not in stream.getvalue()


def test_eta_uses_executed_rate_only(monkeypatch):
    # 8 instant cache hits then 1 executed unit taking 2 s: the ETA for
    # the 1 remaining unit must reflect the 2 s/unit executed rate, not
    # the ~0.2 s/unit rate the done-count would suggest
    clock = FakeClock()
    monkeypatch.setattr(progress_mod.time, "perf_counter", clock)
    p, stream = make(10, clock)
    for _ in range(8):
        p.update(cached=True)
    clock.now += 2.0
    p.update()
    last = stream.getvalue().splitlines()[-1]
    assert "ETA 2s" in last


def test_final_line_has_no_eta(monkeypatch):
    clock = FakeClock()
    monkeypatch.setattr(progress_mod.time, "perf_counter", clock)
    p, stream = make(2, clock)
    clock.now += 1.0
    p.update()
    clock.now += 1.0
    p.update()
    assert "ETA" not in stream.getvalue().splitlines()[-1]


def test_disabled_progress_prints_nothing():
    p, stream = make(3, FakeClock(), enabled=False)
    for _ in range(3):
        p.update()
    assert stream.getvalue() == ""


def test_zero_total_is_silent():
    stream = io.StringIO()
    p = SweepProgress("fig8", 0, stream=stream)
    assert not p.enabled
