"""Cross-validation: the discrete-event engine and the analytic
evaluator implement the *same* timing semantics for singleton-stage
schedules when launch overhead is zero.

With one operator per stage, no concurrency, no launch costs and an
idealized (non-serializing) fabric, every semantic the two share —
per-GPU stage sequencing, cross-GPU transfer delays, and
sender-blocking serialized sends — must produce identical makespans.
Random graphs and random assignments probe the full space; a
disagreement means one of the two implementations drifted.  (The
default engine adds per-direction channel FIFOs the evaluator does not
model, so it may only ever measure *more* — checked separately.)
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_singleton_schedule, evaluate_latency, priority_order
from repro.costmodel import CostProfile
from repro.models.randomdag import random_layered_dag
from repro.substrate import EngineConfig, MultiGpuEngine


def _engine(send_blocking: bool) -> MultiGpuEngine:
    return MultiGpuEngine(
        EngineConfig(
            launch_overhead_ms=0.0,
            launch_included_in_cost=False,
            contention_penalty=0.0,
            send_blocking=send_blocking,
            transfer_from_edges=True,
            fabric_serializes=False,
        )
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_gpus=st.integers(1, 4),
    num_ops=st.integers(5, 40),
    send_blocking=st.booleans(),
)
def test_engine_matches_evaluator_on_singleton_schedules(
    seed, num_gpus, num_ops, send_blocking
):
    graph = random_layered_dag(
        num_ops=num_ops, num_layers=min(5, num_ops), seed=seed
    )
    order = priority_order(graph)
    # pseudo-random but seed-deterministic assignment
    assignment = {v: (i * 7 + seed) % num_gpus for i, v in enumerate(order)}
    schedule = build_singleton_schedule(assignment, order, num_gpus)

    profile = CostProfile(graph=graph, num_gpus=num_gpus, send_blocking=send_blocking)
    analytic = evaluate_latency(profile, schedule, validate=True)
    measured = _engine(send_blocking).run(graph, schedule).latency
    assert measured == pytest.approx(analytic, rel=1e-9, abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_hios_lp_schedule_reproduced_by_engine(seed):
    """The latency HIOS-LP optimized (inter-GPU phase, singleton
    stages) is exactly what the idealized engine measures."""
    from repro.core import schedule_graph

    graph = random_layered_dag(num_ops=30, num_layers=5, seed=seed)
    profile = CostProfile(graph=graph, num_gpus=3)
    res = schedule_graph(profile, "inter-lp")
    measured = _engine(send_blocking=True).run(graph, res.schedule).latency
    assert measured == pytest.approx(res.latency, rel=1e-9, abs=1e-9)
