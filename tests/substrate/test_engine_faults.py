"""Fault-aware engine behaviour: bit-identical fault-free runs,
time-varying GPU speeds, fail-stop failure events, the stall watchdog,
and the enriched misuse/deadlock diagnostics."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import OpGraph, Schedule, Stage, priority_order
from repro.models.randomdag import random_layered_dag
from repro.substrate import (
    EngineConfig,
    EngineError,
    FaultError,
    FaultPlan,
    GpuFailure,
    GpuSlowdown,
    LinkDegradation,
    MultiGpuEngine,
    TransferLoss,
)


def engine(**kwargs):
    defaults = dict(
        launch_overhead_ms=0.0,
        launch_included_in_cost=False,
        contention_penalty=0.0,
        transfer_from_edges=True,
    )
    defaults.update(kwargs)
    return MultiGpuEngine(EngineConfig(**defaults))


def _singleton_schedule(graph, num_gpus, seed=0):
    order = priority_order(graph)
    sched = Schedule(num_gpus)
    for i, v in enumerate(order):
        sched.append_stage(Stage((i + seed) % num_gpus, (v,)))
    return sched


class TestEmptyPlanRegression:
    """An empty FaultPlan must leave traces bit-identical (the engine /
    evaluator equivalence suite's semantics are untouched)."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 500),
        num_gpus=st.integers(1, 4),
        overlap=st.booleans(),
    )
    def test_traces_bit_identical(self, seed, num_gpus, overlap):
        graph = random_layered_dag(num_ops=20, num_layers=4, seed=seed)
        schedule = _singleton_schedule(graph, num_gpus, seed)
        cfg = EngineConfig(launch_overhead_ms=0.002, overlap_launch=overlap)
        base = MultiGpuEngine(cfg).run(graph, schedule)
        faulted = MultiGpuEngine(replace(cfg, faults=FaultPlan())).run(graph, schedule)
        assert faulted == base  # exact: every timestamp, record and busy time


class TestGpuSlowdown:
    def test_mid_kernel_slowdown_piecewise(self):
        # 1 ms of work; half runs at full speed, the rest at half speed
        g = OpGraph.from_edges({"a": 1.0}, [])
        s = Schedule(1, [Stage(0, ("a",))])
        plan = FaultPlan([GpuSlowdown(gpu=0, at=0.5, factor=0.5)])
        tr = engine(faults=plan).run(g, s)
        assert tr.latency == pytest.approx(1.5)
        assert tr.failure is None

    def test_slowdown_before_start_scales_everything(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [("a", "b", 0.0)])
        s = Schedule(1)
        s.append_op(0, "a")
        s.append_op(0, "b")
        plan = FaultPlan([GpuSlowdown(gpu=0, at=0.0, factor=0.5)])
        tr = engine(faults=plan).run(g, s)
        assert tr.latency == pytest.approx(4.0)

    def test_compounding_slowdowns(self):
        g = OpGraph.from_edges({"a": 2.0}, [])
        s = Schedule(1, [Stage(0, ("a",))])
        plan = FaultPlan(
            [
                GpuSlowdown(gpu=0, at=1.0, factor=0.5),
                GpuSlowdown(gpu=0, at=2.0, factor=0.5),
            ]
        )
        # 1 ms work by t=1, 0.5 more by t=2, remaining 0.5 at quarter speed
        tr = engine(faults=plan).run(g, s)
        assert tr.latency == pytest.approx(4.0)

    def test_slowdown_on_other_gpu_is_isolated(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [])
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        plan = FaultPlan([GpuSlowdown(gpu=1, at=0.0, factor=0.25)])
        tr = engine(faults=plan).run(g, s)
        assert tr.op_finish["a"] == pytest.approx(1.0)
        assert tr.op_finish["b"] == pytest.approx(4.0)


class TestGpuFailure:
    def test_failure_emits_partial_trace(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 2.0}, [("a", "b", 0.0)])
        s = Schedule(1)
        s.append_op(0, "a")
        s.append_op(0, "b")
        plan = FaultPlan([GpuFailure(gpu=0, at=1.5)])
        tr = engine(faults=plan).run(g, s)
        assert tr.failure is not None
        assert not tr.completed
        assert tr.failure.gpu == 0
        assert tr.failure.time == pytest.approx(1.5)
        assert tr.failure.finished == frozenset({"a"})
        assert tr.failure.in_flight == frozenset({"b"})
        assert tr.latency == pytest.approx(1.5)
        assert "b" not in tr.op_finish

    def test_failure_after_completion_is_ignored(self):
        g = OpGraph.from_edges({"a": 1.0}, [])
        s = Schedule(1, [Stage(0, ("a",))])
        plan = FaultPlan([GpuFailure(gpu=0, at=100.0)])
        tr = engine(faults=plan).run(g, s)
        assert tr.completed
        assert tr.latency == pytest.approx(1.0)

    def test_failure_freezes_other_gpus_too(self):
        """Fail-stop is a global cut: survivors' in-flight work is in
        the failure event, not silently completed."""
        g = OpGraph.from_edges({"a": 3.0, "b": 3.0}, [])
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        plan = FaultPlan([GpuFailure(gpu=0, at=1.0)])
        tr = engine(faults=plan).run(g, s)
        assert tr.failure.in_flight == frozenset({"a", "b"})
        assert tr.failure.finished == frozenset()

    def test_out_of_range_failure_rejected(self):
        g = OpGraph.from_edges({"a": 1.0}, [])
        s = Schedule(1, [Stage(0, ("a",))])
        plan = FaultPlan([GpuFailure(gpu=5, at=1.0)])
        with pytest.raises(FaultError, match="5"):
            engine(faults=plan).run(g, s)


class TestLinkDegradationEndToEnd:
    def test_degraded_link_delays_consumer(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [("a", "b", 1.0)])
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        plan = FaultPlan([LinkDegradation(src=0, dst=1, at=0.0, bw_factor=0.5)])
        tr = engine(faults=plan).run(g, s)
        # a: 0-1, transfer 2x slower: 1-3, b: 3-4
        assert tr.op_start["b"] == pytest.approx(3.0)
        assert tr.latency == pytest.approx(4.0)


class TestTransferLossEndToEnd:
    def test_lost_transfer_delays_and_is_deterministic(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [("a", "b", 0.5)])
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        loss = TransferLoss(tags=("a->b",), timeout_ms=0.5, backoff_ms=0.1)
        plan = FaultPlan([loss], seed=11)
        tr1 = engine(faults=plan).run(g, s)
        tr2 = engine(faults=plan).run(g, s)
        # retry: detect at 1.5, resend at 1.6, deliver 2.1, b: 2.1-3.1
        assert tr1.latency == pytest.approx(3.1)
        assert tr1 == tr2
        assert tr1.transfers[0].attempts == 2


class TestDiagnostics:
    def _deadlocked(self):
        """Cross-GPU wait cycle (only reachable with validate=False):
        b on GPU 0 waits for a; a on GPU 1 is queued behind c, which
        waits for b."""
        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0, "c": 1.0}, [("a", "b", 0.1), ("b", "c", 0.1)]
        )
        s = Schedule(2)
        s.append_op(0, "b")
        s.append_op(1, "c")
        s.append_op(1, "a")
        return g, s

    def test_deadlock_error_names_blocked_hosts(self):
        """The legacy dynamic diagnostic (reached only with the HB
        sanitizer off — the sanitizer reports the same deadlock
        statically, with a witness cycle, before the event loop)."""
        g, s = self._deadlocked()
        with pytest.raises(EngineError) as exc:
            engine(sanitize=False).run(g, s, validate=False)
        msg = str(exc.value)
        assert "deadlock" in msg
        assert "GPU 0 host blocked on 'b'" in msg
        assert "GPU 1 host blocked on 'c'" in msg
        assert "awaiting remote data" in msg

    def test_watchdog_trips_on_stall(self):
        g, s = self._deadlocked()
        # a far-future fault event keeps the event queue non-empty, so
        # without the watchdog the engine would jump 1000 ms ahead
        plan = FaultPlan([GpuSlowdown(gpu=0, at=1000.0, factor=0.5)])
        with pytest.raises(EngineError) as exc:
            engine(faults=plan, watchdog_horizon_ms=10.0, sanitize=False).run(
                g, s, validate=False
            )
        msg = str(exc.value)
        assert "watchdog" in msg
        assert "GPU 0 host blocked on 'b'" in msg

    def test_watchdog_does_not_trip_on_healthy_long_run(self):
        g = OpGraph.from_edges({"a": 50.0, "b": 50.0}, [("a", "b", 0.1)])
        s = Schedule(1)
        s.append_op(0, "a")
        s.append_op(0, "b")
        tr = engine(watchdog_horizon_ms=1.0).run(g, s)
        assert tr.latency == pytest.approx(100.0)

    def test_short_gpu_speeds_rejected_with_clear_error(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [])
        s = Schedule(3)
        s.append_op(0, "a")
        s.append_op(2, "b")
        with pytest.raises(EngineError, match="gpu_speeds has 2 entries"):
            engine(gpu_speeds=(1.0, 1.0)).run(g, s)

    def test_longer_gpu_speeds_still_accepted(self):
        g = OpGraph.from_edges({"a": 1.0}, [])
        s = Schedule(1, [Stage(0, ("a",))])
        tr = engine(gpu_speeds=(2.0, 1.0, 1.0)).run(g, s)
        assert tr.latency == pytest.approx(0.5)

    def test_negative_watchdog_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(watchdog_horizon_ms=-1.0)
