"""Tests for the platform profiler (model graph -> cost profile)."""

import pytest

from repro.models import Conv2d, GraphBuilder, TensorShape, inception_v3
from repro.substrate import PlatformProfiler, dual_a40, dual_v100s


def tiny_model():
    b = GraphBuilder("tiny", TensorShape(3, 64, 64))
    c1 = b.add("c1", Conv2d(16, 3), b.input)
    b.add("c2", Conv2d(16, 3), c1)
    return b.build()


class TestPricing:
    def test_price_graph_structure(self):
        pp = PlatformProfiler(dual_a40())
        g = pp.price_graph(tiny_model())
        assert len(g) == 2
        assert g.has_edge("c1", "c2")
        assert g.cost("c1") > 0
        assert 0 < g.operator("c1").occupancy <= 1

    def test_transfer_prices_producer_bytes(self):
        pp = PlatformProfiler(dual_a40())
        m = tiny_model()
        g = pp.price_graph(m)
        expected = pp.platform.transfer_time(m.node("c1").output.bytes)
        assert g.transfer("c1", "c2") == pytest.approx(expected)

    def test_slower_device_costs_more(self):
        fast = PlatformProfiler(dual_a40()).price_graph(tiny_model())
        slow = PlatformProfiler(dual_v100s()).price_graph(tiny_model())
        assert slow.total_cost() > fast.total_cost()

    def test_profile_wiring(self):
        pp = PlatformProfiler(dual_a40(), contention_penalty=0.1, max_streams=4)
        prof = pp.profile(tiny_model())
        assert prof.num_gpus == 2
        assert prof.max_streams == 4
        assert prof.concurrency.contention_penalty == 0.1

    def test_num_gpus_override(self):
        pp = PlatformProfiler(dual_a40())
        assert pp.profile(tiny_model(), num_gpus=6).num_gpus == 6

    def test_engine_consistent_with_platform(self):
        pp = PlatformProfiler(dual_a40())
        eng = pp.engine()
        assert eng.config.link is pp.platform.link
        assert eng.config.launch_overhead_ms == pp.platform.device.launch_overhead_ms
        assert eng.config.overlap_launch is False
        assert pp.engine(overlap_launch=True).config.overlap_launch is True

    def test_work_of(self):
        pp = PlatformProfiler(dual_a40())
        work = pp.work_of(tiny_model(), "c1")
        assert work.flops > 0
        assert work.blocks >= 1


class TestEndToEnd:
    def test_inception_schedulable_and_runnable(self):
        from repro.core import schedule_graph

        pp = PlatformProfiler(dual_a40())
        prof = pp.profile(inception_v3(299))
        res = schedule_graph(prof, "hios-lp")
        trace = pp.engine().run(prof.graph, res.schedule)
        assert trace.latency > 0
        # engine and evaluator should agree within a modest factor
        assert trace.latency == pytest.approx(res.latency, rel=0.5)
