"""Unit tests for link models, platforms, events and the MPI fabric."""

import pytest

from repro.substrate import (
    EventQueue,
    LinkModel,
    NVLINK_BRIDGE,
    PCIE_GEN3_X16,
    SimFabric,
    dual_a40,
    dual_v100s,
    nvswitch_platform,
)


class TestLinkModel:
    def test_transfer_time(self):
        link = LinkModel("test", bandwidth_gbs=1.0, latency_ms=0.5)
        # 1 GB/s = 1e6 bytes per ms
        assert link.transfer_time(2_000_000) == pytest.approx(2.5)
        assert link.transfer_time(0) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel("bad", bandwidth_gbs=0)
        with pytest.raises(ValueError):
            LinkModel("bad", bandwidth_gbs=1, latency_ms=-1)
        link = LinkModel("t", bandwidth_gbs=1)
        with pytest.raises(ValueError):
            link.transfer_time(-5)

    def test_nvlink_faster_than_pcie(self):
        nbytes = 10_000_000
        assert NVLINK_BRIDGE.transfer_time(nbytes) < PCIE_GEN3_X16.transfer_time(nbytes)


class TestPlatform:
    def test_presets(self):
        p = dual_a40()
        assert p.num_gpus == 2
        assert "A40" in p.device.name
        assert dual_v100s().link is PCIE_GEN3_X16
        assert nvswitch_platform(8).num_gpus == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            nvswitch_platform(0)

    def test_transfer_time_delegates(self):
        p = dual_a40()
        assert p.transfer_time(1000) == p.link.transfer_time(1000)


class TestEventQueue:
    def test_ordering_and_ties(self):
        q = EventQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        q.push(1.0, "a2")
        assert q.peek_time() == 1.0
        assert [q.pop().kind for _ in range(3)] == ["a", "a2", "b"]

    def test_pop_until(self):
        q = EventQueue()
        for t in (0.5, 1.0, 2.0):
            q.push(t, f"e{t}")
        evs = q.pop_until(1.0)
        assert [e.kind for e in evs] == ["e0.5", "e1.0"]
        assert len(q) == 1

    def test_errors(self):
        q = EventQueue()
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(ValueError):
            q.push(-1.0, "x")
        assert q.peek_time() is None
        assert not q


class TestSimFabric:
    def test_fifo_serialization_same_direction(self):
        fabric = SimFabric(2, LinkModel("t", bandwidth_gbs=1.0, latency_ms=0.0))
        t1 = fabric.post_send(0.0, 0, 1, duration=2.0, tag="m1")
        t2 = fabric.post_send(0.5, 0, 1, duration=2.0, tag="m2")
        assert t1 == 2.0
        assert t2 == 4.0  # queued behind m1
        assert fabric.records[1].queue_delay == pytest.approx(1.5)

    def test_full_duplex_directions_independent(self):
        fabric = SimFabric(2, LinkModel("t", bandwidth_gbs=1.0))
        fabric.post_send(0.0, 0, 1, duration=5.0)
        back = fabric.post_send(0.0, 1, 0, duration=1.0)
        assert back == pytest.approx(1.0)

    def test_half_duplex_shares_channel(self):
        fabric = SimFabric(2, LinkModel("t", bandwidth_gbs=1.0, full_duplex=False))
        fabric.post_send(0.0, 0, 1, duration=5.0)
        back = fabric.post_send(0.0, 1, 0, duration=1.0)
        assert back == pytest.approx(6.0)

    def test_bytes_pricing(self):
        fabric = SimFabric(2, LinkModel("t", bandwidth_gbs=1.0, latency_ms=0.5))
        done = fabric.post_send(0.0, 0, 1, num_bytes=1_000_000)
        assert done == pytest.approx(1.5)
        assert fabric.total_bytes == 1_000_000
        assert fabric.num_transfers == 1

    def test_out_of_order_posts_still_serialize(self):
        fabric = SimFabric(2, NVLINK_BRIDGE)
        first = fabric.post_send(5.0, 0, 1, duration=1.0)
        # an earlier-dated post still queues behind the busy channel
        second = fabric.post_send(1.0, 0, 1, duration=1.0)
        assert first == pytest.approx(6.0)
        assert second == pytest.approx(7.0)

    def test_idealized_fabric_never_queues(self):
        fabric = SimFabric(2, NVLINK_BRIDGE, serialize=False)
        fabric.post_send(0.0, 0, 1, duration=5.0)
        again = fabric.post_send(0.0, 0, 1, duration=1.0)
        assert again == pytest.approx(1.0)

    def test_invalid_pairs(self):
        fabric = SimFabric(2, NVLINK_BRIDGE)
        with pytest.raises(ValueError):
            fabric.post_send(0.0, 0, 0, duration=1.0)
        with pytest.raises(ValueError):
            fabric.post_send(0.0, 0, 5, duration=1.0)
        with pytest.raises(ValueError):
            fabric.post_send(0.0, 0, 1, duration=-1.0)
