"""Tests for the declarative fault model and the fault-aware fabric."""

import pytest

from repro.substrate import (
    FaultError,
    FaultPlan,
    GpuFailure,
    GpuSlowdown,
    LinkDegradation,
    NVLINK_BRIDGE,
    SimFabric,
    TransferLoss,
    parse_fault,
)


class TestSpecs:
    def test_slowdown_validation(self):
        with pytest.raises(FaultError):
            GpuSlowdown(gpu=-1, at=0.0, factor=0.5)
        with pytest.raises(FaultError):
            GpuSlowdown(gpu=0, at=-1.0, factor=0.5)
        with pytest.raises(FaultError):
            GpuSlowdown(gpu=0, at=0.0, factor=0.0)

    def test_failure_validation(self):
        with pytest.raises(FaultError):
            GpuFailure(gpu=0, at=-0.1)

    def test_link_validation(self):
        with pytest.raises(FaultError):
            LinkDegradation(src=1, dst=1, at=0.0, bw_factor=0.5)
        with pytest.raises(FaultError):
            LinkDegradation(src=0, dst=1, at=0.0, bw_factor=0.0)

    def test_loss_validation(self):
        with pytest.raises(FaultError):
            TransferLoss()  # neither prob nor tags
        with pytest.raises(FaultError):
            TransferLoss(prob=1.0)
        with pytest.raises(FaultError):
            TransferLoss(prob=0.1, max_retries=0)


class TestPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan([GpuFailure(gpu=0, at=1.0)])

    def test_accessors(self):
        plan = FaultPlan(
            [
                GpuFailure(gpu=1, at=5.0),
                GpuFailure(gpu=0, at=2.0),
                GpuSlowdown(gpu=2, at=1.0, factor=0.5),
                LinkDegradation(src=0, dst=1, at=0.0, bw_factor=0.5),
                TransferLoss(prob=0.1),
            ]
        )
        assert [f.gpu for f in plan.failures()] == [0, 1]  # sorted by time
        assert plan.first_failure().gpu == 0
        assert len(plan.slowdowns()) == 1
        assert len(plan.degradations()) == 1
        assert len(plan.losses()) == 1

    def test_validate_for_rejects_out_of_range(self):
        with pytest.raises(FaultError):
            FaultPlan([GpuFailure(gpu=4, at=1.0)]).validate_for(4)
        with pytest.raises(FaultError):
            FaultPlan([LinkDegradation(src=0, dst=5, at=0.0, bw_factor=0.5)]).validate_for(2)
        FaultPlan([GpuFailure(gpu=3, at=1.0)]).validate_for(4)  # ok

    def test_bw_factor_compounds_and_respects_time(self):
        plan = FaultPlan(
            [
                LinkDegradation(src=0, dst=1, at=1.0, bw_factor=0.5),
                LinkDegradation(src=0, dst=1, at=2.0, bw_factor=0.5),
            ]
        )
        assert plan.bw_factor(0, 1, 0.5) == 1.0
        assert plan.bw_factor(0, 1, 1.5) == 0.5
        assert plan.bw_factor(0, 1, 2.5) == 0.25
        assert plan.bw_factor(1, 0, 2.5) == 1.0  # directed

    def test_loss_is_deterministic_per_seed(self):
        plan_a = FaultPlan([TransferLoss(prob=0.5)], seed=42)
        plan_b = FaultPlan([TransferLoss(prob=0.5)], seed=42)
        verdicts_a = [plan_a.lost(f"m{i}", 1) is not None for i in range(50)]
        verdicts_b = [plan_b.lost(f"m{i}", 1) is not None for i in range(50)]
        assert verdicts_a == verdicts_b
        assert any(verdicts_a) and not all(verdicts_a)

    def test_tagged_loss_hits_first_attempt_only(self):
        plan = FaultPlan([TransferLoss(tags=("a->b",))])
        assert plan.lost("a->b", 1) is not None
        assert plan.lost("a->b", 2) is None
        assert plan.lost("x->y", 1) is None


class TestBackoffJitter:
    def test_default_backoff_is_pure_exponential(self):
        loss = TransferLoss(prob=0.1, backoff_ms=0.1)
        assert loss.backoff_delay(0, "a->b", 1) == pytest.approx(0.1)
        assert loss.backoff_delay(0, "a->b", 2) == pytest.approx(0.2)
        assert loss.backoff_delay(0, "a->b", 3) == pytest.approx(0.4)
        # seed and tag are irrelevant without jitter
        assert loss.backoff_delay(7, "x->y", 2) == pytest.approx(0.2)

    def test_jitter_stays_below_ceiling(self):
        loss = TransferLoss(prob=0.1, backoff_ms=0.1, jitter=True)
        for attempt in (1, 2, 3, 4):
            ceiling = 0.1 * 2 ** (attempt - 1)
            delay = loss.backoff_delay(42, "a->b", attempt)
            assert 0.0 <= delay < ceiling

    def test_jitter_is_deterministic_per_seed_tag_attempt(self):
        loss = TransferLoss(prob=0.1, backoff_ms=0.1, jitter=True)
        assert loss.backoff_delay(42, "a->b", 2) == loss.backoff_delay(42, "a->b", 2)
        # decorrelated across tags, attempts and seeds
        d = loss.backoff_delay(42, "a->b", 2)
        assert loss.backoff_delay(42, "c->d", 2) != d
        assert loss.backoff_delay(42, "a->b", 3) != d
        assert loss.backoff_delay(43, "a->b", 2) != d


class TestParsing:
    def test_parse_all_kinds(self):
        assert parse_fault("fail:1@5.0") == GpuFailure(gpu=1, at=5.0)
        assert parse_fault("slow:0@2x0.5") == GpuSlowdown(gpu=0, at=2.0, factor=0.5)
        assert parse_fault("link:0->1@3x0.25") == LinkDegradation(
            src=0, dst=1, at=3.0, bw_factor=0.25
        )
        assert parse_fault("loss:0.1") == TransferLoss(prob=0.1)

    def test_parse_loss_jitter_suffix(self):
        assert parse_fault("loss:0.1:jitter") == TransferLoss(prob=0.1, jitter=True)
        with pytest.raises(FaultError, match="jitter"):
            parse_fault("loss:0.1:chaos")

    def test_parse_rejects_garbage(self):
        for bad in ("nope:1@2", "fail:x@y", "slow:0@1", "link:0@1x0.5", ""):
            with pytest.raises(FaultError):
                parse_fault(bad)

    def test_from_strings_round_trip(self):
        plan = FaultPlan.from_strings(["fail:1@5.0", "loss:0.2"], seed=3)
        assert plan.seed == 3
        assert len(plan) == 2


class TestFabricFaults:
    def test_tagged_loss_retries_with_timeout_and_backoff(self):
        loss = TransferLoss(tags=("a->b",), timeout_ms=0.5, backoff_ms=0.1)
        fabric = SimFabric(2, NVLINK_BRIDGE, faults=FaultPlan([loss]))
        finish = fabric.post_send(0.0, 0, 1, duration=1.0, tag="a->b")
        # lost attempt: starts at 0, detected at 0.5, backoff 0.1,
        # retry starts at 0.6 and delivers at 1.6
        assert finish == pytest.approx(1.6)
        rec = fabric.records[0]
        assert rec.attempts == 2
        assert rec.start_time == pytest.approx(0.6)
        assert fabric.lost_attempts == 1

    def test_exponential_backoff_across_attempts(self):
        # every attempt up to max_retries is lost -> FaultError
        loss = TransferLoss(prob=0.999, max_retries=3, timeout_ms=0.5, backoff_ms=0.1)
        fabric = SimFabric(2, NVLINK_BRIDGE, faults=FaultPlan([loss], seed=0))
        with pytest.raises(FaultError):
            fabric.post_send(0.0, 0, 1, duration=1.0, tag="doomed")

    def test_lost_attempt_occupies_channel(self):
        loss = TransferLoss(tags=("a->b",), timeout_ms=1.0, backoff_ms=0.5)
        fabric = SimFabric(2, NVLINK_BRIDGE, faults=FaultPlan([loss]))
        fabric.post_send(0.0, 0, 1, duration=1.0, tag="a->b")  # delivers at 2.5
        # an unrelated message on the same channel queues behind it
        finish = fabric.post_send(0.0, 0, 1, duration=1.0, tag="c->d")
        assert finish == pytest.approx(3.5)

    def test_link_degradation_scales_duration_priced_messages(self):
        plan = FaultPlan([LinkDegradation(src=0, dst=1, at=1.0, bw_factor=0.5)])
        fabric = SimFabric(2, NVLINK_BRIDGE, faults=plan)
        assert fabric.post_send(0.0, 0, 1, duration=0.5, tag="early") == pytest.approx(0.5)
        assert fabric.post_send(2.0, 0, 1, duration=0.5, tag="late") == pytest.approx(3.0)

    def test_link_degradation_scales_payload_not_latency(self):
        plan = FaultPlan([LinkDegradation(src=0, dst=1, at=0.0, bw_factor=0.5)])
        fabric = SimFabric(2, NVLINK_BRIDGE, faults=plan)
        clean = SimFabric(2, NVLINK_BRIDGE)
        nbytes = 10_000_000
        degraded = fabric.post_send(0.0, 0, 1, num_bytes=nbytes, tag="m")
        nominal = clean.post_send(0.0, 0, 1, num_bytes=nbytes, tag="m")
        payload = nominal - NVLINK_BRIDGE.latency_ms
        assert degraded == pytest.approx(NVLINK_BRIDGE.latency_ms + 2 * payload)

    def test_empty_plan_identical_to_no_plan(self):
        a = SimFabric(2, NVLINK_BRIDGE, faults=FaultPlan())
        b = SimFabric(2, NVLINK_BRIDGE)
        for t in (0.0, 0.3, 1.7):
            assert a.post_send(t, 0, 1, duration=0.4, tag="m") == b.post_send(
                t, 0, 1, duration=0.4, tag="m"
            )
        assert a.records == b.records


class TestRepairs:
    """``repair:G@T`` specs: parsing, accessors, and tail semantics."""

    def test_parse_repair(self):
        from repro.substrate import GpuRepair

        assert parse_fault("repair:2@7.5") == GpuRepair(gpu=2, at=7.5)
        with pytest.raises(FaultError):
            parse_fault("repair:x@1")
        with pytest.raises(FaultError):
            GpuRepair(gpu=-1, at=0.0)
        with pytest.raises(FaultError):
            GpuRepair(gpu=0, at=-1.0)

    def test_repairs_accessor_sorted_by_time(self):
        plan = FaultPlan.from_strings(
            ["repair:1@9", "fail:1@2", "repair:0@4"], seed=0
        )
        assert [(r.gpu, r.at) for r in plan.repairs()] == [(0, 4.0), (1, 9.0)]
        assert len(plan.failures()) == 1

    def test_validate_for_covers_repairs(self):
        plan = FaultPlan.from_strings(["repair:5@1"])
        with pytest.raises(FaultError, match="GPU 5"):
            plan.validate_for(4)
        plan.validate_for(6)  # ok

    def test_resume_after_drops_repairs(self):
        # recovery is pool-level bookkeeping: a tail run's GPU set is
        # fixed, so repairs never survive re-anchoring
        plan = FaultPlan.from_strings(
            ["fail:1@10", "repair:0@1", "repair:1@20"], seed=5
        )
        tail = plan.resume_after(5.0)
        assert tail.repairs() == []
        assert [f.at for f in tail.failures()] == [5.0]


class TestBackoffCap:
    def test_backoff_doublings_are_capped(self):
        from repro.substrate import BACKOFF_CAP_DOUBLINGS

        loss = TransferLoss(prob=0.1, backoff_ms=1.0)
        ceiling = 2.0**BACKOFF_CAP_DOUBLINGS
        assert loss.backoff_delay(0, "a->b", BACKOFF_CAP_DOUBLINGS + 1) == ceiling
        # pathological attempt counts no longer overflow the float
        assert loss.backoff_delay(0, "a->b", 10_000) == ceiling
