"""Property: every ExecutionTrace respects causality, whatever the
scheduler.

For random layered DAGs scheduled by *every* registered algorithm and
executed on the engine:

* ``op_launch <= op_start <= op_finish`` for every operator;
* no operator starts before the delivery of each cross-GPU
  predecessor's tensor (transfer tags are ``"{src_op}->{dst_op}"``).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import ALGORITHMS, schedule_graph
from repro.models import random_dag_profile
from repro.substrate import EngineConfig, MultiGpuEngine

EPS = 1e-9


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 200),
    algorithm=st.sampled_from(sorted(ALGORITHMS)),
    num_gpus=st.integers(2, 4),
    overlap=st.booleans(),
)
def test_trace_causality(seed, algorithm, num_gpus, overlap):
    profile = random_dag_profile(
        seed=seed, num_ops=24, num_layers=4, num_gpus=num_gpus
    )
    result = schedule_graph(profile, algorithm)
    engine = MultiGpuEngine(
        EngineConfig(
            launch_overhead_ms=0.002,
            overlap_launch=overlap,
            contention_penalty=0.06,
            transfer_from_edges=True,
        )
    )
    trace = engine.run(profile.graph, result.schedule)

    graph = profile.graph
    assert set(trace.op_finish) == set(graph.names)
    for op in graph.names:
        assert trace.op_launch[op] <= trace.op_start[op] + EPS
        assert trace.op_start[op] <= trace.op_finish[op] + EPS

    # cross-GPU deliveries gate their consumer's start
    gpu_of = {op: g for g in result.schedule.used_gpus()
              for st_ in result.schedule.stages_on(g) for op in st_.ops}
    delivered = {rec.tag: rec.finish_time for rec in trace.transfers}
    for u in graph.names:
        for v in graph.successors(u):
            if gpu_of[u] == gpu_of[v]:
                continue
            tag = f"{u}->{v}"
            assert tag in delivered, f"missing transfer {tag} ({algorithm})"
            assert trace.op_start[v] >= delivered[tag] - EPS
            # and the producer finished before its tensor left
            assert delivered[tag] >= trace.op_finish[u] - EPS
