"""Tests for the profile -> schedule -> measure feedback loop."""

import pytest

from repro.core import Schedule, schedule_graph
from repro.models import inception_v3
from repro.substrate import PlatformProfiler, dual_a40


@pytest.fixture(scope="module")
def profiler():
    return PlatformProfiler(dual_a40())


class TestMeasureStageTimes:
    def test_records_only_multi_op_stages(self, profiler):
        prof = profiler.profile(inception_v3(299))
        res = schedule_graph(prof, "hios-lp")
        table = profiler.measure_stage_times(prof.graph, res.schedule)
        multi = [st for st in res.schedule.all_stages() if len(st) > 1]
        assert len(table) == len({frozenset(st.ops) for st in multi})

    def test_measured_times_positive_and_bounded(self, profiler):
        prof = profiler.profile(inception_v3(299))
        res = schedule_graph(prof, "hios-lp")
        table = profiler.measure_stage_times(prof.graph, res.schedule)
        for st in res.schedule.all_stages():
            if len(st) < 2:
                continue
            t = table.duration([prof.graph.operator(op) for op in st.ops])
            solo_sum = sum(prof.graph.cost(op) for op in st.ops)
            assert 0 < t <= solo_sum * 2.0  # sane wall time

    def test_fallback_for_unprofiled_sets(self, profiler):
        prof = profiler.profile(inception_v3(299))
        s = Schedule(2)
        # trivial all-singleton schedule: nothing recorded
        from repro.core import priority_order

        for v in priority_order(prof.graph):
            s.append_op(0, v)
        table = profiler.measure_stage_times(prof.graph, s)
        assert len(table) == 0
        op = prof.graph.operators()[0]
        assert table.duration([op]) == pytest.approx(op.cost)


class TestIterativeProfile:
    def test_two_rounds_converge_to_feasible_schedule(self, profiler):
        profile, result = profiler.iterative_profile(
            inception_v3(299), algorithm="hios-lp", rounds=2
        )
        result.schedule.validate(profile.graph)
        assert result.latency > 0
        # the installed concurrency model is the measured table
        from repro.costmodel import TableConcurrencyModel

        assert isinstance(profile.concurrency, TableConcurrencyModel)

    def test_single_round_is_plain_flow(self, profiler):
        profile, result = profiler.iterative_profile(
            inception_v3(299), algorithm="hios-mr", rounds=1
        )
        plain = schedule_graph(profiler.profile(inception_v3(299)), "hios-mr")
        assert result.latency == pytest.approx(plain.latency)

    def test_rounds_validation(self, profiler):
        with pytest.raises(ValueError):
            profiler.iterative_profile(inception_v3(299), rounds=0)
