"""Trace JSON contract: round-trips, malformed-document rejection,
utilization clamping.

The parsing rules here are load-bearing: ``assert``-based validation
vanishes under ``python -O``, and ``frozenset("op1")`` silently splits
a string into characters — both must be hard :class:`EngineError`\\ s.
"""

import json

import pytest

from repro.core import OpGraph, Schedule
from repro.substrate import EngineConfig, MultiGpuEngine
from repro.substrate.engine import EngineError, ExecutionTrace
from repro.substrate.faults import FaultPlan, GpuFailure


def run_pair(faults=None):
    g = OpGraph.from_edges({"a": 1.0, "b": 2.0}, [("a", "b", 0.5)])
    s = Schedule(2)
    s.append_op(0, "a")
    s.append_op(1, "b")
    cfg = EngineConfig(
        launch_overhead_ms=0.0,
        launch_included_in_cost=False,
        contention_penalty=0.0,
        transfer_from_edges=True,
        faults=faults,
    )
    return MultiGpuEngine(cfg).run(g, s)


class TestRoundTrip:
    def test_completed_trace(self):
        trace = run_pair()
        back = ExecutionTrace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert back.latency == trace.latency
        assert back.op_start == trace.op_start
        assert back.op_finish == trace.op_finish
        assert back.gpu_busy == trace.gpu_busy
        assert back.transfers == trace.transfers
        assert back.failure is None

    def test_failure_trace(self):
        trace = run_pair(faults=FaultPlan([GpuFailure(gpu=1, at=2.0)]))
        assert trace.failure is not None
        back = ExecutionTrace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert back.failure is not None
        assert back.failure.gpu == trace.failure.gpu
        assert back.failure.time == trace.failure.time
        assert back.failure.finished == trace.failure.finished
        assert back.failure.in_flight == trace.failure.in_flight
        # in-flight ops keep a start but no finish through the round-trip
        assert "b" in back.op_start and "b" not in back.op_finish


class TestMalformedDocuments:
    def base(self):
        return run_pair(faults=FaultPlan([GpuFailure(gpu=1, at=2.0)])).to_dict()

    def test_wrong_format(self):
        doc = self.base()
        doc["format"] = "repro.cache/v1"
        with pytest.raises(EngineError, match="unsupported trace format"):
            ExecutionTrace.from_dict(doc)

    @pytest.mark.parametrize("bad", ["gpu1-died", ["gpu", 1], 3.5])
    def test_failure_must_be_object(self, bad):
        # previously an `assert isinstance(...)` — gone under python -O
        doc = self.base()
        doc["failure"] = bad
        with pytest.raises(EngineError, match="'failure' must be an object"):
            ExecutionTrace.from_dict(doc)

    def test_finished_as_string_is_not_character_split(self):
        # frozenset("op1") == {"o", "p", "1"}; must reject, not split
        doc = self.base()
        doc["failure"]["finished"] = "op1"
        with pytest.raises(EngineError, match="'finished' must be an array"):
            ExecutionTrace.from_dict(doc)

    def test_in_flight_as_scalar(self):
        doc = self.base()
        doc["failure"]["in_flight"] = 7
        with pytest.raises(EngineError, match="'in_flight' must be an array"):
            ExecutionTrace.from_dict(doc)

    def test_non_string_op_names(self):
        doc = self.base()
        doc["failure"]["finished"] = ["a", 2]
        with pytest.raises(EngineError, match="only operator name strings"):
            ExecutionTrace.from_dict(doc)

    def test_missing_failure_key(self):
        doc = self.base()
        del doc["failure"]["time"]
        with pytest.raises(EngineError, match="malformed trace document"):
            ExecutionTrace.from_dict(doc)

    def test_missing_latency(self):
        doc = self.base()
        del doc["latency"]
        with pytest.raises(EngineError, match="malformed trace document"):
            ExecutionTrace.from_dict(doc)

    def test_engine_error_is_not_swallowed_by_wrappers(self):
        # EngineError subclasses RuntimeError, so the generic
        # (KeyError, TypeError, ValueError) clauses must not catch and
        # re-wrap (or worse, mask) the targeted messages above
        doc = self.base()
        doc["failure"]["finished"] = "op1"
        with pytest.raises(EngineError) as exc_info:
            ExecutionTrace.from_dict(doc)
        assert "must be an array" in str(exc_info.value)


class TestUtilizationClamp:
    def test_completed_trace_in_unit_range(self):
        trace = run_pair()
        for g in (0, 1):
            assert 0.0 <= trace.utilization(g) <= 1.0

    def test_partial_failure_trace_is_clamped(self):
        # GPU 1's in-flight kernel accrues busy time past the cut
        trace = run_pair(faults=FaultPlan([GpuFailure(gpu=1, at=2.0)]))
        for g in (0, 1):
            assert trace.utilization(g) <= 1.0

    def test_raw_ratio_above_one_is_clamped(self):
        trace = ExecutionTrace(
            latency=1.0,
            op_launch={},
            op_start={},
            op_finish={},
            transfers=[],
            gpu_busy={0: 1.75},
        )
        assert trace.utilization(0) == 1.0

    def test_zero_latency_is_zero_not_nan(self):
        trace = ExecutionTrace(
            latency=0.0,
            op_launch={},
            op_start={},
            op_finish={},
            transfers=[],
            gpu_busy={0: 0.5},
        )
        assert trace.utilization(0) == 0.0

    def test_unknown_gpu_is_zero(self):
        assert run_pair().utilization(99) == 0.0
