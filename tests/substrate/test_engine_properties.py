"""Property-based bounds on the engine for arbitrary stage schedules.

Unlike the exact-equivalence tests (singleton stages, idealized
knobs), these run the *default* engine on schedules with multi-operator
stages and hold it to invariants no configuration may violate:

* every operator starts once, finishes once, and finish >= start;
* launch <= start for every operator;
* the makespan is at least the computation-only critical path scaled
  by the slowest applicable rate, and at least the largest single
  operator;
* per-GPU busy time never exceeds the makespan;
* transfers only occur between distinct GPUs, with positive durations.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import Schedule, Stage, critical_path_length, priority_order
from repro.models.randomdag import random_layered_dag
from repro.substrate import EngineConfig, MultiGpuEngine


def _greedy_stage_schedule(graph, num_gpus: int, width: int, seed: int) -> Schedule:
    """Deterministic multi-op-stage schedule: assign operators to GPUs
    round-robin in priority order, then pack each GPU's consecutive
    independent operators into stages of up to ``width``.  Packing can
    create cross-GPU stage cycles; when it does, fall back to the
    always-feasible singleton layout (per-GPU priority order)."""
    order = priority_order(graph)
    per_gpu: dict[int, list[str]] = {g: [] for g in range(num_gpus)}
    for i, v in enumerate(order):
        per_gpu[(i + seed) % num_gpus].append(v)
    packed = Schedule(num_gpus)
    for g, ops in per_gpu.items():
        i = 0
        while i < len(ops):
            group = [ops[i]]
            j = i + 1
            while j < len(ops) and len(group) < width:
                if graph.independent(group + [ops[j]]):
                    group.append(ops[j])
                    j += 1
                else:
                    break
            packed.append_stage(Stage(g, tuple(group)))
            i += len(group)
    try:
        packed.validate(graph)
        return packed
    except Exception:
        singleton = Schedule(num_gpus)
        for g, ops in per_gpu.items():
            for v in ops:
                singleton.append_stage(Stage(g, (v,)))
        singleton.validate(graph)
        return singleton


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 500),
    num_gpus=st.integers(1, 3),
    width=st.integers(1, 4),
    overlap=st.booleans(),
)
def test_engine_invariants(seed, num_gpus, width, overlap):
    graph = random_layered_dag(num_ops=24, num_layers=4, seed=seed)
    schedule = _greedy_stage_schedule(graph, num_gpus, width, seed)
    engine = MultiGpuEngine(
        EngineConfig(launch_overhead_ms=0.002, overlap_launch=overlap)
    )
    trace = engine.run(graph, schedule, validate=False)

    assert set(trace.op_start) == set(graph.names)
    assert set(trace.op_finish) == set(graph.names)
    for op in graph.names:
        assert trace.op_finish[op] >= trace.op_start[op] - 1e-9
        assert trace.op_launch[op] <= trace.op_start[op] + 1e-9

    cp = critical_path_length(graph, include_transfers=False)
    assert trace.latency >= cp - 1e-6  # rates never exceed 1.0
    assert trace.latency >= max(op.cost for op in graph.operators()) - 1e-6

    for g, busy in trace.gpu_busy.items():
        assert busy <= trace.latency + 1e-6

    gpu_of = {op: schedule.gpu_of(op) for op in graph.names}
    for rec in trace.transfers:
        assert rec.src != rec.dst
        assert rec.duration > 0
    # every cross-GPU edge produced exactly one transfer
    expected = sum(
        1 for u, v, _ in graph.edges() if gpu_of[u] != gpu_of[v]
    )
    assert trace.num_transfers == expected


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200))
def test_dependencies_respected_in_time(seed):
    """A consumer never starts before its producer finished (plus the
    transfer when remote)."""
    graph = random_layered_dag(num_ops=20, num_layers=4, seed=seed)
    schedule = _greedy_stage_schedule(graph, 2, 3, seed)
    trace = MultiGpuEngine(EngineConfig(launch_overhead_ms=0.0)).run(
        graph, schedule, validate=False
    )
    gpu_of = {op: schedule.gpu_of(op) for op in graph.names}
    for u, v, w in graph.edges():
        gap = w if gpu_of[u] != gpu_of[v] else 0.0
        assert trace.op_start[v] >= trace.op_finish[u] + gap - 1e-6
