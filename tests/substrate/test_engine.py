"""Tests for the discrete-event multi-GPU engine."""

import pytest

from repro.core import OpGraph, Schedule, Stage
from repro.substrate import EngineConfig, MultiGpuEngine


def engine(**kwargs):
    defaults = dict(
        launch_overhead_ms=0.0,
        launch_included_in_cost=False,
        contention_penalty=0.0,
        transfer_from_edges=True,
    )
    defaults.update(kwargs)
    return MultiGpuEngine(EngineConfig(**defaults))


def chain():
    return OpGraph.from_edges({"a": 1.0, "b": 2.0}, [("a", "b", 0.5)])


class TestBasicTiming:
    def test_sequential_chain_one_gpu(self):
        g = chain()
        s = Schedule(1)
        s.append_op(0, "a")
        s.append_op(0, "b")
        tr = engine().run(g, s)
        assert tr.latency == pytest.approx(3.0)
        assert tr.op_finish["a"] == pytest.approx(1.0)
        assert tr.op_start["b"] == pytest.approx(1.0)
        assert tr.num_transfers == 0

    def test_cross_gpu_transfer(self):
        g = chain()
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        tr = engine().run(g, s)
        # a: 0-1, transfer 1-1.5, b: 1.5-3.5
        assert tr.latency == pytest.approx(3.5)
        assert tr.num_transfers == 1
        assert tr.transfers[0].duration == pytest.approx(0.5)

    def test_launch_overhead_serializes(self):
        g = OpGraph.from_edges({"a": 1.0, "b": 1.0}, [], occupancy=0.4)
        s = Schedule(1, [Stage(0, ("a", "b"))])
        tr = engine(launch_overhead_ms=0.1).run(g, s)
        # launches at 0.1 and 0.2; both kernels run 1.0 concurrently
        assert tr.op_start["a"] == pytest.approx(0.1)
        assert tr.op_start["b"] == pytest.approx(0.2)
        assert tr.latency == pytest.approx(1.2)

    def test_launch_included_in_cost(self):
        g = OpGraph.from_edges({"a": 1.0}, [])
        s = Schedule(1, [Stage(0, ("a",))])
        tr = engine(launch_overhead_ms=0.1, launch_included_in_cost=True).run(g, s)
        # kernel shrinks to 0.9, total stays 1.0
        assert tr.latency == pytest.approx(1.0)

    def test_stage_barrier(self):
        g = OpGraph.from_edges({"a": 2.0, "b": 1.0, "c": 1.0}, [], occupancy=0.4)
        s = Schedule(1)
        s.append_stage(Stage(0, ("a", "b")))
        s.append_stage(Stage(0, ("c",)))
        tr = engine().run(g, s)
        # c waits for the whole first stage (a finishes at 2)
        assert tr.op_start["c"] == pytest.approx(2.0)


class TestContention:
    def test_saturating_kernels_slow_down(self):
        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0}, [], occupancy=1.0
        )
        s = Schedule(1, [Stage(0, ("a", "b"))])
        tr = engine(contention_penalty=0.06).run(g, s)
        # both saturate: slowdown 2*(1.06) -> finish at 2.12
        assert tr.latency == pytest.approx(2.12)

    def test_small_kernels_truly_parallel(self):
        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0}, [], occupancy={"a": 0.3, "b": 0.3}
        )
        s = Schedule(1, [Stage(0, ("a", "b"))])
        tr = engine(contention_penalty=0.06).run(g, s)
        assert tr.latency == pytest.approx(1.0)

    def test_stream_overhead(self):
        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0}, [], occupancy={"a": 0.3, "b": 0.3}
        )
        s = Schedule(1, [Stage(0, ("a", "b"))])
        tr = engine(stream_overhead=0.5).run(g, s)
        assert tr.latency == pytest.approx(1.5)


class TestCommunicationModes:
    def three_op_graph(self):
        # a on GPU0 feeds b on GPU1; d fills GPU0 afterwards
        return OpGraph.from_edges(
            {"a": 1.0, "b": 1.0, "d": 1.0}, [("a", "b", 3.0)]
        )

    def schedule(self):
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(0, "d")
        s.append_op(1, "b")
        return s

    def test_send_blocking_stalls_host(self):
        tr = engine(send_blocking=True).run(self.three_op_graph(), self.schedule())
        # host 0 blocked by the send until 4; d runs 4-5
        assert tr.op_start["d"] == pytest.approx(4.0)
        assert tr.latency == pytest.approx(5.0)

    def test_non_blocking_send(self):
        tr = engine(send_blocking=False).run(self.three_op_graph(), self.schedule())
        assert tr.op_start["d"] == pytest.approx(1.0)
        assert tr.latency == pytest.approx(5.0)  # b ends at 5

    def test_recv_blocks_host_in_mpi_mode(self):
        # GPU1 runs [b, c]; b waits for remote data, blocking c's launch
        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0, "c": 1.0}, [("a", "b", 3.0)]
        )
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_stage(Stage(1, ("b", "c")))
        tr = engine(send_blocking=False, overlap_launch=False).run(g, s)
        # data for b arrives at 4; c (behind b in launch order) also
        # cannot launch before 4
        assert tr.op_start["b"] == pytest.approx(4.0)
        assert tr.op_start["c"] == pytest.approx(4.0)

    def test_overlap_launch_frees_later_ops(self):
        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0, "c": 1.0}, [("a", "b", 3.0)]
        )
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_stage(Stage(1, ("b", "c")))
        tr = engine(send_blocking=False, overlap_launch=True).run(g, s)
        # c launches eagerly and runs immediately; b still waits for data
        assert tr.op_start["c"] == pytest.approx(0.0)
        assert tr.op_start["b"] == pytest.approx(4.0)


class TestTraceAndValidation:
    def test_utilization(self):
        g = chain()
        s = Schedule(2)
        s.append_op(0, "a")
        s.append_op(1, "b")
        tr = engine().run(g, s)
        assert 0 < tr.utilization(0) < 1
        assert tr.gpu_busy[0] == pytest.approx(1.0)
        assert tr.gpu_busy[1] == pytest.approx(2.0)

    def test_invalid_schedule_rejected(self):
        g = chain()
        s = Schedule(1)
        s.append_op(0, "b")
        s.append_op(0, "a")
        with pytest.raises(Exception):
            engine().run(g, s)

    def test_empty_graph(self):
        tr = engine().run(OpGraph(), Schedule(1))
        assert tr.latency == 0.0

    def test_matches_evaluator_on_single_gpu_singletons(self):
        """With zero launch overhead, singleton stages on one GPU time
        out identically in the engine and the analytic evaluator."""
        from repro.core import evaluate_latency, priority_order
        from repro.costmodel import CostProfile
        from repro.models.randomdag import random_layered_dag

        g = random_layered_dag(num_ops=30, num_layers=5, seed=7)
        s = Schedule(1)
        for v in priority_order(g):
            s.append_op(0, v)
        tr = engine().run(g, s)
        prof = CostProfile(graph=g, num_gpus=1)
        assert tr.latency == pytest.approx(evaluate_latency(prof, s))


class TestStreamLimits:
    def _graph(self, n=4):
        return OpGraph.from_edges(
            {f"v{i}": 1.0 for i in range(n)}, [], occupancy=0.1
        )

    def _stage_schedule(self, n=4):
        s = Schedule(1, [Stage(0, tuple(f"v{i}" for i in range(n)))])
        return s

    def test_single_stream_serializes_stage(self):
        tr = engine(max_streams=1).run(self._graph(), self._stage_schedule())
        assert tr.latency == pytest.approx(4.0)
        starts = sorted(tr.op_start.values())
        assert starts == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_two_streams_halve_serialization(self):
        tr = engine(max_streams=2).run(self._graph(), self._stage_schedule())
        assert tr.latency == pytest.approx(2.0)

    def test_unbounded_streams_fully_concurrent(self):
        tr = engine(max_streams=0).run(self._graph(), self._stage_schedule())
        assert tr.latency == pytest.approx(1.0)

    def test_streams_reset_between_stages(self):
        g = self._graph(4)
        s = Schedule(1)
        s.append_stage(Stage(0, ("v0", "v1")))
        s.append_stage(Stage(0, ("v2", "v3")))
        tr = engine(max_streams=2).run(g, s)
        assert tr.latency == pytest.approx(2.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(max_streams=-1)


class TestDeadlockDetection:
    def test_cyclic_schedule_raises_engine_error(self):
        """A schedule with a cross-GPU wait cycle (validation skipped)
        must be detected as a deadlock, not hang."""
        from repro.substrate import EngineError

        g = OpGraph.from_edges(
            {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}, [("a", "b"), ("c", "d")]
        )
        s = Schedule(2)
        s.append_op(0, "d")  # needs c (GPU1, behind b)
        s.append_op(0, "a")
        s.append_op(1, "b")  # needs a (GPU0, behind d)
        s.append_op(1, "c")
        with pytest.raises(EngineError, match="deadlock"):
            engine().run(g, s, validate=False)
