"""Unit tests for the GPU device model and its presets."""

import pytest

from repro.substrate import A40, DEVICE_PRESETS, RTX_A5500, V100S, GpuDeviceModel, KernelWork


def work(flops=1e9, rd=1000, wr=1000, blocks=100):
    return KernelWork(flops=flops, bytes_read=rd, bytes_written=wr, blocks=blocks)


class TestKernelWork:
    def test_totals(self):
        w = work(rd=10, wr=20)
        assert w.bytes_total == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelWork(flops=-1, bytes_read=0, bytes_written=0, blocks=1)
        with pytest.raises(ValueError):
            KernelWork(flops=0, bytes_read=0, bytes_written=0, blocks=0)


class TestDeviceModel:
    def test_compute_bound_kernel(self):
        d = A40
        w = work(flops=d.effective_flops_per_ms * 2.0, rd=0, wr=0)
        assert d.kernel_time(w) == pytest.approx(2.0 + d.launch_overhead_ms)

    def test_memory_bound_kernel(self):
        d = A40
        w = work(flops=1.0, rd=int(d.mem_bytes_per_ms), wr=0)
        assert d.kernel_time(w) == pytest.approx(1.0 + d.launch_overhead_ms)

    def test_occupancy_clamps(self):
        d = A40
        assert d.occupancy(work(blocks=10 * d.block_capacity)) == 1.0
        tiny = d.occupancy(work(blocks=1))
        assert 0 < tiny < 0.01

    def test_occupancy_monotone_in_blocks(self):
        d = A40
        occ = [d.occupancy(work(blocks=b)) for b in (10, 100, 1000, 10000)]
        assert occ == sorted(occ)

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuDeviceModel("bad", num_sms=0, peak_tflops=1, mem_bw_gbs=1)
        with pytest.raises(ValueError):
            GpuDeviceModel("bad", num_sms=1, peak_tflops=-1, mem_bw_gbs=1)
        with pytest.raises(ValueError):
            GpuDeviceModel("bad", num_sms=1, peak_tflops=1, mem_bw_gbs=1, efficiency=2)
        with pytest.raises(ValueError):
            GpuDeviceModel(
                "bad", num_sms=1, peak_tflops=1, mem_bw_gbs=1, launch_overhead_ms=-1
            )


class TestPresets:
    def test_registry(self):
        assert DEVICE_PRESETS["a40"] is A40
        assert DEVICE_PRESETS["a5500"] is RTX_A5500
        assert DEVICE_PRESETS["v100s"] is V100S

    def test_relative_throughput(self):
        # A40 out-computes V100S (fp32), V100S has more memory bandwidth
        assert A40.effective_flops_per_ms > V100S.effective_flops_per_ms
        assert V100S.mem_bytes_per_ms > A40.mem_bytes_per_ms

    def test_fig1_calibration_crossover(self):
        """The 48-channel 5x5 conv must under-occupy the A40 at 64x64
        and saturate it at 128x128 (Section II-A / Fig. 1)."""
        from repro.experiments.fig01_contention import conv_operator

        assert conv_operator(64).occupancy < 1.0
        assert conv_operator(128).occupancy == 1.0
