"""Mini Section V study: how HIOS-LP scales where HIOS-MR stalls.

Generates the paper's random layered DAG workloads (200 operators,
14 layers, |E| = 2|V|, p = 0.8) and sweeps the GPU count, printing the
speedups over sequential execution for all six algorithms — a compact
command-line rendition of Fig. 7.

Run:  python examples/random_dag_study.py [instances]
"""

import sys

from repro import schedule_graph
from repro.experiments.reporting import format_table
from repro.models import random_dag_profile

ALGOS = ("sequential", "ios", "hios-mr", "hios-lp", "inter-mr", "inter-lp")


def main(instances: int = 3) -> None:
    print(
        f"random DAGs: 200 ops, 14 layers, 400 deps, p=0.8 "
        f"(mean of {instances} instances)\n"
    )
    rows = []
    for num_gpus in (2, 4, 8, 12):
        latencies = {a: 0.0 for a in ALGOS}
        for seed in range(instances):
            profile = random_dag_profile(seed=seed, num_gpus=num_gpus)
            for alg in ALGOS:
                latencies[alg] += schedule_graph(profile, alg).latency / instances
        seq = latencies["sequential"]
        rows.append(
            [num_gpus]
            + [latencies[a] for a in ALGOS]
            + [seq / latencies["hios-lp"], seq / latencies["hios-mr"]]
        )
    print(
        format_table(
            ["gpus", *ALGOS, "lp speedup", "mr speedup"],
            rows,
            precision=1,
        )
    )
    print(
        "\nExpected shape (paper Fig. 7): HIOS-LP's speedup keeps growing "
        "with GPUs; HIOS-MR plateaus below ~1.7x; IOS and sequential are "
        "flat (single GPU)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
