"""Certify schedule quality: lower bounds, structural metrics, and the
profile -> schedule -> measure feedback loop.

Three questions a practitioner asks after running a scheduler:

1. *How close to optimal is this?*  NP-hardness rules out exact optima
   at scale, but the critical-path / work / bottleneck lower bounds
   certify a gap (`repro.core.bounds`).
2. *Where does the schedule spend its budget?*  Crossings, transfer
   volume, load balance and stage widths (`repro.core.analysis`).
3. *Do measured concurrent groups match the analytic estimates?*  The
   iterative profiling loop re-prices the stages the first schedule
   actually formed and reschedules (`PlatformProfiler.iterative_profile`).

Run:  python examples/schedule_quality.py
"""

from repro import schedule_graph
from repro.core import analyze_schedule, latency_lower_bound, optimality_gap
from repro.experiments.reporting import format_table
from repro.models import inception_v3
from repro.substrate import PlatformProfiler, dual_a40


def main() -> None:
    profiler = PlatformProfiler(dual_a40())
    model = inception_v3(1024)
    profile = profiler.profile(model)
    bound = latency_lower_bound(profile)
    print(f"Inception-v3 @ 1024, dual A40 — proven lower bound {bound:.3f} ms\n")

    rows = []
    for alg in ("sequential", "ios", "hios-mr", "hios-lp", "hios-lp-ls"):
        res = schedule_graph(profile, alg)
        m = analyze_schedule(profile, res.schedule)
        rows.append(
            [
                alg,
                res.latency,
                f"{optimality_gap(profile, res):.2f}x",
                m.num_cross_edges,
                f"{m.comm_time_total:.2f}",
                f"{m.load_imbalance:.2f}",
                f"{m.critical_path_local_fraction:.0%}",
            ]
        )
    print(
        format_table(
            [
                "algorithm",
                "latency ms",
                "gap",
                "crossings",
                "comm ms",
                "imbalance",
                "cp local",
            ],
            rows,
        )
    )

    print("\nIterative profiling (2 rounds, measured stage times fed back):")
    profile2, res2 = profiler.iterative_profile(model, "hios-lp", rounds=2)
    res1 = schedule_graph(profiler.profile(model), "hios-lp")
    print(f"  round 1 (analytic t(S)): {res1.latency:.3f} ms predicted")
    print(f"  round 2 (measured t(S)): {res2.latency:.3f} ms predicted")
    trace = profiler.engine().run(profile2.graph, res2.schedule)
    print(f"  engine measurement of the round-2 schedule: {trace.latency:.3f} ms")


if __name__ == "__main__":
    main()
