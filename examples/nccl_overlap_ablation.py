"""Ablation: CUDA-aware-MPI blocking transfers vs NCCL-style overlap.

Section VI-E of the paper attributes HIOS-LP's occasional small-input
regression to its CUDA-aware-MPI implementation, where a dependent
kernel launches only after the inter-GPU transfer completes, and
suggests NCCL could hide that launch latency.  The engine models both:

* default mode — the host blocks on sends and on remote-input recvs;
* ``overlap_launch`` mode — launches are enqueued eagerly; only the
  kernel's execution waits for data.

This script quantifies the gap on NASNet across input sizes.

Run:  python examples/nccl_overlap_ablation.py
"""

from repro import schedule_graph
from repro.experiments.reporting import format_table
from repro.models import nasnet
from repro.substrate import PlatformProfiler, dual_a40


def main() -> None:
    profiler = PlatformProfiler(dual_a40())
    rows = []
    for size in (331, 512, 1024):
        profile = profiler.profile(nasnet(size))
        res = schedule_graph(profile, "hios-lp")
        mpi = profiler.engine(overlap_launch=False).run(profile.graph, res.schedule)
        nccl = profiler.engine(overlap_launch=True).run(profile.graph, res.schedule)
        rows.append(
            [
                size,
                res.latency,
                mpi.latency,
                nccl.latency,
                100.0 * (1 - nccl.latency / mpi.latency),
            ]
        )
    print("NASNet, HIOS-LP schedule, dual A40 (all times ms):\n")
    print(
        format_table(
            ["input", "predicted", "MPI engine", "NCCL engine", "overlap gain %"],
            rows,
            precision=3,
        )
    )
    print(
        "\nThe overlap gain is the launch latency the paper expects an "
        "NCCL-based transport to hide (Section VI-E)."
    )


if __name__ == "__main__":
    main()
