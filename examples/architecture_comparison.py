"""How much HIOS helps depends on the model's branching factor.

The paper motivates HIOS with multi-branch architectures; this example
quantifies the other side too.  Four architectures with very different
degrees of inter-operator parallelism run through the same pipeline on
a 4-GPU NVSwitch box:

* ResNet-50        — near-chain (skip adds only), minimal headroom;
* Inception-v3     — moderate branching (the paper's benchmark);
* NASNet           — dense cells, branching limited by dependencies;
* RandWire         — random wiring, maximal branching.

Run:  python examples/architecture_comparison.py
"""

from repro import schedule_graph
from repro.core import critical_path_length
from repro.experiments.reporting import format_table
from repro.models import inception_v3, nasnet, randwire, resnet50
from repro.substrate import PlatformProfiler, nvswitch_platform


def main() -> None:
    profiler = PlatformProfiler(nvswitch_platform(4))
    engine = profiler.engine()
    rows = []
    for build, size in (
        (resnet50, 512),
        (inception_v3, 512),
        (nasnet, 512),
        (randwire, 512),
    ):
        model = build(size)
        profile = profiler.profile(model)
        g = profile.graph
        # computation-only critical path over total work: 1.0 = pure
        # chain, small = wide graph
        chain_fraction = critical_path_length(g, include_transfers=False) / g.total_cost()
        seq = engine.run(g, schedule_graph(profile, "sequential").schedule).latency
        lp = engine.run(g, schedule_graph(profile, "hios-lp").schedule).latency
        rows.append(
            [
                model.name,
                len(g),
                g.num_edges,
                f"{chain_fraction:.2f}",
                seq,
                lp,
                f"{100 * (1 - lp / seq):.1f}%",
            ]
        )
    print("4x A40 over NVSwitch, engine-measured latency (ms):\n")
    print(
        format_table(
            ["model", "ops", "deps", "chain frac", "sequential", "hios-lp", "gain"],
            rows,
        )
    )
    print(
        "\nThe gain tracks (1 - chain fraction): HIOS-LP needs independent "
        "operators to spread across GPUs, exactly the paper's Fig. 9/10 "
        "sensitivity on real architectures."
    )


if __name__ == "__main__":
    main()
