"""Quickstart: schedule a small multi-branch DAG onto two GPUs.

Builds the eight-operator computation graph from the paper's Fig. 4
walk-through, runs every scheduling algorithm, and shows the winning
HIOS-LP schedule as JSON (the contract the execution engine consumes)
plus an ASCII timeline.

Run:  python examples/quickstart.py
"""

from repro import ALGORITHMS, evaluate_schedule, make_profile, schedule_graph
from repro.models.worked_examples import fig4_graph
from repro.utils import render_gantt, render_schedule_table


def main() -> None:
    graph = fig4_graph()
    profile = make_profile(graph, num_gpus=2)
    print(f"graph: {len(graph)} operators, {graph.num_edges} dependencies\n")

    print(f"{'algorithm':>12}  latency (ms)")
    results = {}
    for name in ALGORITHMS:
        results[name] = schedule_graph(profile, name)
        print(f"{name:>12}  {results[name].latency:10.2f}")

    best = results["hios-lp"]
    print("\nHIOS-LP schedule (JSON contract for the engine):")
    print(best.schedule.to_json(indent=2))

    print("\nStage layout:")
    print(render_schedule_table(best.schedule))

    timing = evaluate_schedule(profile, best.schedule)
    gpu_of = {op: best.schedule.gpu_of(op) for op in graph.names}
    print("\nTimeline:")
    print(render_gantt(timing.op_start, timing.op_finish, gpu_of, width=60))


if __name__ == "__main__":
    main()
