"""Schedule your own model: define a multi-branch CNN with the builder.

Shows the full public API surface a downstream user touches when
bringing their own architecture:

* :class:`repro.models.GraphBuilder` + operator specs -> model graph;
* :class:`repro.substrate.PlatformProfiler` -> cost profile;
* :func:`repro.schedule_graph` with algorithm/window knobs;
* schedule JSON export for an external runtime.

The model here is a three-branch "inception-ish" block stack with a
residual join — wide enough that HIOS-LP spreads branches across GPUs.

Run:  python examples/custom_model.py
"""

from repro import schedule_graph
from repro.models import (
    Add,
    AvgPool2d,
    Concat,
    Conv2d,
    GlobalAvgPool,
    GraphBuilder,
    SeparableConv2d,
    TensorShape,
)
from repro.substrate import PlatformProfiler, nvswitch_platform
from repro.utils import render_schedule_table


def build_model(input_size: int = 512):
    b = GraphBuilder("threebranch", TensorShape(3, input_size, input_size))
    x = b.add("stem", Conv2d(64, 7, stride=2), b.input)
    for i in range(3):
        p = f"blk{i}"
        left = b.add(f"{p}_1x1", Conv2d(64, 1), x)
        mid = b.add(f"{p}_3x3a", Conv2d(96, 3), x)
        mid = b.add(f"{p}_3x3b", SeparableConv2d(96, 3), mid)
        right = b.add(f"{p}_pool", AvgPool2d(3, 1), x)
        right = b.add(f"{p}_proj", Conv2d(64, 1), right)
        cat = b.add(f"{p}_concat", Concat(), left, mid, right)
        skip = b.add(f"{p}_skip", Conv2d(224, 1), x)
        x = b.add(f"{p}_residual", Add(), cat, skip)
    b.add("head", GlobalAvgPool(), x)
    return b.build()


def main() -> None:
    model = build_model()
    platform = nvswitch_platform(num_gpus=4)
    profiler = PlatformProfiler(platform)
    profile = profiler.profile(model)
    print(
        f"{model.name}: {len(model)} ops, {model.num_edges} deps "
        f"on {platform.name}\n"
    )

    for alg in ("sequential", "hios-mr", "hios-lp"):
        res = schedule_graph(profile, alg, **({"window": 4} if alg.startswith("hios") else {}))
        used = len(res.schedule.used_gpus())
        print(f"{alg:>10}: {res.latency:8.3f} ms predicted, {used} GPU(s) used")

    best = schedule_graph(profile, "hios-lp", window=4)
    print("\nHIOS-LP stage layout:")
    print(render_schedule_table(best.schedule))

    out = "custom_model_schedule.json"
    with open(out, "w") as fh:
        fh.write(best.schedule.to_json(indent=2))
    print(f"\nschedule written to {out}")


if __name__ == "__main__":
    main()
