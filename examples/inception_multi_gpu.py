"""Schedule Inception-v3 onto a dual-A40 box and execute it.

Reproduces the paper's Section VI flow end to end for one input size:

1. build the Inception-v3 computation graph (119 ops / 153 deps);
2. profile it on the simulated dual-A40 + NVLink platform;
3. schedule with sequential / IOS / HIOS-MR / HIOS-LP;
4. execute each schedule on the discrete-event engine and compare the
   scheduler's predicted latency with the "measured" one.

Run:  python examples/inception_multi_gpu.py [input_size]
"""

import sys

from repro import schedule_graph
from repro.experiments.reporting import format_table
from repro.models import inception_v3
from repro.substrate import PlatformProfiler, dual_a40
from repro.utils import render_gantt


def main(input_size: int = 1024) -> None:
    model = inception_v3(input_size)
    profiler = PlatformProfiler(dual_a40())
    profile = profiler.profile(model)
    engine = profiler.engine()
    print(
        f"Inception-v3 @ {input_size}x{input_size} on {profiler.platform.name}: "
        f"{len(profile.graph)} ops, total solo compute "
        f"{profile.graph.total_cost():.2f} ms\n"
    )

    rows = []
    traces = {}
    for alg in ("sequential", "ios", "hios-mr", "hios-lp"):
        res = schedule_graph(profile, alg)
        trace = engine.run(profile.graph, res.schedule)
        traces[alg] = (res, trace)
        rows.append(
            [
                alg,
                res.latency,
                trace.latency,
                trace.num_transfers,
                f"{trace.utilization(0):.0%}/{trace.utilization(1):.0%}",
            ]
        )
    print(
        format_table(
            ["algorithm", "predicted ms", "measured ms", "transfers", "util g0/g1"],
            rows,
        )
    )

    res, trace = traces["hios-lp"]
    gpu_of = {op: res.schedule.gpu_of(op) for op in profile.graph.names}
    print("\nHIOS-LP measured timeline (12 longest operators per GPU):")
    print(render_gantt(trace.op_start, trace.op_finish, gpu_of, max_ops_per_gpu=12))

    seq = traces["sequential"][1].latency
    lp = trace.latency
    ios = traces["ios"][1].latency
    print(
        f"\nHIOS-LP cuts latency {100 * (1 - lp / seq):.1f}% vs sequential "
        f"and {100 * (1 - lp / ios):.1f}% vs IOS."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1024)
