"""Model graph builder: from operator specs to a shaped DAG.

A :class:`ModelGraph` is the device-independent description of a DL
model — operators (:mod:`repro.models.ops`), their connectivity, and
inferred tensor shapes.  It becomes a schedulable, cost-annotated
:class:`~repro.core.graph.OpGraph` only once a platform prices it (see
:mod:`repro.substrate.profiler`), mirroring the paper's
profile-then-schedule pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.graph import GraphError, OpGraph, Operator
from .ops import OpSpec, TensorShape

__all__ = ["ModelNode", "ModelGraph", "GraphBuilder", "INPUT"]

INPUT = "__input__"  # sentinel tensor name for the model input


@dataclass(frozen=True)
class ModelNode:
    """One operator instance in a model."""

    name: str
    spec: OpSpec
    inputs: tuple[str, ...]  # producing operator names, or INPUT
    output: TensorShape


class ModelGraph:
    """Topology + shapes of a model (batch size 1, single input)."""

    def __init__(self, name: str, input_shape: TensorShape) -> None:
        self.name = name
        self.input_shape = input_shape
        self._nodes: dict[str, ModelNode] = {}

    def _shape_of(self, tensor: str) -> TensorShape:
        if tensor == INPUT:
            return self.input_shape
        try:
            return self._nodes[tensor].output
        except KeyError:
            raise GraphError(f"unknown tensor {tensor!r} in model {self.name!r}") from None

    def add(self, name: str, spec: OpSpec, inputs: Sequence[str]) -> ModelNode:
        if name in self._nodes or name == INPUT:
            raise GraphError(f"duplicate operator name {name!r}")
        shapes = [self._shape_of(t) for t in inputs]
        node = ModelNode(name=name, spec=spec, inputs=tuple(inputs), output=spec.infer(shapes))
        self._nodes[name] = node
        return node

    def node(self, name: str) -> ModelNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown operator {name!r}") from None

    def nodes(self) -> list[ModelNode]:
        return list(self._nodes.values())

    def input_shapes(self, name: str) -> list[TensorShape]:
        return [self._shape_of(t) for t in self.node(name).inputs]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def num_edges(self) -> int:
        """Inter-operator dependencies (edges from the model input are
        not operator dependencies and do not count)."""
        return sum(1 for n in self._nodes.values() for t in n.inputs if t != INPUT)

    def to_op_graph(
        self,
        costs: Mapping[str, float],
        occupancies: Mapping[str, float],
        transfers: Mapping[tuple[str, str], float],
    ) -> OpGraph:
        """Materialize a priced :class:`OpGraph` from profiled numbers."""
        g = OpGraph()
        for node in self._nodes.values():
            g.add_operator(
                Operator(
                    node.name,
                    cost=costs[node.name],
                    occupancy=occupancies[node.name],
                    output_bytes=node.output.bytes,
                    kind=node.spec.kind,
                    attrs={"shape": str(node.output)},
                )
            )
        for node in self._nodes.values():
            for t in node.inputs:
                if t != INPUT:
                    g.add_edge(t, node.name, transfers[(t, node.name)])
        return g


class GraphBuilder:
    """Fluent construction helper.

    >>> b = GraphBuilder("toy", TensorShape(3, 32, 32))
    >>> x = b.input
    >>> c1 = b.add("conv1", Conv2d(16), x)
    >>> model = b.build()
    """

    def __init__(self, name: str, input_shape: TensorShape) -> None:
        self._model = ModelGraph(name, input_shape)
        self._counter: dict[str, int] = {}

    @property
    def input(self) -> str:
        return INPUT

    def add(self, name: str, spec: OpSpec, *inputs: str) -> str:
        """Add an operator consuming the named tensors; returns its name
        (usable as a tensor handle downstream)."""
        if not inputs:
            raise GraphError(f"operator {name!r} has no inputs")
        self._model.add(name, spec, inputs)
        return name

    def auto(self, spec: OpSpec, *inputs: str, prefix: str | None = None) -> str:
        """Like :meth:`add` with an auto-generated unique name."""
        base = prefix or spec.kind
        idx = self._counter.get(base, 0) + 1
        self._counter[base] = idx
        return self.add(f"{base}_{idx}", spec, *inputs)

    def shape(self, tensor: str) -> TensorShape:
        return self._model._shape_of(tensor)

    def build(self) -> ModelGraph:
        if len(self._model) == 0:
            raise GraphError("empty model")
        return self._model
