"""ResNet-50 (He et al., 2016) at the same operator granularity.

Not one of the paper's benchmarks — included as the *contrast* case:
ResNet's residual blocks are nearly a chain (the identity skip adds no
operator), so inter-operator parallelism is minimal and HIOS's gains
should largely vanish.  The architecture-comparison example and the
ablation benchmarks use it to show that HIOS-LP's advantage tracks the
branching factor of the model, as the paper's Fig. 9/10 analysis
predicts.

Granularity: convolutions fuse BatchNorm + ReLU; elementwise residual
adds and pooling are separate operators; the head stops at the global
average pool.  The default build has 71 operators and 86 dependencies.
"""

from __future__ import annotations

from .builder import GraphBuilder, ModelGraph
from .ops import Add, Conv2d, GlobalAvgPool, MaxPool2d, TensorShape

__all__ = ["resnet50", "RESNET50_OPS", "RESNET50_DEPS"]

RESNET50_OPS = 71
RESNET50_DEPS = 86

# blocks per stage and the bottleneck widths, as published
_STAGES = ((3, 64), (4, 128), (6, 256), (3, 512))


def _bottleneck(
    b: GraphBuilder, prefix: str, x: str, width: int, stride: int, project: bool
) -> str:
    """conv1x1 -> conv3x3 -> conv1x1(4w) with a residual add; the first
    block of a stage projects the skip with a strided 1x1 conv."""
    out_c = 4 * width
    y = b.add(f"{prefix}_c1", Conv2d(width, 1), x)
    y = b.add(f"{prefix}_c2", Conv2d(width, 3, stride=stride), y)
    y = b.add(f"{prefix}_c3", Conv2d(out_c, 1), y)
    if project:
        skip = b.add(f"{prefix}_proj", Conv2d(out_c, 1, stride=stride, padding=0), x)
    else:
        skip = x
    return b.add(f"{prefix}_add", Add(), y, skip)


def resnet50(input_size: int = 224, channels: int = 3) -> ModelGraph:
    """Build ResNet-50 for a square input; asserts the default op and
    dependency counts."""
    if input_size < 33:
        raise ValueError("ResNet-50 needs input_size >= 33")
    b = GraphBuilder("resnet50", TensorShape(channels, input_size, input_size))
    x = b.add("stem_conv", Conv2d(64, 7, stride=2), b.input)
    x = b.add("stem_pool", MaxPool2d(3, 2), x)
    for si, (blocks, width) in enumerate(_STAGES):
        for bi in range(blocks):
            stride = 2 if (bi == 0 and si > 0) else 1
            project = bi == 0
            x = _bottleneck(b, f"s{si + 1}b{bi + 1}", x, width, stride, project)
    b.add("head_gap", GlobalAvgPool(), x)
    model = b.build()
    assert len(model) == RESNET50_OPS, f"got {len(model)} operators"
    assert model.num_edges == RESNET50_DEPS, f"got {model.num_edges} dependencies"
    return model
