"""NASNet-A (Zoph et al., CVPR'18) at IOS's operator granularity.

The model is a chain of *cells*, each consuming the two previous cell
outputs.  Every cell first adjusts both inputs with 1x1 convolutions
(stride 2 when the skip input is one reduction behind), then runs five
two-branch blocks joined by elementwise adds, and concatenates block
outputs.  Separable convolutions (depthwise + pointwise, fused),
pooling, add and concat are each one operator — the granularity at
which the paper reports **374 operators and 576 inter-operator
dependencies** (Section VI-B); :func:`nasnet` asserts both counts.

Layout (NASNet-A-Large flavored): one stem convolution, two stem
reduction cells, then three stacks of 7/6/6 normal cells separated by
two reduction cells, and a global average pool.  The default input is
331x331, the model's published minimum; the paper sweeps it to
``2^K`` pixels (Fig. 12).
"""

from __future__ import annotations

from .builder import GraphBuilder, ModelGraph
from .ops import (
    AvgPool2d,
    Add,
    Concat,
    Conv2d,
    GlobalAvgPool,
    MaxPool2d,
    SeparableConv2d,
    TensorShape,
)

__all__ = ["nasnet", "NASNET_OPS", "NASNET_DEPS"]

NASNET_OPS = 374
NASNET_DEPS = 576


def _adjust(b: GraphBuilder, p: str, h1: str, h2: str, filters: int) -> tuple[str, str]:
    """1x1 adjust convolutions bringing both cell inputs to ``filters``
    channels and to ``h1``'s spatial size (stride-2 when ``h2`` lags a
    reduction behind)."""
    s1 = b.shape(h1)
    s2 = b.shape(h2)
    a1 = b.add(f"{p}_adj1", Conv2d(filters, 1), h1)
    stride = 2 if s2.h > s1.h else 1
    a2 = b.add(f"{p}_adj2", Conv2d(filters, 1, stride=stride, padding=0), h2)
    if b.shape(a1).h != b.shape(a2).h:
        raise ValueError(f"cell {p}: adjusted inputs disagree spatially")
    return a1, a2


def _normal_cell(b: GraphBuilder, p: str, h1: str, h2: str, filters: int) -> str:
    """NASNet-A normal cell: 16 operators, 25 dependencies."""
    a1, a2 = _adjust(b, p, h1, h2, filters)
    x1 = b.add(f"{p}_sep3_l", SeparableConv2d(filters, 3), a1)
    y1 = b.add(f"{p}_add1", Add(), x1, a1)
    x2a = b.add(f"{p}_sep3_r", SeparableConv2d(filters, 3), a2)
    x2b = b.add(f"{p}_sep5_l", SeparableConv2d(filters, 5), a1)
    y2 = b.add(f"{p}_add2", Add(), x2a, x2b)
    x3 = b.add(f"{p}_avg_l", AvgPool2d(3, 1), a1)
    y3 = b.add(f"{p}_add3", Add(), x3, a2)
    x4a = b.add(f"{p}_avg_r1", AvgPool2d(3, 1), a2)
    x4b = b.add(f"{p}_avg_r2", AvgPool2d(3, 1), a2)
    y4 = b.add(f"{p}_add4", Add(), x4a, x4b)
    x5a = b.add(f"{p}_sep5_r", SeparableConv2d(filters, 5), a2)
    x5b = b.add(f"{p}_sep3_r2", SeparableConv2d(filters, 3), a2)
    y5 = b.add(f"{p}_add5", Add(), x5a, x5b)
    return b.add(f"{p}_concat", Concat(), y1, y2, y3, y4, y5)


def _reduction_cell(b: GraphBuilder, p: str, h1: str, h2: str, filters: int) -> str:
    """NASNet-A reduction cell: 17 operators, 25 dependencies; halves
    the spatial size.  Blocks z2 is consumed internally; the concat
    collects (z1, z3, z4, z5)."""
    a1, a2 = _adjust(b, p, h1, h2, filters)
    r1a = b.add(f"{p}_sep5_s2", SeparableConv2d(filters, 5, stride=2), a1)
    r1b = b.add(f"{p}_sep7_s2a", SeparableConv2d(filters, 7, stride=2), a2)
    z1 = b.add(f"{p}_add1", Add(), r1a, r1b)
    r2a = b.add(f"{p}_max_s2a", MaxPool2d(3, 2), a1)
    r2b = b.add(f"{p}_sep7_s2b", SeparableConv2d(filters, 7, stride=2), a2)
    z2 = b.add(f"{p}_add2", Add(), r2a, r2b)
    r3a = b.add(f"{p}_avg_s2", AvgPool2d(3, 2), a1)
    r3b = b.add(f"{p}_sep5_s2b", SeparableConv2d(filters, 5, stride=2), a2)
    z3 = b.add(f"{p}_add3", Add(), r3a, r3b)
    r4a = b.add(f"{p}_max_s2b", MaxPool2d(3, 2), a1)
    r4b = b.add(f"{p}_sep3", SeparableConv2d(filters, 3), z2)
    z4 = b.add(f"{p}_add4", Add(), r4a, r4b)
    r5 = b.add(f"{p}_avg", AvgPool2d(3, 1), z1)
    z5 = b.add(f"{p}_add5", Add(), r5, z2)
    return b.add(f"{p}_concat", Concat(), z1, z3, z4, z5)


def nasnet(
    input_size: int = 331,
    channels: int = 3,
    stem_filters: int = 96,
    cell_filters: int = 168,
    stacks: tuple[int, ...] = (7, 6, 6),
) -> ModelGraph:
    """Build the NASNet graph.

    With the default configuration the graph has exactly
    ``NASNET_OPS`` operators and ``NASNET_DEPS`` dependencies
    (asserted).  ``cell_filters`` is the F of the first stack; filters
    double at each reduction, as published.
    """
    if input_size < 63:
        raise ValueError("NASNet needs input_size >= 63")
    b = GraphBuilder("nasnet", TensorShape(channels, input_size, input_size))

    x = b.add("stem_conv", Conv2d(stem_filters, 3, stride=2, padding=0), b.input)
    # two stem reduction cells (both inputs initially the stem conv)
    f = cell_filters // 2
    prev_prev, prev = x, x
    for i in (1, 2):
        out = _reduction_cell(b, f"stem{i}", prev, prev_prev, f)
        prev_prev, prev = prev, out

    f = cell_filters
    cell = 0
    for stack, num_normals in enumerate(stacks):
        for _ in range(num_normals):
            cell += 1
            out = _normal_cell(b, f"n{cell}", prev, prev_prev, f)
            prev_prev, prev = prev, out
        if stack < len(stacks) - 1:
            f *= 2
            out = _reduction_cell(b, f"r{stack + 1}", prev, prev_prev, f)
            prev_prev, prev = prev, out
    b.add("head_gap", GlobalAvgPool(), prev)

    model = b.build()
    if stacks == (7, 6, 6) and stem_filters == 96 and cell_filters == 168:
        assert len(model) == NASNET_OPS, f"got {len(model)} operators"
        assert model.num_edges == NASNET_DEPS, f"got {model.num_edges} dependencies"
    return model
