"""Workloads: CNN operator library, model builders (Inception-v3,
NASNet at the paper's operator counts) and the Section V random
layered DAG generator."""

from .builder import INPUT, GraphBuilder, ModelGraph, ModelNode
from .inception import INCEPTION_V3_DEPS, INCEPTION_V3_OPS, inception_v3
from .nasnet import NASNET_DEPS, NASNET_OPS, nasnet
from .ops import (
    Activation,
    Add,
    AvgPool2d,
    Concat,
    Conv2d,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    OpSpec,
    SeparableConv2d,
    TensorShape,
)
from .randomdag import RandomDagConfig, random_dag_profile, random_layered_dag
from .randwire import randwire
from .resnet import RESNET50_DEPS, RESNET50_OPS, resnet50

__all__ = [
    "Activation",
    "Add",
    "AvgPool2d",
    "Concat",
    "Conv2d",
    "GlobalAvgPool",
    "GraphBuilder",
    "INCEPTION_V3_DEPS",
    "INCEPTION_V3_OPS",
    "INPUT",
    "Linear",
    "MaxPool2d",
    "ModelGraph",
    "ModelNode",
    "NASNET_DEPS",
    "NASNET_OPS",
    "OpSpec",
    "RESNET50_DEPS",
    "RESNET50_OPS",
    "RandomDagConfig",
    "SeparableConv2d",
    "TensorShape",
    "inception_v3",
    "nasnet",
    "random_dag_profile",
    "random_layered_dag",
    "randwire",
    "resnet50",
]
