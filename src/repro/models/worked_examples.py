"""The paper's worked examples (Figs. 4-6) as constructible workloads.

The paper's figures omit the concrete vertex/edge weights, so we pick
weights consistent with every step of the narrative and verify the
narrative itself in the test suite:

* **Fig. 4** (HIOS-LP walk-through): eight operators, nine edges.  The
  first extracted path must be ``v1 v2 v4 v6 v8``; the second *valid*
  path must be ``v3 v5`` — the longer candidate through ``v7`` is
  rejected because its intermediate vertex ``v5`` has an edge to the
  already-mapped ``v6``; the third path is ``v7`` alone.  Both later
  paths map onto GPU 2.
* **Fig. 5** (Alg. 2 walk-through): a two-GPU schedule whose
  sequential per-GPU orders admit two profitable groupings
  (``{v2, v4}`` and ``{v5, v7}``) found by a window of size 2.
* **Fig. 6** illustrates the HIOS-MR table on the same style of graph;
  :func:`fig4_graph` doubles as its input in the tests.
"""

from __future__ import annotations

from ..core.graph import OpGraph
from ..core.schedule import Schedule, Stage
from ..costmodel.concurrency import TableConcurrencyModel
from ..costmodel.profile import CostProfile

__all__ = ["fig4_graph", "fig4_profile", "fig5_profile", "fig5_initial_schedule"]


def fig4_graph() -> OpGraph:
    """The eight-operator computation graph of Fig. 4.

    Edges (e1..e9): v1->v2, v1->v3, v2->v4, v3->v5, v4->v6, v5->v6,
    v5->v7, v6->v8, v7->v8.  All transfer weights are 1 ms; vertex
    weights make ``v1 v2 v4 v6 v8`` the longest path.
    """
    costs = {
        "v1": 2.0,
        "v2": 3.0,
        "v3": 2.0,
        "v4": 3.0,
        "v5": 3.0,
        "v6": 3.0,
        "v7": 2.0,
        "v8": 2.0,
    }
    edges = [
        ("v1", "v2", 1.0),  # e1
        ("v1", "v3", 1.0),  # e2
        ("v2", "v4", 1.0),  # e3
        ("v3", "v5", 1.0),  # e4
        ("v4", "v6", 1.0),  # e5
        ("v5", "v6", 1.0),  # e6
        ("v5", "v7", 1.0),  # e7
        ("v6", "v8", 1.0),  # e8
        ("v7", "v8", 1.0),  # e9
    ]
    return OpGraph.from_edges(costs, edges)


def fig4_profile(num_gpus: int = 2) -> CostProfile:
    """Cost profile for the Fig. 4 walk-through (two GPUs)."""
    return CostProfile(graph=fig4_graph(), num_gpus=num_gpus)


def fig5_profile() -> CostProfile:
    """Graph + profiled pair times for the Fig. 5 walk-through.

    GPU 1 runs ``v1 v2 v4 v5 v7`` sequentially, GPU 2 runs ``v3 v6``.
    The profiled concurrent-pair table makes grouping ``{v2, v4}`` and
    ``{v5, v7}`` profitable (4 ms each instead of 3 + 3 sequential).
    """
    costs = {
        "v1": 2.0,
        "v2": 3.0,
        "v3": 4.0,
        "v4": 3.0,
        "v5": 3.0,
        "v6": 4.0,
        "v7": 3.0,
    }
    edges = [
        ("v1", "v2", 1.0),
        ("v3", "v6", 1.0),
    ]
    graph = OpGraph.from_edges(costs, edges)
    table = TableConcurrencyModel()
    table.record(["v2", "v4"], 4.0)
    table.record(["v5", "v7"], 4.0)
    return CostProfile(graph=graph, concurrency=table, num_gpus=2)


def fig5_initial_schedule() -> Schedule:
    """The given inter-GPU schedule (sequential within each GPU) that
    Alg. 2 improves."""
    sched = Schedule(2)
    for op in ("v1", "v2", "v4", "v5", "v7"):
        sched.append_stage(Stage(0, (op,)))
    for op in ("v3", "v6"):
        sched.append_stage(Stage(1, (op,)))
    return sched
