"""Randomly wired CNN (RandWire-style, Xie et al. 2019).

The opposite contrast case to ResNet: a stage of convolution nodes
wired by a random DAG, giving a *high* degree of inter-operator
parallelism — the regime the paper's introduction motivates (robust
multi-branch architectures) and where HIOS-LP shines, provided the
interconnect keeps the communication/computation ratio low (on an
NVSwitch fabric the 4-GPU gain exceeds 40 %; over a single NVLink
bridge the blocking sends eat most of it — Fig. 2's lesson).

Construction: a stem convolution feeds ``num_nodes`` convolution
nodes connected by a seeded random DAG (every non-source node draws at
least one predecessor among earlier nodes; multi-input nodes aggregate
with an elementwise Add, as in the original paper's weighted sum); the
outputs of all sink nodes are concatenated and pooled.  All nodes share
one spatial size and channel width so any wiring is shape-consistent.
"""

from __future__ import annotations

import numpy as np

from .builder import GraphBuilder, ModelGraph
from .ops import Add, Concat, Conv2d, GlobalAvgPool, TensorShape

__all__ = ["randwire"]


def randwire(
    input_size: int = 224,
    channels: int = 3,
    num_nodes: int = 32,
    edge_prob: float = 0.2,
    width: int = 128,
    seed: int = 0,
) -> ModelGraph:
    """Build a randomly wired CNN.

    ``edge_prob`` is the probability of each forward edge beyond the
    mandatory one predecessor per node; higher values densify the graph
    (mirroring the paper's Fig. 9 dependency sweep on a real-operator
    workload).  Deterministic for a given seed.
    """
    if num_nodes < 2:
        raise ValueError("need at least two wired nodes")
    if not (0.0 <= edge_prob <= 1.0):
        raise ValueError("edge_prob must be in [0, 1]")
    rng = np.random.default_rng(seed)
    b = GraphBuilder(
        f"randwire{num_nodes}", TensorShape(channels, input_size, input_size)
    )
    stem = b.add("stem", Conv2d(width, 3, stride=2), b.input)

    preds: dict[int, list[int]] = {}
    for v in range(num_nodes):
        choices = list(range(v))
        chosen: list[int] = []
        if choices:
            chosen.append(int(rng.integers(0, v)))
            for u in choices:
                if u not in chosen and rng.random() < edge_prob:
                    chosen.append(u)
        preds[v] = sorted(chosen)

    outputs: dict[int, str] = {}
    consumed: set[int] = set()
    for v in range(num_nodes):
        if preds[v]:
            inputs = [outputs[u] for u in preds[v]]
            consumed.update(preds[v])
            if len(inputs) > 1:
                agg = b.add(f"n{v}_agg", Add(), *inputs)
            else:
                agg = inputs[0]
        else:
            agg = stem
        # dense 3x3 convs keep the arithmetic intensity high enough
        # that inter-GPU transfers can amortize (separable convs are
        # memory-bound and pin the whole graph to one GPU)
        outputs[v] = b.add(f"n{v}_conv", Conv2d(width, 3), agg)

    sinks = [outputs[v] for v in range(num_nodes) if v not in consumed]
    if len(sinks) > 1:
        tail = b.add("tail_concat", Concat(), *sinks)
    else:
        tail = sinks[0]
    b.add("head_gap", GlobalAvgPool(), tail)
    return b.build()
