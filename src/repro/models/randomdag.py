"""Random layered DAG workloads — the Section V simulation setting.

The paper evaluates the schedulers on randomly generated model
structures: ``n`` operators spread over ``L`` layers, ``|E| = 2 n``
dependencies, operator times uniform in ``[0.1, 4]`` ms, and transfer
times ``t(e) = max(0.1 ms, p * t(u))`` with ``p = 0.8`` by default
(Fig. 11 sweeps ``p``).  Operator occupancies follow the saturation
model calibration ``u(v) = min(1, t(v) / t_sat)``: a 3 ms-plus operator
saturates a GPU, so only smaller operators benefit from intra-GPU
concurrency — the regime that keeps IOS's single-GPU gain near the
paper's ~10 %.

Edges only connect earlier layers to later layers, every non-first
layer operator has at least one predecessor in the previous layer, and
generation is fully deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.graph import OpGraph, Operator
from ..costmodel.concurrency import SaturationConcurrencyModel
from ..costmodel.profile import CostProfile

__all__ = ["RandomDagConfig", "random_layered_dag", "random_dag_profile"]


@dataclass(frozen=True)
class RandomDagConfig:
    """Knobs of the Section V generator (paper defaults)."""

    num_ops: int = 200
    num_layers: int = 14
    num_edges: int | None = None  # None = 2 * num_ops
    cost_min: float = 0.1
    cost_max: float = 4.0
    transfer_ratio: float = 0.8  # the paper's p
    transfer_floor: float = 0.1
    saturation_ms: float = 3.0  # t_sat for occupancy calibration

    def __post_init__(self) -> None:
        if self.num_ops < 1:
            raise ValueError("need at least one operator")
        if not (1 <= self.num_layers <= self.num_ops):
            raise ValueError("num_layers must be in [1, num_ops]")
        if self.cost_min <= 0 or self.cost_max < self.cost_min:
            raise ValueError("invalid cost range")
        if self.transfer_ratio < 0 or self.transfer_floor < 0:
            raise ValueError("invalid transfer parameters")
        if self.saturation_ms <= 0:
            raise ValueError("saturation threshold must be positive")

    @property
    def edges_target(self) -> int:
        return 2 * self.num_ops if self.num_edges is None else self.num_edges


def _assign_layers(cfg: RandomDagConfig, rng: np.random.Generator) -> np.ndarray:
    """Layer index per operator; every layer is non-empty."""
    layers = np.empty(cfg.num_ops, dtype=np.int64)
    layers[: cfg.num_layers] = np.arange(cfg.num_layers)
    if cfg.num_ops > cfg.num_layers:
        layers[cfg.num_layers :] = rng.integers(
            0, cfg.num_layers, size=cfg.num_ops - cfg.num_layers
        )
    rng.shuffle(layers)
    return layers


def random_layered_dag(
    config: RandomDagConfig | None = None, seed: int = 0, **kwargs: object
) -> OpGraph:
    """Generate one random layered DAG.

    Either pass a :class:`RandomDagConfig` or keyword overrides
    (``num_ops=300, transfer_ratio=1.0, ...``).
    """
    if config is None:
        config = RandomDagConfig(**kwargs)  # type: ignore[arg-type]
    elif kwargs:
        raise TypeError("pass either a config object or keyword overrides, not both")
    cfg = config
    rng = np.random.default_rng(seed)

    layers = _assign_layers(cfg, rng)
    by_layer: list[np.ndarray] = [
        np.flatnonzero(layers == l) for l in range(cfg.num_layers)
    ]
    costs = rng.uniform(cfg.cost_min, cfg.cost_max, size=cfg.num_ops)

    # Mandatory edges: each operator beyond layer 0 draws one
    # predecessor from the previous layer, keeping layers connected.
    edges: set[tuple[int, int]] = set()
    for l in range(1, cfg.num_layers):
        prev = by_layer[l - 1]
        for v in by_layer[l]:
            u = int(prev[rng.integers(0, len(prev))])
            edges.add((u, int(v)))

    target = cfg.edges_target
    if target < len(edges):
        raise ValueError(
            f"edge target {target} below the {len(edges)} mandatory layer edges"
        )
    # Capacity check: edges go from any earlier layer to any later one.
    layer_sizes = np.array([len(b) for b in by_layer])
    later = np.cumsum(layer_sizes[::-1])[::-1]
    capacity = int(np.sum(layer_sizes[:-1] * later[1:]))
    if target > capacity:
        raise ValueError(f"edge target {target} exceeds DAG capacity {capacity}")

    # Extra edges: sample (earlier-layer, later-layer) vertex pairs.
    attempts = 0
    while len(edges) < target:
        attempts += 1
        if attempts > 1000 * target:
            raise RuntimeError("edge sampling failed to converge")
        u = int(rng.integers(0, cfg.num_ops))
        v = int(rng.integers(0, cfg.num_ops))
        if layers[u] >= layers[v]:
            continue
        edges.add((u, v))

    graph = OpGraph()
    for i in range(cfg.num_ops):
        t = float(costs[i])
        graph.add_operator(
            Operator(
                f"op{i:04d}",
                cost=t,
                occupancy=min(1.0, t / cfg.saturation_ms),
                kind="synthetic",
                attrs={"layer": int(layers[i])},
            )
        )
    for u, v in sorted(edges):
        tu = float(costs[u])
        graph.add_edge(
            f"op{u:04d}",
            f"op{v:04d}",
            max(cfg.transfer_floor, cfg.transfer_ratio * tu),
        )
    return graph


def random_dag_profile(
    config: RandomDagConfig | None = None,
    seed: int = 0,
    num_gpus: int = 4,
    contention_penalty: float = 0.06,
    max_streams: int = 0,
    **kwargs: object,
) -> CostProfile:
    """Convenience: generate a DAG and wrap it in a cost profile with
    the calibrated saturation concurrency model."""
    graph = random_layered_dag(config, seed=seed, **kwargs)
    return CostProfile(
        graph=graph,
        concurrency=SaturationConcurrencyModel(contention_penalty),
        num_gpus=num_gpus,
        max_streams=max_streams,
    )
