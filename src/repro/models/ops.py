"""Operator library: CNN operators with shape and work inference.

These are *descriptions*, not executable kernels: each operator infers
its output tensor shape from its inputs and reports its resource
footprint (FLOPs, bytes moved, thread blocks) so a
:class:`~repro.substrate.device.GpuDeviceModel` can price it.  Batch
size is fixed to one throughout, matching the paper's
lowest-latency-inference setting.

Convolutions are modeled with BatchNorm + ReLU fused in, the standard
granularity of IOS's cuDNN engine (and the reason the paper's operator
counts are what they are: Inception-v3 = 119, NASNet = 374).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "TensorShape",
    "OpSpec",
    "Conv2d",
    "SeparableConv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool",
    "Concat",
    "Add",
    "Activation",
    "Linear",
    "DTYPE_BYTES",
    "THREADS_PER_BLOCK",
]

DTYPE_BYTES = 4  # fp32, the paper's precision
THREADS_PER_BLOCK = 256  # nominal CTA size used for block-count estimates


@dataclass(frozen=True)
class TensorShape:
    """A CHW activation tensor (batch size 1)."""

    c: int
    h: int
    w: int

    def __post_init__(self) -> None:
        if self.c < 1 or self.h < 1 or self.w < 1:
            raise ValueError(f"invalid tensor shape {self}")

    @property
    def numel(self) -> int:
        return self.c * self.h * self.w

    @property
    def bytes(self) -> int:
        return self.numel * DTYPE_BYTES

    def __str__(self) -> str:
        return f"{self.c}x{self.h}x{self.w}"


def _out_hw(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"kernel {kernel}/stride {stride}/padding {padding} too large for size {size}"
        )
    return out


def _blocks(out: TensorShape) -> int:
    return max(1, -(-out.numel // THREADS_PER_BLOCK))


@dataclass(frozen=True)
class OpSpec:
    """Base operator description.

    Subclasses implement :meth:`infer` (output shape) and
    :meth:`work_items` (flops, bytes read, bytes written, blocks).
    """

    def infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        raise NotImplementedError

    def work_items(
        self, inputs: Sequence[TensorShape], out: TensorShape
    ) -> tuple[float, int, int, int]:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        return type(self).__name__.lower()

    def _expect_inputs(self, inputs: Sequence[TensorShape], n: int) -> None:
        if len(inputs) != n:
            raise ValueError(f"{type(self).__name__} expects {n} input(s), got {len(inputs)}")


@dataclass(frozen=True)
class Conv2d(OpSpec):
    """Convolution + fused BatchNorm + ReLU."""

    out_channels: int
    kernel: int = 3
    stride: int = 1
    padding: int | None = None  # None = "same"-style (kernel // 2)

    def _pad(self) -> int:
        return self.kernel // 2 if self.padding is None else self.padding

    def infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self._expect_inputs(inputs, 1)
        x = inputs[0]
        return TensorShape(
            self.out_channels,
            _out_hw(x.h, self.kernel, self.stride, self._pad()),
            _out_hw(x.w, self.kernel, self.stride, self._pad()),
        )

    def work_items(self, inputs, out):
        x = inputs[0]
        flops = 2.0 * self.kernel**2 * x.c * out.c * out.h * out.w
        weights = self.kernel**2 * x.c * out.c * DTYPE_BYTES
        return flops, x.bytes + weights, out.bytes, _blocks(out)


@dataclass(frozen=True)
class SeparableConv2d(OpSpec):
    """Depthwise + pointwise convolution (NASNet's workhorse), fused."""

    out_channels: int
    kernel: int = 3
    stride: int = 1
    padding: int | None = None

    def _pad(self) -> int:
        return self.kernel // 2 if self.padding is None else self.padding

    def infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self._expect_inputs(inputs, 1)
        x = inputs[0]
        return TensorShape(
            self.out_channels,
            _out_hw(x.h, self.kernel, self.stride, self._pad()),
            _out_hw(x.w, self.kernel, self.stride, self._pad()),
        )

    def work_items(self, inputs, out):
        x = inputs[0]
        depthwise = 2.0 * self.kernel**2 * x.c * out.h * out.w
        pointwise = 2.0 * x.c * out.c * out.h * out.w
        weights = (self.kernel**2 * x.c + x.c * out.c) * DTYPE_BYTES
        return depthwise + pointwise, x.bytes + weights, out.bytes, _blocks(out)


@dataclass(frozen=True)
class _Pool(OpSpec):
    kernel: int = 3
    stride: int = 2
    padding: int | None = None

    def _pad(self) -> int:
        return self.kernel // 2 if self.padding is None else self.padding

    def infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self._expect_inputs(inputs, 1)
        x = inputs[0]
        return TensorShape(
            x.c,
            _out_hw(x.h, self.kernel, self.stride, self._pad()),
            _out_hw(x.w, self.kernel, self.stride, self._pad()),
        )

    def work_items(self, inputs, out):
        x = inputs[0]
        flops = float(self.kernel**2 * out.numel)
        return flops, x.bytes, out.bytes, _blocks(out)


@dataclass(frozen=True)
class MaxPool2d(_Pool):
    pass


@dataclass(frozen=True)
class AvgPool2d(_Pool):
    pass


@dataclass(frozen=True)
class GlobalAvgPool(OpSpec):
    """Spatial global average; output is ``C x 1 x 1``."""

    def infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self._expect_inputs(inputs, 1)
        return TensorShape(inputs[0].c, 1, 1)

    def work_items(self, inputs, out):
        x = inputs[0]
        return float(x.numel), x.bytes, out.bytes, max(1, x.c // 32)


@dataclass(frozen=True)
class Concat(OpSpec):
    """Channel-dimension concatenation; pure data movement."""

    def infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        if not inputs:
            raise ValueError("Concat needs at least one input")
        h, w = inputs[0].h, inputs[0].w
        for x in inputs[1:]:
            if (x.h, x.w) != (h, w):
                raise ValueError(f"Concat spatial mismatch: {inputs}")
        return TensorShape(sum(x.c for x in inputs), h, w)

    def work_items(self, inputs, out):
        read = sum(x.bytes for x in inputs)
        return 0.0, read, out.bytes, _blocks(out)


@dataclass(frozen=True)
class Add(OpSpec):
    """Elementwise sum of same-shape tensors (residual joins)."""

    def infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        if len(inputs) < 2:
            raise ValueError("Add needs at least two inputs")
        if len(set(inputs)) != 1:
            raise ValueError(f"Add shape mismatch: {inputs}")
        return inputs[0]

    def work_items(self, inputs, out):
        read = sum(x.bytes for x in inputs)
        return float(out.numel * (len(inputs) - 1)), read, out.bytes, _blocks(out)


@dataclass(frozen=True)
class Activation(OpSpec):
    """Standalone activation (ReLU and friends), memory bound."""

    fn: str = "relu"

    def infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self._expect_inputs(inputs, 1)
        return inputs[0]

    def work_items(self, inputs, out):
        return float(out.numel), inputs[0].bytes, out.bytes, _blocks(out)


@dataclass(frozen=True)
class Linear(OpSpec):
    """Fully connected layer on a flattened ``C x 1 x 1`` tensor."""

    out_features: int

    def infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self._expect_inputs(inputs, 1)
        return TensorShape(self.out_features, 1, 1)

    def work_items(self, inputs, out):
        x = inputs[0]
        flops = 2.0 * x.numel * self.out_features
        weights = x.numel * self.out_features * DTYPE_BYTES
        return flops, x.bytes + weights, out.bytes, max(1, out.numel // 32)
