"""Inception-v3 (Szegedy et al., CVPR'16) at IOS's operator granularity.

Convolutions fuse BatchNorm + ReLU (one cuDNN call each), pooling and
concatenation are separate operators, and the classifier head stops at
the global average pool — the granularity at which the paper reports
**119 operators and 153 inter-operator dependencies** for this model
(Section VI-B); :func:`inception_v3` asserts both counts.

The input is square with side ``input_size`` (default 299, the model's
minimum); the paper sweeps it up to ``2^K`` pixels to grow operator
workloads (Fig. 12).  The stem downsamples by 8x before the Inception
blocks, so any multiple-of-8-friendly size works.
"""

from __future__ import annotations

from .builder import GraphBuilder, ModelGraph
from .ops import AvgPool2d, Concat, Conv2d, GlobalAvgPool, MaxPool2d, TensorShape

__all__ = ["inception_v3", "INCEPTION_V3_OPS", "INCEPTION_V3_DEPS"]

INCEPTION_V3_OPS = 119
INCEPTION_V3_DEPS = 153


def _block_a(b: GraphBuilder, x: str, idx: int, pool_features: int) -> str:
    """InceptionA: 1x1 / 5x5 / double-3x3 / pool branches."""
    p = f"a{idx}"
    b1 = b.add(f"{p}_1x1", Conv2d(64, 1), x)
    b2 = b.add(f"{p}_5x5_1", Conv2d(48, 1), x)
    b2 = b.add(f"{p}_5x5_2", Conv2d(64, 5), b2)
    b3 = b.add(f"{p}_3x3dbl_1", Conv2d(64, 1), x)
    b3 = b.add(f"{p}_3x3dbl_2", Conv2d(96, 3), b3)
    b3 = b.add(f"{p}_3x3dbl_3", Conv2d(96, 3), b3)
    b4 = b.add(f"{p}_pool", AvgPool2d(3, 1), x)
    b4 = b.add(f"{p}_pool_1x1", Conv2d(pool_features, 1), b4)
    return b.add(f"{p}_concat", Concat(), b1, b2, b3, b4)


def _block_b(b: GraphBuilder, x: str) -> str:
    """InceptionB (grid reduction 35 -> 17)."""
    b1 = b.add("b_3x3", Conv2d(384, 3, stride=2, padding=0), x)
    b2 = b.add("b_3x3dbl_1", Conv2d(64, 1), x)
    b2 = b.add("b_3x3dbl_2", Conv2d(96, 3), b2)
    b2 = b.add("b_3x3dbl_3", Conv2d(96, 3, stride=2, padding=0), b2)
    b3 = b.add("b_pool", MaxPool2d(3, 2, padding=0), x)
    return b.add("b_concat", Concat(), b1, b2, b3)


def _block_c(b: GraphBuilder, x: str, idx: int, c7: int) -> str:
    """InceptionC: 1x1 / 7x7 / double-7x7 / pool branches.

    The factorized 1x7 / 7x1 convolutions are modeled as square 7x7
    kernels at the same operator granularity; this overestimates their
    FLOPs by a constant factor shared by every scheduler, so relative
    comparisons are unaffected."""
    p = f"c{idx}"
    b1 = b.add(f"{p}_1x1", Conv2d(192, 1), x)
    b2 = b.add(f"{p}_7x7_1", Conv2d(c7, 1), x)
    b2 = b.add(f"{p}_7x7_2", Conv2d(c7, 7, padding=3), b2)
    b2 = b.add(f"{p}_7x7_3", Conv2d(192, 7, padding=3), b2)
    b3 = b.add(f"{p}_7x7dbl_1", Conv2d(c7, 1), x)
    b3 = b.add(f"{p}_7x7dbl_2", Conv2d(c7, 7, padding=3), b3)
    b3 = b.add(f"{p}_7x7dbl_3", Conv2d(c7, 7, padding=3), b3)
    b3 = b.add(f"{p}_7x7dbl_4", Conv2d(c7, 7, padding=3), b3)
    b3 = b.add(f"{p}_7x7dbl_5", Conv2d(192, 7, padding=3), b3)
    b4 = b.add(f"{p}_pool", AvgPool2d(3, 1), x)
    b4 = b.add(f"{p}_pool_1x1", Conv2d(192, 1), b4)
    return b.add(f"{p}_concat", Concat(), b1, b2, b3, b4)


def _block_d(b: GraphBuilder, x: str) -> str:
    """InceptionD (grid reduction 17 -> 8)."""
    b1 = b.add("d_3x3_1", Conv2d(192, 1), x)
    b1 = b.add("d_3x3_2", Conv2d(320, 3, stride=2, padding=0), b1)
    b2 = b.add("d_7x7x3_1", Conv2d(192, 1), x)
    b2 = b.add("d_7x7x3_2", Conv2d(192, 7, padding=3), b2)
    b2 = b.add("d_7x7x3_3", Conv2d(192, 7, padding=3), b2)
    b2 = b.add("d_7x7x3_4", Conv2d(192, 3, stride=2, padding=0), b2)
    b3 = b.add("d_pool", MaxPool2d(3, 2, padding=0), x)
    return b.add("d_concat", Concat(), b1, b2, b3)


def _block_e(b: GraphBuilder, x: str, idx: int) -> str:
    """InceptionE: the 1x3/3x1 fan-outs feed the block concat directly
    (no nested concats), as in IOS's flattened graph."""
    p = f"e{idx}"
    b1 = b.add(f"{p}_1x1", Conv2d(320, 1), x)
    b2 = b.add(f"{p}_3x3_1", Conv2d(384, 1), x)
    b2a = b.add(f"{p}_3x3_2a", Conv2d(384, 3), b2)
    b2b = b.add(f"{p}_3x3_2b", Conv2d(384, 3), b2)
    b3 = b.add(f"{p}_3x3dbl_1", Conv2d(448, 1), x)
    b3 = b.add(f"{p}_3x3dbl_2", Conv2d(384, 3), b3)
    b3a = b.add(f"{p}_3x3dbl_3a", Conv2d(384, 3), b3)
    b3b = b.add(f"{p}_3x3dbl_3b", Conv2d(384, 3), b3)
    b4 = b.add(f"{p}_pool", AvgPool2d(3, 1), x)
    b4 = b.add(f"{p}_pool_1x1", Conv2d(192, 1), b4)
    return b.add(f"{p}_concat", Concat(), b1, b2a, b2b, b3a, b3b, b4)


def inception_v3(input_size: int = 299, channels: int = 3) -> ModelGraph:
    """Build Inception-v3 for a square ``input_size`` input.

    Returns a :class:`~repro.models.builder.ModelGraph` with exactly
    ``INCEPTION_V3_OPS`` operators and ``INCEPTION_V3_DEPS``
    dependencies (asserted), ready for platform profiling.
    """
    if input_size < 75:
        raise ValueError("Inception-v3 needs input_size >= 75")
    b = GraphBuilder("inception_v3", TensorShape(channels, input_size, input_size))

    # stem: 3 convs, pool, 2 convs, pool
    x = b.add("stem_conv1", Conv2d(32, 3, stride=2, padding=0), b.input)
    x = b.add("stem_conv2", Conv2d(32, 3, padding=0), x)
    x = b.add("stem_conv3", Conv2d(64, 3, padding=1), x)
    x = b.add("stem_pool1", MaxPool2d(3, 2, padding=0), x)
    x = b.add("stem_conv4", Conv2d(80, 1), x)
    x = b.add("stem_conv5", Conv2d(192, 3, padding=0), x)
    x = b.add("stem_pool2", MaxPool2d(3, 2, padding=0), x)

    x = _block_a(b, x, 1, pool_features=32)
    x = _block_a(b, x, 2, pool_features=64)
    x = _block_a(b, x, 3, pool_features=64)
    x = _block_b(b, x)
    x = _block_c(b, x, 1, c7=128)
    x = _block_c(b, x, 2, c7=160)
    x = _block_c(b, x, 3, c7=160)
    x = _block_c(b, x, 4, c7=192)
    x = _block_d(b, x)
    x = _block_e(b, x, 1)
    x = _block_e(b, x, 2)
    b.add("head_gap", GlobalAvgPool(), x)

    model = b.build()
    assert len(model) == INCEPTION_V3_OPS, f"got {len(model)} operators"
    assert model.num_edges == INCEPTION_V3_DEPS, f"got {model.num_edges} dependencies"
    return model
