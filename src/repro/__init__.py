"""HIOS reproduction: hierarchical inter-operator scheduling for
real-time inference of DAG-structured DL models on multiple GPUs
(Kundu & Shu, IEEE CLUSTER 2023).

Public API tour
---------------
>>> from repro import schedule_graph, make_profile
>>> from repro.models import inception_v3
>>> from repro.substrate import PlatformProfiler, dual_a40
>>> profiler = PlatformProfiler(dual_a40())
>>> profile = profiler.profile(inception_v3(512))
>>> result = schedule_graph(profile, "hios-lp")
>>> trace = profiler.engine().run(profile.graph, result.schedule)
>>> trace.latency  # measured ms on the simulated dual-A40  # doctest: +SKIP

Subpackages: :mod:`repro.core` (graphs, schedules, the HIOS-LP /
HIOS-MR / IOS / sequential algorithms), :mod:`repro.costmodel`
(t(S) / t(u,v) models), :mod:`repro.substrate` (device, link, engine,
profiler), :mod:`repro.models` (operator library, Inception-v3,
NASNet, random DAGs), :mod:`repro.experiments` (per-figure drivers).
"""

from .core import (
    ALGORITHMS,
    Operator,
    OpGraph,
    Schedule,
    ScheduleResult,
    Stage,
    evaluate_latency,
    evaluate_schedule,
    make_profile,
    schedule_graph,
)
from .costmodel import CostProfile

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "CostProfile",
    "OpGraph",
    "Operator",
    "Schedule",
    "ScheduleResult",
    "Stage",
    "__version__",
    "evaluate_latency",
    "evaluate_schedule",
    "make_profile",
    "schedule_graph",
]
