"""Happens-before graph: the engine's ordering guarantees, compiled.

:func:`build_hb_graph` compiles a ``(OpGraph, Schedule, ExecModel)``
triple into an explicit happens-before DAG over fine-grained events —
``launch(v)``, ``start(v)``, ``finish(v)`` per operator plus
``send(u,v)`` / ``recv(u,v)`` per cross-GPU message.  Every edge is an
ordering the engine *enforces* (the set ``E``):

``op``
    kernel lifecycle: ``launch(v) -> start(v) -> finish(v)``.
``program``
    serial host launch order: each GPU's host process issues launches
    one at a time in stage order, so consecutive launches on one GPU
    are ordered.
``stage``
    stage barrier: no operator of stage ``j+1`` is launched before
    every operator of stage ``j`` finished on that GPU.
``stream``
    CUDA-stream lane serialization: with ``max_streams = L`` the
    operators of a stage are dealt round-robin onto ``L`` streams and
    each kernel waits for its lane predecessor to finish (mirrors
    ``MultiGpuEngine``'s ``stream_pred`` assignment exactly).
``send``
    a transfer is posted only after its producer finished.
``chain``
    blocking ``MPI_Send``: the host posts one send at a time, so the
    send to the next consumer is posted only after the previous
    delivery (``send_blocking`` and not ``overlap_launch``).
``xfer``
    channel delivery: a message is received after it was sent.
``host``
    blocking launch mode (default CUDA-aware MPI): the host blocks in
    ``MPI_Recv`` before launching a consumer with remote inputs.
``data``
    eager-launch mode (``overlap_launch``, NCCL-style): the launch is
    enqueued immediately and only the kernel *start* waits for data.
``lease``
    serve timelines only: exclusive GPU leases serialize the spans
    placed on one GPU.

Orthogonally, :attr:`HbGraph.requirements` lists the orderings
correctness *requires* (the set ``R``): ``finish(u)`` happens-before
``start(v)`` for every dependency edge, plus the transfer-time slack
for cross-GPU edges.  The detectors in :mod:`repro.sanitize.detectors`
compare ``R`` against reachability in ``E``: a cycle in ``E`` is a
deadlock, an ``R`` edge not implied by ``E`` is a race.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, NamedTuple

from ..core.graph import OpGraph
from ..core.schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from ..substrate.engine import EngineConfig

__all__ = [
    "EDGE_KINDS",
    "HbEvent",
    "Requirement",
    "ExecModel",
    "HbGraph",
    "build_hb_graph",
    "ev_launch",
    "ev_start",
    "ev_finish",
    "ev_send",
    "ev_recv",
]

#: Human explanation of every edge kind, used by witness formatting.
EDGE_KINDS: dict[str, str] = {
    "op": "kernel lifecycle order",
    "program": "serial host launch order",
    "stage": "stage barrier",
    "stream": "stream-lane serialization",
    "send": "send posts after the producer finishes",
    "chain": "blocking MPI_Send chain",
    "xfer": "transfer channel delivery",
    "host": "host blocks the launch on MPI_Recv",
    "data": "kernel start waits for remote data",
    "lease": "exclusive GPU lease",
    "dep": "dataflow dependency",
    "transfer": "cross-GPU transfer requirement",
}


class HbEvent(NamedTuple):
    """One fine-grained event.  ``other`` is empty for operator events
    and names the consumer for ``send``/``recv`` message events (whose
    ``op`` field names the producer)."""

    kind: str  # "launch" | "start" | "finish" | "send" | "recv"
    op: str
    other: str = ""

    def describe(self) -> str:
        if self.kind in ("send", "recv"):
            return f"{self.kind}({self.op!r}->{self.other!r})"
        return f"{self.kind}({self.op!r})"


def ev_launch(op: str) -> HbEvent:
    return HbEvent("launch", op)


def ev_start(op: str) -> HbEvent:
    return HbEvent("start", op)


def ev_finish(op: str) -> HbEvent:
    return HbEvent("finish", op)


def ev_send(u: str, v: str) -> HbEvent:
    return HbEvent("send", u, v)


def ev_recv(u: str, v: str) -> HbEvent:
    return HbEvent("recv", u, v)


@dataclass(frozen=True)
class Requirement:
    """One ordering correctness requires: ``finish(u)`` happens-before
    ``start(v)`` (with ``transfer`` ms of slack when ``cross``)."""

    u: str
    v: str
    transfer: float
    cross: bool

    @property
    def src(self) -> HbEvent:
        return ev_finish(self.u)

    @property
    def dst(self) -> HbEvent:
        return ev_start(self.v)


@dataclass(frozen=True)
class ExecModel:
    """The engine-semantics knobs the HB graph depends on.

    Mirrors the ordering-relevant subset of
    :class:`~repro.substrate.engine.EngineConfig`.  ``data_wait=False``
    models a backend with *no* per-message synchronization at all
    (e.g. replaying the schedule as a pre-recorded CUDA graph): the
    ``host``/``data`` edges disappear and every cross-GPU dependency
    must be proven some other way — there is no other way, so the
    analyzer reports them as races.  Keep it ``True`` unless you are
    auditing a schedule for such a backend.
    """

    overlap_launch: bool = False
    send_blocking: bool = True
    max_streams: int = 0
    data_wait: bool = True

    @classmethod
    def from_engine_config(cls, cfg: "EngineConfig") -> "ExecModel":
        return cls(
            overlap_launch=cfg.overlap_launch,
            send_blocking=cfg.send_blocking,
            max_streams=cfg.max_streams,
        )

    def describe(self) -> str:
        return (
            f"overlap_launch={self.overlap_launch} "
            f"send_blocking={self.send_blocking} "
            f"max_streams={self.max_streams} data_wait={self.data_wait}"
        )


@dataclass
class HbGraph:
    """The compiled happens-before DAG (it may be cyclic — that is the
    deadlock the detectors look for)."""

    model: ExecModel
    events: list[HbEvent] = field(default_factory=list)
    index: dict[HbEvent, int] = field(default_factory=dict)
    gpu_of: dict[str, int] = field(default_factory=dict)
    requirements: list[Requirement] = field(default_factory=list)
    _out: list[list[tuple[int, str]]] = field(default_factory=list)
    _in: list[list[tuple[int, str]]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_event(self, event: HbEvent) -> int:
        idx = self.index.get(event)
        if idx is None:
            idx = len(self.events)
            self.index[event] = idx
            self.events.append(event)
            self._out.append([])
            self._in.append([])
        return idx

    def add_edge(self, src: HbEvent, dst: HbEvent, kind: str) -> None:
        if kind not in EDGE_KINDS:
            raise ValueError(f"unknown HB edge kind {kind!r}")
        a, b = self.add_event(src), self.add_event(dst)
        self._out[a].append((b, kind))
        self._in[b].append((a, kind))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def num_edges(self) -> int:
        return sum(len(adj) for adj in self._out)

    def out_edges(self, idx: int) -> list[tuple[int, str]]:
        return self._out[idx]

    def in_edges(self, idx: int) -> list[tuple[int, str]]:
        return self._in[idx]

    def iter_edges(self) -> Iterator[tuple[HbEvent, HbEvent, str]]:
        for a, adj in enumerate(self._out):
            src = self.events[a]
            for b, kind in adj:
                yield src, self.events[b], kind

    def label(self, idx: int) -> str:
        ev = self.events[idx]
        text = ev.describe()
        gpu = self.gpu_of.get(ev.op)
        if gpu is not None and ev.kind not in ("send", "recv"):
            text += f" on GPU {gpu}"
        elif ev.kind in ("send", "recv"):
            gs, gd = self.gpu_of.get(ev.op), self.gpu_of.get(ev.other)
            if gs is not None and gd is not None:
                text += f" on channel GPU {gs}->{gd}"
        return text

    def topological_order(self) -> list[int] | None:
        """Kahn order of the event DAG, or ``None`` if it is cyclic."""
        n = self.num_events
        indeg = [len(self._in[i]) for i in range(n)]
        ready = [i for i in range(n) if indeg[i] == 0]
        order: list[int] = []
        while ready:
            i = ready.pop()
            order.append(i)
            for j, _kind in self._out[i]:
                indeg[j] -= 1
                if indeg[j] == 0:
                    ready.append(j)
        return order if len(order) == n else None

    def without_kinds(self, kinds: frozenset[str]) -> "HbGraph":
        """A copy with every edge of the given kinds removed (events and
        requirements are kept).  Used to ask "is this ordering still
        guaranteed without, say, the per-kernel data waits?"."""
        out = HbGraph(model=self.model)
        out.events = list(self.events)
        out.index = dict(self.index)
        out.gpu_of = dict(self.gpu_of)
        out.requirements = list(self.requirements)
        out._out = [
            [(b, k) for b, k in adj if k not in kinds] for adj in self._out
        ]
        out._in = [
            [(a, k) for a, k in adj if k not in kinds] for adj in self._in
        ]
        return out


def build_hb_graph(
    graph: OpGraph, schedule: Schedule, model: ExecModel | None = None
) -> HbGraph:
    """Compile the orderings the engine enforces for ``schedule`` on
    ``graph`` under ``model`` into an :class:`HbGraph`.

    The schedule is *not* validated first — the whole point is to
    analyze schedules that would fail validation (or were constructed
    with ``validate=False``).  Operators missing from either the graph
    or the schedule are skipped, matching the trace rules' behaviour.
    """
    model = model or ExecModel()
    hb = HbGraph(model=model)
    known = {op for op in graph.names if op in schedule}
    for op in known:
        hb.gpu_of[op] = schedule.gpu_of(op)

    # -- per-operator lifecycle ----------------------------------------
    for op in known:
        hb.add_edge(ev_launch(op), ev_start(op), "op")
        hb.add_edge(ev_start(op), ev_finish(op), "op")

    # -- per-GPU program order, stage barriers, stream lanes -----------
    for g in range(schedule.num_gpus):
        stages = [
            tuple(op for op in st.ops if op in known)
            for st in schedule.stages_on(g)
        ]
        stages = [ops for ops in stages if ops]
        flat = [op for ops in stages for op in ops]
        for prev, nxt in zip(flat, flat[1:]):
            hb.add_edge(ev_launch(prev), ev_launch(nxt), "program")
        for before, after in zip(stages, stages[1:]):
            head = after[0]
            for op in before:
                hb.add_edge(ev_finish(op), ev_launch(head), "stage")
        if model.max_streams > 0:
            # exactly MultiGpuEngine.assign_streams: round-robin lanes
            for ops in stages:
                tails: dict[int, str] = {}
                for i, op in enumerate(ops):
                    lane = i % model.max_streams
                    prev_tail = tails.get(lane)
                    if prev_tail is not None:
                        hb.add_edge(
                            ev_finish(prev_tail), ev_start(op), "stream"
                        )
                    tails[lane] = op

    # -- dependency and transfer edges ---------------------------------
    blocking_sends = model.send_blocking and not model.overlap_launch
    for u, v, w in graph.edges():
        if u not in known or v not in known:
            continue
        cross = hb.gpu_of[u] != hb.gpu_of[v]
        hb.requirements.append(
            Requirement(u=u, v=v, transfer=w if cross else 0.0, cross=cross)
        )
        if not cross:
            continue
        hb.add_edge(ev_finish(u), ev_send(u, v), "send")
        hb.add_edge(ev_send(u, v), ev_recv(u, v), "xfer")
        if model.data_wait:
            if model.overlap_launch:
                hb.add_edge(ev_recv(u, v), ev_start(v), "data")
            else:
                hb.add_edge(ev_recv(u, v), ev_launch(v), "host")
    if blocking_sends:
        # the host posts one blocking MPI_Send at a time, to remote
        # consumers in sorted order (finish_kernel's loop)
        for u in known:
            remote = sorted(
                s
                for s in graph.successors(u)
                if s in known and hb.gpu_of[s] != hb.gpu_of[u]
            )
            for a, b in zip(remote, remote[1:]):
                hb.add_edge(ev_recv(u, a), ev_send(u, b), "chain")
    return hb
