"""High-level entry points: analyze a (graph, schedule) pair and
produce a serializable ``repro.hbreport/v1`` document.

:func:`analyze` runs every static detector (deadlock witness, races,
transfer hazards, nondeterminism) and optionally the vector-clock
linearization check over execution traces; the result is a
:class:`SanitizeReport` whose ``to_dict`` form is the ``hb`` lint
subject (rules ``H0xx``) and whose ``to_text`` form is what
``repro sanitize`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..core.graph import OpGraph
from ..core.schedule import Schedule
from .detectors import (
    find_deadlock,
    find_nondeterminism,
    find_races,
    find_transfer_hazards,
)
from .hbgraph import ExecModel, HbGraph, build_hb_graph
from .vclock import HbClocks, HbViolation, check_engine_trace, check_timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..substrate.engine import ExecutionTrace

__all__ = [
    "HBREPORT_FORMAT",
    "SanitizeFinding",
    "SanitizeReport",
    "analyze",
    "trace_findings",
    "timeline_findings",
]

HBREPORT_FORMAT = "repro.hbreport/v1"

#: kind -> severity; the fixed taxonomy H002 validates against.
FINDING_KINDS: dict[str, str] = {
    "deadlock": "error",
    "race": "error",
    "linearization": "error",
    "timeline": "error",
    "transfer-hazard": "warning",
    "nondeterminism": "info",
}

_SEVERITY_ORDER = {"error": 0, "warning": 1, "info": 2}


@dataclass(frozen=True)
class SanitizeFinding:
    """One analyzer result.  ``witness`` is the happens-before evidence:
    ``(event, edge-kind)`` steps for a deadlock cycle, or a single
    ``(event, edge-kind)`` pair naming the violated edge."""

    kind: str
    severity: str
    message: str
    location: str = ""
    witness: tuple[tuple[str, str], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
            "witness": [
                {"event": event, "edge": edge} for event, edge in self.witness
            ],
        }


@dataclass(frozen=True)
class SanitizeReport:
    """Everything one ``repro sanitize`` run concluded."""

    findings: tuple[SanitizeFinding, ...]
    model: ExecModel
    stats: Mapping[str, int]

    @property
    def errors(self) -> tuple[SanitizeFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> tuple[SanitizeFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "warning")

    @property
    def ok(self) -> bool:
        return not self.errors

    def with_findings(
        self, extra: Iterable[SanitizeFinding]
    ) -> "SanitizeReport":
        merged = sorted(
            (*self.findings, *extra),
            key=lambda f: (_SEVERITY_ORDER.get(f.severity, 3), f.kind),
        )
        return replace(self, findings=tuple(merged))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "format": HBREPORT_FORMAT,
            "model": {
                "overlap_launch": self.model.overlap_launch,
                "send_blocking": self.model.send_blocking,
                "max_streams": self.model.max_streams,
                "data_wait": self.model.data_wait,
            },
            "stats": dict(self.stats),
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "info": len(self.findings)
                - len(self.errors)
                - len(self.warnings),
            },
        }

    def to_text(self) -> str:
        lines = [f"happens-before analysis ({self.model.describe()})"]
        if self.stats:
            lines.append(
                "  "
                + ", ".join(f"{v} {k}" for k, v in sorted(self.stats.items()))
            )
        for f in self.findings:
            where = f"  (at {f.location})" if f.location else ""
            lines.append(f"{f.severity.upper()} [{f.kind}] {f.message}{where}")
            for event, edge in f.witness:
                lines.append(f"    {event}  --[{edge}]-->")
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_info = len(self.findings) - n_err - n_warn
        if not self.findings:
            lines.append("clean: no hazards found")
        else:
            lines.append(
                f"summary: {n_err} error(s), {n_warn} warning(s), "
                f"{n_info} info"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _violation_finding(vio: HbViolation, kind: str) -> SanitizeFinding:
    location = (
        f"edge:{vio.u}->{vio.v}"
        if vio.u
        else f"event:{vio.dst.describe()}"
    )
    return SanitizeFinding(
        kind=kind,
        severity=FINDING_KINDS[kind],
        message=vio.describe(),
        location=location,
        witness=((vio.src.describe(), vio.kind),),
    )


def trace_findings(
    graph: OpGraph,
    schedule: Schedule,
    trace: "ExecutionTrace",
    model: ExecModel | None = None,
    *,
    eps: float = 1e-6,
    structural: bool | None = None,
) -> list[SanitizeFinding]:
    """Vector-clock linearization check of one engine trace, as
    report findings."""
    return [
        _violation_finding(vio, "linearization")
        for vio in check_engine_trace(
            graph, schedule, trace, model, eps=eps, structural=structural
        )
    ]


def timeline_findings(
    trace: "ExecutionTrace",
    op_gpu: Mapping[str, int],
    *,
    eps: float = 1e-6,
) -> list[SanitizeFinding]:
    """Lease-order linearization check of one serve timeline."""
    return [
        _violation_finding(vio, "timeline")
        for vio in check_timeline(trace, op_gpu, eps=eps)
    ]


def _stats(hb: HbGraph, schedule: Schedule) -> dict[str, int]:
    return {
        "events": hb.num_events,
        "edges": hb.num_edges,
        "requirements": len(hb.requirements),
        "operators": len(hb.gpu_of),
        "stages": schedule.num_stages,
        "gpus": len(schedule.used_gpus()),
    }


def analyze(
    graph: OpGraph,
    schedule: Schedule,
    model: ExecModel | None = None,
    *,
    traces: Iterable["ExecutionTrace"] = (),
    eps: float = 1e-6,
) -> SanitizeReport:
    """Run every static detector (and, for each of ``traces``, the
    linearization check) and return the combined report.

    Unlike ``Schedule.validate`` this never raises on a bad schedule —
    the point is to *explain* it; deadlocked schedules yield a
    ``deadlock`` finding with a witness cycle and skip the
    reachability-based detectors (reachability is ill-defined on a
    cyclic graph, and the deadlock subsumes them).
    """
    model = model or ExecModel()
    hb = build_hb_graph(graph, schedule, model)
    findings: list[SanitizeFinding] = []
    cycle = find_deadlock(hb)
    if cycle is not None:
        steps = tuple(zip(cycle.events, cycle.kinds))
        findings.append(
            SanitizeFinding(
                kind="deadlock",
                severity="error",
                message=(
                    f"schedule deadlocks: cyclic wait among {len(cycle)} "
                    "events; no engine run can finish (witness cycle below)"
                ),
                witness=steps,
            )
        )
    else:
        clocks = HbClocks(hb)
        stage_of = {
            op: (schedule.gpu_of(op), schedule.stage_index_of(op))
            for op in hb.gpu_of
        }
        for race in find_races(hb, clocks, stage_of):
            req = race.requirement
            findings.append(
                SanitizeFinding(
                    kind="race",
                    severity="error",
                    message=race.describe(),
                    location=f"edge:{req.u}->{req.v}",
                    witness=((req.src.describe(), "dep"),),
                )
            )
        for hazard in find_transfer_hazards(hb, clocks):
            req = hazard.requirement
            findings.append(
                SanitizeFinding(
                    kind="transfer-hazard",
                    severity="warning",
                    message=hazard.describe(),
                    location=f"edge:{req.u}->{req.v}",
                    witness=((req.src.describe(), "data"),),
                )
            )
        stages = [
            (g, st.ops)
            for g in range(schedule.num_gpus)
            for st in schedule.stages_on(g)
        ]
        nondet = find_nondeterminism(hb, clocks, stages)
        if nondet is not None:
            findings.append(
                SanitizeFinding(
                    kind="nondeterminism",
                    severity="info",
                    message=nondet.describe(),
                )
            )
        for trace in traces:
            findings.extend(
                trace_findings(graph, schedule, trace, model, eps=eps)
            )
    report = SanitizeReport(
        findings=(), model=model, stats=_stats(hb, schedule)
    )
    return report.with_findings(findings)
