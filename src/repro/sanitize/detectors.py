"""Static detectors over the happens-before graph.

* :func:`find_deadlock` — a cycle in the *enforced* order is a wait
  cycle the engine can never leave; the minimal witness cycle is
  reported **before** any engine run (replacing watchdog-only
  discovery).
* :func:`find_races` — a *required* ordering (dependency / transfer)
  that enforced-order reachability does not imply: some legal
  interleaving starts the consumer before its input exists.  Same-GPU
  races are stream-level WAR/WAW hazards (dependent operators sharing
  a stage); cross-GPU races mean no synchronization covers the
  transfer at all.
* :func:`find_transfer_hazards` — cross-GPU orderings that hold *only*
  through the per-kernel data wait (eager-launch mode): safe on the
  simulated engine, but a backend replaying the schedule without
  per-message synchronization would race.  Warning severity.
* :func:`find_nondeterminism` — the schedule admits multiple realized
  orders: concurrent same-stage kernels contend for the device and
  unordered same-channel transfers serialize in arrival order, so
  latency varies across legal interleavings.  Informational.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .hbgraph import EDGE_KINDS, HbGraph, Requirement, ev_send, ev_start
from .vclock import HbClocks

__all__ = [
    "WitnessCycle",
    "Race",
    "TransferHazard",
    "NondetReport",
    "find_deadlock",
    "find_races",
    "find_transfer_hazards",
    "find_nondeterminism",
]


@dataclass(frozen=True)
class WitnessCycle:
    """A minimal wait cycle: ``events[i]`` must precede ``events[i+1]``
    because of ``kinds[i]`` (indices mod the cycle length)."""

    events: tuple[str, ...]  # pre-rendered labels (with GPU annotations)
    kinds: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.events)

    def describe(self) -> str:
        lines = [f"witness cycle ({len(self.events)} events):"]
        n = len(self.events)
        for i, label in enumerate(self.events):
            lines.append(f"  {label}")
            kind = self.kinds[i]
            closing = " (closing the cycle)" if i == n - 1 else ""
            lines.append(f"    --[{EDGE_KINDS[kind]}]-->{closing}")
        lines.append(f"  {self.events[0]}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Race:
    """A required ordering no enforced edge implies."""

    requirement: Requirement
    same_stage: bool

    def describe(self) -> str:
        req = self.requirement
        if req.cross:
            return (
                f"nothing orders start({req.v!r}) after finish({req.u!r}) + "
                f"transfer {req.transfer:g}: the cross-GPU dependency "
                f"{req.u}->{req.v} is unsynchronized"
            )
        where = (
            "they share a stage and no stream lane serializes them"
            if self.same_stage
            else "no stage barrier or stream lane orders them"
        )
        return (
            f"stream-level WAR/WAW hazard: {req.v!r} depends on {req.u!r} "
            f"on the same GPU but {where}"
        )


@dataclass(frozen=True)
class TransferHazard:
    """A cross-GPU ordering held together only by the per-kernel data
    wait (eager-launch mode)."""

    requirement: Requirement

    def describe(self) -> str:
        req = self.requirement
        return (
            f"transfer {req.u}->{req.v} is ordered only by the per-kernel "
            "data wait: a backend replaying this schedule without "
            "per-message synchronization can start the consumer early"
        )


@dataclass(frozen=True)
class NondetReport:
    """How many legal interleavings the schedule admits."""

    kernel_pairs: int
    channel_pairs: int
    exemplars: tuple[str, ...]

    def describe(self) -> str:
        text = (
            f"schedule admits multiple realized orders: "
            f"{self.kernel_pairs} unordered same-stage kernel pair(s) "
            f"(device contention varies) and {self.channel_pairs} "
            f"unordered same-channel transfer pair(s) (delivery order "
            f"varies)"
        )
        if self.exemplars:
            text += "; e.g. " + "; ".join(self.exemplars)
        return text


# ----------------------------------------------------------------------
# deadlock
# ----------------------------------------------------------------------
def _sccs(hb: HbGraph) -> list[list[int]]:
    """Tarjan's strongly connected components, iteratively."""
    n = hb.num_events
    index = [0] * n
    low = [0] * n
    on_stack = [False] * n
    visited = [False] * n
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 1
    for root in range(n):
        if visited[root]:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, ei = work.pop()
            if ei == 0:
                visited[node] = True
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            edges = hb.out_edges(node)
            recursed = False
            for k in range(ei, len(edges)):
                nxt = edges[k][0]
                if not visited[nxt]:
                    work.append((node, k + 1))
                    work.append((nxt, 0))
                    recursed = True
                    break
                if on_stack[nxt]:
                    low[node] = min(low[node], index[nxt])
            if recursed:
                continue
            if low[node] == index[node]:
                comp: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == node:
                        break
                if len(comp) > 1:
                    sccs.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def _shortest_cycle(hb: HbGraph, comp: list[int]) -> tuple[list[int], list[str]]:
    """BFS shortest cycle inside one SCC (events + edge kinds)."""
    members = set(comp)
    best: tuple[list[int], list[str]] | None = None
    # BFS from each member (capped: SCCs are tiny in practice and the
    # cycle is minimal over the sources tried)
    for source in comp[:64]:
        parent: dict[int, tuple[int, str]] = {source: (-1, "")}
        queue = deque([source])
        found: tuple[int, str] | None = None
        while queue and found is None:
            node = queue.popleft()
            for nxt, kind in hb.out_edges(node):
                if nxt not in members:
                    continue
                if nxt == source:
                    found = (node, kind)
                    break
                if nxt not in parent:
                    parent[nxt] = (node, kind)
                    queue.append(nxt)
        if found is None:
            continue  # pragma: no cover - SCC members always cycle
        tail, closing_kind = found
        nodes = [tail]
        kinds = [closing_kind]
        while nodes[-1] != source:
            prev, kind = parent[nodes[-1]]
            nodes.append(prev)
            kinds.append(kind)
        nodes.reverse()
        kinds.reverse()
        # kinds[i] is now the edge nodes[i] -> nodes[i+1 mod n]
        if best is None or len(nodes) < len(best[0]):
            best = (nodes, kinds)
            if len(nodes) == 2:
                break
    assert best is not None
    return best


def find_deadlock(hb: HbGraph) -> WitnessCycle | None:
    """The minimal witness cycle of the enforced order, or ``None``.

    Any cycle here is a genuine wait cycle: every enforced edge models
    something the engine actually blocks on (host launch order, stage
    barriers, stream lanes, MPI recv/sends), so the run would sit in
    the stall watchdog forever.  Minimality: the smallest strongly
    connected component is searched for its shortest cycle.
    """
    sccs = _sccs(hb)
    if not sccs:
        return None
    comp = min(sccs, key=len)
    nodes, kinds = _shortest_cycle(hb, comp)
    return WitnessCycle(
        events=tuple(hb.label(i) for i in nodes), kinds=tuple(kinds)
    )


# ----------------------------------------------------------------------
# races and hazards
# ----------------------------------------------------------------------
def find_races(
    hb: HbGraph, clocks: HbClocks, schedule_stage_of: dict[str, tuple[int, int]]
) -> list[Race]:
    """Requirements not implied by enforced-order reachability."""
    races: list[Race] = []
    for req in hb.requirements:
        if not clocks.precedes_events(req.src, req.dst):
            same_stage = (
                not req.cross
                and schedule_stage_of.get(req.u) == schedule_stage_of.get(req.v)
            )
            races.append(Race(requirement=req, same_stage=same_stage))
    return races


def find_transfer_hazards(hb: HbGraph, clocks: HbClocks) -> list[TransferHazard]:
    """Cross-GPU requirements that hold in the full enforced order but
    not once the per-kernel ``data`` waits are removed."""
    if not any(req.cross for req in hb.requirements):
        return []
    stripped = hb.without_kinds(frozenset({"data"}))
    try:
        weak = HbClocks(stripped)
    except ValueError:  # pragma: no cover - full graph cyclic ⇒ caught earlier
        return []
    hazards: list[TransferHazard] = []
    for req in hb.requirements:
        if not req.cross:
            continue
        if not clocks.precedes_events(req.src, req.dst):
            continue  # already a race, not a mere hazard
        if not weak.precedes_events(req.src, req.dst):
            hazards.append(TransferHazard(requirement=req))
    return hazards


# ----------------------------------------------------------------------
# nondeterminism
# ----------------------------------------------------------------------
_PAIR_BUDGET = 1_000_000


def find_nondeterminism(
    hb: HbGraph,
    clocks: HbClocks,
    stages: list[tuple[int, tuple[str, ...]]],
) -> NondetReport | None:
    """Count unordered same-stage kernel pairs and unordered
    same-channel transfer pairs.  ``stages`` is ``(gpu, ops)`` per
    stage.  Returns ``None`` when the realized order is unique."""
    exemplars: list[str] = []
    kernel_pairs = 0
    budget = _PAIR_BUDGET
    for _gpu, ops in stages:
        named = [op for op in ops if op in hb.gpu_of]
        for i, a in enumerate(named):
            ia = hb.index.get(ev_start(a))
            if ia is None:
                continue
            for b in named[i + 1 :]:
                ib = hb.index.get(ev_start(b))
                if ib is None or budget <= 0:
                    continue
                budget -= 1
                if clocks.concurrent(ia, ib):
                    kernel_pairs += 1
                    if len(exemplars) < 3:
                        exemplars.append(f"kernels {a!r} and {b!r} overlap")
    channel_pairs = 0
    channels: dict[tuple[int, int], list[tuple[str, str]]] = {}
    for req in hb.requirements:
        if req.cross:
            channels.setdefault(
                (hb.gpu_of[req.u], hb.gpu_of[req.v]), []
            ).append((req.u, req.v))
    for (gs, gd), messages in sorted(channels.items()):
        for i, (u1, v1) in enumerate(messages):
            ia = hb.index.get(ev_send(u1, v1))
            if ia is None:
                continue
            for u2, v2 in messages[i + 1 :]:
                ib = hb.index.get(ev_send(u2, v2))
                if ib is None or budget <= 0:
                    continue
                budget -= 1
                if clocks.concurrent(ia, ib):
                    channel_pairs += 1
                    if len(exemplars) < 3:
                        exemplars.append(
                            f"transfers {u1}->{v1} and {u2}->{v2} race "
                            f"for channel GPU {gs}->{gd}"
                        )
    if kernel_pairs == 0 and channel_pairs == 0:
        return None
    return NondetReport(
        kernel_pairs=kernel_pairs,
        channel_pairs=channel_pairs,
        exemplars=tuple(exemplars),
    )
