"""Happens-before concurrency analysis (``repro sanitize``).

Static race/deadlock detection for schedules plus a TSan-style runtime
sanitizer for the engine:

* :mod:`~repro.sanitize.hbgraph` compiles ``(OpGraph, Schedule,
  ExecModel)`` into the happens-before DAG the engine enforces.
* :mod:`~repro.sanitize.detectors` finds deadlocks (with a minimal
  witness cycle), races, transfer hazards and nondeterminism on it.
* :mod:`~repro.sanitize.vclock` holds the vector clocks and the trace
  linearization checkers (also the implementation behind the
  ``T004``/``T005`` lint rules).
* :mod:`~repro.sanitize.api` is the report layer
  (``repro.hbreport/v1``).
* :mod:`~repro.sanitize.runtime` is the ``HIOS_SANITIZE=1`` engine
  sanitizer.  It is re-exported lazily so importing the analysis
  layers (e.g. from ``repro.lint``) never drags in the substrate.
"""

from typing import Any

from .api import (
    FINDING_KINDS,
    HBREPORT_FORMAT,
    SanitizeFinding,
    SanitizeReport,
    analyze,
    timeline_findings,
    trace_findings,
)
from .detectors import (
    NondetReport,
    Race,
    TransferHazard,
    WitnessCycle,
    find_deadlock,
    find_nondeterminism,
    find_races,
    find_transfer_hazards,
)
from .hbgraph import EDGE_KINDS, ExecModel, HbEvent, HbGraph, build_hb_graph
from .vclock import (
    CyclicHbGraphError,
    HbClocks,
    HbViolation,
    check_engine_trace,
    check_timeline,
    dependency_violations,
    timeline_hb_graph,
    transfer_violations,
)

__all__ = [
    "FINDING_KINDS",
    "HBREPORT_FORMAT",
    "SanitizeFinding",
    "SanitizeReport",
    "analyze",
    "trace_findings",
    "timeline_findings",
    "WitnessCycle",
    "Race",
    "TransferHazard",
    "NondetReport",
    "find_deadlock",
    "find_races",
    "find_transfer_hazards",
    "find_nondeterminism",
    "EDGE_KINDS",
    "ExecModel",
    "HbEvent",
    "HbGraph",
    "build_hb_graph",
    "CyclicHbGraphError",
    "HbClocks",
    "HbViolation",
    "check_engine_trace",
    "check_timeline",
    "timeline_hb_graph",
    "dependency_violations",
    "transfer_violations",
    # lazy (see __getattr__): live in .runtime, which imports the substrate
    "RuntimeSanitizer",
    "SanitizeViolation",
    "sanitize_enabled",
    "sanitizer_for",
]

_RUNTIME_EXPORTS = {
    "RuntimeSanitizer",
    "SanitizeViolation",
    "sanitize_enabled",
    "sanitizer_for",
}


def __getattr__(name: str) -> Any:
    if name in _RUNTIME_EXPORTS:
        from . import runtime

        return getattr(runtime, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
