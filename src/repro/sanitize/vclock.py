"""Vector clocks over the HB graph + the trace linearization checker.

:class:`HbClocks` assigns every event of an (acyclic) :class:`HbGraph`
a vector clock.  The clock "threads" are the natural total orders of
the model — one per operator (``launch < start < finish``) and one per
message (``send < recv``) — so the classic equivalence holds:
``a`` happens-before ``b`` iff ``clock(a) <= clock(b)`` componentwise
(and ``a != b``).  Internally the clocks are represented as ancestor
bitsets (one big int per event, the idiom of
``OpGraph.descendant_masks``), which makes ``precedes`` O(1) and the
whole construction O(V·E/64); :meth:`HbClocks.clock_of` materializes
the per-thread counter dict on demand.

The checkers then verify a claimed execution is a *linearization* of
the HB graph — i.e. its timestamps could have been produced by some
sequential interleaving that respects every HB edge:

* :func:`dependency_violations` / :func:`transfer_violations` — the
  *requirement* layer (the set ``R``): producers finish before
  consumers start, plus transfer slack across GPUs.  These two are the
  single implementation behind the ``T004`` / ``T005`` lint rules.
* :func:`check_engine_trace` — requirements plus, for complete traces,
  every *enforced* edge (the set ``E``) of the compiled HB graph.
  Partial failure traces skip the structural layer (the run was cut
  mid-flight) and exempt host-checkpointed producers from transfer
  slack, exactly like the trace rules; spliced repair traces should be
  checked with ``structural=False`` because their tail re-ran under a
  *different* (repaired) schedule.
* :func:`check_timeline` — serve timelines: span lifecycle order plus
  exclusive-GPU-lease serialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from ..core.graph import OpGraph
from ..core.schedule import Schedule
from .hbgraph import (
    EDGE_KINDS,
    ExecModel,
    HbEvent,
    HbGraph,
    build_hb_graph,
    ev_finish,
    ev_launch,
    ev_recv,
    ev_send,
    ev_start,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from ..substrate.engine import ExecutionTrace

__all__ = [
    "CyclicHbGraphError",
    "HbClocks",
    "HbViolation",
    "dependency_violations",
    "transfer_violations",
    "check_engine_trace",
    "check_timeline",
    "timeline_hb_graph",
    "thread_of",
]


class CyclicHbGraphError(ValueError):
    """Vector clocks only exist for acyclic HB graphs; run
    :func:`repro.sanitize.detectors.find_deadlock` first."""


def thread_of(event: HbEvent) -> str:
    """The vector-clock thread an event belongs to."""
    if event.kind in ("send", "recv"):
        return f"msg:{event.op}->{event.other}"
    return f"op:{event.op}"


_POSITION = {"launch": 1, "start": 2, "finish": 3, "send": 1, "recv": 2}


class HbClocks:
    """Vector clocks (as ancestor bitsets) for one acyclic HB graph."""

    def __init__(self, hb: HbGraph) -> None:
        order = hb.topological_order()
        if order is None:
            raise CyclicHbGraphError(
                "HB graph is cyclic (deadlock); vector clocks are undefined"
            )
        self.hb = hb
        masks: list[int] = [0] * hb.num_events
        for i in order:
            m = 1 << i
            for a, _kind in hb.in_edges(i):
                m |= masks[a]
            masks[i] = m
        self._masks = masks

    # ------------------------------------------------------------------
    def precedes(self, a: int, b: int) -> bool:
        """Strict happens-before between event indices."""
        return a != b and (self._masks[b] >> a) & 1 == 1

    def precedes_events(self, a: HbEvent, b: HbEvent) -> bool:
        ia, ib = self.hb.index.get(a), self.hb.index.get(b)
        if ia is None or ib is None:
            return False
        return self.precedes(ia, ib)

    def concurrent(self, a: int, b: int) -> bool:
        return a != b and not self.precedes(a, b) and not self.precedes(b, a)

    def clock_of(self, idx: int) -> dict[str, int]:
        """The materialized vector clock: thread -> last position seen
        at-or-before this event (its own thread included)."""
        clock: dict[str, int] = {}
        mask = self._masks[idx]
        while mask:
            low = mask & -mask
            i = low.bit_length() - 1
            mask ^= low
            ev = self.hb.events[i]
            thread = thread_of(ev)
            pos = _POSITION[ev.kind]
            if pos > clock.get(thread, 0):
                clock[thread] = pos
        return clock


# ----------------------------------------------------------------------
# violations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HbViolation:
    """One broken ordering in a claimed execution.

    ``kind`` is either a requirement kind (``dep`` / ``transfer``) or
    the :data:`~repro.sanitize.hbgraph.EDGE_KINDS` kind of the enforced
    edge that the timestamps contradict.  ``t_src`` is ``None`` when
    the predecessor event never happened at all (e.g. a producer with
    no recorded finish).
    """

    kind: str
    src: HbEvent
    dst: HbEvent
    t_dst: float
    t_src: float | None = None
    u: str = ""
    v: str = ""
    transfer: float = 0.0

    def describe(self) -> str:
        why = EDGE_KINDS.get(self.kind, self.kind)
        head = (
            f"{self.dst.describe()} at {self.t_dst} violates "
            f"{why}: predecessor {self.src.describe()}"
        )
        if self.t_src is None:
            return head + " never happened"
        if self.kind == "transfer":
            return (
                head
                + f" at {self.t_src} + transfer {self.transfer} "
                f"= {self.t_src + self.transfer}"
            )
        return head + f" at {self.t_src}"


# ----------------------------------------------------------------------
# requirement layer (the single implementation behind T004 / T005)
# ----------------------------------------------------------------------
def dependency_violations(
    graph: OpGraph, trace: "ExecutionTrace", *, eps: float = 1e-6
) -> Iterator[HbViolation]:
    """Requirement ``finish(u)`` happens-before ``start(v)`` for every
    dependency edge, checked against a trace's timestamps (rule T004)."""
    for u, v, _w in graph.edges():
        start_v = trace.op_start.get(v)
        if start_v is None:
            continue
        fin_u = trace.op_finish.get(u)
        if fin_u is None:
            yield HbViolation(
                kind="dep",
                src=ev_finish(u),
                dst=ev_start(v),
                t_dst=start_v,
                u=u,
                v=v,
            )
        elif start_v < fin_u - eps:
            yield HbViolation(
                kind="dep",
                src=ev_finish(u),
                dst=ev_start(v),
                t_dst=start_v,
                t_src=fin_u,
                u=u,
                v=v,
            )


def transfer_violations(
    graph: OpGraph,
    schedule: Schedule,
    trace: "ExecutionTrace",
    *,
    eps: float = 1e-6,
    checkpointed: frozenset[str] = frozenset(),
) -> Iterator[HbViolation]:
    """Cross-GPU slack: ``start(v) >= finish(u) + t(u,v)`` (rule T005).

    ``checkpointed`` producers (finished before a failure, re-staged
    for free by the repair model) are exempt.
    """
    for u, v, w in graph.edges():
        if w <= 0.0 or u in checkpointed:
            continue
        if u not in schedule or v not in schedule:
            continue
        if schedule.gpu_of(u) == schedule.gpu_of(v):
            continue
        start_v, fin_u = trace.op_start.get(v), trace.op_finish.get(u)
        if start_v is None or fin_u is None:
            continue  # the dependency layer reports missing producers
        if start_v < fin_u + w - eps:
            yield HbViolation(
                kind="transfer",
                src=ev_finish(u),
                dst=ev_start(v),
                t_dst=start_v,
                t_src=fin_u,
                u=u,
                v=v,
                transfer=w,
            )


# ----------------------------------------------------------------------
# full linearization checks
# ----------------------------------------------------------------------
def _event_times(
    trace: "ExecutionTrace", known: Iterable[str]
) -> dict[HbEvent, float]:
    times: dict[HbEvent, float] = {}
    ops = set(known)
    for op, t in trace.op_launch.items():
        if op in ops:
            times[ev_launch(op)] = t
    for op, t in trace.op_start.items():
        if op in ops:
            times[ev_start(op)] = t
    for op, t in trace.op_finish.items():
        if op in ops:
            times[ev_finish(op)] = t
    for rec in trace.transfers:
        u, _, v = rec.tag.partition("->")
        if not v or u not in ops or v not in ops:
            continue
        times[ev_send(u, v)] = rec.post_time
        times[ev_recv(u, v)] = rec.finish_time
    return times


def check_engine_trace(
    graph: OpGraph,
    schedule: Schedule,
    trace: "ExecutionTrace",
    model: ExecModel | None = None,
    *,
    eps: float = 1e-6,
    structural: bool | None = None,
) -> list[HbViolation]:
    """Verify an engine trace is a linearization of the HB graph.

    ``structural=None`` (the default) checks the enforced-edge layer
    only for complete traces: a partial failure trace was cut
    mid-flight, and a spliced repair trace re-ran its tail under a
    different schedule — pass ``structural=False`` explicitly for the
    latter (it has no ``failure`` marker).  ``model`` must match the
    engine configuration that produced the trace; the default matches
    a default :class:`~repro.substrate.engine.EngineConfig`.
    """
    failure = getattr(trace, "failure", None)
    checkpointed = (
        frozenset(failure.finished) if failure is not None else frozenset()
    )
    out = list(dependency_violations(graph, trace, eps=eps))
    out.extend(
        transfer_violations(
            graph, schedule, trace, eps=eps, checkpointed=checkpointed
        )
    )
    if structural is None:
        structural = failure is None
    if structural:
        hb = build_hb_graph(graph, schedule, model)
        times = _event_times(trace, hb.gpu_of)
        for src, dst, kind in hb.iter_edges():
            ts, td = times.get(src), times.get(dst)
            if ts is None or td is None:
                continue  # unobserved endpoint: nothing to contradict
            if td < ts - eps:
                out.append(
                    HbViolation(
                        kind=kind, src=src, dst=dst, t_dst=td, t_src=ts
                    )
                )
    return out


def timeline_hb_graph(
    trace: "ExecutionTrace", op_gpu: Mapping[str, int]
) -> HbGraph:
    """The HB graph of a serve timeline: span lifecycle edges plus the
    exclusive-lease serialization of the spans placed on each GPU
    (ordered by dispatch time — arrivals may precede earlier releases,
    so host launch order carries no guarantee here)."""
    hb = HbGraph(model=ExecModel())
    spans = sorted(trace.op_start)
    per_gpu: dict[int, list[str]] = {}
    for name in spans:
        hb.add_edge(ev_launch(name), ev_start(name), "op")
        hb.add_edge(ev_start(name), ev_finish(name), "op")
        gpu = op_gpu.get(name)
        if gpu is not None:
            hb.gpu_of[name] = gpu
            per_gpu.setdefault(gpu, []).append(name)
    for gpu, names in sorted(per_gpu.items()):
        names.sort(key=lambda n: (trace.op_start.get(n, 0.0), n))
        for prev, nxt in zip(names, names[1:]):
            hb.add_edge(ev_finish(prev), ev_start(nxt), "lease")
    return hb


def check_timeline(
    trace: "ExecutionTrace",
    op_gpu: Mapping[str, int],
    *,
    eps: float = 1e-6,
) -> list[HbViolation]:
    """Verify a serve timeline linearizes its lease-order HB graph."""
    hb = timeline_hb_graph(trace, op_gpu)
    times = _event_times(trace, {ev.op for ev in hb.events})
    out: list[HbViolation] = []
    for src, dst, kind in hb.iter_edges():
        ts, td = times.get(src), times.get(dst)
        if ts is None or td is None:
            continue
        if td < ts - eps:
            out.append(
                HbViolation(kind=kind, src=src, dst=dst, t_dst=td, t_src=ts)
            )
    return out
