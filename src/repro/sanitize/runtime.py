"""TSan-style runtime sanitizer for :class:`MultiGpuEngine`.

With ``HIOS_SANITIZE=1`` (any value other than ``0/false/off/no``; the
test suite turns it on by default) the engine cross-checks every event
it emits — launches, kernel starts/finishes, transfer posts and
deliveries — against the compiled happens-before model *while the run
plays out*, and raises :class:`SanitizeViolation` with a causal chain
the moment an event contradicts an ordering the model says must hold.

Construction also runs the static deadlock detector, so a cyclic-wait
schedule fails with a witness cycle **before** the event loop starts —
the stall watchdog never gets a chance to fire.

The per-event check is O(in-degree): predecessors must already have
been observed with a timestamp no later than the new event's (within
``eps``).  Unlike the offline checker this needs no vector clocks —
edges are checked directly as events stream in — which keeps the
overhead well under the engine's own event-loop cost.

The static part (HB graph compilation + deadlock check + in-edge
tables) is memoized per ``(graph, schedule, model)`` behind cheap
mutation fingerprints (``OpGraph.version`` and the append-only
``Schedule.num_stages``), so repeated inference of the same placement —
the serving steady state, and every benchmark loop — pays it once.
"""

from __future__ import annotations

import os
import weakref
from typing import TYPE_CHECKING

from ..core.graph import OpGraph
from ..core.schedule import Schedule
from ..substrate.engine import EngineError
from .detectors import find_deadlock
from .hbgraph import (
    EDGE_KINDS,
    ExecModel,
    HbEvent,
    build_hb_graph,
    ev_finish,
    ev_launch,
    ev_recv,
    ev_send,
    ev_start,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..substrate.engine import EngineConfig

__all__ = [
    "SANITIZE_ENV_VAR",
    "SanitizeViolation",
    "sanitize_enabled",
    "sanitizer_for",
    "RuntimeSanitizer",
]

SANITIZE_ENV_VAR = "HIOS_SANITIZE"
_FALSY = {"", "0", "false", "off", "no"}


class SanitizeViolation(EngineError):
    """An engine event contradicted the happens-before model (or the
    model itself is a wait cycle).  Subclasses :class:`EngineError` so
    existing failure handling keeps working."""


def sanitize_enabled() -> bool:
    """Whether ``HIOS_SANITIZE`` asks for runtime sanitizing."""
    return os.environ.get(SANITIZE_ENV_VAR, "").strip().lower() not in _FALSY


def sanitizer_for(
    graph: OpGraph, schedule: Schedule, config: "EngineConfig"
) -> "RuntimeSanitizer | None":
    """The engine's entry point: a sanitizer when
    ``config.sanitize`` (or, when that is ``None``, the environment)
    asks for one, else ``None``."""
    want = config.sanitize
    if want is None:
        want = sanitize_enabled()
    if not want:
        return None
    return RuntimeSanitizer(
        graph, schedule, ExecModel.from_engine_config(config)
    )


class _StaticCore:
    """The immutable, shareable half of a sanitizer: the compiled HB
    graph (already proven acyclic) and its checked in-edge tables."""

    __slots__ = ("hb", "in_edges")

    def __init__(self, graph: OpGraph, schedule: Schedule, model: ExecModel | None):
        self.hb = build_hb_graph(graph, schedule, model)
        cycle = find_deadlock(self.hb)
        if cycle is not None:
            raise SanitizeViolation(
                "sanitizer: schedule deadlocks before any kernel runs; "
                + cycle.describe()
            )
        # in-edges per event, with same-GPU dependency requirements
        # appended (cross-GPU ones are covered by the send/recv edges)
        self.in_edges: list[list[tuple[int, str]]] = [
            list(self.hb.in_edges(i)) for i in range(self.hb.num_events)
        ]
        for req in self.hb.requirements:
            src, dst = self.hb.index.get(req.src), self.hb.index.get(req.dst)
            if src is not None and dst is not None and not req.cross:
                self.in_edges[dst].append((src, "dep"))


# id(schedule) -> [(schedule weakref, graph weakref, graph version,
# schedule stage count, model, core), ...]; keyed by id because
# Schedule defines ``__eq__`` without ``__hash__`` — the stored
# weakrefs guard against id reuse and evict the slot when the schedule
# dies.  The fingerprints invalidate on any mutation (OpGraph bumps
# ``version``, Schedule construction is append-only so ``num_stages``
# only grows).
_CoreEntry = tuple[
    "weakref.ref[Schedule]",
    "weakref.ref[OpGraph]",
    int,
    int,
    ExecModel,
    _StaticCore,
]
_CORE_CACHE: dict[int, list[_CoreEntry]] = {}
_CORE_CACHE_WIDTH = 4  # (graph, model) pairs per schedule worth remembering


def _core_for(
    graph: OpGraph, schedule: Schedule, model: ExecModel | None
) -> _StaticCore:
    model = model or ExecModel()
    key = id(schedule)
    entries = _CORE_CACHE.get(key)
    if entries is not None:
        for sref, gref, gver, nstages, cached_model, core in entries:
            if (
                sref() is schedule
                and gref() is graph
                and gver == graph.version
                and nstages == schedule.num_stages
                and cached_model == model
            ):
                return core
    core = _StaticCore(graph, schedule, model)  # raises on deadlock
    if entries is None or any(e[0]() is not schedule for e in entries):
        entries = _CORE_CACHE[key] = []  # fresh slot (or id was reused)
    entries.append(
        (
            weakref.ref(schedule, lambda _r, key=key: _CORE_CACHE.pop(key, None)),
            weakref.ref(graph),
            graph.version,
            schedule.num_stages,
            model,
            core,
        )
    )
    del entries[:-_CORE_CACHE_WIDTH]
    return core


class RuntimeSanitizer:
    """Streams engine events through the happens-before model.

    Raises :class:`SanitizeViolation` at construction for a statically
    deadlocked schedule, and from :meth:`observe` for any event whose
    model predecessors were not all observed at an earlier-or-equal
    timestamp.  Observation is idempotent (the first timestamp wins),
    which lets the engine report transfer sends/deliveries at post
    time even though the delivery event fires later.
    """

    def __init__(
        self,
        graph: OpGraph,
        schedule: Schedule,
        model: ExecModel | None = None,
        *,
        eps: float = 1e-6,
    ) -> None:
        core = _core_for(graph, schedule, model)
        self.hb = core.hb
        self.eps = eps
        self._in = core.in_edges
        self._times: list[float | None] = [None] * self.hb.num_events
        self.checked_events = 0

    # ------------------------------------------------------------------
    def observe(self, event: HbEvent, t: float) -> None:
        idx = self.hb.index.get(event)
        if idx is None:
            return
        if self._times[idx] is not None:
            return  # already observed (transfer events report early)
        for src, kind in self._in[idx]:
            ts = self._times[src]
            if ts is None or ts > t + self.eps:
                self._raise(src, idx, kind, ts, t)
        self._times[idx] = t
        self.checked_events += 1

    # convenience wrappers the engine calls --------------------------------
    def observe_launch(self, op: str, t: float) -> None:
        self.observe(ev_launch(op), t)

    def observe_start(self, op: str, t: float) -> None:
        self.observe(ev_start(op), t)

    def observe_finish(self, op: str, t: float) -> None:
        self.observe(ev_finish(op), t)

    def observe_send(self, u: str, v: str, t: float) -> None:
        self.observe(ev_send(u, v), t)

    def observe_recv(self, u: str, v: str, t: float) -> None:
        self.observe(ev_recv(u, v), t)

    # ------------------------------------------------------------------
    def _causal_chain(self, idx: int, limit: int = 8) -> list[str]:
        """Walk observed predecessors back from ``idx`` (latest first),
        the TSan-style 'how did we get here' trail."""
        lines: list[str] = []
        current = idx
        for _ in range(limit):
            best: tuple[float, int, str] | None = None
            for src, kind in self._in[current]:
                ts = self._times[src]
                if ts is not None and (best is None or ts > best[0]):
                    best = (ts, src, kind)
            if best is None:
                break
            ts, src, kind = best
            lines.append(
                f"{self.hb.label(src)} at t={ts:.6g}  [{EDGE_KINDS[kind]}]"
            )
            current = src
        return lines

    def _raise(
        self, src: int, dst: int, kind: str, ts: float | None, t: float
    ) -> None:
        why = EDGE_KINDS[kind]
        if ts is None:
            problem = "which has not happened"
        else:
            problem = f"which happened later, at t={ts:.6g}"
        lines = [
            f"sanitizer: happens-before violation at t={t:.6g}: "
            f"{self.hb.label(dst)} must come after {self.hb.label(src)} "
            f"({why}), {problem}",
            "causal chain (most recent first):",
            f"  {self.hb.label(dst)} at t={t:.6g}",
        ]
        lines.extend(f"  {line}" for line in self._causal_chain(dst))
        raise SanitizeViolation("\n".join(lines))
