"""Analytic GPU device models (the paper's A40 / A5500 / V100S testbeds).

The paper measures operator execution times on real hardware; we price
them with a roofline-style model:

``kernel_time = launch_overhead + max(flops / (peak_flops * eff), bytes / mem_bw)``

and estimate the *occupancy* of a kernel — the fraction of the device
its thread blocks can fill — as ``blocks / (num_sms * resident_blocks)``.
Occupancy is what separates the Fig. 1 regimes: kernels under ~50 %
occupancy gain from concurrent execution, kernels near 100 % contend.

``resident_blocks_per_sm`` is a calibration knob, set so that the
48-channel 5x5 convolution of Section II-A crosses from
"parallel-friendly" to "contended" between 64x64 and 128x128 inputs on
the A40, matching Fig. 1.  All times are milliseconds, all sizes bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelWork", "GpuDeviceModel", "A40", "RTX_A5500", "V100S", "DEVICE_PRESETS"]


@dataclass(frozen=True)
class KernelWork:
    """Resource footprint of one kernel launch (one operator).

    ``blocks`` is the number of thread blocks the kernel decomposes
    into; ``flops`` counts multiply-accumulates twice, as usual.
    """

    flops: float
    bytes_read: int
    bytes_written: int
    blocks: int

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError("kernel work amounts must be non-negative")
        if self.blocks < 1:
            raise ValueError("a kernel has at least one block")

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written


@dataclass(frozen=True)
class GpuDeviceModel:
    """One GPU of the paper's homogeneous multi-GPU platforms.

    Parameters
    ----------
    name: marketing name, for reports.
    num_sms: streaming multiprocessors.
    peak_tflops: peak fp32 throughput in TFLOP/s.
    mem_bw_gbs: device memory bandwidth in GB/s.
    efficiency: fraction of peak a tuned cuDNN kernel sustains.
    resident_blocks_per_sm: concurrent thread blocks one SM can host
        for the workload class we model (calibration knob, see module
        docstring).
    launch_overhead_ms: host-side kernel launch cost — the overhead the
        paper blames for HIOS-LP's NASNet-small regression (§VI-E).
    """

    name: str
    num_sms: int
    peak_tflops: float
    mem_bw_gbs: float
    efficiency: float = 0.55
    resident_blocks_per_sm: int = 16
    launch_overhead_ms: float = 0.007

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise ValueError("device needs at least one SM")
        if self.peak_tflops <= 0 or self.mem_bw_gbs <= 0:
            raise ValueError("throughput figures must be positive")
        if not (0 < self.efficiency <= 1):
            raise ValueError("efficiency must be in (0, 1]")
        if self.resident_blocks_per_sm < 1:
            raise ValueError("need at least one resident block per SM")
        if self.launch_overhead_ms < 0:
            raise ValueError("negative launch overhead")

    @property
    def effective_flops_per_ms(self) -> float:
        """Sustained FLOPs per millisecond."""
        return self.peak_tflops * 1e12 * self.efficiency / 1e3

    @property
    def mem_bytes_per_ms(self) -> float:
        return self.mem_bw_gbs * 1e9 / 1e3

    @property
    def block_capacity(self) -> int:
        """Thread blocks the whole device can host concurrently."""
        return self.num_sms * self.resident_blocks_per_sm

    def kernel_time(self, work: KernelWork) -> float:
        """Solo execution time of one kernel, in milliseconds."""
        compute = work.flops / self.effective_flops_per_ms
        memory = work.bytes_total / self.mem_bytes_per_ms
        return self.launch_overhead_ms + max(compute, memory)

    def occupancy(self, work: KernelWork) -> float:
        """Fraction of the device the kernel can occupy alone, clamped
        to a small positive floor so cost models stay well-defined."""
        raw = work.blocks / self.block_capacity
        return max(1e-4, min(1.0, raw))


# ---------------------------------------------------------------------------
# Presets matching the paper's three dual-GPU platforms (Section II-B).
# ---------------------------------------------------------------------------
A40 = GpuDeviceModel(
    name="NVIDIA A40", num_sms=84, peak_tflops=37.4, mem_bw_gbs=696.0
)
RTX_A5500 = GpuDeviceModel(
    name="NVIDIA RTX A5500", num_sms=80, peak_tflops=34.1, mem_bw_gbs=768.0
)
V100S = GpuDeviceModel(
    name="NVIDIA V100S", num_sms=80, peak_tflops=16.4, mem_bw_gbs=1134.0
)

DEVICE_PRESETS: dict[str, GpuDeviceModel] = {
    "a40": A40,
    "a5500": RTX_A5500,
    "v100s": V100S,
}
