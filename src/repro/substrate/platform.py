"""Multi-GPU platform: homogeneous devices + interconnect.

Mirrors the paper's testbeds — symmetric multiprocessing boxes where
``M`` identical GPUs are pairwise connected by the same link (an NVLink
bridge for the dual-A40 / dual-A5500 machines, PCIe Gen3 for the dual
V100S, an all-to-all NVSwitch for larger ``M``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import A40, RTX_A5500, V100S, GpuDeviceModel, KernelWork
from .link import NVLINK_BRIDGE, NVSWITCH, PCIE_GEN3_X16, LinkModel

__all__ = [
    "MultiGpuPlatform",
    "dual_a40",
    "dual_a5500",
    "dual_v100s",
    "nvswitch_platform",
]


@dataclass(frozen=True)
class MultiGpuPlatform:
    """``M`` homogeneous GPUs, all pairs joined by the same link."""

    name: str
    device: GpuDeviceModel
    link: LinkModel
    num_gpus: int = 2

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("platform needs at least one GPU")

    def kernel_time(self, work: KernelWork) -> float:
        return self.device.kernel_time(work)

    def occupancy(self, work: KernelWork) -> float:
        return self.device.occupancy(work)

    def transfer_time(self, num_bytes: int) -> float:
        """One-way inter-GPU transfer time in milliseconds."""
        return self.link.transfer_time(num_bytes)


def dual_a40(num_gpus: int = 2) -> MultiGpuPlatform:
    """The paper's primary testbed: A40 pair over an NVLink bridge
    (Dell PowerEdge R750XA)."""
    return MultiGpuPlatform("dual-A40 (NVLink)", A40, NVLINK_BRIDGE, num_gpus)


def dual_a5500(num_gpus: int = 2) -> MultiGpuPlatform:
    return MultiGpuPlatform("dual-RTX-A5500 (NVLink)", RTX_A5500, NVLINK_BRIDGE, num_gpus)


def dual_v100s(num_gpus: int = 2) -> MultiGpuPlatform:
    return MultiGpuPlatform("dual-V100S (PCIe Gen3)", V100S, PCIE_GEN3_X16, num_gpus)


def nvswitch_platform(num_gpus: int = 4, device: GpuDeviceModel = A40) -> MultiGpuPlatform:
    """An NVSwitch all-to-all box for scaling studies beyond two GPUs."""
    return MultiGpuPlatform(
        f"{num_gpus}x {device.name} (NVSwitch)", device, NVSWITCH, num_gpus
    )
