"""Minimal discrete-event core used by the execution engine.

A stable priority queue of ``(time, kind, payload)`` events; ties are
broken by insertion order so simulations are deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, order=False)
class Event:
    time: float
    kind: str
    payload: Any = None


class EventQueue:
    """Deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError("event time must be non-negative")
        ev = Event(time=time, kind=kind, payload=payload)
        heapq.heappush(self._heap, (time, self._seq, ev))
        self._seq += 1
        return ev

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def peek_time(self) -> float | None:
        """Time of the earliest pending event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)[2]

    def pop_until(self, time: float) -> list[Event]:
        """Pop every event with timestamp <= ``time`` (in order)."""
        out: list[Event] = []
        while self._heap and self._heap[0][0] <= time:
            out.append(heapq.heappop(self._heap)[2])
        return out
