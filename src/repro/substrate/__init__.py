"""Simulated hardware substrate: GPU device models, interconnects,
the discrete-event multi-GPU execution engine, and the profiler that
turns model graphs into scheduler-ready cost profiles."""

from .device import A40, DEVICE_PRESETS, RTX_A5500, V100S, GpuDeviceModel, KernelWork
from .engine import EngineConfig, EngineError, ExecutionTrace, MultiGpuEngine
from .events import Event, EventQueue
from .faults import (
    BACKOFF_CAP_DOUBLINGS,
    FailureEvent,
    FaultError,
    FaultPlan,
    GpuFailure,
    GpuRepair,
    GpuSlowdown,
    LinkDegradation,
    TransferLoss,
    parse_fault,
)
from .link import LINK_PRESETS, NVLINK_BRIDGE, NVSWITCH, PCIE_GEN3_X16, LinkModel
from .mpi import SimFabric, TransferRecord
from .platform import (
    MultiGpuPlatform,
    dual_a40,
    dual_a5500,
    dual_v100s,
    nvswitch_platform,
)
from .profiler import PlatformProfiler

__all__ = [
    "A40",
    "BACKOFF_CAP_DOUBLINGS",
    "DEVICE_PRESETS",
    "EngineConfig",
    "EngineError",
    "Event",
    "EventQueue",
    "ExecutionTrace",
    "FailureEvent",
    "FaultError",
    "FaultPlan",
    "GpuDeviceModel",
    "GpuFailure",
    "GpuRepair",
    "GpuSlowdown",
    "KernelWork",
    "LinkDegradation",
    "TransferLoss",
    "parse_fault",
    "LINK_PRESETS",
    "LinkModel",
    "MultiGpuEngine",
    "MultiGpuPlatform",
    "NVLINK_BRIDGE",
    "NVSWITCH",
    "PCIE_GEN3_X16",
    "PlatformProfiler",
    "RTX_A5500",
    "SimFabric",
    "TransferRecord",
    "V100S",
    "dual_a40",
    "dual_a5500",
    "dual_v100s",
    "nvswitch_platform",
]
