"""Declarative fault injection for the simulated multi-GPU substrate.

A production serving stack must keep meeting latency targets when the
machine misbehaves: a GPU throttles, a device drops off the bus, an
NVLink lane degrades, or a CUDA-aware-MPI message times out and must be
retried.  This module gives the engine and the fabric a *declarative*
fault model:

* :class:`GpuSlowdown` — from time ``at``, GPU ``gpu`` runs at
  ``factor`` times its profiled speed (``factor < 1`` is a straggler).
* :class:`GpuFailure` — at time ``at``, GPU ``gpu`` fail-stops.  The
  engine halts the run and reports a :class:`FailureEvent`; the repair
  path (:mod:`repro.core.repair`) re-schedules the unfinished subgraph
  onto the survivors.
* :class:`GpuRepair` — at time ``at``, GPU ``gpu`` returns from reset.
  Recovery is a *pool-level* concept: the serving simulator
  (:mod:`repro.serve.simulator`) revives the GPU into its free set,
  while the single-run engine — whose GPU set is fixed for the length
  of one inference — ignores repair specs entirely.
* :class:`LinkDegradation` — from time ``at``, messages on the directed
  link ``src -> dst`` see ``bw_factor`` of the nominal bandwidth.
* :class:`TransferLoss` — messages are lost and retried with timeout +
  exponential backoff (``timeout_ms``, then ``backoff_ms * 2**k``).
  Losses are either deterministic (``tags`` — the named messages lose
  their first attempt) or probabilistic (``prob`` — each attempt is
  lost with probability ``prob``, drawn from a per-message hash of the
  plan seed so a plan replays identically regardless of event order).
  ``jitter=True`` switches the backoff to seeded *full jitter* (a
  uniform draw in ``[0, backoff_ms * 2**k)``) so many messages retrying
  at once do not re-collide in lockstep; the default stays the pure
  deterministic exponential.

A :class:`FaultPlan` bundles specs with a seed and is immutable: the
same plan run twice produces bit-identical traces.  An *empty* plan is
falsy and the engine/fabric skip every fault code path, keeping
fault-free runs bit-identical to the pre-fault engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable, Union

__all__ = [
    "BACKOFF_CAP_DOUBLINGS",
    "FaultError",
    "FaultSpec",
    "FaultPlan",
    "FailureEvent",
    "GpuSlowdown",
    "GpuFailure",
    "GpuRepair",
    "LinkDegradation",
    "TransferLoss",
    "parse_fault",
]

#: Exponential retry backoff stops doubling after this many doublings —
#: ``backoff_ms * 2**52`` at the default 0.1 ms is already ~14 000
#: years, so an unbounded exponent cannot ever schedule a retry inside
#: a finite horizon; the cap keeps high attempt counts representable
#: and the retry schedule monotone instead of astronomically divergent.
BACKOFF_CAP_DOUBLINGS = 16


class FaultError(RuntimeError):
    """Raised when a fault spec is malformed or a fault is unrecoverable
    (e.g. a transfer exhausted its retry budget)."""


@dataclass(frozen=True)
class GpuSlowdown:
    """From ``at`` on, GPU ``gpu`` runs at ``factor`` × profiled speed."""

    gpu: int
    at: float
    factor: float

    def __post_init__(self) -> None:
        if self.gpu < 0:
            raise FaultError(f"negative GPU index {self.gpu}")
        if self.at < 0:
            raise FaultError(f"negative fault time {self.at}")
        if self.factor <= 0:
            raise FaultError(f"slowdown factor must be positive, got {self.factor}")


@dataclass(frozen=True)
class GpuFailure:
    """At ``at``, GPU ``gpu`` fail-stops (device lost)."""

    gpu: int
    at: float

    def __post_init__(self) -> None:
        if self.gpu < 0:
            raise FaultError(f"negative GPU index {self.gpu}")
        if self.at < 0:
            raise FaultError(f"negative fault time {self.at}")


@dataclass(frozen=True)
class GpuRepair:
    """At ``at``, GPU ``gpu`` returns from reset (pool-level recovery).

    Only pool-aware consumers (the serving simulator's
    :class:`~repro.serve.pool.GpuPool`) act on repairs; the single-run
    engine ignores them — a lease is fixed while one inference runs,
    and elastic re-expansion happens *between* engine runs.
    """

    gpu: int
    at: float

    def __post_init__(self) -> None:
        if self.gpu < 0:
            raise FaultError(f"negative GPU index {self.gpu}")
        if self.at < 0:
            raise FaultError(f"negative fault time {self.at}")


@dataclass(frozen=True)
class LinkDegradation:
    """From ``at`` on, the directed link ``src -> dst`` delivers
    ``bw_factor`` of its nominal bandwidth (messages take ``1/bw_factor``
    times longer).  Multiple degradations on one link compound."""

    src: int
    dst: int
    at: float
    bw_factor: float

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise FaultError(f"negative GPU index in link ({self.src}, {self.dst})")
        if self.src == self.dst:
            raise FaultError("link degradation needs two distinct GPUs")
        if self.at < 0:
            raise FaultError(f"negative fault time {self.at}")
        if self.bw_factor <= 0:
            raise FaultError(f"bandwidth factor must be positive, got {self.bw_factor}")


@dataclass(frozen=True)
class TransferLoss:
    """Message-loss model with retry/timeout/exponential backoff.

    A lost attempt occupies its channel until the sender detects the
    loss (``timeout_ms`` after the attempt started), then the message is
    re-posted after ``backoff_ms * 2**(attempt-1)``.  ``tags`` lose
    their first attempt deterministically; ``prob`` loses any attempt
    with the given probability (seeded per message by the plan).  A
    message that loses more than ``max_retries`` attempts raises
    :class:`FaultError` — the watchdog/diagnostic path, not a hang.

    With ``jitter=True`` the re-post delay becomes seeded *full jitter*:
    a uniform draw in ``[0, backoff_ms * 2**(attempt-1))`` hashed from
    the plan seed, message tag and attempt number — deterministic replay
    per plan, but decorrelated across messages, so a burst of
    simultaneous losses does not retry in lockstep (retry storms in the
    serving simulator would otherwise re-synchronize on the channel).
    """

    prob: float = 0.0
    tags: tuple[str, ...] = ()
    max_retries: int = 8
    timeout_ms: float = 0.5
    backoff_ms: float = 0.1
    jitter: bool = False

    def __post_init__(self) -> None:
        if not (0.0 <= self.prob < 1.0):
            raise FaultError(f"loss probability {self.prob} not in [0, 1)")
        if self.prob == 0.0 and not self.tags:
            raise FaultError("TransferLoss needs a probability or explicit tags")
        if self.max_retries < 1:
            raise FaultError("need at least one retry")
        if self.timeout_ms < 0 or self.backoff_ms < 0:
            raise FaultError("negative timeout/backoff")

    def backoff_delay(self, seed: int, tag: str, attempt: int) -> float:
        """Delay between detecting the loss of attempt #``attempt`` and
        re-posting the message.

        Pure exponential by default; with ``jitter`` the ceiling is
        scaled by a uniform draw seeded on ``(seed, tag, attempt)`` so
        the delay replays identically run after run.  The exponent is
        capped at :data:`BACKOFF_CAP_DOUBLINGS` so pathological attempt
        counts plateau at ``backoff_ms * 2**16`` instead of scheduling
        a retry past every finite horizon.
        """
        ceiling = self.backoff_ms * (2 ** min(attempt - 1, BACKOFF_CAP_DOUBLINGS))
        if not self.jitter:
            return ceiling
        return ceiling * random.Random(f"{seed}:backoff:{tag}:{attempt}").random()


FaultSpec = Union[GpuSlowdown, GpuFailure, GpuRepair, LinkDegradation, TransferLoss]


@dataclass(frozen=True)
class FailureEvent:
    """State of a run at the moment a :class:`GpuFailure` fired.

    The engine models fail-stop with host-side checkpointing: outputs of
    *finished* operators survive the failure (they were staged to host
    memory), while *in-flight* operators — on any GPU — lose their
    progress and must re-execute.  ``finished`` and ``in_flight`` are
    therefore the exact hand-off the repair scheduler needs.
    """

    gpu: int
    time: float
    finished: frozenset[str]
    in_flight: frozenset[str]

    def unfinished(self, names: Iterable[str]) -> list[str]:
        """The operators of ``names`` still needing execution, in order."""
        return [v for v in names if v not in self.finished]


class FaultPlan:
    """An immutable, seeded set of fault specs replayed deterministically.

    Empty plans are falsy; the engine and fabric treat them exactly like
    "no faults" (bit-identical traces).
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        for sp in self.specs:
            if not isinstance(
                sp, (GpuSlowdown, GpuFailure, GpuRepair, LinkDegradation, TransferLoss)
            ):
                raise FaultError(f"unknown fault spec {sp!r}")

    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.specs == other.specs and self.seed == other.seed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan(specs={list(self.specs)!r}, seed={self.seed})"

    # ------------------------------------------------------------------
    # typed accessors
    # ------------------------------------------------------------------
    def slowdowns(self) -> list[GpuSlowdown]:
        return [sp for sp in self.specs if isinstance(sp, GpuSlowdown)]

    def failures(self) -> list[GpuFailure]:
        return sorted(
            (sp for sp in self.specs if isinstance(sp, GpuFailure)),
            key=lambda sp: sp.at,
        )

    def first_failure(self) -> GpuFailure | None:
        failures = self.failures()
        return failures[0] if failures else None

    def repairs(self) -> list[GpuRepair]:
        return sorted(
            (sp for sp in self.specs if isinstance(sp, GpuRepair)),
            key=lambda sp: sp.at,
        )

    def degradations(self) -> list[LinkDegradation]:
        return [sp for sp in self.specs if isinstance(sp, LinkDegradation)]

    def losses(self) -> list[TransferLoss]:
        return [sp for sp in self.specs if isinstance(sp, TransferLoss)]

    def validate_for(self, num_gpus: int) -> None:
        """Check every spec references GPUs within ``[0, num_gpus)``."""
        for sp in self.specs:
            if isinstance(sp, (GpuSlowdown, GpuFailure, GpuRepair)) and sp.gpu >= num_gpus:
                raise FaultError(
                    f"{type(sp).__name__} targets GPU {sp.gpu} but the run "
                    f"uses {num_gpus} GPU(s)"
                )
            if isinstance(sp, LinkDegradation) and (
                sp.src >= num_gpus or sp.dst >= num_gpus
            ):
                raise FaultError(
                    f"LinkDegradation targets link {sp.src}->{sp.dst} but the "
                    f"run uses {num_gpus} GPU(s)"
                )

    # ------------------------------------------------------------------
    # queries used by the fabric
    # ------------------------------------------------------------------
    def bw_factor(self, src: int, dst: int, time: float) -> float:
        """Compound bandwidth factor of the directed link at ``time``."""
        factor = 1.0
        for sp in self.degradations():
            if sp.src == src and sp.dst == dst and time >= sp.at:
                factor *= sp.bw_factor
        return factor

    def lost(self, tag: str, attempt: int) -> TransferLoss | None:
        """Is attempt #``attempt`` (1-based) of message ``tag`` lost?

        Returns the responsible :class:`TransferLoss` (for its retry
        parameters) or ``None``.  Probabilistic draws hash the plan
        seed, the tag and the attempt number, so the verdict does not
        depend on the order the fabric asks in — a plan replays
        identically run after run.
        """
        for sp in self.losses():
            if sp.tags and tag in sp.tags and attempt == 1:
                return sp
            if sp.prob > 0.0:
                draw = random.Random(f"{self.seed}:{tag}:{attempt}").random()
                if draw < sp.prob:
                    return sp
        return None

    # ------------------------------------------------------------------
    # re-anchoring (cascading repair / serving tails)
    # ------------------------------------------------------------------
    def resume_after(self, cut: float, dead: Iterable[int] = ()) -> "FaultPlan":
        """The plan a *tail* run (clock restarted at zero) still faces
        after a fail-stop cut the original run at ``cut``.

        ``dead`` lists GPUs that already fail-stopped; every spec
        targeting them is dropped (they host nothing and carry no
        traffic in the tail).  Surviving specs are re-anchored to the
        tail clock: events at or before the cut re-fire at ``t=0``
        (slowdowns and link degradations are persistent state), later
        events shift left by ``cut``, and failures that already fired
        (``at < cut`` — the engine halts at the first one) disappear.
        :class:`TransferLoss` is time-independent and kept verbatim,
        seed included, so tail replays stay deterministic.
        :class:`GpuRepair` specs are dropped: recovery is pool-level
        bookkeeping and a tail's GPU set is fixed for its duration.
        """
        if cut < 0:
            raise FaultError(f"negative resume cut {cut}")
        gone = frozenset(dead)
        specs: list[FaultSpec] = []
        for sp in self.specs:
            if isinstance(sp, GpuRepair):
                continue
            if isinstance(sp, GpuSlowdown):
                if sp.gpu in gone:
                    continue
                specs.append(replace(sp, at=max(0.0, sp.at - cut)))
            elif isinstance(sp, GpuFailure):
                if sp.gpu in gone or sp.at < cut:
                    continue
                specs.append(replace(sp, at=sp.at - cut))
            elif isinstance(sp, LinkDegradation):
                if sp.src in gone or sp.dst in gone:
                    continue
                specs.append(replace(sp, at=max(0.0, sp.at - cut)))
            else:  # TransferLoss: no clock to shift
                specs.append(sp)
        return FaultPlan(specs, seed=self.seed)

    # ------------------------------------------------------------------
    # parsing (CLI / config files)
    # ------------------------------------------------------------------
    @classmethod
    def from_strings(cls, texts: Iterable[str], seed: int = 0) -> "FaultPlan":
        """Build a plan from compact spec strings (see :func:`parse_fault`)."""
        return cls((parse_fault(t) for t in texts), seed=seed)


def parse_fault(text: str) -> FaultSpec:
    """Parse one compact fault spec string.

    Formats (times in ms, factors as fractions of nominal):

    * ``fail:G@T`` — :class:`GpuFailure` of GPU ``G`` at ``T``
    * ``repair:G@T`` — :class:`GpuRepair` of GPU ``G`` at ``T``
    * ``slow:G@TxF`` — :class:`GpuSlowdown` of GPU ``G`` at ``T`` to factor ``F``
    * ``link:S->D@TxF`` — :class:`LinkDegradation` of ``S -> D`` at ``T`` to ``F``
    * ``loss:P`` — :class:`TransferLoss` with probability ``P``; append
      ``:jitter`` for seeded full-jitter backoff (``loss:P:jitter``)
    """
    kind, _, rest = text.partition(":")
    try:
        if kind == "fail":
            gpu, _, at = rest.partition("@")
            return GpuFailure(gpu=int(gpu), at=float(at))
        if kind == "repair":
            gpu, _, at = rest.partition("@")
            return GpuRepair(gpu=int(gpu), at=float(at))
        if kind == "slow":
            gpu, _, when = rest.partition("@")
            at, _, factor = when.partition("x")
            return GpuSlowdown(gpu=int(gpu), at=float(at), factor=float(factor))
        if kind == "link":
            pair, _, when = rest.partition("@")
            src, _, dst = pair.partition("->")
            at, _, factor = when.partition("x")
            return LinkDegradation(
                src=int(src), dst=int(dst), at=float(at), bw_factor=float(factor)
            )
        if kind == "loss":
            prob, _, mode = rest.partition(":")
            if mode not in ("", "jitter"):
                raise FaultError(
                    f"malformed fault spec {text!r}: unknown loss mode "
                    f"{mode!r} (only ':jitter' is recognized)"
                )
            return TransferLoss(prob=float(prob), jitter=bool(mode))
    except (ValueError, TypeError) as exc:
        raise FaultError(f"malformed fault spec {text!r}: {exc}") from exc
    raise FaultError(
        f"unknown fault kind {kind!r} in {text!r}; expected fail:G@T, "
        "repair:G@T, slow:G@TxF, link:S->D@TxF or loss:P[:jitter]"
    )
