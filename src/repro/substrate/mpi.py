"""Simulated CUDA-aware MPI fabric.

The paper's runtime uses one MPI process per GPU and CUDA-aware MPI
point-to-point transfers over NVLink/PCIe.  :class:`SimFabric` models
that transport: each ordered GPU pair ``(src, dst)`` is a FIFO channel —
messages in the same direction serialize, opposite directions share the
channel only when the link is not full duplex.  Transfer durations come
either from the link model (bytes / bandwidth + latency) or from an
explicit per-message duration (the synthetic Section V workloads carry
transfer times directly on graph edges).
"""

from __future__ import annotations

from dataclasses import dataclass

from .faults import FaultError, FaultPlan
from .link import LinkModel

__all__ = ["TransferRecord", "SimFabric"]


@dataclass(frozen=True)
class TransferRecord:
    """One completed (simulated) message.

    ``attempts`` counts the posts it took to deliver the message
    (1 = first try; more under an injected :class:`~repro.substrate.
    faults.TransferLoss`).  ``start_time`` is when the *successful*
    attempt started; lost attempts and their backoff windows sit
    between ``post_time`` and ``start_time``.
    """

    src: int
    dst: int
    tag: str
    post_time: float
    start_time: float
    finish_time: float
    num_bytes: int
    attempts: int = 1

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time

    @property
    def queue_delay(self) -> float:
        return self.start_time - self.post_time


class SimFabric:
    """All-to-all fabric of point-to-point FIFO channels.

    Each channel tracks a ``busy_until`` watermark: a message starts at
    ``max(post time, channel free)``, so messages on one channel never
    overlap regardless of the order posts arrive in (the engine may
    post future-dated sends when a host issues chained blocking
    MPI_Sends).  With ``serialize=False`` the fabric is idealized:
    every message starts at its post time (used to cross-validate the
    engine against the analytic evaluator, which does not model
    channel contention).
    """

    def __init__(
        self,
        num_gpus: int,
        link: LinkModel,
        serialize: bool = True,
        faults: FaultPlan | None = None,
    ) -> None:
        if num_gpus < 1:
            raise ValueError("fabric needs at least one GPU")
        self.num_gpus = num_gpus
        self.link = link
        self.serialize = serialize
        # an empty plan is falsy: treat it exactly like "no faults" so
        # fault-free runs stay bit-identical to the pre-fault fabric
        self.faults = faults if faults else None
        self._busy_until: dict[tuple[int, int], float] = {}
        self._last_post = 0.0  # latest post time seen, for introspection
        self.records: list[TransferRecord] = []
        self.lost_attempts = 0  # total failed posts across all messages

    def _channel(self, src: int, dst: int) -> tuple[int, int]:
        if not (0 <= src < self.num_gpus and 0 <= dst < self.num_gpus):
            raise ValueError(f"GPU pair ({src}, {dst}) out of range")
        if src == dst:
            raise ValueError("no fabric transfer within one GPU")
        if self.link.full_duplex:
            return (src, dst)
        # half duplex: both directions share one channel
        return (min(src, dst), max(src, dst))

    def post_send(
        self,
        time: float,
        src: int,
        dst: int,
        num_bytes: int = 0,
        duration: float | None = None,
        tag: str = "",
    ) -> float:
        """Post a message at ``time``; returns its delivery time.

        ``duration`` overrides the link-model pricing when given (used
        by workloads that carry transfer times on graph edges).

        Under an injected :class:`~repro.substrate.faults.TransferLoss`,
        a lost attempt occupies the channel until its timeout, then the
        message is re-posted after an exponentially growing backoff;
        exhausting the retry budget raises :class:`FaultError`.  A
        :class:`~repro.substrate.faults.LinkDegradation` active when the
        successful attempt starts stretches the transfer by the inverse
        of the compound bandwidth factor.
        """
        self._last_post = max(self._last_post, time)
        chan = self._channel(src, dst)
        if self.serialize:
            start = max(time, self._busy_until.get(chan, 0.0))
        else:
            start = time  # idealized fabric: unlimited channel capacity
        attempt = 1
        if self.faults is not None:
            while True:
                loss = self.faults.lost(tag, attempt)
                if loss is None:
                    break
                if attempt > loss.max_retries:
                    raise FaultError(
                        f"transfer {tag!r} ({src}->{dst}) lost {attempt} "
                        f"attempts, exceeding max_retries={loss.max_retries}"
                    )
                self.lost_attempts += 1
                detect = start + loss.timeout_ms
                if self.serialize:
                    # the failed attempt held the channel until detection
                    self._busy_until[chan] = max(
                        self._busy_until.get(chan, 0.0), detect
                    )
                start = detect + loss.backoff_delay(self.faults.seed, tag, attempt)
                attempt += 1
        if duration is None:
            bw = 1.0 if self.faults is None else self.faults.bw_factor(src, dst, start)
            cost = self.link.transfer_time(num_bytes, bw_factor=bw)
        else:
            cost = duration
            if cost < 0:
                raise ValueError("negative transfer duration")
            if self.faults is not None:
                # duration-priced workloads: degradation stretches the
                # whole message (no separable latency term to spare)
                bw = self.faults.bw_factor(src, dst, start)
                if bw != 1.0:
                    cost /= bw
        finish = start + cost
        self._busy_until[chan] = finish
        self.records.append(
            TransferRecord(
                src=src,
                dst=dst,
                tag=tag,
                post_time=time,
                start_time=start,
                finish_time=finish,
                num_bytes=num_bytes,
                attempts=attempt,
            )
        )
        return finish

    @property
    def total_bytes(self) -> int:
        return sum(r.num_bytes for r in self.records)

    @property
    def num_transfers(self) -> int:
        return len(self.records)
