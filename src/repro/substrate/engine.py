"""Discrete-event multi-GPU execution engine.

This is the reproduction of the paper's runtime (Section VI-A): a
cuDNN-based engine extended with one MPI process per GPU and CUDA-aware
MPI transfers.  Given a cost-annotated graph and a schedule, it *plays
out* the execution and reports measured times — deliberately not
identical to the analytic evaluator the schedulers optimize:

* **Kernel launches** are issued serially by each GPU's host process
  and cost ``launch_overhead`` each.  In the default CUDA-aware-MPI
  mode the host *blocks* on an operator whose remote inputs have not
  arrived (an ``MPI_Recv`` before the dependent launch), which delays
  every later launch of the stage — the effect the paper blames for
  HIOS-LP trailing IOS on NASNet with small inputs (§VI-E).  The
  ``overlap_launch`` option models the suggested NCCL-style fix where
  launches are enqueued eagerly and only the kernel start waits for
  data.
* **Within a stage**, operators do not all start at the stage boundary;
  each starts as soon as it is launched and its data is ready (the
  "may execute earlier in a practical system" remark of §III-A).
* **Concurrent kernels** share the device by processor sharing: when
  the summed occupancy ``U`` of running kernels exceeds 1, every
  resident kernel slows by ``U * (1 + penalty * (U - 1))`` — consistent
  with (but not numerically equal to) the analytic ``t(S)`` model.
* **Transfers** serialize per link direction through
  :class:`~repro.substrate.mpi.SimFabric`.

Stages on one GPU still execute as barriers: no operator of stage
``j+1`` is launched before every operator of stage ``j`` completed on
that GPU.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Iterable, Mapping, Sequence

from ..core.graph import OpGraph
from ..core.schedule import Schedule
from .events import EventQueue
from .faults import FailureEvent, FaultPlan
from .link import LinkModel, NVLINK_BRIDGE
from .mpi import SimFabric, TransferRecord

__all__ = ["EngineError", "EngineConfig", "ExecutionTrace", "MultiGpuEngine"]

_EPS = 1e-9


class EngineError(RuntimeError):
    """Raised when a run cannot make progress (deadlock) or is misused."""


@dataclass(frozen=True)
class EngineConfig:
    """Runtime knobs of the engine.

    ``launch_overhead_ms`` is charged per kernel launch on the host;
    when ``launch_included_in_cost`` is true (platform-priced graphs,
    where the device model already folds the launch into ``t(v)``) the
    kernel's device-side duration is ``t(v) - launch_overhead_ms``.
    ``contention_penalty`` matches the analytic saturation model's
    ``lam``.  ``overlap_launch`` selects the NCCL-style eager-launch
    mode.  ``transfer_from_edges`` prices messages with graph edge
    weights instead of the link model (used by the synthetic Section V
    workloads whose edges carry transfer times directly).

    ``faults`` injects a :class:`~repro.substrate.faults.FaultPlan`:
    per-GPU speeds and link bandwidths become time-varying, transfers
    may be lost and retried, and a ``GpuFailure`` fail-stops the run
    (the trace then carries a ``failure`` event for the repair path).
    An empty plan is equivalent to ``None`` — traces stay bit-identical
    to the fault-free engine.  ``watchdog_horizon_ms`` (0 = disabled)
    bounds how long the simulated clock may sit without any launch,
    delivery or kernel completion while no kernel is running; beyond it
    the engine raises a diagnostic :class:`EngineError` instead of
    jumping ahead.

    ``sanitize`` controls the TSan-style happens-before sanitizer
    (:mod:`repro.sanitize.runtime`): ``True`` forces it on, ``False``
    off, and ``None`` (the default) defers to the ``HIOS_SANITIZE``
    environment variable.  When active, the run first fails fast on
    statically deadlocked schedules (with a witness cycle, before the
    event loop ever starts) and then cross-checks every launch, kernel
    start/finish and transfer post/delivery against the happens-before
    model, raising with a causal chain on any contradiction.
    """

    launch_overhead_ms: float = 0.007
    launch_included_in_cost: bool = True
    contention_penalty: float = 0.06
    stream_overhead: float = 0.0
    overlap_launch: bool = False
    send_blocking: bool = True
    transfer_from_edges: bool = True
    max_streams: int = 0
    fabric_serializes: bool = True
    gpu_speeds: Sequence[float] | None = None
    link: LinkModel = NVLINK_BRIDGE
    faults: FaultPlan | None = None
    watchdog_horizon_ms: float = 0.0
    sanitize: bool | None = None

    def __post_init__(self) -> None:
        if self.launch_overhead_ms < 0:
            raise ValueError("negative launch overhead")
        if self.contention_penalty < 0:
            raise ValueError("negative contention penalty")
        if self.stream_overhead < 0:
            raise ValueError("negative stream overhead")
        if self.max_streams < 0:
            raise ValueError("max_streams must be >= 0 (0 = unbounded)")
        if self.gpu_speeds is not None and any(sp <= 0 for sp in self.gpu_speeds):
            raise ValueError("GPU speed factors must be positive")
        if self.watchdog_horizon_ms < 0:
            raise ValueError("negative watchdog horizon")


@dataclass
class ExecutionTrace:
    """Measured outcome of one engine run.

    ``failure`` is ``None`` for a completed run.  When a
    :class:`~repro.substrate.faults.GpuFailure` fired mid-run, the
    trace is *partial*: it covers execution up to the failure instant
    (``latency`` equals the failure time, in-flight operators have a
    start but no finish) and ``failure`` records the hand-off state for
    :func:`repro.core.repair.repair_schedule`.
    """

    latency: float
    op_launch: dict[str, float]
    op_start: dict[str, float]
    op_finish: dict[str, float]
    transfers: list[TransferRecord]
    gpu_busy: dict[int, float]
    failure: FailureEvent | None = None

    @property
    def completed(self) -> bool:
        return self.failure is None

    @property
    def num_transfers(self) -> int:
        return len(self.transfers)

    def unfinished_ops(self, names: Iterable[str]) -> list[str]:
        """The operators of ``names`` with no recorded finish, in order.

        Empty for a completed run *and* for a spliced repair trace that
        recovered every operator (such traces keep their ``failure``
        marker, so ``failure is None`` alone cannot tell "repaired" from
        "gave up mid-repair").
        """
        return [v for v in names if v not in self.op_finish]

    @property
    def bytes_transferred(self) -> int:
        return sum(t.num_bytes for t in self.transfers)

    def utilization(self, gpu: int) -> float:
        """Busy time of one GPU divided by the end-to-end latency.

        Clamped to ``[0, 1]``: on a partial failure trace the latency
        is cut at the failure instant while ``gpu_busy`` may still
        account a mid-kernel tick of the doomed device (and spliced
        repair traces add busy time across segments), so the raw ratio
        can exceed 1.0 — a utilization above 100% is never meaningful,
        only a symptom of that accounting cut.
        """
        if self.latency <= 0:
            return 0.0
        return min(1.0, self.gpu_busy.get(gpu, 0.0) / self.latency)

    # ------------------------------------------------------------------
    # JSON contract (``repro.trace/v1``) — lets ``repro lint`` verify
    # traces persisted by experiment runs, not just in-process objects.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        doc: dict[str, object] = {
            "format": "repro.trace/v1",
            "latency": self.latency,
            "op_launch": dict(self.op_launch),
            "op_start": dict(self.op_start),
            "op_finish": dict(self.op_finish),
            "transfers": [asdict(t) for t in self.transfers],
            "gpu_busy": {str(g): busy for g, busy in self.gpu_busy.items()},
        }
        if self.failure is not None:
            doc["failure"] = {
                "gpu": self.failure.gpu,
                "time": self.failure.time,
                "finished": sorted(self.failure.finished),
                "in_flight": sorted(self.failure.in_flight),
            }
        return doc

    @staticmethod
    def _op_name_set(value: object, field: str) -> frozenset[str]:
        """Parse a failure op-name list, rejecting scalar look-alikes.

        ``frozenset("abc")`` silently yields ``{"a", "b", "c"}`` — a
        JSON document carrying ``"finished": "op1"`` must be rejected,
        not split into characters.
        """
        if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
            raise EngineError(
                f"trace failure field {field!r} must be an array of operator "
                f"names, got {type(value).__name__}"
            )
        for item in value:
            if not isinstance(item, str):
                raise EngineError(
                    f"trace failure field {field!r} must contain only operator "
                    f"name strings, got {type(item).__name__}"
                )
        return frozenset(value)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExecutionTrace":
        fmt = data.get("format", "repro.trace/v1")
        if fmt != "repro.trace/v1":
            raise EngineError(f"unsupported trace format {fmt!r}")
        raw_failure = data.get("failure")
        failure = None
        if raw_failure is not None:
            # a plain `assert` disappears under `python -O`; malformed
            # documents must fail loudly regardless of interpreter flags
            if not isinstance(raw_failure, Mapping):
                raise EngineError(
                    "malformed trace document: 'failure' must be an object, "
                    f"got {type(raw_failure).__name__}"
                )
            try:
                failure = FailureEvent(
                    gpu=int(raw_failure["gpu"]),  # type: ignore[arg-type]
                    time=float(raw_failure["time"]),  # type: ignore[arg-type]
                    finished=cls._op_name_set(raw_failure["finished"], "finished"),
                    in_flight=cls._op_name_set(raw_failure["in_flight"], "in_flight"),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise EngineError(f"malformed trace document: {exc}") from exc
        try:
            return cls(
                latency=float(data["latency"]),  # type: ignore[arg-type]
                op_launch={str(k): float(v) for k, v in dict(data.get("op_launch", {})).items()},  # type: ignore[arg-type]
                op_start={str(k): float(v) for k, v in dict(data.get("op_start", {})).items()},  # type: ignore[arg-type]
                op_finish={str(k): float(v) for k, v in dict(data.get("op_finish", {})).items()},  # type: ignore[arg-type]
                transfers=[TransferRecord(**t) for t in data.get("transfers", [])],  # type: ignore[arg-type, union-attr]
                gpu_busy={int(k): float(v) for k, v in dict(data.get("gpu_busy", {})).items()},  # type: ignore[arg-type]
                failure=failure,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EngineError(f"malformed trace document: {exc}") from exc


class MultiGpuEngine:
    """Executes a (graph, schedule) pair under an :class:`EngineConfig`."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()

    # ------------------------------------------------------------------
    def run(self, graph: OpGraph, schedule: Schedule, validate: bool = True) -> ExecutionTrace:
        if validate:
            schedule.validate(graph)
        cfg = self.config
        M = schedule.num_gpus
        if cfg.gpu_speeds is not None and len(cfg.gpu_speeds) < M:
            raise EngineError(
                f"EngineConfig.gpu_speeds has {len(cfg.gpu_speeds)} entries but "
                f"the schedule uses {M} GPUs; provide one speed factor per GPU"
            )
        # an empty plan is falsy — treat it exactly like "no faults" so
        # fault-free traces stay bit-identical to the pre-fault engine
        plan = cfg.faults if cfg.faults else None
        if plan is not None:
            plan.validate_for(M)
        # TSan-style happens-before sanitizer (HIOS_SANITIZE / cfg.sanitize).
        # Imported lazily: repro.sanitize depends on this module for its
        # exception hierarchy.  Construction statically detects deadlocked
        # schedules and raises with a witness cycle before the event loop
        # (and in particular the stall watchdog) is ever reached.
        from ..sanitize.runtime import sanitizer_for

        sanitizer = sanitizer_for(graph, schedule, cfg)
        fabric = SimFabric(
            max(M, 1), cfg.link, serialize=cfg.fabric_serializes, faults=plan
        )
        events = EventQueue()

        stage_lists = [schedule.stages_on(g) for g in range(M)]
        stage_idx = [0] * M
        stage_remaining = [len(q[0]) if q else 0 for q in stage_lists]
        pending: list[deque[str]] = [
            deque(q[0].ops) if q else deque() for q in stage_lists
        ]
        host_free = [0.0] * M
        host_blocked = [False] * M

        gpu_of = {op: schedule.gpu_of(op) for op in schedule.operators()}
        remote_pending: dict[str, int] = {}
        for v in graph.names:
            remote_pending[v] = sum(
                1 for u in graph.predecessors(v) if gpu_of[u] != gpu_of[v]
            )

        running: list[dict[str, float]] = [dict() for _ in range(M)]  # op -> remaining
        slowdown = [1.0] * M
        fault_speed = [1.0] * M  # time-varying speed factor from injected faults
        last_update = [0.0] * M
        awaiting_data: set[str] = set()  # launched, waiting for remote input (overlap)
        finished: set[str] = set()
        launched: set[str] = set()
        started: set[str] = set()

        # CUDA-stream serialization: within each stage, operators are
        # dealt round-robin onto L streams; stream_pred[op] is the op
        # that must finish before op's kernel may start.
        stream_pred: dict[str, str | None] = {}
        stream_succ: dict[str, str] = {}

        def assign_streams(ops: tuple[str, ...]) -> None:
            if cfg.max_streams <= 0:
                for op in ops:
                    stream_pred[op] = None
                return
            tails: dict[int, str] = {}
            for i, op in enumerate(ops):
                lane = i % cfg.max_streams
                prev = tails.get(lane)
                stream_pred[op] = prev
                if prev is not None:
                    stream_succ[prev] = op
                tails[lane] = op

        for g0 in range(M):
            for st in stage_lists[g0]:
                assign_streams(st.ops)

        op_launch: dict[str, float] = {}
        op_start: dict[str, float] = {}
        op_finish: dict[str, float] = {}
        gpu_busy = dict.fromkeys(range(M), 0.0)
        unfinished = len(graph)
        now = 0.0
        last_progress = 0.0  # last launch / delivery / kernel completion
        failure: FailureEvent | None = None

        # -------------------------------- helpers
        def recompute_slowdown(g: int) -> None:
            total = sum(graph.operator(op).occupancy for op in running[g])
            if total <= 1.0:
                base = 1.0
            else:
                base = total * (1.0 + cfg.contention_penalty * (total - 1.0))
            streams = 1.0 + cfg.stream_overhead * max(0, len(running[g]) - 1)
            rate = base * streams
            if fault_speed[g] != 1.0:
                rate /= fault_speed[g]
            slowdown[g] = rate

        def settle(g: int, t: float) -> None:
            """Account execution progress of GPU g up to time t."""
            dt = t - last_update[g]
            if dt > 0 and running[g]:
                step = dt / slowdown[g]
                for op in running[g]:
                    running[g][op] -= step
                gpu_busy[g] += dt
            last_update[g] = t

        def gpu_speed(g: int) -> float:
            if cfg.gpu_speeds is None:
                return 1.0
            return cfg.gpu_speeds[g]

        def exec_duration(op: str, g: int) -> float:
            cost = graph.cost(op)
            if cfg.launch_included_in_cost:
                cost = max(0.0, cost - cfg.launch_overhead_ms)
            return cost / gpu_speed(g)

        def start_kernel(g: int, op: str, t: float) -> None:
            settle(g, t)
            started.add(op)
            op_start[op] = t
            if sanitizer is not None:
                sanitizer.observe_start(op, t)
            running[g][op] = exec_duration(op, g)
            recompute_slowdown(g)

        def try_start(g: int, op: str, t: float) -> None:
            """Start the kernel once launched, fed, and stream-clear."""
            if op in started:
                return
            if op not in launched:
                return
            if cfg.overlap_launch and remote_pending[op] > 0:
                return
            pred = stream_pred.get(op)
            if pred is not None and pred not in finished:
                return
            start_kernel(g, op, t)

        def advance_host(g: int, t: float) -> None:
            """Issue launches for the active stage until blocked/done."""
            host_blocked[g] = False
            while pending[g]:
                head = pending[g][0]
                if not cfg.overlap_launch and remote_pending[head] > 0:
                    host_blocked[g] = True
                    return
                pending[g].popleft()
                t_done = max(host_free[g], t) + cfg.launch_overhead_ms
                host_free[g] = t_done
                events.push(t_done, "launch_done", (g, head))

        def stall_diagnostic() -> str:
            """Name who is stuck on what (deadlock / watchdog reports)."""
            parts: list[str] = []
            for g in range(M):
                if pending[g]:
                    head = pending[g][0]
                    need = remote_pending.get(head, 0)
                    msg = f"GPU {g} host blocked on {head!r}"
                    if need > 0:
                        msg += f" ({need} remote input(s) outstanding)"
                    parts.append(msg)
            waiting = sorted(
                op
                for op in graph.names
                if op not in finished and remote_pending.get(op, 0) > 0
            )
            if waiting:
                shown = ", ".join(repr(op) for op in waiting[:8])
                if len(waiting) > 8:
                    shown += f", ... ({len(waiting) - 8} more)"
                parts.append(f"operators awaiting remote data: {shown}")
            return "; ".join(parts) if parts else "no host is blocked"

        def finish_kernel(g: int, op: str, t: float) -> None:
            nonlocal unfinished, last_progress
            last_progress = t
            del running[g][op]
            recompute_slowdown(g)
            op_finish[op] = t
            finished.add(op)
            if sanitizer is not None:
                sanitizer.observe_finish(op, t)
            unfinished -= 1
            succ = stream_succ.get(op)
            if succ is not None:
                try_start(g, succ, t)
            # transfers to remote consumers (sorted for determinism).
            # Under send_blocking the host issues them one blocking
            # MPI_Send at a time, so each send is posted only after the
            # previous one delivered (matching the analytic evaluator's
            # serialized-send semantics).
            blocking = cfg.send_blocking and not cfg.overlap_launch
            cursor = t
            last_delivery = t
            for s in sorted(graph.successors(op)):
                gs = gpu_of[s]
                if gs == g:
                    continue
                post_at = cursor if blocking else t
                if cfg.transfer_from_edges:
                    delivery = fabric.post_send(
                        post_at, g, gs, num_bytes=graph.operator(op).output_bytes,
                        duration=graph.transfer(op, s), tag=f"{op}->{s}",
                    )
                else:
                    delivery = fabric.post_send(
                        post_at, g, gs, num_bytes=graph.operator(op).output_bytes,
                        tag=f"{op}->{s}",
                    )
                events.push(delivery, "data_arrival", (s, op))
                if sanitizer is not None:
                    # transfer events are reported at post time with
                    # their real timestamps; observation is idempotent
                    # so the later data_arrival needs no second report
                    sanitizer.observe_send(op, s, post_at)
                    sanitizer.observe_recv(op, s, delivery)
                cursor = delivery
                last_delivery = max(last_delivery, delivery)
            if blocking and last_delivery > t:
                # the host's blocking MPI sends stall subsequent launches
                host_free[g] = max(host_free[g], last_delivery)
            # stage bookkeeping
            stage_remaining[g] -= 1
            if stage_remaining[g] == 0:
                stage_idx[g] += 1
                if stage_idx[g] < len(stage_lists[g]):
                    nxt = stage_lists[g][stage_idx[g]]
                    stage_remaining[g] = len(nxt)
                    pending[g].extend(nxt.ops)
                    advance_host(g, t)

        # -------------------------------- schedule injected faults
        if plan is not None:
            for slow in plan.slowdowns():
                events.push(slow.at, "gpu_slowdown", slow)
            first_failure = plan.first_failure()
            if first_failure is not None:
                events.push(first_failure.at, "gpu_failure", first_failure)

        # -------------------------------- prime the hosts
        for g in range(M):
            advance_host(g, 0.0)

        # -------------------------------- main loop
        while unfinished > 0:
            # next discrete event vs. next projected kernel finish
            t_next = events.peek_time()
            for g in range(M):
                if running[g]:
                    proj = last_update[g] + min(running[g].values()) * slowdown[g]
                    if t_next is None or proj < t_next:
                        t_next = proj
            if t_next is None:
                raise EngineError(
                    "engine deadlock: no pending events but "
                    f"{unfinished} operators unfinished; {stall_diagnostic()}"
                )
            if (
                cfg.watchdog_horizon_ms > 0
                and not any(running)
                and t_next - last_progress > cfg.watchdog_horizon_ms
            ):
                raise EngineError(
                    "engine watchdog: no launch, delivery or kernel completion "
                    f"since t={last_progress:.3f} ms, no kernel running, and "
                    f"the next event is only at t={t_next:.3f} ms (horizon "
                    f"{cfg.watchdog_horizon_ms:g} ms); {stall_diagnostic()}"
                )
            t_next = max(t_next, now)
            now = t_next

            for g in range(M):
                settle(g, now)
            # kernels that ran out of work
            for g in range(M):
                done = [op for op, rem in running[g].items() if rem <= _EPS]
                for op in done:
                    finish_kernel(g, op, now)
            # discrete events due now
            for ev in events.pop_until(now + _EPS):
                if ev.kind == "launch_done":
                    g, op = ev.payload
                    op_launch[op] = ev.time
                    launched.add(op)
                    if sanitizer is not None:
                        sanitizer.observe_launch(op, ev.time)
                    last_progress = now
                    if cfg.overlap_launch and remote_pending[op] > 0:
                        awaiting_data.add(op)
                    else:
                        try_start(g, op, now)
                elif ev.kind == "data_arrival":
                    consumer, _producer = ev.payload
                    remote_pending[consumer] -= 1
                    last_progress = now
                    if remote_pending[consumer] == 0:
                        g = gpu_of[consumer]
                        if consumer in awaiting_data:
                            awaiting_data.discard(consumer)
                            try_start(g, consumer, now)
                        elif host_blocked[g]:
                            advance_host(g, now)
                elif ev.kind == "gpu_slowdown":
                    slow = ev.payload
                    fault_speed[slow.gpu] *= slow.factor
                    recompute_slowdown(slow.gpu)
                elif ev.kind == "gpu_failure":
                    spec = ev.payload
                    failure = FailureEvent(
                        gpu=spec.gpu,
                        time=now,
                        finished=frozenset(finished),
                        in_flight=frozenset(
                            op for per_gpu in running for op in per_gpu
                        ),
                    )
                    break  # fail-stop: discard the rest of this tick
                else:  # pragma: no cover - defensive
                    raise EngineError(f"unknown event kind {ev.kind!r}")
            if failure is not None:
                break

        if failure is not None:
            # partial trace, cut at the failure instant; in-flight
            # operators keep their start time but have no finish
            return ExecutionTrace(
                latency=failure.time,
                op_launch=op_launch,
                op_start=op_start,
                op_finish=op_finish,
                transfers=fabric.records,
                gpu_busy=gpu_busy,
                failure=failure,
            )
        latency = max(op_finish.values(), default=0.0)
        return ExecutionTrace(
            latency=latency,
            op_launch=op_launch,
            op_start=op_start,
            op_finish=op_finish,
            transfers=fabric.records,
            gpu_busy=gpu_busy,
        )
