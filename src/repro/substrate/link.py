"""Inter-GPU interconnect models (NVLink bridge, NVSwitch, PCIe).

A transfer of ``b`` bytes over a link costs
``latency + b / bandwidth`` milliseconds per direction.  NVLink is full
duplex: opposite directions do not contend; transfers in the same
direction between the same GPU pair are serialized by the engine.

Presets follow the platforms of Section II-B: an NVLink 3 bridge with
112.5 GB/s *bidirectional* bandwidth (56.25 GB/s per direction) for the
A40/A5500 pairs, and PCIe Gen3 x16 (~15.75 GB/s) for the V100S pair.
The fixed latency term models the CUDA-aware-MPI per-message cost the
paper's Fig. 2 exposes at small tensor sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LinkModel", "NVLINK_BRIDGE", "NVSWITCH", "PCIE_GEN3_X16", "LINK_PRESETS"]


@dataclass(frozen=True)
class LinkModel:
    """Point-to-point interconnect between two GPUs."""

    name: str
    bandwidth_gbs: float  # per direction, GB/s
    latency_ms: float = 0.01  # per-message fixed cost (MPI + DMA setup)
    full_duplex: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency_ms < 0:
            raise ValueError("negative link latency")

    @property
    def bytes_per_ms(self) -> float:
        return self.bandwidth_gbs * 1e9 / 1e3

    def transfer_time(self, num_bytes: int, bw_factor: float = 1.0) -> float:
        """One-way transfer time for ``num_bytes`` bytes, in ms.

        ``bw_factor`` scales the effective bandwidth (fault injection:
        a degraded link delivers ``bw_factor`` of nominal, so the
        payload term grows by ``1/bw_factor``; the fixed per-message
        latency is unaffected).
        """
        if num_bytes < 0:
            raise ValueError("negative transfer size")
        if bw_factor <= 0:
            raise ValueError("bandwidth factor must be positive")
        payload = num_bytes / self.bytes_per_ms
        if bw_factor != 1.0:
            payload /= bw_factor
        return self.latency_ms + payload


NVLINK_BRIDGE = LinkModel(name="NVLink bridge", bandwidth_gbs=56.25)
NVSWITCH = LinkModel(name="NVSwitch", bandwidth_gbs=300.0)
PCIE_GEN3_X16 = LinkModel(name="PCIe Gen3 x16", bandwidth_gbs=15.75, latency_ms=0.02)

LINK_PRESETS: dict[str, LinkModel] = {
    "nvlink": NVLINK_BRIDGE,
    "nvswitch": NVSWITCH,
    "pcie3": PCIE_GEN3_X16,
}
