"""Platform profiler: measure operator costs on a simulated platform.

HIOS is profile-based: before scheduling, it measures each operator's
solo execution time, candidate concurrent sets, and inter-GPU transfer
times.  :class:`PlatformProfiler` performs those "measurements" against
the analytic device/link models, producing the cost-annotated
:class:`~repro.core.graph.OpGraph` and the
:class:`~repro.costmodel.profile.CostProfile` every scheduler consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.graph import OpGraph
from ..core.schedule import Schedule
from ..costmodel.concurrency import SaturationConcurrencyModel, TableConcurrencyModel
from ..costmodel.profile import CostProfile
from .device import KernelWork
from .engine import EngineConfig, MultiGpuEngine
from .platform import MultiGpuPlatform
from ..models.builder import ModelGraph

__all__ = ["PlatformProfiler"]


@dataclass
class PlatformProfiler:
    """Prices model graphs against one multi-GPU platform.

    ``contention_penalty`` and ``stream_overhead`` are forwarded to the
    concurrency model so the scheduler's analytic ``t(S)`` agrees with
    the engine's contention behaviour; ``max_streams`` bounds stage
    width (the preset ``L`` of Section III-A, 0 = unbounded).
    """

    platform: MultiGpuPlatform
    contention_penalty: float = 0.06
    stream_overhead: float = 0.15
    max_streams: int = 0

    def work_of(self, model: ModelGraph, name: str) -> KernelWork:
        """Kernel footprint of one operator in the model."""
        node = model.node(name)
        flops, rd, wr, blocks = node.spec.work_items(
            model.input_shapes(name), node.output
        )
        return KernelWork(
            flops=flops, bytes_read=rd, bytes_written=wr, blocks=blocks
        )

    def price_graph(self, model: ModelGraph) -> OpGraph:
        """Measure every operator and dependency; returns the priced DAG."""
        costs: dict[str, float] = {}
        occupancies: dict[str, float] = {}
        for node in model.nodes():
            work = self.work_of(model, node.name)
            costs[node.name] = self.platform.kernel_time(work)
            occupancies[node.name] = self.platform.occupancy(work)
        transfers: dict[tuple[str, str], float] = {}
        for node in model.nodes():
            for t in node.inputs:
                if t in model:
                    producer = model.node(t)
                    transfers[(t, node.name)] = self.platform.transfer_time(
                        producer.output.bytes
                    )
        return model.to_op_graph(costs, occupancies, transfers)

    def profile(self, model: ModelGraph, num_gpus: int | None = None) -> CostProfile:
        """Full profile: priced graph + concurrency model + GPU count."""
        return CostProfile(
            graph=self.price_graph(model),
            concurrency=SaturationConcurrencyModel(
                self.contention_penalty, self.stream_overhead
            ),
            num_gpus=num_gpus if num_gpus is not None else self.platform.num_gpus,
            max_streams=self.max_streams,
        )

    def measure_stage_times(
        self,
        graph: OpGraph,
        schedule: Schedule,
        overlap_launch: bool = False,
    ) -> TableConcurrencyModel:
        """Execute ``schedule`` on the engine and record the *measured*
        wall time of every multi-operator stage as a profiled ``t(S)``.

        This is the paper's feedback loop: analytic estimates seed the
        first schedule, real measurements of the concurrent groups it
        chose refine the next one.  Singleton stages are not recorded
        (their solo times are already the graph's vertex weights)."""
        trace = self.engine(overlap_launch=overlap_launch).run(graph, schedule)
        table = TableConcurrencyModel(
            fallback=SaturationConcurrencyModel(
                self.contention_penalty, self.stream_overhead
            )
        )
        for stage in schedule.all_stages():
            if len(stage) < 2:
                continue
            start = min(trace.op_start[op] for op in stage.ops)
            finish = max(trace.op_finish[op] for op in stage.ops)
            table.record(stage.ops, max(0.0, finish - start))
        return table

    def iterative_profile(
        self,
        model: ModelGraph,
        algorithm: str = "hios-lp",
        rounds: int = 2,
        num_gpus: int | None = None,
        **schedule_kwargs: object,
    ):
        """Alternate scheduling and stage measurement ``rounds`` times.

        Returns ``(profile, result)`` — the final cost profile (with
        the measured stage table installed) and the final schedule
        result.  One round is the plain analytic flow; each further
        round re-prices the concurrent groups the previous schedule
        actually formed."""
        from ..core.api import schedule_graph  # local import avoids a cycle

        if rounds < 1:
            raise ValueError("need at least one round")
        profile = self.profile(model, num_gpus=num_gpus)
        result = schedule_graph(profile, algorithm, **schedule_kwargs)
        for _ in range(rounds - 1):
            table = self.measure_stage_times(profile.graph, result.schedule)
            profile = CostProfile(
                graph=profile.graph,
                concurrency=table,
                num_gpus=profile.num_gpus,
                max_streams=profile.max_streams,
                send_blocking=profile.send_blocking,
            )
            result = schedule_graph(profile, algorithm, **schedule_kwargs)
        return profile, result

    def engine(self, overlap_launch: bool = False) -> MultiGpuEngine:
        """An engine configured consistently with this profiler."""
        return MultiGpuEngine(
            EngineConfig(
                launch_overhead_ms=self.platform.device.launch_overhead_ms,
                launch_included_in_cost=True,
                contention_penalty=self.contention_penalty,
                stream_overhead=self.stream_overhead,
                overlap_launch=overlap_launch,
                transfer_from_edges=True,
                max_streams=self.max_streams,
                link=self.platform.link,
            )
        )
