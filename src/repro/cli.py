"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available experiments, algorithms and models.
``run FIG [--full] [--jobs N] [--batch-units N] [--no-cache] [--cache-dir DIR]``
    Run one experiment driver (e.g. ``fig7``) through the parallel
    sweep engine and print its table.  ``--jobs`` defaults to one
    worker per CPU; results are cached content-addressed under
    ``~/.cache/repro-hios`` (or ``$REPRO_CACHE_DIR``) so re-runs are
    warm no-ops unless ``--no-cache`` is given.
``cache stats|clear [--cache-dir DIR] [--kind KIND]``
    Inspect or empty the content-addressed caches (sweep results and
    schedules share one tree); ``stats`` breaks the footprint down by
    entry kind and document format, ``clear --kind`` purges one kind
    (e.g. ``schedule`` or ``corrupt``) and leaves the rest warm.
``schedule --model NAME --size N [--algorithm A] [--gpus M] [...]``
    Profile a model, schedule it, execute it on the engine, and print
    predicted vs measured latency (optionally dumping schedule JSON).
``report [--results DIR]``
    Render the paper-vs-measured claim table from the JSON artifacts
    the benchmark harness writes under ``benchmarks/results/``.
``compare --model NAME [--algorithms A B ...]``
    Run several algorithms on one model and tabulate predicted and
    engine-measured latency, crossings, stage widths and the
    optimality gap.
``validate GRAPH.json SCHEDULE.json``
    Feasibility-check a schedule against a priced graph and print its
    predicted latency (exit 1 on an invalid schedule).
``faults --model NAME --fault SPEC [...]``
    Latency-under-faults sweep: run several algorithms on one model
    under an injected fault plan (GPU slowdowns/failures, link
    degradation, transfer loss) and tabulate fault-free, faulted and
    repaired latency — repairs now *cascade* across repeated failures.
    Fault specs: ``fail:G@T``, ``repair:G@T``, ``slow:G@TxF``,
    ``link:S->D@TxF``, ``loss:P[:jitter]``.  Exit 1 when any run ends
    unrecovered.
``serve --scenario NAME | --config FILE [--json] [...]``
    Fault-tolerant online serving simulation (:mod:`repro.serve`):
    multi-tenant request streams over a shared GPU pool with admission
    control, deadline shedding, graceful degradation under overload,
    per-query retry, and cascading repair of mid-flight GPU failures.
    Prints the SLO report (p50/p99, goodput, deadline-miss rate,
    shed/retry/repair counters); exports the pool timeline
    (``--trace-out``) and the per-request decision log
    (``--decisions-out``).  Exit 1 when any admitted query failed.
``lint [FILES...] [--fault SPEC ...] [--json] [--rules]``
    Run the :mod:`repro.lint` rule packs over any mix of JSON artifacts
    (graphs, schedules, traces, Chrome-trace exports, sweep cache
    entries — auto-detected) and fault specs, and report *every*
    finding with its rule ID and severity instead of stopping at the
    first.  Exit 1 when an error-severity rule fires.
``trace export|report|diff``
    Observability over persisted traces (:mod:`repro.obs`):
    ``export`` converts a ``repro.trace/v1`` document to Chrome/Perfetto
    ``trace_event`` JSON, ``report`` prints the latency attribution
    (per-GPU compute/transfer/overhead/idle plus the realized critical
    path), ``diff`` compares two traces op by op.
"""

from __future__ import annotations

import argparse
import sys

from .core.api import ALGORITHMS, schedule_graph
from .experiments import EXPERIMENTS, ExperimentConfig, default_config
from .experiments.realmodels import MODEL_BUILDERS, default_profiler
from .utils import render_schedule_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HIOS reproduction (CLUSTER 2023): schedulers, "
        "simulated multi-GPU runtime, per-figure experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, algorithms and models")

    run = sub.add_parser("run", help="run one experiment driver")
    run.add_argument("figure", choices=sorted(EXPERIMENTS))
    run.add_argument("--full", action="store_true", help="paper-scale config (30 instances)")
    run.add_argument("--instances", type=int, default=None, help="override instance count")
    run.add_argument("--plot", action="store_true", help="render an ASCII chart")
    run.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="sweep worker processes (default: one per CPU; 1 = serial)",
    )
    run.add_argument(
        "--batch-units", type=int, default=None, metavar="N",
        help="units per worker batch on the parallel path "
        "(default: auto-tune from unit kind and count)",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed result cache",
    )
    run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro-hios)",
    )
    run.add_argument(
        "--no-progress", action="store_true",
        help="suppress the progress lines on stderr",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="replay each engine-measured unit and export a Chrome "
        "trace per unit into DIR (works on a warm cache too)",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the content-addressed caches"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro-hios)",
    )
    cache.add_argument(
        "--kind", default=None, metavar="KIND",
        help="restrict 'clear' to one entry kind (e.g. latency, schedule, "
        "corrupt); default clears everything",
    )

    sched = sub.add_parser("schedule", help="schedule + execute one model")
    sched.add_argument("--model", choices=sorted(MODEL_BUILDERS), default="inception_v3")
    sched.add_argument("--size", type=int, default=None, help="input size (pixels)")
    sched.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="hios-lp")
    sched.add_argument("--gpus", type=int, default=2)
    sched.add_argument("--window", type=int, default=3, help="Alg. 2 max window size")
    sched.add_argument("--json", action="store_true", help="print schedule JSON")
    sched.add_argument("--stages", action="store_true", help="print stage layout")
    sched.add_argument(
        "--profile-sched",
        action="store_true",
        help="print the per-phase scheduling time breakdown and the "
        "incremental-engine evaluation counters",
    )
    sched.add_argument(
        "--reference-eval",
        action="store_true",
        help="run the retained from-scratch evaluation loops instead of "
        "the incremental engine (same schedule, for A/B timing)",
    )
    sched.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="export the engine trace as Chrome/Perfetto trace_event "
        "JSON (open in ui.perfetto.dev or chrome://tracing)",
    )
    sched.add_argument(
        "--decisions-out", default=None, metavar="PATH",
        help="capture the scheduler's decision log (HIOS-LP path "
        "winners, Alg. 2 window accept/reject) as JSONL",
    )
    sched.add_argument(
        "--sched-cache", action="store_true",
        help="serve the schedule from the persistent schedule cache "
        "(repro.schedcache/v1), computing and storing it on a miss",
    )
    sched.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro-hios)",
    )

    report = sub.add_parser(
        "report", help="paper-vs-measured report from benchmark artifacts"
    )
    report.add_argument(
        "--results", default="benchmarks/results", help="artifact directory"
    )

    compare = sub.add_parser(
        "compare", help="run several algorithms on one model and compare"
    )
    compare.add_argument("--model", choices=sorted(MODEL_BUILDERS), default="inception_v3")
    compare.add_argument("--size", type=int, default=None)
    compare.add_argument("--gpus", type=int, default=2)
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["sequential", "ios", "hios-mr", "hios-lp"],
        choices=sorted(ALGORITHMS),
    )

    faults = sub.add_parser(
        "faults", help="latency under an injected fault plan, with repair"
    )
    faults.add_argument("--model", choices=sorted(MODEL_BUILDERS), default="inception_v3")
    faults.add_argument("--size", type=int, default=None)
    faults.add_argument("--gpus", type=int, default=4)
    faults.add_argument(
        "--algorithms",
        nargs="+",
        default=["sequential", "ios", "hios-mr", "hios-lp"],
        choices=sorted(ALGORITHMS),
    )
    faults.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="repeatable: fail:G@T | repair:G@T | slow:G@TxF | link:S->D@TxF | loss:P",
    )
    faults.add_argument("--seed", type=int, default=0, help="fault plan seed")
    faults.add_argument(
        "--no-repair", action="store_true", help="report the failure, do not repair"
    )
    faults.add_argument(
        "--watchdog", type=float, default=0.0,
        help="engine watchdog horizon in ms (0 = disabled)",
    )
    faults.add_argument(
        "--max-repairs", type=int, default=None, metavar="N",
        help="cap the cascading repair rounds (default: unbounded)",
    )

    from .serve.scenarios import SCENARIOS

    serve = sub.add_parser(
        "serve",
        help="online multi-tenant serving simulation with SLO report",
        description="Simulate a stream of inference queries from several "
        "tenants sharing one GPU pool: admission control, deadline "
        "shedding, degradation under overload, retries, and cascading "
        "repair of GPU failures. Exit 1 when any admitted query failed.",
    )
    src = serve.add_mutually_exclusive_group()
    src.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="steady-state",
        help="built-in seeded scenario (default: steady-state)",
    )
    src.add_argument(
        "--config", default=None, metavar="FILE",
        help="repro.serve/v1 JSON config (linted before the run)",
    )
    serve.add_argument(
        "--seed", type=int, default=None, help="override the config seed"
    )
    serve.add_argument(
        "--horizon", type=float, default=None, metavar="MS",
        help="override the arrival horizon in ms",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="print the repro.servereport/v1 document",
    )
    serve.add_argument(
        "--requests", action="store_true",
        help="with --json: include every per-request record",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="export the pool timeline as Chrome/Perfetto trace_event JSON",
    )
    serve.add_argument(
        "--decisions-out", default=None, metavar="PATH",
        help="capture the admission/dispatch/outcome decision log as JSONL",
    )
    serve.add_argument(
        "--sched-cache", action="store_true",
        help="back the planner memo with the persistent schedule cache "
        "(repro.schedcache/v1) so restarts reuse warm schedules",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro-hios)",
    )

    validate = sub.add_parser(
        "validate", help="check a schedule JSON against a priced graph JSON"
    )
    validate.add_argument("graph", help="graph document from save_graph()")
    validate.add_argument("schedule", help="schedule document from Schedule.to_json()")
    validate.add_argument(
        "--gpus", type=int, default=None, help="override the schedule's GPU count"
    )

    lint = sub.add_parser(
        "lint",
        help="static-analyze graph/schedule/trace JSON documents and fault specs",
        description="Run the repro.lint rule packs over any mix of JSON "
        "artifacts (graph, schedule, trace, cache entry — auto-detected by "
        "their 'format' field / shape) plus optional --fault specs, and "
        "report every finding. Exit 1 when any error-severity rule fires.",
    )
    lint.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help="JSON documents: repro.opgraph/v1, schedule, repro.trace/v1, "
        "repro.cache/v1, repro.schedcache/v1, repro.serve/v1, "
        "repro.servereport/v1, repro.hbreport/v1, Chrome trace_event "
        "exports",
    )
    lint.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="repeatable: fail:G@T | repair:G@T | slow:G@TxF | link:S->D@TxF | loss:P",
    )
    lint.add_argument("--seed", type=int, default=0, help="fault plan seed")
    lint.add_argument(
        "--gpus", type=int, default=None, help="GPU count for fault-target checks"
    )
    lint.add_argument(
        "--window", type=int, default=None, help="Alg. 2 window bound to enforce"
    )
    lint.add_argument(
        "--horizon", type=float, default=None,
        help="run horizon in ms for fault-timing checks",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable output")
    lint.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )

    sanitize = sub.add_parser(
        "sanitize",
        help="happens-before analysis: static deadlock/race detection "
        "and trace linearization checks",
        description="Compile a (graph, schedule) pair into an explicit "
        "happens-before graph under the engine's execution model, run "
        "the static detectors (deadlock witness cycle, cross-GPU and "
        "stream-level ordering hazards, nondeterminism), and verify any "
        "supplied repro.trace/v1 documents — or named serve scenarios — "
        "against it with the vector-clock checker. Exit 1 on any "
        "error-severity finding.",
    )
    sanitize.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help="JSON documents, auto-detected: one repro.opgraph/v1 graph, "
        "one schedule, and any number of repro.trace/v1 traces",
    )
    sanitize.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="NAME",
        help="repeatable: run a named serve scenario and check its pool "
        "timeline for lease-order linearization",
    )
    sanitize.add_argument(
        "--overlap-launch", action="store_true",
        help="model the overlap-launch engine mode (data edges gate "
        "kernel start instead of host launch)",
    )
    sanitize.add_argument(
        "--max-streams", type=int, default=0, metavar="N",
        help="streams per GPU in the model (0 = serial device, the "
        "engine default)",
    )
    sanitize.add_argument(
        "--no-data-wait", action="store_true",
        help="audit mode: drop per-message synchronization from the "
        "model (expects to flag every cross-GPU edge)",
    )
    sanitize.add_argument(
        "--eps", type=float, default=1e-6,
        help="timestamp tolerance for the trace checks",
    )
    sanitize.add_argument(
        "--json", action="store_true",
        help="emit the repro.hbreport/v1 document",
    )

    trace = sub.add_parser(
        "trace",
        help="export, attribute or diff persisted execution traces",
        description="Observability over repro.trace/v1 documents: Chrome "
        "trace_event export, latency attribution with the realized "
        "critical path, and op-by-op trace comparison.",
    )
    tsub = trace.add_subparsers(dest="trace_command", required=True)

    texport = tsub.add_parser(
        "export", help="convert a trace to Chrome/Perfetto trace_event JSON"
    )
    texport.add_argument("trace", help="repro.trace/v1 JSON document")
    texport.add_argument(
        "--schedule", required=True,
        help="schedule JSON the trace was executed under (operator-to-GPU map)",
    )
    texport.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="output file (default: stdout)",
    )
    texport.add_argument(
        "--process-name", default="hios", help="process label in the viewer"
    )

    treport = tsub.add_parser(
        "report", help="latency attribution + realized critical path"
    )
    treport.add_argument("trace", help="repro.trace/v1 JSON document")
    treport.add_argument(
        "--schedule", required=True,
        help="schedule JSON the trace was executed under",
    )
    treport.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    tdiff = tsub.add_parser("diff", help="compare two traces op by op")
    tdiff.add_argument("trace_a", help="baseline repro.trace/v1 document")
    tdiff.add_argument("trace_b", help="comparison repro.trace/v1 document")
    tdiff.add_argument(
        "--eps", type=float, default=1e-6,
        help="timestamp delta below which operators count as unshifted",
    )
    tdiff.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("algorithms:")
    for name in sorted(ALGORITHMS):
        print(f"  {name}")
    print("models:")
    for name in sorted(MODEL_BUILDERS):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.jobs is not None and args.jobs < 0:
        print("error: --jobs must be >= 0 (0 = one per CPU)")
        return 2
    if args.batch_units is not None and args.batch_units < 1:
        print("error: --batch-units must be >= 1")
        return 2
    config = ExperimentConfig.full() if args.full else default_config()
    if args.instances is not None:
        config = config.with_(instances=args.instances)
    config = config.with_(
        # CLI default: one worker per CPU, cache on, progress on —
        # the library default stays serial/uncached for embedders
        jobs=args.jobs if args.jobs is not None else 0,
        batch_units=args.batch_units if args.batch_units is not None else config.batch_units,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        progress=not args.no_progress,
        trace_dir=args.trace_out,
    )
    result = EXPERIMENTS[args.figure](config)
    print(result.to_text())
    if args.plot:
        from .utils import plot_series_result

        print()
        print(plot_series_result(result))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    builder = MODEL_BUILDERS[args.model]
    size = args.size if args.size is not None else (299 if args.model == "inception_v3" else 331)
    profiler = default_profiler(num_gpus=args.gpus)
    profile = profiler.profile(builder(size))
    kwargs: dict[str, object] = (
        {"window": args.window} if args.algorithm in ("hios-lp", "hios-mr") else {}
    )
    if args.reference_eval and args.algorithm != "sequential":
        kwargs["fast"] = False  # sequential has no evaluation loop to swap

    def run_scheduler():  # -> ScheduleResult
        if args.sched_cache:
            from .sweep import ScheduleCache, cached_schedule

            result, hit = cached_schedule(
                profile,
                args.algorithm,
                cache=ScheduleCache(args.cache_dir),
                **kwargs,
            )
            print(f"schedule cache: {'hit' if hit else 'miss'}")
            return result
        return schedule_graph(profile, args.algorithm, **kwargs)

    if args.decisions_out:
        from .obs import capture_decisions

        with capture_decisions() as decisions:
            result = run_scheduler()
        decisions.write_jsonl(args.decisions_out)
        print(
            f"wrote {len(decisions)} decision record(s) to {args.decisions_out}"
        )
    else:
        result = run_scheduler()
    trace = profiler.engine().run(profile.graph, result.schedule)
    if args.trace_out:
        from .obs import save_chrome_trace

        op_gpu = {
            op: result.schedule.gpu_of(op)
            for op in result.schedule.operators()
        }
        save_chrome_trace(
            trace, op_gpu, args.trace_out,
            process_name=f"{args.model}@{size}",
        )
        print(f"wrote Chrome trace to {args.trace_out}")
    print(
        f"{args.model}@{size} | {args.algorithm} on {args.gpus} GPU(s): "
        f"predicted {result.latency:.3f} ms, measured {trace.latency:.3f} ms, "
        f"{trace.num_transfers} transfers, scheduling took "
        f"{result.scheduling_time:.2f} s"
    )
    if args.profile_sched:
        phases = result.stats.get("phase_times", {})
        if isinstance(phases, dict) and phases:
            total = result.scheduling_time
            print("scheduling time breakdown:")
            for phase, secs in phases.items():
                share = 100.0 * secs / total if total > 0 else 0.0
                print(f"  {phase:<16} {secs * 1000:9.2f} ms  ({share:5.1f}%)")
            other = total - sum(phases.values())
            print(f"  {'other':<16} {other * 1000:9.2f} ms")
        counters = {
            k: result.stats[k]
            for k in ("evals", "suffix_replays", "window_delta_evals", "cache_hits")
            if k in result.stats
        }
        if counters:
            print("evaluation counters:")
            for key, value in counters.items():
                print(f"  {key:<18} {value}")
    if args.stages:
        print(render_schedule_table(result.schedule))
    if args.json:
        print(result.schedule.to_json(indent=2))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from .sweep import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        print(json.dumps(cache.stats(), indent=2))
        return 0
    removed = cache.clear(kind=args.kind)
    scope = f" of kind {args.kind!r}" if args.kind else ""
    print(f"removed {removed} cache entrie(s){scope} from {cache.root}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .core.analysis import analyze_schedule
    from .core.bounds import latency_lower_bound, optimality_gap
    from .experiments.reporting import format_table

    builder = MODEL_BUILDERS[args.model]
    size = args.size if args.size is not None else (299 if args.model == "inception_v3" else 331)
    profiler = default_profiler(num_gpus=args.gpus)
    profile = profiler.profile(builder(size))
    engine = profiler.engine()
    rows = []
    for alg in args.algorithms:
        res = schedule_graph(profile, alg)
        trace = engine.run(profile.graph, res.schedule)
        metrics = analyze_schedule(profile, res.schedule)
        rows.append(
            [
                alg,
                res.latency,
                trace.latency,
                metrics.num_cross_edges,
                metrics.max_stage_width,
                f"{optimality_gap(profile, res):.2f}",
            ]
        )
    print(
        f"{args.model}@{size} on {args.gpus} GPU(s); lower bound "
        f"{latency_lower_bound(profile):.3f} ms\n"
    )
    print(
        format_table(
            ["algorithm", "predicted ms", "measured ms", "crossings", "max width", "gap"],
            rows,
        )
    )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .core.repair import run_with_repair
    from .experiments.reporting import format_table
    from .substrate.engine import EngineError, MultiGpuEngine
    from .substrate.faults import FaultError, FaultPlan

    try:
        plan = FaultPlan.from_strings(args.fault, seed=args.seed)
    except FaultError as exc:
        print(f"error: {exc}")
        return 2
    builder = MODEL_BUILDERS[args.model]
    size = args.size if args.size is not None else (299 if args.model == "inception_v3" else 331)
    profiler = default_profiler(num_gpus=args.gpus)
    profile = profiler.profile(builder(size))
    clean_engine = profiler.engine()
    faulted_cfg = replace(
        clean_engine.config, faults=plan, watchdog_horizon_ms=args.watchdog
    )

    rows = []
    unrecovered = False
    for alg in sorted(set(args.algorithms), key=args.algorithms.index):
        res = schedule_graph(profile, alg)
        clean = clean_engine.run(profile.graph, res.schedule)
        faulted = repaired = rounds = slowdown = "—"
        try:
            if args.no_repair:
                trace = MultiGpuEngine(faulted_cfg).run(profile.graph, res.schedule)
                repairs: tuple = ()
            else:
                trace, repairs = run_with_repair(
                    profile,
                    res.schedule,
                    config=faulted_cfg,
                    algorithm=alg,
                    max_repairs=args.max_repairs,
                    strict=False,
                )
            if trace.failure is None:
                faulted = f"{trace.latency:.3f}"
                slowdown = f"{trace.latency / clean.latency:.2f}x"
            else:
                # with cascading repair the spliced trace carries the
                # *last* failure; the first repair records the first cut
                first = repairs[0].failure if repairs else trace.failure
                faulted = f"fail@{first.time:.3f}"
                rounds = str(len(repairs))
                if trace.unfinished_ops(profile.graph.names):
                    repaired = "unrecovered"
                    unrecovered = True
                else:
                    repaired = f"{trace.latency:.3f}"
                    slowdown = f"{trace.latency / clean.latency:.2f}x"
        except (EngineError, FaultError) as exc:
            faulted = f"error: {exc}"
            unrecovered = True
        rows.append([alg, f"{clean.latency:.3f}", faulted, repaired, rounds, slowdown])

    plan_desc = ", ".join(args.fault) if args.fault else "none (fault-free)"
    print(
        f"{args.model}@{size} on {args.gpus} GPU(s); faults: {plan_desc}; "
        f"seed {args.seed}\n"
    )
    print(
        format_table(
            ["algorithm", "fault-free ms", "faulted", "repaired ms", "rounds", "vs clean"],
            rows,
        )
    )
    # match `repro lint`: non-zero exit when something is actually wrong
    # (a failure nobody repaired), so CI can gate on it
    return 1 if unrecovered else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    from dataclasses import replace

    from .serve.config import ServeConfig, ServeConfigError
    from .serve.report import serve_timeline
    from .serve.scenarios import scenario_config
    from .serve.simulator import ServeError, serve

    if args.config:
        try:
            with open(args.config) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {args.config}: {exc}")
            return 2
        from .lint import lint_serve_config

        lint_report = lint_serve_config(doc)
        if lint_report.errors:
            print(lint_report.to_text())
            return 2
        try:
            config = ServeConfig.from_dict(doc)
        except ServeConfigError as exc:
            print(f"error: bad serving config {args.config}: {exc}")
            return 2
    else:
        config = scenario_config(args.scenario)
    overrides: dict[str, object] = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.horizon is not None:
        overrides["horizon_ms"] = args.horizon
    if overrides:
        try:
            config = replace(config, **overrides)  # type: ignore[arg-type]
        except ServeConfigError as exc:
            print(f"error: {exc}")
            return 2

    sched_cache = None
    if args.sched_cache:
        from .sweep import ScheduleCache

        sched_cache = ScheduleCache(args.cache_dir)
    try:
        if args.decisions_out:
            from .obs import capture_decisions

            with capture_decisions() as decisions:
                result = serve(config, sched_cache=sched_cache)
            decisions.write_jsonl(args.decisions_out)
            print(f"wrote {len(decisions)} decision record(s) to {args.decisions_out}")
        else:
            result = serve(config, sched_cache=sched_cache)
    except ServeError as exc:
        print(f"error: {exc}")
        return 2

    if args.trace_out:
        from .obs import save_chrome_trace

        timeline, op_gpu = serve_timeline(list(result.records))
        save_chrome_trace(timeline, op_gpu, args.trace_out, process_name="repro-serve")
        print(f"wrote serving timeline to {args.trace_out}")

    report = result.report
    if args.json:
        doc = report.to_dict()
        if args.requests:
            doc["requests"] = [r.to_dict() for r in result.records]
        print(json.dumps(doc, indent=2))
    else:
        print(report.to_text())
    # failed > 0 means admitted work was lost (retries exhausted / no
    # GPUs left) — the robustness contract this command exists to check
    return 1 if report.failed else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import json

    from .core.evaluator import evaluate_schedule
    from .core.graphio import load_graph
    from .core.schedule import Schedule, ScheduleError
    from .costmodel.profile import CostProfile

    graph = load_graph(args.graph)
    with open(args.schedule) as fh:
        schedule = Schedule.from_dict(json.load(fh))
    if args.gpus is not None and args.gpus != schedule.num_gpus:
        print(
            f"error: schedule declares {schedule.num_gpus} GPUs, "
            f"--gpus says {args.gpus}"
        )
        return 2
    profile = CostProfile(graph=graph, num_gpus=schedule.num_gpus)
    try:
        result = evaluate_schedule(profile, schedule, validate=True)
    except ScheduleError as exc:
        print(f"INVALID: {exc}")
        return 1
    print(
        f"OK: {len(schedule.operators())} operators in "
        f"{schedule.num_stages} stages on {len(schedule.used_gpus())} GPU(s); "
        f"predicted latency {result.latency:.3f} ms"
    )
    return 0


def _detect_document(data: object) -> str | None:
    """Classify a loaded JSON document by its format tag / shape."""
    if not isinstance(data, dict):
        return None
    fmt = data.get("format")
    if fmt == "repro.opgraph/v1":
        return "graph"
    if fmt == "repro.trace/v1":
        return "trace"
    if fmt in ("repro.cache/v1", "repro.schedcache/v1") or (
        "key" in data and "payload" in data
    ):
        return "cache"
    if fmt == "repro.serve/v1":
        return "serve"
    if fmt == "repro.servereport/v1":
        return "servereport"
    if fmt == "repro.hbreport/v1":
        return "hb"
    if "traceEvents" in data:
        return "chrome"
    if "num_gpus" in data and "gpus" in data:
        return "schedule"
    return None


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .core.graph import GraphError
    from .core.graphio import graph_from_dict
    from .core.schedule import Schedule, ScheduleError
    from .lint import LintContext, Linter, rule_catalog
    from .substrate.engine import EngineError, ExecutionTrace
    from .substrate.faults import FaultError, FaultPlan

    if args.rules:
        catalog = rule_catalog()
        if args.json:
            print(json.dumps({"rules": catalog}, indent=2))
        else:
            for entry in catalog:
                print(
                    f"{entry['id']} [{entry['severity']}] "
                    f"({entry['pack']}): {entry['title']}"
                )
        return 0
    if not args.files and not args.fault:
        print("error: nothing to lint (pass JSON files and/or --fault specs)")
        return 2

    graph = schedule = schedule_doc = trace = None
    cache_doc = chrome_doc = serve_doc = serve_report_doc = hb_doc = None
    for path in args.files:
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {path}: {exc}")
            return 2
        kind = _detect_document(data)
        if kind == "graph":
            try:
                graph = graph_from_dict(data)
            except (GraphError, ValueError) as exc:
                print(f"error: malformed graph document {path}: {exc}")
                return 2
        elif kind == "schedule":
            schedule_doc = data
            try:
                schedule = Schedule.from_dict(data)
            except ScheduleError:
                schedule = None  # the document rules report the details
        elif kind == "trace":
            try:
                trace = ExecutionTrace.from_dict(data)
            except EngineError as exc:
                print(f"error: malformed trace document {path}: {exc}")
                return 2
        elif kind == "cache":
            cache_doc = data  # the cache rules report the details
        elif kind == "chrome":
            chrome_doc = data  # the chrome rules report the details
        elif kind == "serve":
            serve_doc = data  # the serve rules report the details
        elif kind == "servereport":
            serve_report_doc = data  # the report rules check the counters
        elif kind == "hb":
            hb_doc = data  # the hb rules report the details
        else:
            print(
                f"error: cannot classify {path}: expected a repro.opgraph/v1, "
                "repro.trace/v1, repro.cache/v1, repro.schedcache/v1, "
                "repro.serve/v1, repro.servereport/v1, repro.hbreport/v1, "
                "Chrome trace_event (traceEvents) or schedule "
                "(num_gpus/gpus) document"
            )
            return 2

    plan = None
    if args.fault:
        try:
            plan = FaultPlan.from_strings(args.fault, seed=args.seed)
        except FaultError as exc:
            print(f"error: {exc}")
            return 2

    ctx = LintContext(
        graph=graph,
        schedule=schedule,
        schedule_doc=schedule_doc,
        trace=trace,
        plan=plan,
        cache_doc=cache_doc,
        chrome_doc=chrome_doc,
        serve_doc=serve_doc,
        serve_report_doc=serve_report_doc,
        hb_doc=hb_doc,
        window=args.window,
        num_gpus=args.gpus,
        horizon=args.horizon,
    )
    report = Linter().run(ctx)
    if args.json:
        doc = report.to_dict()
        doc["rules"] = rule_catalog()
        print(json.dumps(doc, indent=2))
    else:
        print(report.to_text())
    return 0 if not report.errors else 1


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import json

    from .core.graph import GraphError
    from .core.graphio import graph_from_dict
    from .core.schedule import Schedule, ScheduleError
    from .sanitize import ExecModel, analyze, timeline_findings
    from .substrate.engine import EngineError, ExecutionTrace

    graph = schedule = None
    traces = []
    for path in args.files:
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {path}: {exc}")
            return 2
        kind = _detect_document(data)
        if kind == "graph":
            try:
                graph = graph_from_dict(data)
            except (GraphError, ValueError) as exc:
                print(f"error: malformed graph document {path}: {exc}")
                return 2
        elif kind == "schedule":
            try:
                schedule = Schedule.from_dict(data)
            except ScheduleError as exc:
                print(f"error: malformed schedule document {path}: {exc}")
                return 2
        elif kind == "trace":
            try:
                traces.append(ExecutionTrace.from_dict(data))
            except EngineError as exc:
                print(f"error: malformed trace document {path}: {exc}")
                return 2
        else:
            print(
                f"error: cannot classify {path}: sanitize takes a "
                "repro.opgraph/v1 graph, a schedule (num_gpus/gpus) and "
                "repro.trace/v1 traces"
            )
            return 2
    if (graph is None) != (schedule is None):
        print("error: sanitize needs the graph and the schedule together")
        return 2
    if graph is None and not args.scenario:
        print(
            "error: nothing to analyze (pass a graph+schedule pair "
            "and/or --scenario NAME)"
        )
        return 2
    if traces and graph is None:
        print("error: trace checks need the graph and schedule they ran under")
        return 2

    report = None
    if graph is not None and schedule is not None:
        model = ExecModel(
            overlap_launch=args.overlap_launch,
            max_streams=args.max_streams,
            data_wait=not args.no_data_wait,
        )
        report = analyze(
            graph, schedule, model, traces=traces, eps=args.eps
        )

    scenario_extra = []
    if args.scenario:
        from dataclasses import replace

        from .sanitize.api import SanitizeReport
        from .serve.report import serve_timeline
        from .serve.scenarios import SCENARIOS, run_scenario

        for name in args.scenario:
            if name not in SCENARIOS:
                print(
                    f"error: unknown scenario {name!r}; choose from "
                    f"{sorted(SCENARIOS)}"
                )
                return 2
            timeline, op_gpu = serve_timeline(run_scenario(name).records)
            for finding in timeline_findings(timeline, op_gpu, eps=args.eps):
                scenario_extra.append(
                    replace(finding, message=f"scenario {name!r}: {finding.message}")
                )
        if report is None:
            report = SanitizeReport(findings=(), model=ExecModel(), stats={})
    assert report is not None
    if scenario_extra:
        report = report.with_findings(scenario_extra)

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.to_text())
        if args.scenario and report.ok:
            names = ", ".join(args.scenario)
            print(f"serve timeline(s) linearizable: {names}")
    return 0 if report.ok else 1


def _load_trace_doc(path: str):
    """Load a ``repro.trace/v1`` file; returns the trace or an exit code."""
    import json

    from .substrate.engine import EngineError, ExecutionTrace

    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}")
        return None
    try:
        return ExecutionTrace.from_dict(data)
    except EngineError as exc:
        print(f"error: malformed trace document {path}: {exc}")
        return None


def _load_op_gpu(path: str) -> dict[str, int] | None:
    """Operator-to-GPU map from a schedule JSON document."""
    import json

    from .core.schedule import Schedule, ScheduleError

    try:
        with open(path) as fh:
            data = json.load(fh)
        schedule = Schedule.from_dict(data)
    except (OSError, json.JSONDecodeError, ScheduleError) as exc:
        print(f"error: cannot load schedule {path}: {exc}")
        return None
    return {op: schedule.gpu_of(op) for op in schedule.operators()}


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    if args.trace_command == "diff":
        from .obs import diff_traces, render_trace_diff

        trace_a = _load_trace_doc(args.trace_a)
        trace_b = _load_trace_doc(args.trace_b)
        if trace_a is None or trace_b is None:
            return 2
        diff = diff_traces(trace_a, trace_b, eps=args.eps)
        if args.json:
            print(json.dumps(diff.to_dict(), indent=2))
        else:
            print(render_trace_diff(diff, name_a=args.trace_a, name_b=args.trace_b))
        return 0

    trace = _load_trace_doc(args.trace)
    op_gpu = _load_op_gpu(args.schedule)
    if trace is None or op_gpu is None:
        return 2
    missing = sorted(set(trace.op_start) - set(op_gpu))
    if missing:
        print(
            f"error: schedule {args.schedule} does not place "
            f"{len(missing)} traced operator(s) (e.g. {missing[0]!r}); "
            "is it the schedule this trace was executed under?"
        )
        return 2

    if args.trace_command == "export":
        from .obs import chrome_trace_document

        doc = chrome_trace_document(trace, op_gpu, process_name=args.process_name)
        payload = json.dumps(doc)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(payload)
            print(
                f"wrote {len(doc['traceEvents'])} event(s) to {args.output} "
                "(open in ui.perfetto.dev or chrome://tracing)"
            )
        else:
            print(payload)
        return 0

    if args.trace_command == "report":
        from .obs import attribute_latency, render_attribution

        report = attribute_latency(trace, op_gpu)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(render_attribution(report, title=args.trace))
        return 0
    raise AssertionError(
        f"unhandled trace command {args.trace_command!r}"
    )  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "report":
        from .experiments.summary import build_report

        print(build_report(args.results))
        return 0
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "trace":
        return _cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
