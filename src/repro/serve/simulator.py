"""The discrete-event serving loop.

One event heap drives the whole run, ordered by
``(time, priority, seq)``:

* **pool failures** (priority 0) — ``fail:G@T`` specs on the *pool*
  clock mark GPU ``G`` dead for everyone;
* **query outcomes** (priority 1) — a dispatched query completes,
  aborts (transfer retry budget exhausted) or is displaced (its whole
  lease fail-stopped); the lease is released;
* **arrivals / re-admissions** (priority 2) — new requests enter
  admission control, retried requests re-enter the queue.

After every event the dispatcher drains the queue: highest priority
first (FIFO within a priority), leasing the ``gpus_per_query`` lowest
free GPUs — or, when the backlog exceeds ``overload_queue``, the
degraded lease size and algorithm.  A request whose *predicted*
completion would miss its deadline is shed instead of dispatched.

Fault handling is **look-ahead at dispatch**: the pool's remaining
faults are projected onto the lease (pool GPU indices → lease-local
indices, pool clock → query clock) into a per-query
:class:`~repro.substrate.faults.FaultPlan`, and the query executes
under :func:`repro.core.repair.run_with_repair` with ``strict=False`` —
mid-flight GPU loss triggers cascading repair on the rest of the lease,
and only when the *whole* lease is gone does the query come back
displaced, to be re-admitted after a seeded backoff.

Everything — arrivals, placement, faults, backoff jitter — is a pure
function of the :class:`~repro.serve.config.ServeConfig`, so a run
replays bit-identically.
"""

from __future__ import annotations

import hashlib
import heapq
import random
import time
from dataclasses import dataclass, replace
from typing import Any

from ..core.repair import run_with_repair
from ..core.schedule import Schedule
from ..costmodel.profile import CostProfile
from ..obs.declog import emit
from ..substrate.engine import EngineConfig
from ..substrate.faults import (
    FaultError,
    FaultPlan,
    FaultSpec,
    GpuFailure,
    GpuSlowdown,
    LinkDegradation,
)
from ..sweep.schedcache import ScheduleCache, cached_schedule
from .arrivals import Request, build_arrivals
from .config import ServeConfig
from .pool import GpuPool
from .report import RequestRecord, ServeReport
from .zoo import MODEL_ZOO, zoo_profile

__all__ = ["ServeError", "ServeResult", "ServeSimulator", "serve"]

#: Algorithms that accept the sliding-window kwarg.
_WINDOW_ALGS = frozenset({"hios-lp", "hios-mr", "hios-lp-ls"})

# event priorities: pool failures reshape the world before outcomes
# release leases, and both happen before same-instant (re-)admissions
_PRIO_FAIL = 0
_PRIO_OUTCOME = 1
_PRIO_ARRIVAL = 2


class ServeError(RuntimeError):
    """Raised when the serving loop reaches an inconsistent state."""


def _query_seed(seed: int, qid: str, attempt: int) -> int:
    """Stable per-(query, attempt) seed so retries redraw their losses."""
    digest = hashlib.sha256(f"{seed}:{qid}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class _QueueEntry:
    request: Request
    attempt: int = 1


@dataclass(frozen=True)
class ServeResult:
    """Everything a serving run produced."""

    config: ServeConfig
    report: ServeReport
    records: tuple[RequestRecord, ...]

    def record_of(self, request_id: str) -> RequestRecord:
        for rec in self.records:
            if rec.id == request_id:
                return rec
        raise KeyError(request_id)


class ServeSimulator:
    """Runs one serving scenario; see the module docstring for the loop.

    ``sched_cache`` plugs in a persistent
    :class:`~repro.sweep.schedcache.ScheduleCache`: the in-memory
    ``_schedules`` memo becomes a read-through layer over it, so a
    restarted server warms its plans from disk instead of re-running
    the schedulers.  Repairs warm-start from the pre-failure schedule
    either way (see :func:`repro.core.repair.repair_schedule`).
    """

    def __init__(
        self, config: ServeConfig, sched_cache: ScheduleCache | None = None
    ) -> None:
        for t in config.tenants:
            if t.model not in MODEL_ZOO:
                raise ServeError(
                    f"tenant {t.name!r} serves unknown model {t.model!r}; "
                    f"the zoo has {sorted(MODEL_ZOO)}"
                )
        self.config = config
        self._sched_cache = sched_cache
        self._plan = FaultPlan.from_strings(config.faults, seed=config.seed)
        self._base_engine = EngineConfig(
            launch_overhead_ms=0.0,
            launch_included_in_cost=False,
            contention_penalty=0.06,
            transfer_from_edges=True,
        )
        # (model, lease size, algorithm) -> (profile, schedule, predicted)
        self._schedules: dict[tuple[str, int, str], tuple[CostProfile, Schedule, float]] = {}
        # wall-clock scheduling cost + cache traffic (host time, not the
        # simulated clock; reset per run())
        self._sched_s = 0.0
        self._sched_cache_hits = 0
        self._sched_cache_misses = 0
        self._warm_starts = 0

    # ------------------------------------------------------------------
    # scheduling (memoized — the zoo is small and leases repeat; the
    # persistent cache, when given, backs the memo across restarts)
    # ------------------------------------------------------------------
    def _alg_kwargs(self, algorithm: str) -> dict[str, Any]:
        if algorithm in _WINDOW_ALGS:
            return {"window": self.config.window}
        return {}

    def _planned(self, model: str, k: int, algorithm: str) -> tuple[CostProfile, Schedule, float]:
        key = (model, k, algorithm)
        cached = self._schedules.get(key)
        if cached is None:
            profile = zoo_profile(model, k)
            t0 = time.perf_counter()
            result, hit = cached_schedule(
                profile,
                algorithm,
                cache=self._sched_cache,
                **self._alg_kwargs(algorithm),
            )
            self._sched_s += time.perf_counter() - t0
            if hit:
                self._sched_cache_hits += 1
            else:
                self._sched_cache_misses += 1
            cached = (profile, result.schedule, result.latency)
            self._schedules[key] = cached
        return cached

    # ------------------------------------------------------------------
    def run(self) -> ServeResult:
        cfg = self.config
        self._sched_s = 0.0
        self._sched_cache_hits = 0
        self._sched_cache_misses = 0
        self._warm_starts = 0
        pool = GpuPool(cfg.num_gpus)
        requests = build_arrivals(cfg)
        records = {
            r.id: RequestRecord(
                id=r.id,
                tenant=r.tenant,
                model=r.model,
                priority=r.priority,
                arrival_ms=r.arrival_ms,
                deadline_ms=r.deadline_ms,
            )
            for r in requests
        }
        queue: list[_QueueEntry] = []
        heap: list[tuple[float, int, int, str, Any]] = []
        seq = 0

        def push(time: float, prio: int, kind: str, payload: Any) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, prio, seq, kind, payload))
            seq += 1

        for r in requests:
            push(r.arrival_ms, _PRIO_ARRIVAL, "arrival", _QueueEntry(r))
        for f in self._plan.failures():
            push(f.at, _PRIO_FAIL, "gpu-fail", f.gpu)

        retries = 0
        displaced = 0
        degraded_dispatches = 0
        gpu_busy: dict[int, float] = {}
        in_flight: dict[str, tuple[_QueueEntry, tuple[int, ...]]] = {}

        # ------------------------------------------------------------------
        def fail_request(now: float, entry: _QueueEntry, reason: str) -> None:
            rec = records[entry.request.id]
            rec.status = "failed"
            rec.reason = reason
            emit("serve-fail", t=now, request=entry.request.id, reason=reason)

        def retry_or_fail(now: float, entry: _QueueEntry, reason: str) -> None:
            nonlocal retries
            if entry.attempt > cfg.max_retries:
                fail_request(now, entry, f"{reason}: retries exhausted")
                return
            ceiling = cfg.retry_backoff_ms * (2 ** (entry.attempt - 1))
            delay = ceiling
            if cfg.retry_jitter:
                rng = random.Random(
                    f"{cfg.seed}:retry:{entry.request.id}:{entry.attempt}"
                )
                delay = ceiling * rng.random()
            retries += 1
            emit(
                "serve-retry",
                t=now,
                request=entry.request.id,
                attempt=entry.attempt + 1,
                delay_ms=delay,
                reason=reason,
            )
            push(
                now + delay,
                _PRIO_ARRIVAL,
                "requeue",
                _QueueEntry(entry.request, attempt=entry.attempt + 1),
            )

        def dispatch(now: float) -> None:
            nonlocal degraded_dispatches
            while queue:
                if pool.num_alive == 0:
                    for entry in queue:
                        fail_request(now, entry, "no GPUs left in the pool")
                    queue.clear()
                    return
                overloaded = len(queue) > cfg.overload_queue
                queue.sort(
                    key=lambda e: (
                        -e.request.priority,
                        e.request.arrival_ms,
                        e.request.id,
                    )
                )
                k = cfg.degraded_gpus if overloaded else cfg.gpus_per_query
                k = min(k, pool.num_alive)
                if pool.num_free < k:
                    return
                entry = queue.pop(0)
                req = entry.request
                rec = records[req.id]
                algorithm = cfg.degraded_algorithm if overloaded else cfg.algorithm
                profile, schedule, predicted = self._planned(req.model, k, algorithm)
                if cfg.shed_late and now + predicted > req.deadline_ms:
                    rec.status = "shed-deadline"
                    rec.reason = (
                        f"predicted finish {now + predicted:.3f} ms past "
                        f"deadline {req.deadline_ms:.3f} ms"
                    )
                    emit(
                        "serve-shed",
                        t=now,
                        request=req.id,
                        reason="deadline",
                        predicted_ms=predicted,
                    )
                    continue
                lease = pool.lease(req.id, k)
                in_flight[req.id] = (entry, lease)
                rec.dispatched_ms = now
                rec.gpus = lease
                rec.algorithm = algorithm
                rec.attempts += 1
                if overloaded:
                    rec.degraded = True
                    degraded_dispatches += 1
                emit(
                    "serve-dispatch",
                    t=now,
                    request=req.id,
                    gpus=list(lease),
                    algorithm=algorithm,
                    degraded=overloaded,
                    attempt=entry.attempt,
                    predicted_ms=predicted,
                )
                self._execute(
                    now, entry, lease, profile, schedule, predicted, algorithm, push, gpu_busy
                )

        # ------------------------------------------------------------------
        while heap:
            now, _prio, _seq, kind, payload = heapq.heappop(heap)
            if kind == "gpu-fail":
                holder = pool.fail(payload)
                emit("serve-gpu-fail", t=now, gpu=payload, holder=holder)
            elif kind == "arrival":
                entry = payload
                rec = records[entry.request.id]
                if len(queue) >= cfg.queue_capacity:
                    rec.status = "shed-queue"
                    rec.reason = f"queue full ({cfg.queue_capacity})"
                    emit(
                        "serve-shed",
                        t=now,
                        request=entry.request.id,
                        reason="queue-full",
                    )
                else:
                    queue.append(entry)
                    emit(
                        "serve-admit",
                        t=now,
                        request=entry.request.id,
                        tenant=entry.request.tenant,
                        queued=len(queue),
                    )
            elif kind == "requeue":
                # re-admissions bypass the capacity check: the work was
                # already admitted once and should not be double-punished
                # for a fault that was not its fault
                queue.append(payload)
                emit(
                    "serve-admit",
                    t=now,
                    request=payload.request.id,
                    tenant=payload.request.tenant,
                    queued=len(queue),
                    readmitted=True,
                )
            elif kind in ("complete", "abort", "displace"):
                entry, extra = payload
                qid = entry.request.id
                if qid not in in_flight:
                    raise ServeError(f"outcome for {qid!r} without a lease")
                _, lease = in_flight.pop(qid)
                pool.release(qid)
                rec = records[qid]
                rec.released_ms = now
                if kind == "complete":
                    num_repairs = extra
                    rec.status = "completed"
                    rec.completed_ms = now
                    rec.latency_ms = now - rec.arrival_ms
                    rec.repairs += num_repairs
                    rec.deadline_met = now <= rec.deadline_ms
                    emit(
                        "serve-complete",
                        t=now,
                        request=qid,
                        latency_ms=rec.latency_ms,
                        repairs=num_repairs,
                        deadline_met=rec.deadline_met,
                    )
                elif kind == "abort":
                    emit("serve-abort", t=now, request=qid, reason=extra)
                    retry_or_fail(now, entry, extra)
                else:  # displace: the whole lease fail-stopped
                    num_repairs = extra
                    rec.repairs += num_repairs
                    rec.displaced += 1
                    displaced += 1
                    emit(
                        "serve-displaced",
                        t=now,
                        request=qid,
                        gpus=list(lease),
                        repairs=num_repairs,
                    )
                    retry_or_fail(now, entry, "lease lost to GPU failure")
            else:  # pragma: no cover - defensive
                raise ServeError(f"unknown event kind {kind!r}")
            dispatch(now)

        for entry in queue:  # pragma: no cover - defensive (heap drained first)
            fail_request(cfg.horizon_ms, entry, "starved at end of run")

        report = ServeReport.from_records(
            list(records.values()),
            retries=retries,
            displaced=displaced,
            degraded_dispatches=degraded_dispatches,
            gpu_busy_ms=gpu_busy,
            horizon_ms=cfg.horizon_ms,
            sched_ms=self._sched_s * 1000.0,
            sched_cache_hits=self._sched_cache_hits,
            sched_cache_misses=self._sched_cache_misses,
            warm_starts=self._warm_starts,
        )
        return ServeResult(
            config=cfg,
            report=report,
            records=tuple(records.values()),
        )

    # ------------------------------------------------------------------
    def _execute(
        self,
        now: float,
        entry: _QueueEntry,
        lease: tuple[int, ...],
        profile: CostProfile,
        schedule: Schedule,
        predicted: float,
        algorithm: str,
        push: Any,
        gpu_busy: dict[int, float],
    ) -> None:
        """Run the query on its lease and push its outcome event."""
        cfg = self.config
        specs: list[FaultSpec] = []
        local = {g: i for i, g in enumerate(lease)}
        for f in self._plan.failures():
            if f.gpu in local and f.at >= now:
                specs.append(GpuFailure(gpu=local[f.gpu], at=f.at - now))
        for s in self._plan.slowdowns():
            if s.gpu in local:
                specs.append(
                    GpuSlowdown(gpu=local[s.gpu], at=max(0.0, s.at - now), factor=s.factor)
                )
        for d in self._plan.degradations():
            if d.src in local and d.dst in local:
                specs.append(
                    LinkDegradation(
                        src=local[d.src],
                        dst=local[d.dst],
                        at=max(0.0, d.at - now),
                        bw_factor=d.bw_factor,
                    )
                )
        specs.extend(self._plan.losses())
        qseed = _query_seed(cfg.seed, entry.request.id, entry.attempt)
        qplan = FaultPlan(specs, seed=qseed)
        engine_cfg = replace(self._base_engine, faults=qplan if specs else None)
        try:
            trace, repairs = run_with_repair(
                profile,
                schedule,
                config=engine_cfg,
                algorithm=algorithm,
                strict=False,
                warm_start=True,
                sched_cache=self._sched_cache,
                **self._alg_kwargs(algorithm),
            )
        except FaultError as exc:
            # transfer retry budget exhausted mid-run: the lease was held
            # for about the predicted duration before the abort surfaced
            push(now + predicted, _PRIO_OUTCOME, "abort", (entry, str(exc)))
            return
        for r in repairs:
            self._sched_s += r.result.scheduling_time
            if r.warm_started:
                self._warm_starts += 1
        for g_local, busy in trace.gpu_busy.items():
            gpu = lease[g_local]
            gpu_busy[gpu] = gpu_busy.get(gpu, 0.0) + busy
        if trace.unfinished_ops(profile.graph.names):
            if trace.failure is None:  # pragma: no cover - defensive
                raise ServeError(f"incomplete trace without failure for {entry.request.id!r}")
            push(
                now + trace.failure.time,
                _PRIO_OUTCOME,
                "displace",
                (entry, len(repairs)),
            )
            return
        push(now + trace.latency, _PRIO_OUTCOME, "complete", (entry, len(repairs)))


def serve(
    config: ServeConfig, sched_cache: ScheduleCache | None = None
) -> ServeResult:
    """Run one serving scenario (the one-call entry point)."""
    return ServeSimulator(config, sched_cache=sched_cache).run()
