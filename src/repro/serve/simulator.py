"""The discrete-event serving loop.

One event heap drives the whole run, ordered by
``(time, priority, seq)``:

* **pool failures** (priority 0) — ``fail:G@T`` specs on the *pool*
  clock mark GPU ``G`` dead for everyone;
* **pool repairs** (priority 1) — ``repair:G@T`` specs return a dead
  GPU to service, *after* same-instant failures (a fail+repair tie
  leaves the GPU alive) and *before* same-instant outcomes and
  arrivals see the pool;
* **query outcomes** (priority 2) — a dispatched query (or batch)
  completes, aborts (transfer retry budget exhausted) or is displaced
  (its whole lease fail-stopped); the lease is released;
* **arrivals / re-admissions** (priority 3) — new requests enter
  admission control, retried requests re-enter the queue.

After every event the dispatcher drains the queue: highest priority
first (FIFO within a priority), leasing the ``gpus_per_query`` lowest
free GPUs — or, when the backlog exceeds ``overload_queue``, the
degraded lease size and algorithm.  The queue is sorted once per
dispatch round and the overload verdict is latched for the whole
round.  With ``max_batch > 1`` the dispatcher merges queued same-model
requests into the leader's dispatch: one lease, one schedule, one
execution, per-member deadline accounting.  A request whose
*predicted* completion would miss its deadline is shed instead of
dispatched.

Fault handling is **look-ahead at dispatch**: the pool's remaining
faults are projected onto the lease (pool GPU indices → lease-local
indices, pool clock → query clock) into a per-query
:class:`~repro.substrate.faults.FaultPlan`, and the query executes
under :func:`repro.core.repair.run_with_repair` with ``strict=False`` —
mid-flight GPU loss triggers cascading repair on the rest of the lease,
and only when the *whole* lease is gone does the query come back
displaced, to be re-admitted after a seeded backoff.

With ``elastic`` the loop additionally resizes *in-flight* leases
(:func:`repro.core.repair.resize_schedule`): when the queue is empty
and GPUs sit free — typically right after a ``repair:G@T`` — narrow
leases grow back toward ``gpus_per_query``; when an overloaded backlog
cannot dispatch, the widest lease shrinks to ``degraded_gpus``.  A
resize cuts the running segment at the current pool time, checkpoints
the operators finished by the cut, re-plans the remainder warm-started
from the old placement, and re-executes it on the new lease;
outcome events carry an epoch so a superseded segment's outcome is
ignored when it fires.

Everything — arrivals, placement, faults, backoff jitter — is a pure
function of the :class:`~repro.serve.config.ServeConfig`, so a run
replays bit-identically.
"""

from __future__ import annotations

import hashlib
import heapq
import random
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..core.repair import RepairError, RepairResult, resize_schedule, run_with_repair
from ..core.schedule import Schedule
from ..costmodel.profile import CostProfile
from ..obs.declog import emit
from ..substrate.engine import EngineConfig, ExecutionTrace
from ..substrate.faults import (
    FaultError,
    FaultPlan,
    FaultSpec,
    GpuFailure,
    GpuSlowdown,
    LinkDegradation,
)
from ..sweep.schedcache import ScheduleCache, cached_schedule
from .arrivals import Request, build_arrivals
from .config import ServeConfig
from .pool import GpuPool
from .report import RequestRecord, ServeReport
from .zoo import MODEL_ZOO, zoo_profile

__all__ = ["ServeError", "ServeResult", "ServeSimulator", "serve"]

#: Algorithms that accept the sliding-window kwarg.
_WINDOW_ALGS = frozenset({"hios-lp", "hios-mr", "hios-lp-ls"})

# event priorities: pool failures reshape the world first, repairs heal
# it next (a same-instant fail+repair leaves the GPU alive), then
# outcomes release leases, and (re-)admissions see the settled pool
_PRIO_FAIL = 0
_PRIO_REPAIR = 1
_PRIO_OUTCOME = 2
_PRIO_ARRIVAL = 3


class ServeError(RuntimeError):
    """Raised when the serving loop reaches an inconsistent state."""


def _query_seed(seed: int, qid: str, attempt: int) -> int:
    """Stable per-(query, attempt) seed so retries redraw their losses."""
    digest = hashlib.sha256(f"{seed}:{qid}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _op_assignment(schedule: Schedule) -> dict[str, int]:
    """Map every scheduled operator to its (schedule-local) GPU."""
    out: dict[str, int] = {}
    for g in range(schedule.num_gpus):
        for st in schedule.stages_on(g):
            for op in st.ops:
                out[op] = g
    return out


@dataclass
class _QueueEntry:
    request: Request
    attempt: int = 1


@dataclass
class _InFlight:
    """State of one dispatched query (or merged batch) on its lease.

    ``epoch`` versions the pending outcome event: an elastic resize
    bumps it and pushes a fresh outcome, so the superseded event is
    recognized as stale when it fires.  ``trace`` / ``op_gpu`` describe
    the *current* segment on the query-local clock starting at
    ``segment_start_ms``; ``finished`` holds the operators checkpointed
    by earlier segments; ``repairs_done`` counts cascading-repair
    rounds that actually happened before a resize cut.
    """

    members: list[_QueueEntry]  # batch members, leader first
    lease: tuple[int, ...]
    model: str
    algorithm: str
    names: tuple[str, ...]  # full model operator names
    segment_start_ms: float
    pending: str = "complete"  # what the pushed outcome event says
    trace: ExecutionTrace | None = None
    seg_repairs: tuple[RepairResult, ...] = ()
    op_gpu: dict[str, int] = field(default_factory=dict)
    finished: frozenset[str] = frozenset()
    repairs_done: int = 0
    epoch: int = 0

    @property
    def leader(self) -> _QueueEntry:
        return self.members[0]

    @property
    def qid(self) -> str:
        return self.members[0].request.id


@dataclass(frozen=True)
class ServeResult:
    """Everything a serving run produced."""

    config: ServeConfig
    report: ServeReport
    records: tuple[RequestRecord, ...]

    def record_of(self, request_id: str) -> RequestRecord:
        for rec in self.records:
            if rec.id == request_id:
                return rec
        raise KeyError(request_id)


class ServeSimulator:
    """Runs one serving scenario; see the module docstring for the loop.

    ``sched_cache`` plugs in a persistent
    :class:`~repro.sweep.schedcache.ScheduleCache`: the in-memory
    ``_schedules`` memo becomes a read-through layer over it, so a
    restarted server warms its plans from disk instead of re-running
    the schedulers.  Repairs and elastic resizes warm-start from the
    running placement either way (see
    :func:`repro.core.repair.repair_schedule` and
    :func:`repro.core.repair.resize_schedule`).
    """

    def __init__(
        self, config: ServeConfig, sched_cache: ScheduleCache | None = None
    ) -> None:
        for t in config.tenants:
            if t.model not in MODEL_ZOO:
                raise ServeError(
                    f"tenant {t.name!r} serves unknown model {t.model!r}; "
                    f"the zoo has {sorted(MODEL_ZOO)}"
                )
        self.config = config
        self._sched_cache = sched_cache
        self._plan = FaultPlan.from_strings(config.faults, seed=config.seed)
        self._base_engine = EngineConfig(
            launch_overhead_ms=0.0,
            launch_included_in_cost=False,
            contention_penalty=0.06,
            transfer_from_edges=True,
        )
        # (model, lease size, algorithm) -> (profile, schedule, predicted)
        self._schedules: dict[tuple[str, int, str], tuple[CostProfile, Schedule, float]] = {}
        # wall-clock scheduling cost + cache traffic (host time, not the
        # simulated clock; reset per run())
        self._sched_s = 0.0
        self._sched_cache_hits = 0
        self._sched_cache_misses = 0
        self._warm_starts = 0

    # ------------------------------------------------------------------
    # scheduling (memoized — the zoo is small and leases repeat; the
    # persistent cache, when given, backs the memo across restarts)
    # ------------------------------------------------------------------
    def _alg_kwargs(self, algorithm: str) -> dict[str, Any]:
        if algorithm in _WINDOW_ALGS:
            return {"window": self.config.window}
        return {}

    def _planned(self, model: str, k: int, algorithm: str) -> tuple[CostProfile, Schedule, float]:
        key = (model, k, algorithm)
        cached = self._schedules.get(key)
        if cached is None:
            profile = zoo_profile(model, k)
            t0 = time.perf_counter()
            result, hit = cached_schedule(
                profile,
                algorithm,
                cache=self._sched_cache,
                **self._alg_kwargs(algorithm),
            )
            self._sched_s += time.perf_counter() - t0
            if hit:
                self._sched_cache_hits += 1
            else:
                self._sched_cache_misses += 1
            cached = (profile, result.schedule, result.latency)
            self._schedules[key] = cached
        return cached

    def _query_plan(
        self, now: float, lease: tuple[int, ...], tag: str, attempt: int
    ) -> FaultPlan | None:
        """Project the pool's remaining faults onto ``lease``.

        Pool GPU indices map to lease-local indices and the pool clock
        re-anchors to the query clock starting at ``now``.  ``tag``
        keys the per-query loss seed (the request id, suffixed with the
        segment epoch after an elastic resize so re-planned segments
        redraw their losses deterministically).
        """
        specs: list[FaultSpec] = []
        local = {g: i for i, g in enumerate(lease)}
        for f in self._plan.failures():
            if f.gpu in local and f.at >= now:
                specs.append(GpuFailure(gpu=local[f.gpu], at=f.at - now))
        for s in self._plan.slowdowns():
            if s.gpu in local:
                specs.append(
                    GpuSlowdown(gpu=local[s.gpu], at=max(0.0, s.at - now), factor=s.factor)
                )
        for d in self._plan.degradations():
            if d.src in local and d.dst in local:
                specs.append(
                    LinkDegradation(
                        src=local[d.src],
                        dst=local[d.dst],
                        at=max(0.0, d.at - now),
                        bw_factor=d.bw_factor,
                    )
                )
        specs.extend(self._plan.losses())
        if not specs:
            return None
        return FaultPlan(specs, seed=_query_seed(self.config.seed, tag, attempt))

    # ------------------------------------------------------------------
    def run(self) -> ServeResult:
        cfg = self.config
        self._sched_s = 0.0
        self._sched_cache_hits = 0
        self._sched_cache_misses = 0
        self._warm_starts = 0
        pool = GpuPool(cfg.num_gpus)
        requests = build_arrivals(cfg)
        records = {
            r.id: RequestRecord(
                id=r.id,
                tenant=r.tenant,
                model=r.model,
                priority=r.priority,
                arrival_ms=r.arrival_ms,
                deadline_ms=r.deadline_ms,
            )
            for r in requests
        }
        queue: list[_QueueEntry] = []
        heap: list[tuple[float, int, int, str, Any]] = []
        seq = 0

        def push(time: float, prio: int, kind: str, payload: Any) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, prio, seq, kind, payload))
            seq += 1

        for r in requests:
            push(r.arrival_ms, _PRIO_ARRIVAL, "arrival", _QueueEntry(r))
        for f in self._plan.failures():
            push(f.at, _PRIO_FAIL, "gpu-fail", f.gpu)
        for rp in self._plan.repairs():
            push(rp.at, _PRIO_REPAIR, "gpu-repair", rp.gpu)

        retries = 0
        displaced = 0
        degraded_dispatches = 0
        revived = 0
        elastic_grows = 0
        elastic_shrinks = 0
        gpu_busy: dict[int, float] = {}
        in_flight: dict[str, _InFlight] = {}

        # ------------------------------------------------------------------
        def fail_request(now: float, entry: _QueueEntry, reason: str) -> None:
            rec = records[entry.request.id]
            rec.status = "failed"
            rec.reason = reason
            emit("serve-fail", t=now, request=entry.request.id, reason=reason)

        def retry_or_fail(now: float, entry: _QueueEntry, reason: str) -> None:
            nonlocal retries
            if entry.attempt > cfg.max_retries:
                fail_request(now, entry, f"{reason}: retries exhausted")
                return
            ceiling = cfg.retry_backoff_ms * (2 ** (entry.attempt - 1))
            delay = ceiling
            if cfg.retry_jitter:
                rng = random.Random(
                    f"{cfg.seed}:retry:{entry.request.id}:{entry.attempt}"
                )
                delay = ceiling * rng.random()
            retries += 1
            emit(
                "serve-retry",
                t=now,
                request=entry.request.id,
                attempt=entry.attempt + 1,
                delay_ms=delay,
                reason=reason,
            )
            push(
                now + delay,
                _PRIO_ARRIVAL,
                "requeue",
                _QueueEntry(entry.request, attempt=entry.attempt + 1),
            )

        def fold_busy(lease: tuple[int, ...], seg_busy: dict[int, float]) -> None:
            for g_local, busy in seg_busy.items():
                gpu = lease[g_local]
                gpu_busy[gpu] = gpu_busy.get(gpu, 0.0) + busy

        def dispatch(now: float) -> None:
            nonlocal degraded_dispatches
            if not queue:
                return
            if pool.num_alive == 0:
                for entry in queue:
                    fail_request(now, entry, "no GPUs left in the pool")
                queue.clear()
                return
            # sort once per round — pops below preserve the order — and
            # latch the overload verdict so a burst that starts degraded
            # drains degraded instead of flipping mid-round
            queue.sort(
                key=lambda e: (
                    -e.request.priority,
                    e.request.arrival_ms,
                    e.request.id,
                )
            )
            overloaded = len(queue) > cfg.overload_queue
            while queue:
                k = cfg.degraded_gpus if overloaded else cfg.gpus_per_query
                k = min(k, pool.num_alive)
                if pool.num_free < k:
                    return
                entry = queue.pop(0)
                req = entry.request
                rec = records[req.id]
                algorithm = cfg.degraded_algorithm if overloaded else cfg.algorithm
                profile, schedule, predicted = self._planned(req.model, k, algorithm)
                if cfg.shed_late and now + predicted > req.deadline_ms:
                    rec.status = "shed-deadline"
                    rec.reason = (
                        f"predicted finish {now + predicted:.3f} ms past "
                        f"deadline {req.deadline_ms:.3f} ms"
                    )
                    emit(
                        "serve-shed",
                        t=now,
                        request=req.id,
                        reason="deadline",
                        predicted_ms=predicted,
                    )
                    continue
                # merge queued same-model requests into the leader's
                # dispatch; members predicted to miss their deadline are
                # left queued (they shed at their own dispatch)
                members = [entry]
                if cfg.max_batch > 1:
                    i = 0
                    while i < len(queue) and len(members) < cfg.max_batch:
                        cand = queue[i]
                        if cand.request.model == req.model and not (
                            cfg.shed_late
                            and now + predicted > cand.request.deadline_ms
                        ):
                            members.append(queue.pop(i))
                        else:
                            i += 1
                lease = pool.lease(req.id, k)
                fl = _InFlight(
                    members=members,
                    lease=lease,
                    model=req.model,
                    algorithm=algorithm,
                    names=profile.graph.names,
                    segment_start_ms=now,
                )
                in_flight[req.id] = fl
                for m in members:
                    mrec = records[m.request.id]
                    mrec.dispatched_ms = now
                    mrec.gpus = lease
                    mrec.algorithm = algorithm
                    mrec.attempts += 1
                    mrec.batch = len(members)
                    mrec.batched_with = "" if m is entry else req.id
                    if overloaded:
                        mrec.degraded = True
                if overloaded:
                    degraded_dispatches += 1
                emit(
                    "serve-dispatch",
                    t=now,
                    request=req.id,
                    gpus=list(lease),
                    algorithm=algorithm,
                    degraded=overloaded,
                    attempt=entry.attempt,
                    predicted_ms=predicted,
                    batch=len(members),
                )
                self._execute(now, fl, profile, schedule, predicted, push, gpu_busy)

        # ------------------------------------------------------------------
        def try_resize(now: float, fl: _InFlight, target: int) -> bool:
            """Cut ``fl``'s running segment and re-plan it at ``target`` GPUs.

            Returns ``False`` (leaving the query untouched) when there
            is nothing left to re-plan — the segment's remaining work
            all finished by the cut, or its trace is already doomed.
            """
            if fl.pending != "complete" or fl.trace is None:
                return False
            live = tuple(g for g in fl.lease if g not in pool.dead)
            if not live or target == len(live):
                return False
            cut = now - fl.segment_start_ms
            seg_done = frozenset(
                op for op, t in fl.trace.op_finish.items() if t <= cut
            )
            finished = fl.finished | seg_done
            if len(finished) >= len(fl.names):
                return False  # effectively done; let the outcome fire
            grow = target > len(live)
            if grow:
                extra = sorted(pool.free)[: target - len(live)]
                new_lease = tuple(sorted(live + tuple(extra)))
            else:
                new_lease = live[:target]
            # fold the head's busy time now: only work finished by the
            # cut happened (the superseded tail never runs)
            for op in seg_done:
                g_local = fl.op_gpu.get(op)
                if g_local is None or g_local >= len(fl.lease):
                    continue
                gpu = fl.lease[g_local]
                gpu_busy[gpu] = gpu_busy.get(gpu, 0.0) + (
                    fl.trace.op_finish[op] - fl.trace.op_start[op]
                )
            fl.repairs_done += sum(
                1 for r in fl.seg_repairs if r.failure.time <= cut
            )
            old_lease = fl.lease
            slot_map = {
                old_lease.index(g): new_lease.index(g)
                for g in old_lease
                if g in new_lease
            }
            profile = zoo_profile(fl.model, len(new_lease))
            t0 = time.perf_counter()
            try:
                rr = resize_schedule(
                    profile,
                    finished,
                    prev_assignment=dict(fl.op_gpu),
                    slot_map=slot_map,
                    algorithm=fl.algorithm,
                    sched_cache=self._sched_cache,
                    **self._alg_kwargs(fl.algorithm),
                )
            except RepairError:  # pragma: no cover - guarded above
                return False
            finally:
                self._sched_s += time.perf_counter() - t0
            if rr.warm_started:
                self._warm_starts += 1
            pool.resize(fl.qid, new_lease)
            fl.lease = new_lease
            fl.finished = finished
            fl.segment_start_ms = now
            fl.epoch += 1
            for m in fl.members:
                records[m.request.id].gpus = new_lease
            records[fl.qid].resizes += 1
            emit(
                "serve-resize",
                t=now,
                request=fl.qid,
                gpus=list(new_lease),
                grow=grow,
                remaining_ops=len(fl.names) - len(finished),
                predicted_ms=rr.predicted_tail_latency,
            )
            self._run_segment(
                now,
                fl,
                rr.subprofile,
                rr.schedule,
                rr.predicted_tail_latency,
                push,
                tag=f"{fl.qid}/e{fl.epoch}",
            )
            return True

        def elastic_pass(now: float) -> str | None:
            """One elastic action; the caller re-dispatches after each.

            Grows fire when free GPUs cannot serve queued work anyway —
            the queue is empty, or it is (non-overloaded) blocked on a
            full-width lease the free set cannot cover; shrinks fire
            only when an overloaded backlog cannot lease even a
            degraded slot.  Each success strictly widens or narrows
            one lease, so the caller's drain loop terminates.
            """
            grow_ok = pool.num_free > 0 and (
                not queue
                or (
                    len(queue) <= cfg.overload_queue
                    and pool.num_free < min(cfg.gpus_per_query, pool.num_alive)
                )
            )
            if grow_ok:
                for qid in sorted(in_flight):
                    fl = in_flight[qid]
                    live = [g for g in fl.lease if g not in pool.dead]
                    target = min(cfg.gpus_per_query, len(live) + pool.num_free)
                    if target > len(live) and try_resize(now, fl, target):
                        return "grow"
            if len(queue) > cfg.overload_queue:
                k = min(cfg.degraded_gpus, pool.num_alive)
                if 1 <= k and pool.num_free < k:
                    order = sorted(
                        in_flight,
                        key=lambda q: (-len(in_flight[q].lease), q),
                    )
                    for qid in order:
                        fl = in_flight[qid]
                        live = [g for g in fl.lease if g not in pool.dead]
                        if len(live) > cfg.degraded_gpus and try_resize(
                            now, fl, cfg.degraded_gpus
                        ):
                            return "shrink"
            return None

        # ------------------------------------------------------------------
        while heap:
            now, _prio, _seq, kind, payload = heapq.heappop(heap)
            if kind == "gpu-fail":
                holder = pool.fail(payload)
                emit("serve-gpu-fail", t=now, gpu=payload, holder=holder)
            elif kind == "gpu-repair":
                was_dead = pool.revive(payload)
                if was_dead:
                    revived += 1
                emit("serve-gpu-repair", t=now, gpu=payload, revived=was_dead)
            elif kind == "arrival":
                entry = payload
                rec = records[entry.request.id]
                if len(queue) >= cfg.queue_capacity:
                    rec.status = "shed-queue"
                    rec.reason = f"queue full ({cfg.queue_capacity})"
                    emit(
                        "serve-shed",
                        t=now,
                        request=entry.request.id,
                        reason="queue-full",
                    )
                else:
                    queue.append(entry)
                    emit(
                        "serve-admit",
                        t=now,
                        request=entry.request.id,
                        tenant=entry.request.tenant,
                        queued=len(queue),
                    )
            elif kind == "requeue":
                # re-admissions bypass the capacity check: the work was
                # already admitted once and should not be double-punished
                # for a fault that was not its fault
                queue.append(payload)
                emit(
                    "serve-admit",
                    t=now,
                    request=payload.request.id,
                    tenant=payload.request.tenant,
                    queued=len(queue),
                    readmitted=True,
                )
            elif kind in ("complete", "abort", "displace"):
                qid, epoch, extra = payload
                fl = in_flight.get(qid)
                if fl is None or fl.epoch != epoch:
                    # superseded by an elastic resize; the fresh outcome
                    # event (or the release itself) already happened
                    if not cfg.elastic:
                        raise ServeError(f"outcome for {qid!r} without a lease")
                    continue
                in_flight.pop(qid)
                lease = fl.lease
                pool.release(qid)
                for m in fl.members:
                    records[m.request.id].released_ms = now
                if cfg.elastic and fl.trace is not None:
                    # deferred accounting: the final segment's busy time
                    # lands when the outcome settles (earlier segments
                    # folded theirs at their resize cuts)
                    fold_busy(lease, fl.trace.gpu_busy)
                if kind == "complete":
                    num_repairs = fl.repairs_done + extra
                    records[qid].repairs += num_repairs
                    for m in fl.members:
                        mrec = records[m.request.id]
                        mrec.status = "completed"
                        mrec.completed_ms = now
                        mrec.latency_ms = now - mrec.arrival_ms
                        mrec.deadline_met = now <= mrec.deadline_ms
                    emit(
                        "serve-complete",
                        t=now,
                        request=qid,
                        latency_ms=records[qid].latency_ms,
                        repairs=num_repairs,
                        deadline_met=records[qid].deadline_met,
                        batch=len(fl.members),
                    )
                elif kind == "abort":
                    emit("serve-abort", t=now, request=qid, reason=extra)
                    for m in fl.members:
                        retry_or_fail(now, m, extra)
                else:  # displace: the whole lease fail-stopped
                    num_repairs = fl.repairs_done + extra
                    records[qid].repairs += num_repairs
                    for m in fl.members:
                        records[m.request.id].displaced += 1
                        displaced += 1
                    emit(
                        "serve-displaced",
                        t=now,
                        request=qid,
                        gpus=list(lease),
                        repairs=num_repairs,
                        batch=len(fl.members),
                    )
                    for m in fl.members:
                        retry_or_fail(now, m, "lease lost to GPU failure")
            else:  # pragma: no cover - defensive
                raise ServeError(f"unknown event kind {kind!r}")
            dispatch(now)
            if cfg.elastic:
                action = elastic_pass(now)
                while action is not None:
                    if action == "grow":
                        elastic_grows += 1
                    else:
                        elastic_shrinks += 1
                    dispatch(now)
                    action = elastic_pass(now)

        for entry in queue:  # pragma: no cover - defensive (heap drained first)
            fail_request(cfg.horizon_ms, entry, "starved at end of run")

        report = ServeReport.from_records(
            list(records.values()),
            retries=retries,
            displaced=displaced,
            degraded_dispatches=degraded_dispatches,
            gpu_busy_ms=gpu_busy,
            horizon_ms=cfg.horizon_ms,
            revived=revived,
            elastic_grows=elastic_grows,
            elastic_shrinks=elastic_shrinks,
            sched_ms=self._sched_s * 1000.0,
            sched_cache_hits=self._sched_cache_hits,
            sched_cache_misses=self._sched_cache_misses,
            warm_starts=self._warm_starts,
        )
        return ServeResult(
            config=cfg,
            report=report,
            records=tuple(records.values()),
        )

    # ------------------------------------------------------------------
    def _execute(
        self,
        now: float,
        fl: _InFlight,
        profile: CostProfile,
        schedule: Schedule,
        predicted: float,
        push: Callable[[float, int, str, Any], None],
        gpu_busy: dict[int, float],
    ) -> None:
        """Run the query's first segment on its lease and push its outcome."""
        self._run_segment(now, fl, profile, schedule, predicted, push, tag=fl.qid)
        # without elastic resizing the outcome can never be superseded,
        # so the busy time folds eagerly (the original accounting order)
        if not self.config.elastic and fl.trace is not None:
            for g_local, busy in fl.trace.gpu_busy.items():
                gpu = fl.lease[g_local]
                gpu_busy[gpu] = gpu_busy.get(gpu, 0.0) + busy

    def _run_segment(
        self,
        now: float,
        fl: _InFlight,
        profile: CostProfile,
        schedule: Schedule,
        predicted: float,
        push: Callable[[float, int, str, Any], None],
        tag: str,
    ) -> None:
        """Execute one segment of ``fl`` and push its (epoch-tagged) outcome.

        The first segment runs the full model graph; post-resize
        segments run the unfinished subgraph re-planned by
        :func:`repro.core.repair.resize_schedule`.  Either way the
        pool's remaining faults are projected onto the current lease
        and the segment executes under cascading repair.
        """
        cfg = self.config
        qplan = self._query_plan(now, fl.lease, tag, fl.leader.attempt)
        engine_cfg = replace(self._base_engine, faults=qplan)
        try:
            trace, repairs = run_with_repair(
                profile,
                schedule,
                config=engine_cfg,
                algorithm=fl.algorithm,
                strict=False,
                warm_start=True,
                sched_cache=self._sched_cache,
                **self._alg_kwargs(fl.algorithm),
            )
        except FaultError as exc:
            # transfer retry budget exhausted mid-run: the lease was held
            # for about the predicted duration before the abort surfaced
            fl.pending = "abort"
            fl.trace = None
            fl.seg_repairs = ()
            push(now + predicted, _PRIO_OUTCOME, "abort", (fl.qid, fl.epoch, str(exc)))
            return
        for r in repairs:
            self._sched_s += r.result.scheduling_time
            if r.warm_started:
                self._warm_starts += 1
        op_gpu = _op_assignment(schedule)
        for r in repairs:
            op_gpu.update(_op_assignment(r.schedule))
        fl.trace = trace
        fl.seg_repairs = repairs
        fl.op_gpu = op_gpu
        if trace.unfinished_ops(profile.graph.names):
            if trace.failure is None:  # pragma: no cover - defensive
                raise ServeError(f"incomplete trace without failure for {fl.qid!r}")
            fl.pending = "displace"
            push(
                now + trace.failure.time,
                _PRIO_OUTCOME,
                "displace",
                (fl.qid, fl.epoch, len(repairs)),
            )
            return
        fl.pending = "complete"
        push(
            now + trace.latency,
            _PRIO_OUTCOME,
            "complete",
            (fl.qid, fl.epoch, len(repairs)),
        )


def serve(
    config: ServeConfig, sched_cache: ScheduleCache | None = None
) -> ServeResult:
    """Run one serving scenario (the one-call entry point)."""
    return ServeSimulator(config, sched_cache=sched_cache).run()
