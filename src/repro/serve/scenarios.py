"""Seeded end-to-end serving scenarios (the CI smoke suite).

Three canonical situations, each a fixed :class:`ServeConfig` so the
resulting :class:`~repro.serve.report.ServeReport` is bit-identical on
every machine — CI replays them and compares the counters exactly
against ``benchmarks/results/BENCH_serving.json``:

``steady-state``
    Two tenants at comfortable load on a healthy pool.  Nothing is
    shed, nothing fails; the baseline the other scenarios degrade from.

``burst-overload``
    A scripted burst lands on top of the baseline load.  The queue
    overflows (admission sheds), the dispatcher switches to degraded
    leases and the cheap algorithm, and latewise-doomed requests are
    shed at dispatch.

``gpu-loss``
    Two pool GPUs fail-stop mid-run while queries are in flight.
    In-lease failures trigger cascading repair; a fully-lost lease
    displaces its query, which is re-admitted and completes — the
    scenario's invariant is that *every admitted query still
    completes* (``failed == 0``), at the price of latency and repairs.

``gpu-loss-recovery``
    A rolling outage takes three of four GPUs down mid-burst, then
    staged ``repair:G@T`` events return them to service.  The full
    lifecycle fires: cascading repair on the first in-lease failure,
    displacement and re-admission when leases are wiped, same-model
    batching while the backlog drains on the lone survivor, an elastic
    shrink under overload and an elastic grow onto the first revived
    GPU.  Invariants: every repaired GPU serves again, ``failed == 0``
    and ``deadline_misses == 0`` — post-repair goodput returns to the
    pre-failure steady state.
"""

from __future__ import annotations

from typing import Callable

from .config import ServeConfig, TenantSpec
from .report import ServeReport
from .simulator import ServeResult, serve

__all__ = ["SCENARIOS", "run_scenario", "scenario_config"]


def _steady_state() -> ServeConfig:
    return ServeConfig(
        tenants=(
            TenantSpec(name="search", model="chain12", rate_qps=25.0, deadline_ms=120.0),
            TenantSpec(
                name="feed", model="wide24", rate_qps=12.0, priority=1, deadline_ms=200.0
            ),
        ),
        num_gpus=4,
        gpus_per_query=2,
        horizon_ms=800.0,
        seed=7,
    )


def _burst_overload() -> ServeConfig:
    burst = tuple(300.0 + 2.0 * i for i in range(24))
    return ServeConfig(
        tenants=(
            TenantSpec(name="search", model="chain12", rate_qps=25.0, deadline_ms=120.0),
            TenantSpec(
                name="feed", model="wide24", rate_qps=12.0, priority=1, deadline_ms=200.0
            ),
            TenantSpec(
                name="batch",
                model="deep40",
                arrivals_ms=burst,
                priority=-1,
                deadline_ms=220.0,
            ),
        ),
        num_gpus=4,
        gpus_per_query=2,
        horizon_ms=800.0,
        seed=7,
        queue_capacity=10,
        overload_queue=4,
        degraded_gpus=1,
        degraded_algorithm="sequential",
    )


def _gpu_loss() -> ServeConfig:
    return ServeConfig(
        tenants=(
            TenantSpec(name="search", model="chain12", rate_qps=20.0, deadline_ms=400.0),
            TenantSpec(
                name="feed", model="wide24", rate_qps=10.0, priority=1, deadline_ms=600.0
            ),
        ),
        num_gpus=4,
        gpus_per_query=2,
        horizon_ms=600.0,
        seed=11,
        # two fail-stops timed to strike one in-flight 2-GPU lease:
        # the first triggers cascading repair onto the lease's other
        # GPU, the second wipes the lease (displacement + re-admission)
        faults=("fail:1@178", "fail:0@184"),
        max_retries=3,
        retry_backoff_ms=4.0,
    )


def _gpu_loss_recovery() -> ServeConfig:
    return ServeConfig(
        tenants=(
            TenantSpec(name="search", model="chain12", rate_qps=15.0, deadline_ms=500.0),
            TenantSpec(
                name="batch",
                model="deep40",
                arrivals_ms=tuple(140.0 + 4.0 * i for i in range(8)),
                priority=-1,
                deadline_ms=900.0,
            ),
        ),
        num_gpus=4,
        gpus_per_query=2,
        horizon_ms=900.0,
        seed=13,
        queue_capacity=16,
        overload_queue=4,
        degraded_gpus=1,
        degraded_algorithm="sequential",
        max_batch=3,
        elastic=True,
        # rolling outage: the first failure strikes a 2-GPU lease
        # (cascading repair), the second wipes it (displacement), the
        # third leaves one survivor; staged repairs then heal the pool
        # while the backlog is still draining, so the elastic grow
        # lands on a revived GPU mid-query
        faults=(
            "fail:3@150",
            "fail:2@160",
            "fail:1@170",
            "repair:3@280",
            "repair:2@320",
            "repair:1@360",
        ),
        max_retries=3,
        retry_backoff_ms=4.0,
    )


#: name -> (one-line description, config builder)
SCENARIOS: dict[str, tuple[str, Callable[[], ServeConfig]]] = {
    "steady-state": ("healthy pool at comfortable load", _steady_state),
    "burst-overload": ("scripted burst: shedding + degradation", _burst_overload),
    "gpu-loss": ("two fail-stops under load: repair + displacement", _gpu_loss),
    "gpu-loss-recovery": (
        "rolling outage healed by staged repairs: batching + elastic leases",
        _gpu_loss_recovery,
    ),
}


def scenario_config(name: str) -> ServeConfig:
    """The fixed config of a named scenario."""
    try:
        _, builder = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return builder()


def run_scenario(name: str) -> ServeResult:
    """Run a named scenario; the report is bit-stable run over run."""
    return serve(scenario_config(name))


def scenario_report(name: str) -> ServeReport:
    """Convenience: just the report of a named scenario."""
    return run_scenario(name).report
