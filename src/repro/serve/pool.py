"""The shared GPU pool: exclusive leases, fail-stop and recovery bookkeeping.

Queries lease GPU subsets exclusively — the engine's contention model
covers streams *within* one GPU, not co-located independent queries —
so the pool is plain set arithmetic: ``free``, ``dead``, and a map of
active leases.  Leases always take the lowest free indices, which keeps
placement (and therefore the whole simulation) deterministic.

A ``gpu -> holder`` reverse map mirrors ``leases`` so ``holder_of`` —
which sits on the ``fail()`` hot path, once per injected failure — is a
dict lookup instead of a scan over every active lease.

``fail`` marks a GPU dead wherever it is; ``revive`` returns a healed
GPU to service (``repair:G@T`` specs); ``resize`` swaps a holder's
lease for a different GPU set (elastic grow/shrink).  The invariants —
``free``, ``dead`` and the leased set pairwise consistent, dead GPUs
never handed out — are property-tested over random operation sequences
in ``tests/serve/test_pool_properties.py``.
"""

from __future__ import annotations

__all__ = ["GpuPool", "PoolError"]


class PoolError(RuntimeError):
    """Raised on impossible pool operations (double lease, bad release)."""


class GpuPool:
    """Tracks which pool GPUs are free, leased, or dead.

    ``fail`` marks a GPU dead wherever it is; a lease holding a dead
    GPU keeps it listed (the query's fault plan handles the failure),
    but ``release`` never returns dead GPUs to the free set.  ``revive``
    undoes a fail-stop: the GPU rejoins the free set immediately when
    idle, or on release when a lease still lists it.
    """

    def __init__(self, num_gpus: int) -> None:
        if num_gpus < 1:
            raise PoolError("pool needs at least one GPU")
        self.num_gpus = num_gpus
        self.free: set[int] = set(range(num_gpus))
        self.dead: set[int] = set()
        self.leases: dict[str, tuple[int, ...]] = {}
        self._holder: dict[int, str] = {}

    # ------------------------------------------------------------------
    @property
    def num_free(self) -> int:
        return len(self.free)

    @property
    def num_alive(self) -> int:
        return self.num_gpus - len(self.dead)

    def holder_of(self, gpu: int) -> str | None:
        """The lease holding ``gpu``, if any."""
        return self._holder.get(gpu)

    # ------------------------------------------------------------------
    def lease(self, holder: str, count: int) -> tuple[int, ...]:
        """Lease the ``count`` lowest free GPUs to ``holder``."""
        if holder in self.leases:
            raise PoolError(f"{holder!r} already holds a lease")
        if count < 1:
            raise PoolError("lease needs at least one GPU")
        if count > len(self.free):
            raise PoolError(
                f"cannot lease {count} GPU(s): only {len(self.free)} free"
            )
        gpus = tuple(sorted(self.free)[:count])
        self.free.difference_update(gpus)
        self.leases[holder] = gpus
        for g in gpus:
            self._holder[g] = holder
        return gpus

    def release(self, holder: str) -> tuple[int, ...]:
        """Return ``holder``'s surviving GPUs to the free set."""
        try:
            gpus = self.leases.pop(holder)
        except KeyError:
            raise PoolError(f"{holder!r} holds no lease") from None
        for g in gpus:
            self._holder.pop(g, None)
        self.free.update(g for g in gpus if g not in self.dead)
        return gpus

    def resize(self, holder: str, gpus: tuple[int, ...]) -> tuple[int, ...]:
        """Swap ``holder``'s lease for ``gpus`` (elastic grow/shrink).

        Every new GPU must come from the free set; GPUs kept across the
        resize stay leased, dropped survivors return to the free set
        (dropped dead GPUs stay dead).  Dead GPUs cannot be acquired.
        """
        try:
            old = self.leases[holder]
        except KeyError:
            raise PoolError(f"{holder!r} holds no lease") from None
        new = tuple(gpus)
        if not new:
            raise PoolError("resize needs at least one GPU")
        if len(set(new)) != len(new):
            raise PoolError(f"duplicate GPUs in resize to {new}")
        kept = set(old)
        for g in new:
            if g in kept:
                continue
            if not (0 <= g < self.num_gpus):
                raise PoolError(f"GPU {g} out of range")
            if g in self.dead:
                raise PoolError(f"cannot acquire dead GPU {g}")
            if g not in self.free:
                raise PoolError(f"GPU {g} is not free")
        wanted = set(new)
        for g in old:
            if g not in wanted:
                self._holder.pop(g, None)
                if g not in self.dead:
                    self.free.add(g)
        for g in new:
            if g not in kept:
                self.free.discard(g)
            self._holder[g] = holder
        self.leases[holder] = new
        return new

    def fail(self, gpu: int) -> str | None:
        """Fail-stop ``gpu``; returns the lease that held it, if any."""
        if not (0 <= gpu < self.num_gpus):
            raise PoolError(f"GPU {gpu} out of range")
        if gpu in self.dead:
            return None
        self.dead.add(gpu)
        self.free.discard(gpu)
        return self._holder.get(gpu)

    def revive(self, gpu: int) -> bool:
        """Return a healed GPU to service; ``True`` if it was dead.

        Idempotent: reviving an alive GPU is a no-op.  A revived GPU
        still listed by a lease (it died under that query, which
        repaired onto the lease's survivors) is *not* freed here — it
        returns to the free set when the lease releases, or rejoins the
        query through an elastic resize.
        """
        if not (0 <= gpu < self.num_gpus):
            raise PoolError(f"GPU {gpu} out of range")
        if gpu not in self.dead:
            return False
        self.dead.discard(gpu)
        if gpu not in self._holder:
            self.free.add(gpu)
        return True
