"""The shared GPU pool: exclusive leases and fail-stop bookkeeping.

Queries lease GPU subsets exclusively — the engine's contention model
covers streams *within* one GPU, not co-located independent queries —
so the pool is plain set arithmetic: ``free``, ``dead``, and a map of
active leases.  Leases always take the lowest free indices, which keeps
placement (and therefore the whole simulation) deterministic.
"""

from __future__ import annotations

__all__ = ["GpuPool", "PoolError"]


class PoolError(RuntimeError):
    """Raised on impossible pool operations (double lease, bad release)."""


class GpuPool:
    """Tracks which pool GPUs are free, leased, or dead.

    ``fail`` marks a GPU dead wherever it is; a lease holding a dead
    GPU keeps it listed (the query's fault plan handles the failure),
    but ``release`` never returns dead GPUs to the free set.
    """

    def __init__(self, num_gpus: int) -> None:
        if num_gpus < 1:
            raise PoolError("pool needs at least one GPU")
        self.num_gpus = num_gpus
        self.free: set[int] = set(range(num_gpus))
        self.dead: set[int] = set()
        self.leases: dict[str, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    @property
    def num_free(self) -> int:
        return len(self.free)

    @property
    def num_alive(self) -> int:
        return self.num_gpus - len(self.dead)

    def holder_of(self, gpu: int) -> str | None:
        """The lease holding ``gpu``, if any."""
        for holder, gpus in self.leases.items():
            if gpu in gpus:
                return holder
        return None

    # ------------------------------------------------------------------
    def lease(self, holder: str, count: int) -> tuple[int, ...]:
        """Lease the ``count`` lowest free GPUs to ``holder``."""
        if holder in self.leases:
            raise PoolError(f"{holder!r} already holds a lease")
        if count < 1:
            raise PoolError("lease needs at least one GPU")
        if count > len(self.free):
            raise PoolError(
                f"cannot lease {count} GPU(s): only {len(self.free)} free"
            )
        gpus = tuple(sorted(self.free)[:count])
        self.free.difference_update(gpus)
        self.leases[holder] = gpus
        return gpus

    def release(self, holder: str) -> tuple[int, ...]:
        """Return ``holder``'s surviving GPUs to the free set."""
        try:
            gpus = self.leases.pop(holder)
        except KeyError:
            raise PoolError(f"{holder!r} holds no lease") from None
        self.free.update(g for g in gpus if g not in self.dead)
        return gpus

    def fail(self, gpu: int) -> str | None:
        """Fail-stop ``gpu``; returns the lease that held it, if any."""
        if not (0 <= gpu < self.num_gpus):
            raise PoolError(f"GPU {gpu} out of range")
        if gpu in self.dead:
            return None
        self.dead.add(gpu)
        self.free.discard(gpu)
        return self.holder_of(gpu)
