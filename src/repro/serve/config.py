"""Declarative serving-scenario configuration (``repro.serve/v1``).

A :class:`ServeConfig` is the *complete* description of a serving run:
the GPU pool, the tenants and their arrival processes, the admission /
degradation / retry policies, and the fault plan the pool faces.  The
simulator is a pure function of this object — same config, bit-identical
:class:`~repro.serve.report.ServeReport` — so configs round-trip through
JSON (``to_dict`` / ``from_dict``) and are committed next to the
benchmark baselines they produced.

The JSON contract is linted by the ``serve`` rule pack
(:mod:`repro.lint.serve_rules`); the constructor enforces the hard
invariants and raises :class:`ServeConfigError` on violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.api import ALGORITHMS

__all__ = ["SERVE_CONFIG_FORMAT", "ServeConfig", "ServeConfigError", "TenantSpec"]

SERVE_CONFIG_FORMAT = "repro.serve/v1"


class ServeConfigError(ValueError):
    """Raised when a serving configuration violates its invariants."""


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: an arrival process over a model of the zoo.

    ``rate_qps > 0`` generates seeded Poisson arrivals over the horizon;
    ``arrivals_ms`` adds explicit (trace-driven) arrival times.  The two
    compose — a tenant can have a baseline Poisson load plus a scripted
    burst.  ``priority`` orders the admission queue (higher first);
    ``deadline_ms`` is the per-request latency SLO measured from
    arrival.
    """

    name: str
    model: str
    rate_qps: float = 0.0
    arrivals_ms: tuple[float, ...] = ()
    priority: int = 0
    deadline_ms: float = 1000.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeConfigError("tenant needs a non-empty name")
        if self.rate_qps < 0:
            raise ServeConfigError(f"tenant {self.name!r}: negative rate_qps")
        if self.rate_qps == 0 and not self.arrivals_ms:
            raise ServeConfigError(
                f"tenant {self.name!r} has no arrivals: set rate_qps or arrivals_ms"
            )
        if any(t < 0 for t in self.arrivals_ms):
            raise ServeConfigError(f"tenant {self.name!r}: negative arrival time")
        if self.deadline_ms <= 0:
            raise ServeConfigError(f"tenant {self.name!r}: deadline must be positive")

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "name": self.name,
            "model": self.model,
            "priority": self.priority,
            "deadline_ms": self.deadline_ms,
        }
        if self.rate_qps:
            doc["rate_qps"] = self.rate_qps
        if self.arrivals_ms:
            doc["arrivals_ms"] = list(self.arrivals_ms)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "TenantSpec":
        return cls(
            name=str(doc["name"]),
            model=str(doc["model"]),
            rate_qps=float(doc.get("rate_qps", 0.0)),
            arrivals_ms=tuple(float(t) for t in doc.get("arrivals_ms", ())),
            priority=int(doc.get("priority", 0)),
            deadline_ms=float(doc.get("deadline_ms", 1000.0)),
        )


@dataclass(frozen=True)
class ServeConfig:
    """Everything a serving run depends on.

    Pool / placement
        ``num_gpus`` GPUs are shared by all queries; each dispatch
        leases ``gpus_per_query`` of them exclusively (the lowest free
        indices) and schedules the query's model on the lease with
        ``algorithm``.

    Admission and shedding
        The queue holds at most ``queue_capacity`` waiting requests;
        arrivals beyond that are shed.  With ``shed_late`` (default), a
        request whose *predicted* completion would already miss its
        deadline is shed at dispatch time instead of wasting GPUs.

    Graceful degradation
        When more than ``overload_queue`` requests are waiting, dispatch
        switches to ``degraded_gpus`` GPUs per query and the (cheaper)
        ``degraded_algorithm`` until the backlog drains.  The overload
        verdict is *latched per dispatch round*: a burst that starts
        degraded drains degraded, instead of flipping back to full
        leases halfway through the round.

    Request batching
        With ``max_batch > 1``, dispatch merges up to ``max_batch``
        queued same-model queries into one batch: one lease, one
        schedule (the existing ``(model, lease, algorithm)`` plan), one
        execution — every member keeps its own deadline accounting.

    Elastic leases
        With ``elastic``, the simulator resizes *in-flight* leases
        through the warm-started repair seam instead of relying only on
        the binary degrade knob: when the queue drains (or a GPU
        returns from repair) leaving free capacity, narrow leases grow
        back toward ``gpus_per_query``; when an overloaded backlog
        cannot dispatch, the widest lease shrinks to ``degraded_gpus``
        to free GPUs for queued work.

    Faults, retry, repair, recovery
        ``faults`` uses the compact spec strings of
        :func:`repro.substrate.faults.parse_fault` and applies to the
        *pool* clock: a ``fail:G@T`` kills pool GPU ``G`` at pool time
        ``T`` for everyone, and a ``repair:G@T`` returns it to service
        at ``T`` (idempotent; ordered after same-instant failures and
        before outcomes/arrivals).  A query in flight on a failed GPU first
        tries cascading repair on the rest of its lease
        (:func:`repro.core.repair.run_with_repair`); if the whole lease
        dies, the query is *displaced* and re-admitted after a backoff.
        Aborted or displaced queries retry up to ``max_retries`` times
        with exponential backoff ``retry_backoff_ms * 2**k`` (seeded
        full jitter when ``retry_jitter``).
    """

    tenants: tuple[TenantSpec, ...]
    num_gpus: int = 4
    gpus_per_query: int = 2
    horizon_ms: float = 1000.0
    seed: int = 0
    algorithm: str = "hios-lp"
    window: int = 3
    queue_capacity: int = 16
    overload_queue: int = 8
    degraded_gpus: int = 1
    degraded_algorithm: str = "sequential"
    shed_late: bool = True
    max_batch: int = 1
    elastic: bool = False
    max_retries: int = 2
    retry_backoff_ms: float = 5.0
    retry_jitter: bool = True
    faults: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ServeConfigError("serving needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ServeConfigError(f"duplicate tenant names in {names}")
        if self.num_gpus < 1:
            raise ServeConfigError("need at least one GPU in the pool")
        if not (1 <= self.gpus_per_query <= self.num_gpus):
            raise ServeConfigError(
                f"gpus_per_query={self.gpus_per_query} not in [1, {self.num_gpus}]"
            )
        if not (1 <= self.degraded_gpus <= self.gpus_per_query):
            raise ServeConfigError(
                f"degraded_gpus={self.degraded_gpus} not in [1, {self.gpus_per_query}]"
            )
        if self.horizon_ms <= 0:
            raise ServeConfigError("horizon must be positive")
        for alg in (self.algorithm, self.degraded_algorithm):
            if alg not in ALGORITHMS:
                raise ServeConfigError(
                    f"unknown algorithm {alg!r}; choose from {sorted(ALGORITHMS)}"
                )
        if self.window < 1:
            raise ServeConfigError("window must be >= 1")
        if self.queue_capacity < 1:
            raise ServeConfigError("queue_capacity must be >= 1")
        if self.max_batch < 1:
            raise ServeConfigError("max_batch must be >= 1")
        if self.overload_queue < 0:
            raise ServeConfigError("overload_queue must be >= 0")
        if self.max_retries < 0:
            raise ServeConfigError("max_retries must be >= 0")
        if self.retry_backoff_ms < 0:
            raise ServeConfigError("negative retry backoff")
        # parse eagerly so malformed specs fail at config time, not mid-run
        from ..substrate.faults import FaultError, FaultPlan

        try:
            FaultPlan.from_strings(self.faults, seed=self.seed).validate_for(self.num_gpus)
        except FaultError as exc:
            raise ServeConfigError(f"bad fault spec: {exc}") from exc

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready document (``repro.serve/v1``)."""
        return {
            "format": SERVE_CONFIG_FORMAT,
            "num_gpus": self.num_gpus,
            "gpus_per_query": self.gpus_per_query,
            "horizon_ms": self.horizon_ms,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "window": self.window,
            "queue_capacity": self.queue_capacity,
            "overload_queue": self.overload_queue,
            "degraded_gpus": self.degraded_gpus,
            "degraded_algorithm": self.degraded_algorithm,
            "shed_late": self.shed_late,
            "max_batch": self.max_batch,
            "elastic": self.elastic,
            "max_retries": self.max_retries,
            "retry_backoff_ms": self.retry_backoff_ms,
            "retry_jitter": self.retry_jitter,
            "faults": list(self.faults),
            "tenants": [t.to_dict() for t in self.tenants],
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ServeConfig":
        fmt = doc.get("format")
        if fmt != SERVE_CONFIG_FORMAT:
            raise ServeConfigError(
                f"not a serving config: format={fmt!r} (expected {SERVE_CONFIG_FORMAT!r})"
            )
        tenants = tuple(TenantSpec.from_dict(t) for t in doc.get("tenants", ()))
        kwargs: dict[str, Any] = {}
        for name in (
            "num_gpus",
            "gpus_per_query",
            "horizon_ms",
            "seed",
            "algorithm",
            "window",
            "queue_capacity",
            "overload_queue",
            "degraded_gpus",
            "degraded_algorithm",
            "shed_late",
            "max_batch",
            "elastic",
            "max_retries",
            "retry_backoff_ms",
            "retry_jitter",
        ):
            if name in doc:
                kwargs[name] = doc[name]
        return cls(
            tenants=tenants,
            faults=tuple(str(f) for f in doc.get("faults", ())),
            **kwargs,
        )
