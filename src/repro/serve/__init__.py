"""``repro.serve`` — fault-tolerant online multi-tenant serving simulator.

Every other experiment in this repository schedules *one* inference in
isolation.  This package simulates the production situation the
ROADMAP's north star describes: a continuous stream of queries from
multiple tenants sharing one GPU pool, each query running its own HIOS
schedule on a dynamically leased GPU subset, while the machine
misbehaves underneath.

The moving parts:

* :mod:`~repro.serve.config` — :class:`ServeConfig` /
  :class:`TenantSpec`, the declarative, seeded description of a serving
  scenario (``repro.serve/v1`` JSON contract, linted by the ``V0xx``
  rule pack);
* :mod:`~repro.serve.arrivals` — seeded Poisson and trace-driven
  request arrival processes over a mixed model zoo;
* :mod:`~repro.serve.zoo` — the serving model zoo (small layered DAGs
  plus the paper's Fig. 4 worked example), with memoized per-lease-size
  cost profiles;
* :mod:`~repro.serve.pool` — the shared GPU pool: leases, releases and
  fail-stop bookkeeping;
* :mod:`~repro.serve.simulator` — the discrete-event serving loop:
  admission control with a bounded queue, deadline-aware shedding,
  graceful degradation under overload (fewer GPUs, cheaper scheduler),
  per-query retry with seeded backoff, and mid-flight GPU loss handled
  by cascading repair (:func:`repro.core.repair.run_with_repair`) with
  displaced queries re-admitted;
* :mod:`~repro.serve.report` — :class:`ServeReport` SLO metrics
  (p50/p99 latency, goodput, deadline-miss rate, shed/retry/repair
  counters; ``repro.servereport/v1``) and the serve-timeline Chrome
  trace export;
* :mod:`~repro.serve.scenarios` — the seeded end-to-end scenarios
  (steady-state, burst-overload, gpu-loss) gated bit-for-bit in CI
  against ``benchmarks/results/BENCH_serving.json``.

Every run is a pure function of its :class:`ServeConfig`: the same
config produces a bit-identical :class:`ServeReport` on every machine.
"""

from .arrivals import Request, build_arrivals, poisson_arrivals, trace_arrivals
from .config import ServeConfig, ServeConfigError, TenantSpec
from .pool import GpuPool, PoolError
from .report import RequestRecord, ServeReport, TenantReport, serve_timeline
from .scenarios import SCENARIOS, run_scenario, scenario_config
from .simulator import ServeError, ServeResult, ServeSimulator, serve
from .zoo import MODEL_ZOO, zoo_graph, zoo_profile

__all__ = [
    "GpuPool",
    "MODEL_ZOO",
    "PoolError",
    "Request",
    "RequestRecord",
    "SCENARIOS",
    "ServeConfig",
    "ServeConfigError",
    "ServeError",
    "ServeReport",
    "ServeResult",
    "ServeSimulator",
    "TenantReport",
    "TenantSpec",
    "build_arrivals",
    "poisson_arrivals",
    "run_scenario",
    "scenario_config",
    "serve",
    "serve_timeline",
    "trace_arrivals",
    "zoo_graph",
    "zoo_profile",
]
