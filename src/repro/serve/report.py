"""SLO metrics and artifacts of a serving run (``repro.servereport/v1``).

Every SLO quantity here lives on the *simulated* clock — no wall time,
no host-dependent state — so a report is bit-identical across machines
and Python versions for a given :class:`~repro.serve.config.ServeConfig`.
That is what lets CI gate the scenario suite against committed JSON
baselines with exact equality on the counters.  The one exception is
``sched_ms``, the host wall-clock seconds spent inside the schedulers
(plus its companion cache counters ``sched_cache_hits`` /
``sched_cache_misses`` / ``warm_starts``, which *are* deterministic):
it measures this machine's scheduling cost and must never be compared
bit-exactly.

:func:`serve_timeline` re-casts the run as a pseudo
:class:`~repro.substrate.engine.ExecutionTrace` — one span per
(query, leased GPU) — so the existing Chrome-trace exporter
(:func:`repro.obs.chrome_trace_document`) renders the pool timeline
with no serving-specific export code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..substrate.engine import ExecutionTrace
    from .config import ServeConfig

__all__ = [
    "SERVE_REPORT_FORMAT",
    "RequestRecord",
    "ServeReport",
    "TenantReport",
    "percentile",
    "serve_timeline",
]

SERVE_REPORT_FORMAT = "repro.servereport/v1"

#: Terminal request statuses and what they mean.
STATUSES = (
    "completed",  # ran to completion (possibly after repair/retry)
    "shed-queue",  # rejected at admission: queue full
    "shed-deadline",  # dropped at dispatch: predicted to miss its deadline
    "failed",  # retries exhausted, no GPUs left, or starved at horizon
)


def percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile (no interpolation — keeps bit-stability).

    Returns 0.0 for an empty sample so reports never carry NaN.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without floats
    return ordered[int(rank) - 1]


@dataclass
class RequestRecord:
    """Lifecycle of one request through the serving loop.

    ``dispatched_ms`` / ``gpus`` / ``algorithm`` reflect the *last*
    dispatch (retries overwrite them); ``attempts`` counts dispatches,
    ``repairs`` sums cascading-repair rounds across attempts (recorded
    on the batch leader when the dispatch was a merged batch).
    ``batch`` is the dispatch's batch size, ``batched_with`` the batch
    leader's request id on follower records (empty on leaders and
    unbatched dispatches), and ``resizes`` counts elastic lease
    grow/shrink rounds (leader record only).
    """

    id: str
    tenant: str
    model: str
    priority: int
    arrival_ms: float
    deadline_ms: float
    status: str = "queued"
    reason: str = ""
    dispatched_ms: float | None = None
    released_ms: float | None = None
    completed_ms: float | None = None
    latency_ms: float | None = None
    gpus: tuple[int, ...] = ()
    algorithm: str = ""
    degraded: bool = False
    attempts: int = 0
    repairs: int = 0
    displaced: int = 0
    batch: int = 1
    batched_with: str = ""
    resizes: int = 0
    deadline_met: bool | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "model": self.model,
            "priority": self.priority,
            "arrival_ms": self.arrival_ms,
            "deadline_ms": self.deadline_ms,
            "status": self.status,
            "reason": self.reason,
            "dispatched_ms": self.dispatched_ms,
            "released_ms": self.released_ms,
            "completed_ms": self.completed_ms,
            "latency_ms": self.latency_ms,
            "gpus": list(self.gpus),
            "algorithm": self.algorithm,
            "degraded": self.degraded,
            "attempts": self.attempts,
            "repairs": self.repairs,
            "displaced": self.displaced,
            "batch": self.batch,
            "batched_with": self.batched_with,
            "resizes": self.resizes,
            "deadline_met": self.deadline_met,
        }


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant slice of the run."""

    tenant: str
    arrivals: int
    completed: int
    shed: int
    failed: int
    deadline_misses: int
    p50_ms: float
    p99_ms: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "arrivals": self.arrivals,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "deadline_misses": self.deadline_misses,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


@dataclass(frozen=True)
class ServeReport:
    """The run's SLO scorecard.

    ``admitted`` counts requests that passed admission control (so
    ``arrivals == admitted + shed_queue_full``); of the admitted,
    ``completed + shed_deadline + failed == admitted``.  ``goodput_qps``
    counts only completions that met their deadline, over the makespan.

    The lifecycle counters added by the recovery/batching/elastic work:
    ``revived`` counts ``repair:G@T`` events that returned a dead GPU
    to service, ``batched`` the requests that rode along as followers
    of a merged same-model batch (``sum(batch - 1)`` over dispatches),
    and ``elastic_grows`` / ``elastic_shrinks`` the in-flight lease
    resizes (together they equal ``sum(rec.resizes)`` — the V010 lint
    rule holds reports to these identities).
    """

    arrivals: int
    admitted: int
    completed: int
    shed_queue_full: int
    shed_deadline: int
    failed: int
    deadline_misses: int
    retries: int
    displaced: int
    repairs: int
    degraded_dispatches: int
    revived: int
    batched: int
    elastic_grows: int
    elastic_shrinks: int
    p50_ms: float
    p99_ms: float
    goodput_qps: float
    deadline_miss_rate: float
    makespan_ms: float
    gpu_busy_ms: dict[int, float] = field(default_factory=dict)
    tenants: tuple[TenantReport, ...] = ()
    #: wall-clock seconds spent inside the scheduler (host time, NOT the
    #: simulated clock — excluded from bit-exact baseline comparisons)
    sched_ms: float = 0.0
    sched_cache_hits: int = 0
    sched_cache_misses: int = 0
    warm_starts: int = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: list[RequestRecord],
        retries: int,
        displaced: int,
        degraded_dispatches: int,
        gpu_busy_ms: dict[int, float],
        horizon_ms: float,
        revived: int = 0,
        elastic_grows: int = 0,
        elastic_shrinks: int = 0,
        sched_ms: float = 0.0,
        sched_cache_hits: int = 0,
        sched_cache_misses: int = 0,
        warm_starts: int = 0,
    ) -> "ServeReport":
        completed = [r for r in records if r.status == "completed"]
        latencies = [r.latency_ms for r in completed if r.latency_ms is not None]
        misses = sum(1 for r in completed if r.deadline_met is False)
        on_time = len(completed) - misses
        shed_queue = sum(1 for r in records if r.status == "shed-queue")
        shed_deadline = sum(1 for r in records if r.status == "shed-deadline")
        failed = sum(1 for r in records if r.status == "failed")
        ends = [r.completed_ms for r in completed if r.completed_ms is not None]
        makespan = max([horizon_ms] + ends)

        tenants: list[TenantReport] = []
        for name in sorted({r.tenant for r in records}):
            rows = [r for r in records if r.tenant == name]
            done = [r for r in rows if r.status == "completed"]
            lat = [r.latency_ms for r in done if r.latency_ms is not None]
            tenants.append(
                TenantReport(
                    tenant=name,
                    arrivals=len(rows),
                    completed=len(done),
                    shed=sum(1 for r in rows if r.status.startswith("shed")),
                    failed=sum(1 for r in rows if r.status == "failed"),
                    deadline_misses=sum(1 for r in done if r.deadline_met is False),
                    p50_ms=percentile(lat, 50),
                    p99_ms=percentile(lat, 99),
                )
            )
        return cls(
            arrivals=len(records),
            admitted=len(records) - shed_queue,
            completed=len(completed),
            shed_queue_full=shed_queue,
            shed_deadline=shed_deadline,
            failed=failed,
            deadline_misses=misses,
            retries=retries,
            displaced=displaced,
            repairs=sum(r.repairs for r in records),
            degraded_dispatches=degraded_dispatches,
            revived=revived,
            batched=sum(1 for r in records if r.batched_with),
            elastic_grows=elastic_grows,
            elastic_shrinks=elastic_shrinks,
            p50_ms=percentile(latencies, 50),
            p99_ms=percentile(latencies, 99),
            goodput_qps=on_time / (makespan / 1000.0) if makespan > 0 else 0.0,
            deadline_miss_rate=misses / len(completed) if completed else 0.0,
            makespan_ms=makespan,
            gpu_busy_ms=gpu_busy_ms,
            tenants=tuple(tenants),
            sched_ms=sched_ms,
            sched_cache_hits=sched_cache_hits,
            sched_cache_misses=sched_cache_misses,
            warm_starts=warm_starts,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready document (``repro.servereport/v1``)."""
        return {
            "format": SERVE_REPORT_FORMAT,
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
            "failed": self.failed,
            "deadline_misses": self.deadline_misses,
            "retries": self.retries,
            "displaced": self.displaced,
            "repairs": self.repairs,
            "degraded_dispatches": self.degraded_dispatches,
            "revived": self.revived,
            "batched": self.batched,
            "elastic_grows": self.elastic_grows,
            "elastic_shrinks": self.elastic_shrinks,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "goodput_qps": self.goodput_qps,
            "deadline_miss_rate": self.deadline_miss_rate,
            "makespan_ms": self.makespan_ms,
            "gpu_busy_ms": {str(g): b for g, b in sorted(self.gpu_busy_ms.items())},
            "tenants": {t.tenant: t.to_dict() for t in self.tenants},
            "sched_ms": self.sched_ms,
            "sched_cache_hits": self.sched_cache_hits,
            "sched_cache_misses": self.sched_cache_misses,
            "warm_starts": self.warm_starts,
        }

    def to_text(self) -> str:
        lines = [
            f"arrivals {self.arrivals}  admitted {self.admitted}  "
            f"completed {self.completed}  failed {self.failed}",
            f"shed: queue-full {self.shed_queue_full}  "
            f"deadline {self.shed_deadline}",
            f"retries {self.retries}  displaced {self.displaced}  "
            f"repairs {self.repairs}  degraded dispatches {self.degraded_dispatches}",
            f"revived {self.revived}  batched {self.batched}  "
            f"elastic grow/shrink {self.elastic_grows}/{self.elastic_shrinks}",
            f"latency p50 {self.p50_ms:.3f} ms  p99 {self.p99_ms:.3f} ms",
            f"goodput {self.goodput_qps:.2f} qps  "
            f"deadline-miss rate {self.deadline_miss_rate:.1%}  "
            f"makespan {self.makespan_ms:.1f} ms",
            f"scheduling {self.sched_ms:.1f} ms wall  "
            f"cache {self.sched_cache_hits} hit(s) / "
            f"{self.sched_cache_misses} miss(es)  "
            f"warm starts {self.warm_starts}",
        ]
        for t in self.tenants:
            lines.append(
                f"  tenant {t.tenant}: {t.completed}/{t.arrivals} completed, "
                f"{t.shed} shed, {t.failed} failed, "
                f"p50 {t.p50_ms:.3f} ms, p99 {t.p99_ms:.3f} ms, "
                f"{t.deadline_misses} deadline miss(es)"
            )
        return "\n".join(lines)


def serve_timeline(
    records: list[RequestRecord],
) -> "tuple[ExecutionTrace, dict[str, int]]":
    """The pool timeline as a pseudo execution trace for Chrome export.

    Each dispatched request becomes one span per leased GPU — named
    ``{id}`` on its first lease GPU and ``{id}@gN`` on the others —
    running from dispatch to release.  Batched followers hold no lease
    of their own (they ride the leader's), so only the leader's span
    represents the shared occupancy — one span per *lease*, which is
    what keeps the timeline linearizable under the exclusive-lease
    happens-before check.  Feed the pair straight into
    :func:`repro.obs.chrome_trace_document`.
    """
    from ..substrate.engine import ExecutionTrace  # local import avoids a cycle

    op_launch: dict[str, float] = {}
    op_start: dict[str, float] = {}
    op_finish: dict[str, float] = {}
    op_gpu: dict[str, int] = {}
    gpu_busy: dict[int, float] = {}
    latency = 0.0
    for rec in records:
        if rec.dispatched_ms is None or rec.released_ms is None:
            continue
        if rec.batched_with:
            continue  # the leader's span covers the shared lease
        for i, gpu in enumerate(rec.gpus):
            name = rec.id if i == 0 else f"{rec.id}@g{gpu}"
            op_launch[name] = rec.arrival_ms if i == 0 else rec.dispatched_ms
            op_start[name] = rec.dispatched_ms
            op_finish[name] = rec.released_ms
            op_gpu[name] = gpu
            gpu_busy[gpu] = gpu_busy.get(gpu, 0.0) + (
                rec.released_ms - rec.dispatched_ms
            )
        latency = max(latency, rec.released_ms)
    trace = ExecutionTrace(
        latency=latency,
        op_launch=op_launch,
        op_start=op_start,
        op_finish=op_finish,
        transfers=[],
        gpu_busy=gpu_busy,
    )
    return trace, op_gpu
