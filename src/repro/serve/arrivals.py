"""Seeded request-arrival processes for the serving simulator.

Two generators compose per tenant: a Poisson process (``rate_qps``)
whose inter-arrival gaps are exponential draws from a per-tenant
``random.Random`` seeded by ``f"{seed}:arrivals:{tenant}"`` — so adding
or removing one tenant never perturbs another tenant's stream — and
explicit trace arrivals (``arrivals_ms``) for scripted bursts.  The
merged stream is sorted by ``(arrival_ms, id)`` and request ids are
assigned per tenant in arrival order, making the whole workload a pure
function of the :class:`~repro.serve.config.ServeConfig`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .config import ServeConfig, TenantSpec

__all__ = ["Request", "build_arrivals", "poisson_arrivals", "trace_arrivals"]


@dataclass(frozen=True)
class Request:
    """One inference query: a tenant's model invoked at ``arrival_ms``.

    ``deadline_ms`` is absolute (arrival + the tenant's SLO); ``id`` is
    unique across the run (``{tenant}-q{NNNN}``).
    """

    id: str
    tenant: str
    model: str
    arrival_ms: float
    deadline_ms: float
    priority: int = 0


def poisson_arrivals(
    tenant: TenantSpec, horizon_ms: float, seed: int
) -> list[float]:
    """Arrival times of the tenant's Poisson stream within the horizon."""
    if tenant.rate_qps <= 0:
        return []
    rng = random.Random(f"{seed}:arrivals:{tenant.name}")
    gap_ms = 1000.0 / tenant.rate_qps
    times: list[float] = []
    t = rng.expovariate(1.0) * gap_ms
    while t < horizon_ms:
        times.append(t)
        t += rng.expovariate(1.0) * gap_ms
    return times


def trace_arrivals(tenant: TenantSpec, horizon_ms: float) -> list[float]:
    """The tenant's explicit arrivals that fall within the horizon."""
    return [t for t in tenant.arrivals_ms if t < horizon_ms]


def build_arrivals(config: ServeConfig) -> list[Request]:
    """The full request stream of a serving run, sorted by arrival.

    Ties are broken by request id, so the stream — and with it the whole
    simulation — is deterministic.
    """
    requests: list[Request] = []
    for tenant in config.tenants:
        times = poisson_arrivals(tenant, config.horizon_ms, config.seed)
        times.extend(trace_arrivals(tenant, config.horizon_ms))
        times.sort()
        for i, t in enumerate(times):
            requests.append(
                Request(
                    id=f"{tenant.name}-q{i:04d}",
                    tenant=tenant.name,
                    model=tenant.model,
                    arrival_ms=t,
                    deadline_ms=t + tenant.deadline_ms,
                    priority=tenant.priority,
                )
            )
    requests.sort(key=lambda r: (r.arrival_ms, r.id))
    return requests
