"""The serving model zoo: named graphs and memoized per-lease profiles.

Serving mixes models of different shapes on one pool, so the zoo maps
stable names to deterministic graph builders: three synthetic layered
DAGs in the Section V style (small/medium chunky) plus the paper's
Fig. 4 worked example.  Graphs and their :class:`CostProfile` per lease
size are memoized — the simulator asks for ``(model, k)`` thousands of
times per run and scheduling dominates the cost, so the schedule cache
in the simulator sits on top of this one.

``register_zoo_model`` is the extension point for experiments that want
profiled real models (see :mod:`repro.experiments.realmodels`) in the
zoo; the built-ins stay synthetic so the scenario suite runs in CI
seconds.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from ..core.graph import OpGraph
from ..costmodel.concurrency import SaturationConcurrencyModel
from ..costmodel.profile import CostProfile
from ..models.randomdag import random_layered_dag
from ..models.worked_examples import fig4_graph

__all__ = ["MODEL_ZOO", "register_zoo_model", "zoo_graph", "zoo_profile"]


def _tiny() -> OpGraph:
    return fig4_graph()


def _chain12() -> OpGraph:
    # 12 ops in 8 layers: mostly sequential, little inter-op parallelism
    return random_layered_dag(seed=101, num_ops=12, num_layers=8)


def _wide24() -> OpGraph:
    # 24 ops in 6 layers: wide, benefits from multi-GPU placement
    return random_layered_dag(seed=202, num_ops=24, num_layers=6)


def _deep40() -> OpGraph:
    # 40 ops in 12 layers: the heavy tenant workload
    return random_layered_dag(seed=303, num_ops=40, num_layers=12)


MODEL_ZOO: dict[str, Callable[[], OpGraph]] = {
    "tiny": _tiny,
    "chain12": _chain12,
    "wide24": _wide24,
    "deep40": _deep40,
}


def register_zoo_model(name: str, builder: Callable[[], OpGraph]) -> None:
    """Register (or replace) a named model; builders must be
    deterministic for serving runs to stay reproducible."""
    MODEL_ZOO[name] = builder
    zoo_graph.cache_clear()
    zoo_profile.cache_clear()


@lru_cache(maxsize=None)
def zoo_graph(name: str) -> OpGraph:
    """The zoo model's graph (memoized; builders are deterministic)."""
    try:
        builder = MODEL_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown zoo model {name!r}; choose from {sorted(MODEL_ZOO)}"
        ) from None
    return builder()


@lru_cache(maxsize=None)
def zoo_profile(name: str, num_gpus: int) -> CostProfile:
    """Cost profile of a zoo model on a lease of ``num_gpus`` GPUs."""
    return CostProfile(
        graph=zoo_graph(name),
        concurrency=SaturationConcurrencyModel(0.06),
        num_gpus=num_gpus,
    )
