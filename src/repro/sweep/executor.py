"""The sweep executor: dedup → cache → fan out → aggregate in order.

:func:`run_units` evaluates a list of :class:`~repro.sweep.units.WorkUnit`
values and returns their payloads *in the input order*, so callers
aggregate identically no matter how the work was dispatched:

1. **Dedup.**  Units with identical cache keys are collapsed before
   dispatch; the first occurrence is the representative, later ones
   share its payload.  (This subsumes the old single-GPU-baseline
   reuse: single-GPU algorithms canonicalize away multi-GPU-only spec
   fields, so their keys coincide across e.g. a GPU-count sweep.)
2. **Cache.**  Each representative is looked up in the
   content-addressed :class:`~repro.sweep.cache.ResultCache` (when one
   is given); hits skip execution entirely, so re-running a figure is
   a warm no-op and interrupted sweeps resume.
3. **Execute.**  Misses run through
   :func:`~repro.sweep.units.execute_unit` — inline when ``jobs == 1``
   (bit-identical to the historical serial loops), else fanned out
   over a ``ProcessPoolExecutor``.  Units are pure functions of their
   spec, so dispatch order cannot affect any result.
4. **Persist.**  Fresh payloads are written back to the cache from the
   parent process (atomic rename), never from workers.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Sequence

from .cache import ResultCache
from .progress import SweepProgress
from .units import WorkUnit, execute_unit

__all__ = ["SweepStats", "resolve_jobs", "run_units"]


@dataclass
class SweepStats:
    """Per-run accounting, surfaced in ``SeriesResult.extras['sweep']``."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduped: int = 0
    jobs: int = 1
    wall_s: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
        }


def resolve_jobs(jobs: int | None) -> int:
    """``None``/``0`` → ``os.cpu_count()``; else the value itself."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = one per CPU)")
    return jobs


def run_units(
    units: Sequence[WorkUnit],
    *,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    progress: SweepProgress | None = None,
) -> tuple[list[dict[str, float]], SweepStats]:
    """Evaluate ``units``; returns ``(payloads_in_input_order, stats)``."""
    jobs = resolve_jobs(jobs)
    t0 = time.perf_counter()
    stats = SweepStats(total=len(units), jobs=jobs)
    if progress is None:
        progress = SweepProgress("sweep", len(units), enabled=False)

    keys = [unit.key() for unit in units]
    payloads: list[dict[str, float] | None] = [None] * len(units)
    first_index: dict[str, int] = {}
    duplicates: dict[int, list[int]] = {}
    for i, key in enumerate(keys):
        rep = first_index.setdefault(key, i)
        if rep != i:
            duplicates.setdefault(rep, []).append(i)
            stats.deduped += 1

    def resolve(rep: int, payload: dict[str, float], *, cached: bool) -> None:
        payloads[rep] = payload
        progress.update(cached=cached)
        for dup in duplicates.get(rep, ()):
            payloads[dup] = payload
            progress.update(deduped=True)

    # cache pass over representatives, in input order
    to_run: list[int] = []
    for rep in sorted(first_index.values()):
        hit = cache.get(keys[rep]) if cache is not None else None
        if hit is not None:
            stats.cache_hits += 1
            resolve(rep, hit, cached=True)
        else:
            to_run.append(rep)

    def persist(rep: int, payload: dict[str, float], meta: dict[str, float]) -> None:
        if cache is not None:
            unit = units[rep]
            cache.put(
                keys[rep],
                payload,
                kind=unit.kind,
                algorithm=unit.algorithm,
                meta=meta,
            )

    if jobs == 1 or len(to_run) <= 1:
        for rep in to_run:
            payload, meta = execute_unit(units[rep])
            stats.executed += 1
            persist(rep, payload, meta)
            resolve(rep, payload, cached=False)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(to_run))) as pool:
            futures = {pool.submit(execute_unit, units[rep]): rep for rep in to_run}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    rep = futures[future]
                    payload, meta = future.result()  # re-raises worker errors
                    stats.executed += 1
                    persist(rep, payload, meta)
                    resolve(rep, payload, cached=False)

    assert all(p is not None for p in payloads)
    stats.wall_s = time.perf_counter() - t0
    return [p for p in payloads if p is not None], stats
