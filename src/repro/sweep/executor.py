"""The sweep executor: dedup → cache → fan out → aggregate in order.

:func:`run_units` evaluates a list of :class:`~repro.sweep.units.WorkUnit`
values and returns their payloads *in the input order*, so callers
aggregate identically no matter how the work was dispatched:

1. **Dedup.**  Units with identical cache keys are collapsed before
   dispatch; the first occurrence is the representative, later ones
   share its payload.  (This subsumes the old single-GPU-baseline
   reuse: single-GPU algorithms canonicalize away multi-GPU-only spec
   fields, so their keys coincide across e.g. a GPU-count sweep.)
2. **Cache.**  Each representative is looked up in the
   content-addressed :class:`~repro.sweep.cache.ResultCache` (when one
   is given); hits skip execution entirely, so re-running a figure is
   a warm no-op and interrupted sweeps resume.
3. **Execute.**  Misses run through
   :func:`~repro.sweep.units.execute_unit` — inline when ``jobs == 1``
   (bit-identical to the historical serial loops) — or, in parallel,
   through :func:`~repro.sweep.units.execute_batch`: units are grouped
   by spec, packed into batches of compact spec tuples, and fed to
   persistent pool workers under bounded in-flight submission, so a
   10k-unit sweep holds ``jobs + 2`` outstanding futures instead of
   10k.  Workers memoize built workloads per spec (see
   ``units.execute_batch``).  Worker processes are capped at the CPU
   count — the units are CPU-bound, so oversubscribing a core only
   buys context-switch overhead — and when that cap leaves a single
   worker the batches run inline in the parent, pool-free.  Units are
   pure functions of their spec, so neither dispatch order nor
   batching can affect any result: payloads at ``-jN`` are
   byte-identical to ``-j1``.
4. **Persist.**  Fresh payloads are written back to the cache from the
   parent process (atomic rename), never from workers.

Batch size is auto-tuned from the unit kind (large batches for cheap
``latency`` units, small ones for engine-measured kinds so the pool
stays load-balanced) and can be pinned via ``run_units(...,
batch_units=N)`` / ``repro run --batch-units N`` /
``REPRO_BATCH_UNITS``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from .cache import ResultCache
from .progress import SweepProgress
from .units import (
    BatchItem,
    RandomDagSpec,
    RealModelSpec,
    WorkUnit,
    clear_workload_memo,
    execute_batch,
    execute_unit,
)

__all__ = ["SweepError", "SweepStats", "resolve_jobs", "run_units"]

#: Auto-tuned batch-size caps per unit kind: latency units are cheap
#: (milliseconds each) and batch wide; engine-measured and wall-time
#: kinds are orders of magnitude heavier and batch narrow so the pool
#: keeps load-balancing.
_BATCH_CAP_CHEAP = 32
_BATCH_CAP_HEAVY = 4


class SweepError(RuntimeError):
    """The executor failed to produce a payload for every unit."""


@dataclass
class SweepStats:
    """Per-run accounting, surfaced in ``SeriesResult.extras['sweep']``."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduped: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    batches: int = 0
    worker_workload_reuses: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "batches": self.batches,
            "worker_workload_reuses": self.worker_workload_reuses,
        }


def resolve_jobs(jobs: int | None) -> int:
    """``None``/``0`` → ``os.cpu_count()``; else the value itself."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = one per CPU)")
    return jobs


def _auto_batch_units(units: Sequence[WorkUnit], to_run: Sequence[int], jobs: int) -> int:
    """Default batch size: ≥ 4 batches per worker for load balance,
    capped by how heavy the units are."""
    heavy = any(units[rep].kind != "latency" for rep in to_run)
    cap = _BATCH_CAP_HEAVY if heavy else _BATCH_CAP_CHEAP
    return max(1, min(cap, -(-len(to_run) // (jobs * 4))))


def _plan_batches(
    units: Sequence[WorkUnit], to_run: Sequence[int], batch_size: int
) -> list[list[int]]:
    """Chunk ``to_run`` into batches of ≈ ``batch_size`` representatives.

    Representatives are grouped by spec (first-appearance order, stable
    within a group) so units sharing a workload land in the same batch
    and hit the worker-side memo.  Spec groups are kept whole — a batch
    may exceed ``batch_size`` to finish a group, because splitting a
    group across workers forfeits a workload rebuild — except that a
    group larger than ``2 × batch_size`` is cut into near-equal chunks
    to preserve load balance.
    """
    groups: dict[RandomDagSpec | RealModelSpec, list[int]] = {}
    order: list[RandomDagSpec | RealModelSpec] = []
    for rep in to_run:
        spec = units[rep].spec
        group = groups.get(spec)
        if group is None:
            groups[spec] = group = []
            order.append(spec)
        group.append(rep)
    batches: list[list[int]] = []
    current: list[int] = []
    for spec in order:
        group = groups[spec]
        if len(group) > 2 * batch_size:
            if current:
                batches.append(current)
                current = []
            chunks = -(-len(group) // batch_size)
            width = -(-len(group) // chunks)
            batches.extend(group[i : i + width] for i in range(0, len(group), width))
            continue
        current.extend(group)
        if len(current) >= batch_size:
            batches.append(current)
            current = []
    if current:
        batches.append(current)
    return batches


def _pack_batch(
    units: Sequence[WorkUnit], reps: Sequence[int]
) -> tuple[list[RandomDagSpec | RealModelSpec], list[BatchItem]]:
    """Compact wire form of one batch: spec table + per-unit tuples."""
    specs: list[RandomDagSpec | RealModelSpec] = []
    spec_index: dict[RandomDagSpec | RealModelSpec, int] = {}
    items: list[BatchItem] = []
    for rep in reps:
        unit = units[rep]
        index = spec_index.get(unit.spec)
        if index is None:
            spec_index[unit.spec] = index = len(specs)
            specs.append(unit.spec)
        items.append((rep, index, unit.kind, unit.algorithm, unit.schedule_kwargs))
    return specs, items


def run_units(
    units: Sequence[WorkUnit],
    *,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    progress: SweepProgress | None = None,
    batch_units: int | None = None,
) -> tuple[list[dict[str, float]], SweepStats]:
    """Evaluate ``units``; returns ``(payloads_in_input_order, stats)``.

    ``batch_units`` pins the parallel path's batch size (``None`` =
    auto-tune from unit kind and count); the serial path ignores it.
    """
    jobs = resolve_jobs(jobs)
    if batch_units is not None and batch_units < 1:
        raise ValueError("batch_units must be >= 1 (None = auto)")
    t0 = time.perf_counter()
    stats = SweepStats(total=len(units), jobs=jobs)
    if progress is None:
        progress = SweepProgress("sweep", len(units), enabled=False)

    keys = [unit.key() for unit in units]
    payloads: list[dict[str, float] | None] = [None] * len(units)
    first_index: dict[str, int] = {}
    duplicates: dict[int, list[int]] = {}
    for i, key in enumerate(keys):
        rep = first_index.setdefault(key, i)
        if rep != i:
            duplicates.setdefault(rep, []).append(i)
            stats.deduped += 1

    def resolve(rep: int, payload: dict[str, float], *, cached: bool) -> None:
        payloads[rep] = payload
        progress.update(cached=cached)
        for dup in duplicates.get(rep, ()):
            payloads[dup] = payload
            progress.update(deduped=True)

    # cache pass over representatives, in input order
    to_run: list[int] = []
    for rep in sorted(first_index.values()):
        hit = cache.get(keys[rep]) if cache is not None else None
        if hit is not None:
            stats.cache_hits += 1
            resolve(rep, hit, cached=True)
        else:
            to_run.append(rep)

    def persist(rep: int, payload: dict[str, float], meta: dict[str, float]) -> None:
        if cache is not None:
            unit = units[rep]
            cache.put(
                keys[rep],
                payload,
                kind=unit.kind,
                algorithm=unit.algorithm,
                meta=meta,
            )

    if jobs == 1 or len(to_run) <= 1:
        for rep in to_run:
            payload, meta = execute_unit(units[rep])
            stats.executed += 1
            persist(rep, payload, meta)
            resolve(rep, payload, cached=False)
    elif (max_workers := min(jobs, len(to_run), os.cpu_count() or 1)) == 1:
        # Requested parallelism exceeds the machine: CPU-bound workers
        # beyond the core count only add time-slicing overhead (~15%
        # measured on one core), so run the *batched* path inline —
        # same batches, same workload memo, no pool.  Payloads are
        # identical either way; only wall time differs.
        size = batch_units or _auto_batch_units(units, to_run, jobs)
        batches = _plan_batches(units, to_run, size)
        stats.batches = len(batches)
        clear_workload_memo()  # fresh per run, like a fresh pool
        try:
            for reps in batches:
                specs, items = _pack_batch(units, reps)
                results, reuses = execute_batch(specs, items)
                stats.worker_workload_reuses += reuses
                for rep, payload, meta in results:
                    stats.executed += 1
                    persist(rep, payload, meta)
                    resolve(rep, payload, cached=False)
        finally:
            clear_workload_memo()
    else:
        size = batch_units or _auto_batch_units(units, to_run, jobs)
        batches = _plan_batches(units, to_run, size)
        stats.batches = len(batches)
        max_workers = min(max_workers, len(batches))
        inflight_cap = max_workers + 2
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            remaining: Iterator[list[int]] = iter(batches)
            pending: set[Future[tuple[list[tuple[int, dict[str, float], dict[str, float]]], int]]]
            pending = set()

            def submit_next() -> bool:
                for reps in remaining:
                    specs, items = _pack_batch(units, reps)
                    pending.add(pool.submit(execute_batch, specs, items))
                    return True
                return False

            while len(pending) < inflight_cap and submit_next():
                pass
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    results, reuses = future.result()  # re-raises worker errors
                    stats.worker_workload_reuses += reuses
                    for rep, payload, meta in results:
                        stats.executed += 1
                        persist(rep, payload, meta)
                        resolve(rep, payload, cached=False)
                while len(pending) < inflight_cap and submit_next():
                    pass

    missing = [i for i, p in enumerate(payloads) if p is None]
    if missing:
        shown = ", ".join(map(str, missing[:10]))
        more = f", … ({len(missing)} total)" if len(missing) > 10 else ""
        raise SweepError(
            f"sweep produced no payload for {len(missing)} of {len(units)} "
            f"units (input indices {shown}{more})"
        )
    stats.wall_s = time.perf_counter() - t0
    return [p for p in payloads if p is not None], stats
