"""Persistent content-addressed schedule cache (``repro.schedcache/v1``).

Scheduling the big Section V workloads costs hundreds of milliseconds;
the result depends only on the cost profile, the algorithm and its
keyword arguments.  This module caches whole schedules across process
restarts under a key derived from exactly those inputs, so ``repro
serve``, ``repro schedule`` and the repair path hit warm schedules
instead of re-running Alg. 1/2/3.

**Keying.**  :func:`profile_fingerprint` canonicalizes everything that
determines a scheduler's output: every operator (name, cost, occupancy),
every edge (endpoints, transfer weight), the GPU count and speeds, the
stream cap, the communication model flag, and the concurrency model's
identity and parameters.  An *unknown* concurrency model (anything
outside :mod:`repro.costmodel.concurrency`) has no canonical encoding
— the fingerprint is ``None`` and the cache degrades to a no-op rather
than risking a false hit.  The key is the SHA-256 of the canonical JSON
of (format marker, fingerprint, algorithm, kwargs), via the same
:func:`repro.sweep.keying.content_key` the sweep cache uses, so keys
never collide across the two entry species sharing the tree.

**Entries.**  One ``repro.schedcache/v1`` document per schedule::

    {"format": "repro.schedcache/v1", "schema_version": 1,
     "key": "<sha256>", "kind": "schedule", "algorithm": "hios-lp",
     "payload": {"schedule": {...Schedule.to_dict()...},
                 "latency": 12.5},
     "meta": {"scheduling_time_s": 0.31}}

Reads reconstruct the :class:`~repro.core.schedule.Schedule` directly
(stage by stage, inside a ``try``) instead of the linting
``Schedule.from_dict`` — a hot read-path must not pay the lint
framework, and any malformed document is discarded as a miss exactly
like a corrupt sweep entry.  Hits are bit-identical replays of the
scheduler's output: the schedule JSON round-trips losslessly and the
recorded latency is the scheduler's exact float.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from ..core.result import ScheduleResult
from ..core.schedule import Schedule, ScheduleError, Stage
from ..costmodel.concurrency import (
    MaxConcurrencyModel,
    SaturationConcurrencyModel,
    SumConcurrencyModel,
    TableConcurrencyModel,
)
from ..costmodel.profile import CostProfile
from .cache import ContentStore
from .keying import content_key

__all__ = [
    "SCHED_CACHE_FORMAT",
    "SCHED_CACHE_KIND",
    "ScheduleCache",
    "cached_schedule",
    "concurrency_fingerprint",
    "profile_fingerprint",
    "schedule_key",
]

SCHED_CACHE_FORMAT = "repro.schedcache/v1"
SCHED_CACHE_KIND = "schedule"


def concurrency_fingerprint(model: object) -> dict[str, Any] | None:
    """Canonical description of a concurrency model, or ``None`` for a
    model this module cannot prove cacheable.

    Exact types only — a subclass may override ``duration`` with
    arbitrary behaviour, so it must not inherit its parent's
    fingerprint.
    """
    if type(model) is MaxConcurrencyModel:
        return {"model": "max"}
    if type(model) is SumConcurrencyModel:
        return {"model": "sum"}
    if type(model) is SaturationConcurrencyModel:
        return {
            "model": "saturation",
            "contention_penalty": model.contention_penalty,
            "stream_overhead": model.stream_overhead,
        }
    if type(model) is TableConcurrencyModel:
        fallback = concurrency_fingerprint(model._fallback)
        if fallback is None:
            return None
        return {
            "model": "table",
            "table": sorted(
                (sorted(names), duration)
                for names, duration in model._table.items()
            ),
            "fallback": fallback,
        }
    return None


def profile_fingerprint(profile: CostProfile) -> dict[str, Any] | None:
    """Canonical content description of a :class:`CostProfile`, or
    ``None`` when the profile is not cacheable (unknown concurrency
    model, or non-finite weights that canonical JSON rejects)."""
    concurrency = concurrency_fingerprint(profile.concurrency)
    if concurrency is None:
        return None
    graph = profile.graph
    return {
        "ops": [
            [op.name, op.cost, op.occupancy] for op in graph.operators()
        ],
        "edges": sorted(graph.edges()),
        "num_gpus": profile.num_gpus,
        "max_streams": profile.max_streams,
        "send_blocking": profile.send_blocking,
        "gpu_speeds": list(profile.gpu_speeds) if profile.gpu_speeds else None,
        "concurrency": concurrency,
    }


def schedule_key(
    profile: CostProfile,
    algorithm: str,
    kwargs: Mapping[str, Any] | None = None,
) -> str | None:
    """Content key for (profile, algorithm, kwargs), or ``None`` when
    the profile is uncacheable.  Kwargs must be JSON-representable —
    anything else makes the combination uncacheable too."""
    fingerprint = profile_fingerprint(profile)
    if fingerprint is None:
        return None
    material = {
        "format": SCHED_CACHE_FORMAT,
        "profile": fingerprint,
        "algorithm": algorithm,
        "kwargs": dict(kwargs or {}),
    }
    try:
        return content_key(material)
    except (TypeError, ValueError):
        return None


class ScheduleCache(ContentStore):
    """Schedule store (``repro.schedcache/v1``) sharing the sweep
    cache's sharded tree, read/write discipline and maintenance CLI."""

    format = SCHED_CACHE_FORMAT

    def _check_payload(self, payload: dict[str, Any]) -> bool:
        schedule = payload.get("schedule")
        latency = payload.get("latency")
        if not isinstance(schedule, dict) or not isinstance(schedule.get("gpus"), list):
            return False
        if isinstance(latency, bool) or not isinstance(latency, (int, float)):
            return False
        return math.isfinite(latency)

    # ------------------------------------------------------------------
    def get_schedule(self, key: str) -> tuple[Schedule, float] | None:
        """``(schedule, latency)`` for ``key``, or ``None`` on a miss.

        Reconstructs the schedule without the linting ``from_dict``
        path; a document that fails reconstruction is discarded and
        reported as a miss.
        """
        payload = self.get(key)
        if payload is None:
            return None
        doc = payload["schedule"]
        try:
            schedule = Schedule(int(doc["num_gpus"]))
            for entry in doc["gpus"]:
                gpu = int(entry["gpu"])
                for ops in entry["stages"]:
                    schedule.append_stage(Stage(gpu, tuple(ops)))
        except (KeyError, TypeError, ValueError, ScheduleError):
            self._discard(self.path_for(key))
            self.hits -= 1
            self.misses += 1
            return None
        return schedule, float(payload["latency"])

    def put_schedule(
        self,
        key: str,
        result: ScheduleResult,
        meta: Mapping[str, float] | None = None,
    ) -> None:
        """Persist a scheduler result under ``key``."""
        merged: dict[str, float] = {"scheduling_time_s": result.scheduling_time}
        if meta:
            merged.update(meta)
        self.put(
            key,
            {"schedule": result.schedule.to_dict(), "latency": result.latency},
            kind=SCHED_CACHE_KIND,
            algorithm=result.algorithm,
            meta=merged,
        )


def cached_schedule(
    profile: CostProfile,
    algorithm: str,
    cache: ScheduleCache | None = None,
    **kwargs: Any,
) -> tuple[ScheduleResult, bool]:
    """Schedule ``profile`` through the persistent cache.

    Returns ``(result, hit)``.  A hit replays the cached schedule and
    its exact latency with ``scheduling_time == 0.0`` and
    ``stats={"sched_cache": "hit"}``; a miss runs the scheduler and
    persists its result.  With ``cache=None`` — or an uncacheable
    combination (unknown concurrency model, non-JSON kwargs) — this is
    exactly ``schedule_graph``.
    """
    from ..core.api import schedule_graph  # runtime import: api is heavy

    key = schedule_key(profile, algorithm, kwargs) if cache is not None else None
    if cache is not None and key is not None:
        got = cache.get_schedule(key)
        if got is not None:
            schedule, latency = got
            return (
                ScheduleResult(
                    algorithm=algorithm,
                    schedule=schedule,
                    latency=latency,
                    scheduling_time=0.0,
                    stats={"sched_cache": "hit"},
                ),
                True,
            )
    result = schedule_graph(profile, algorithm, **kwargs)
    if cache is not None and key is not None:
        cache.put_schedule(key, result)
    return result, False
