"""Deterministic line-oriented progress reporting for sweep runs.

Replaces the silent multi-minute figure loops with plain-text status
lines.  Every line is flushed immediately so CI logs stream, and the
*content* is deterministic given the unit outcomes — units done /
total, percent, cache hits, dedup shares — with the single exception
of the ETA, which is derived from wall time and clearly labelled.

Lines go to ``stderr`` by default so figure tables on ``stdout`` stay
machine-readable.  To bound output on huge sweeps, at most
``max_lines`` progress lines are printed (evenly spaced by completed
units); the final line always appears.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

__all__ = ["SweepProgress"]


class SweepProgress:
    """Reports ``done/total`` as units complete; see the module docs."""

    def __init__(
        self,
        figure: str,
        total: int,
        *,
        stream: TextIO | None = None,
        enabled: bool = True,
        eta: bool = True,
        max_lines: int = 40,
    ) -> None:
        self.figure = figure
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled and total > 0
        self.eta = eta
        self.done = 0
        self.cache_hits = 0
        self.deduped = 0
        self.executed = 0  # units that actually ran (not cached/deduped)
        self._every = max(1, -(-total // max_lines)) if total else 1  # ceil div
        self._t0 = time.perf_counter()

    def update(self, *, cached: bool = False, deduped: bool = False) -> None:
        """Record one completed unit and maybe print a line."""
        self.done += 1
        if cached:
            self.cache_hits += 1
        if deduped:
            self.deduped += 1
        if not cached and not deduped:
            self.executed += 1
        if self.done % self._every == 0 or self.done == self.total:
            self._emit()

    def _emit(self) -> None:
        if not self.enabled:
            return
        pct = 100.0 * self.done / self.total
        line = (
            f"[{self.figure}] {self.done}/{self.total} units ({pct:3.0f}%), "
            f"{self.cache_hits} cache hits, {self.deduped} deduped"
        )
        # The per-unit rate comes from *executed* units only: cache hits
        # and dedup shares complete near-instantly (the executor resolves
        # them before any worker runs), and folding them into the rate
        # collapses the ETA to ~0 on warm-cache resumes.  Until the first
        # unit actually executes there is no rate, hence no ETA.
        if self.eta and 0 < self.done < self.total and self.executed > 0:
            elapsed = time.perf_counter() - self._t0
            remaining = elapsed / self.executed * (self.total - self.done)
            line += f", ETA {remaining:.0f}s"
        print(line, file=self.stream, flush=True)
