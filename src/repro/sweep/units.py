"""Work units: the pure, picklable quantum of a figure sweep.

A :class:`WorkUnit` fully describes one independent computation —
"build this workload, schedule it with this algorithm, report these
numbers" — so it can be shipped to a worker process, executed there
without any shared state, and cached under a content-addressed key.

Two spec types cover every figure:

* :class:`RandomDagSpec` — the Section V random layered DAGs behind
  Figs. 7-11 (generator parameters + seed + profile knobs);
* :class:`RealModelSpec` — the Section VI real models behind
  Figs. 12-14 (model, input size, platform).

Unit kinds select what the worker computes:

========== ==========================================================
kind        payload
========== ==========================================================
latency     ``{"latency": ...}`` — the scheduler's predicted latency
measured    ``{"measured_ms": ..., "predicted_ms": ...}`` — the
            discrete-event engine's measured latency for the schedule
sched-cost  ``{"minutes": ..., <breakdown>}`` — the Fig. 14 scheduling
            -optimization bill (includes algorithm *wall time*, so this
            kind is a measurement, not a pure function of the spec)
========== ==========================================================

Key canonicalization — the unit-level dedup
-------------------------------------------
Single-GPU algorithms (``sequential``, ``ios``) never pay inter-GPU
transfers and never see more than one GPU, so their results are
invariant under the spec fields that only matter in the multi-GPU
setting (``num_gpus``, ``transfer_ratio``, ``transfer_floor``).
:meth:`RandomDagSpec.key_fields` pins those fields to fixed sentinels
for single-GPU algorithms, which makes the cache keys of e.g. the
Fig. 7 sequential baseline *identical across the GPU-count sweep* —
the executor collapses equal keys before dispatch, running the unit
once and sharing the payload.  This generalizes (and replaces) the old
ad-hoc ``single_cache`` dict in ``sweep_random_dags``.

Batched execution — the persistent-worker path
----------------------------------------------
The parallel executor does not ship one pickled :class:`WorkUnit` per
task.  It groups units by spec, packs them into batches of compact
``(index, spec_idx, kind, algorithm, schedule_kwargs)`` tuples over a
per-batch spec table, and sends each batch to :func:`execute_batch` in
a pool worker.  Workers keep an LRU workload memo (spec → built
``CostProfile``), so the six algorithms of one spec rebuild the DAG
and its cost profile once instead of six times — the dominant cost of
a latency sweep.  ``sched-cost`` units bypass the memo because their
payload *is* a wall-time measurement (see :func:`execute_batch`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Any

from .keying import CACHE_SCHEMA_VERSION, content_key

__all__ = [
    "SINGLE_GPU_ALGORITHMS",
    "UNIT_KINDS",
    "RandomDagSpec",
    "RealModelSpec",
    "WorkUnit",
    "clear_workload_memo",
    "execute_batch",
    "execute_unit",
    "replay_unit_trace",
]

#: Algorithms whose results are invariant under multi-GPU-only knobs.
SINGLE_GPU_ALGORITHMS = frozenset({"sequential", "ios"})

UNIT_KINDS = ("latency", "measured", "sched-cost")


@dataclass(frozen=True)
class RandomDagSpec:
    """One Section V random-DAG workload plus its cost-profile knobs.

    Field defaults mirror :class:`repro.models.randomdag.RandomDagConfig`
    and :func:`repro.models.randomdag.random_dag_profile`.
    """

    seed: int
    num_gpus: int = 4
    num_ops: int = 200
    num_layers: int = 14
    num_edges: int | None = None
    cost_min: float = 0.1
    cost_max: float = 4.0
    transfer_ratio: float = 0.8
    transfer_floor: float = 0.1
    saturation_ms: float = 3.0
    contention_penalty: float = 0.06
    max_streams: int = 0

    def build(self) -> Any:
        """Generate the DAG and wrap it in a :class:`CostProfile`."""
        from ..models.randomdag import RandomDagConfig, random_dag_profile

        cfg = RandomDagConfig(
            num_ops=self.num_ops,
            num_layers=self.num_layers,
            num_edges=self.num_edges,
            cost_min=self.cost_min,
            cost_max=self.cost_max,
            transfer_ratio=self.transfer_ratio,
            transfer_floor=self.transfer_floor,
            saturation_ms=self.saturation_ms,
        )
        return random_dag_profile(
            cfg,
            seed=self.seed,
            num_gpus=self.num_gpus,
            contention_penalty=self.contention_penalty,
            max_streams=self.max_streams,
        )

    def key_fields(self, algorithm: str) -> dict[str, Any]:
        """Spec fields as they enter the cache key for ``algorithm``.

        Single-GPU algorithms get the multi-GPU-only fields pinned
        (see the module docstring) so equivalent units collapse.
        """
        fields: dict[str, Any] = {"spec": "random-dag/v1", **asdict(self)}
        if algorithm in SINGLE_GPU_ALGORITHMS:
            fields["num_gpus"] = 1
            fields["transfer_ratio"] = 0.0
            fields["transfer_floor"] = 0.0
        return fields


@dataclass(frozen=True)
class RealModelSpec:
    """One Section VI real-model workload on a named platform."""

    model: str
    input_size: int
    num_gpus: int = 2
    platform: str = "dual-a40"

    def profiler(self) -> Any:
        from ..substrate.platform import dual_a40
        from ..substrate.profiler import PlatformProfiler

        if self.platform != "dual-a40":
            raise ValueError(f"unknown platform {self.platform!r}")
        return PlatformProfiler(dual_a40(self.num_gpus))

    def build(self) -> Any:
        from ..experiments.realmodels import MODEL_BUILDERS

        return self.profiler().profile(MODEL_BUILDERS[self.model](self.input_size))

    def key_fields(self, algorithm: str) -> dict[str, Any]:
        del algorithm  # engine-measured results keep every field as-is
        return {"spec": "real-model/v1", **asdict(self)}


@dataclass(frozen=True)
class WorkUnit:
    """One ``(figure, x, instance, algorithm)`` computation.

    ``figure``, ``x`` and ``instance`` identify the unit for reporting
    and aggregation only — they do **not** enter the cache key, which
    depends purely on the content that determines the result: the
    canonicalized spec, the algorithm, the schedule kwargs, the kind
    and the cache schema version.
    """

    figure: str
    x: object
    instance: int
    algorithm: str
    spec: RandomDagSpec | RealModelSpec
    schedule_kwargs: tuple[tuple[str, Any], ...] = ()
    kind: str = "latency"

    def __post_init__(self) -> None:
        if self.kind not in UNIT_KINDS:
            raise ValueError(
                f"unknown unit kind {self.kind!r}; choose from {UNIT_KINDS}"
            )

    def key(self) -> str:
        """Content-addressed cache key of this unit."""
        return content_key(
            {
                "schema_version": CACHE_SCHEMA_VERSION,
                "kind": self.kind,
                "algorithm": self.algorithm,
                "schedule_kwargs": dict(self.schedule_kwargs),
                "workload": self.spec.key_fields(self.algorithm),
            }
        )


def execute_unit(unit: WorkUnit) -> tuple[dict[str, float], dict[str, float]]:
    """Run one unit; returns ``(payload, meta)``.

    The payload holds the deterministic result values the sweep
    aggregates (and the cache stores); meta holds measurement
    diagnostics (wall times) that must never feed back into figure
    data.  Importable at module level so worker processes can unpickle
    and call it under every multiprocessing start method.
    """
    from ..core.api import schedule_graph

    kwargs = dict(unit.schedule_kwargs)
    if unit.kind == "latency":
        result = schedule_graph(unit.spec.build(), unit.algorithm, **kwargs)
        return {"latency": result.latency}, {
            "scheduling_time_s": result.scheduling_time
        }
    if unit.kind == "measured":
        if not isinstance(unit.spec, RealModelSpec):
            raise TypeError("'measured' units need a RealModelSpec")
        profiler = unit.spec.profiler()
        profile = profiler.profile(
            _model_builder(unit.spec.model)(unit.spec.input_size)
        )
        result = schedule_graph(profile, unit.algorithm, **kwargs)
        trace = profiler.engine().run(profile.graph, result.schedule)
        return {
            "measured_ms": trace.latency,
            "predicted_ms": result.latency,
        }, {"scheduling_time_s": result.scheduling_time}
    if unit.kind == "sched-cost":
        if not isinstance(unit.spec, RealModelSpec):
            raise TypeError("'sched-cost' units need a RealModelSpec")
        from ..experiments.fig14_scheduling_cost import scheduling_cost_minutes

        profile = unit.spec.build()
        minutes, breakdown = scheduling_cost_minutes(
            profile, unit.algorithm, **kwargs
        )
        return {"minutes": minutes, **breakdown}, {}
    raise AssertionError(f"unhandled kind {unit.kind!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Batched execution (the persistent-worker path of ``run_units``)
# ---------------------------------------------------------------------------

#: One unit on the batch wire: ``(index, spec_idx, kind, algorithm,
#: schedule_kwargs)``.  ``index`` is an opaque caller token (the
#: executor uses the unit's position in its input), ``spec_idx`` points
#: into the batch's spec table.
BatchItem = tuple[int, int, str, str, tuple[tuple[str, Any], ...]]

@dataclass
class _Workload:
    """One memoized workload: the built profile, the profiler that made
    it (real models only), and the shared spatial-mapping cache handed
    to ``spatial_cache``-capable algorithms (see
    :func:`repro.core.hios_lp.cached_spatial_lp`)."""

    profile: Any
    profiler: Any = None
    spatial: dict[str, Any] = field(default_factory=dict)


#: Worker-side workload memo: spec → built workload.  Worker processes
#: persist for the lifetime of the pool, so a worker that already built
#: the :class:`~repro.costmodel.profile.CostProfile` for a spec reuses
#: it (with its warm ``stage_time`` memo and shared spatial-mapping
#: cache) for every later unit sharing that spec.
_WORKLOAD_MEMO: "OrderedDict[RandomDagSpec | RealModelSpec, _Workload]" = OrderedDict()
_WORKLOAD_MEMO_CAPACITY = 16


def clear_workload_memo() -> None:
    """Drop the worker-side workload memo (test isolation hook)."""
    _WORKLOAD_MEMO.clear()


def _memoized_workload(
    spec: "RandomDagSpec | RealModelSpec",
) -> tuple[_Workload, bool]:
    """Build (or fetch) the workload of ``spec``; returns ``(value, reused)``.

    Reuse is semantically free: the build is a pure function of the
    frozen spec, and the only state a reuse carries over is caches of
    pure function values (the profile's ``stage_time`` memo, the
    spatial-mapping cache) — so every schedule and latency computed on
    a reused workload is bit-identical to one computed on a fresh
    build.
    """
    hit = _WORKLOAD_MEMO.get(spec)
    if hit is not None:
        _WORKLOAD_MEMO.move_to_end(spec)
        return hit, True
    if isinstance(spec, RealModelSpec):
        profiler = spec.profiler()
        profile = profiler.profile(_model_builder(spec.model)(spec.input_size))
        value = _Workload(profile=profile, profiler=profiler)
    else:
        value = _Workload(profile=spec.build())
    _WORKLOAD_MEMO[spec] = value
    while len(_WORKLOAD_MEMO) > _WORKLOAD_MEMO_CAPACITY:
        _WORKLOAD_MEMO.popitem(last=False)
    return value, False


def execute_batch(
    specs: "list[RandomDagSpec | RealModelSpec]",
    items: "list[BatchItem]",
) -> tuple[list[tuple[int, dict[str, float], dict[str, float]]], int]:
    """Run a batch of compact unit descriptions in one worker call.

    ``specs`` is the batch's deduplicated spec table and each item
    references it by index, so a batch pickles each spec once however
    many units share it.  Returns ``(results, reuses)`` where results
    is ``[(index, payload, meta), ...]`` in batch order and ``reuses``
    counts units served from the worker's workload memo.

    Units whose algorithm has a window-independent spatial phase
    additionally share that phase through the workload's
    ``spatial_cache`` (e.g. ``hios-lp`` at three windows plus
    ``inter-lp`` run Alg. 1 once between them) — bit-identical by
    construction, see :func:`repro.core.hios_lp.cached_spatial_lp`.

    ``sched-cost`` units bypass the memo entirely: their payload embeds
    the algorithm's *wall time* (the Fig. 14 scheduling bill), and a
    warm ``stage_time`` memo or spatial cache would bias that
    measurement relative to the serial path, which rebuilds from
    scratch per unit.
    """
    from ..core.api import SPATIAL_CACHE_ALGORITHMS, schedule_graph

    results: list[tuple[int, dict[str, float], dict[str, float]]] = []
    reuses = 0
    for index, spec_i, kind, algorithm, schedule_kwargs in items:
        spec = specs[spec_i]
        kwargs = dict(schedule_kwargs)
        payload: dict[str, float]
        meta: dict[str, float]
        if kind == "latency":
            workload, reused = _memoized_workload(spec)
            reuses += reused
            if algorithm in SPATIAL_CACHE_ALGORITHMS:
                kwargs["spatial_cache"] = workload.spatial
            result = schedule_graph(workload.profile, algorithm, **kwargs)
            payload = {"latency": result.latency}
            meta = {"scheduling_time_s": result.scheduling_time}
        elif kind == "measured":
            if not isinstance(spec, RealModelSpec):
                raise TypeError("'measured' units need a RealModelSpec")
            workload, reused = _memoized_workload(spec)
            reuses += reused
            if algorithm in SPATIAL_CACHE_ALGORITHMS:
                kwargs["spatial_cache"] = workload.spatial
            result = schedule_graph(workload.profile, algorithm, **kwargs)
            trace = workload.profiler.engine().run(workload.profile.graph, result.schedule)
            payload = {"measured_ms": trace.latency, "predicted_ms": result.latency}
            meta = {"scheduling_time_s": result.scheduling_time}
        else:
            # sched-cost (and any future measurement kind): defer to the
            # one-unit path, fresh build, no memo read or write.
            payload, meta = execute_unit(
                WorkUnit("batch", 0, 0, algorithm, spec, schedule_kwargs, kind)
            )
        results.append((index, payload, meta))
    return results, reuses


def replay_unit_trace(unit: WorkUnit) -> tuple[Any, dict[str, int]]:
    """Re-execute one ``measured`` unit and return ``(trace, op_gpu)``.

    Units are pure functions of their spec, so the engine run can be
    reproduced deterministically at any time — including for units
    whose *payload* came out of the result cache without executing.
    This is what lets ``repro run --trace-out`` export a timeline per
    unit even on a fully warm cache: the cache stores the numbers, the
    replay regenerates the trace.  ``op_gpu`` maps every operator to
    its GPU (the input :func:`repro.obs.attribute_latency` and the
    Chrome exporter need alongside the trace).
    """
    from ..core.api import schedule_graph

    if unit.kind != "measured" or not isinstance(unit.spec, RealModelSpec):
        raise ValueError(
            f"only 'measured' units run the engine and have a trace to "
            f"replay; unit is kind {unit.kind!r} with "
            f"{type(unit.spec).__name__}"
        )
    profiler = unit.spec.profiler()
    profile = profiler.profile(
        _model_builder(unit.spec.model)(unit.spec.input_size)
    )
    result = schedule_graph(profile, unit.algorithm, **dict(unit.schedule_kwargs))
    trace = profiler.engine().run(profile.graph, result.schedule)
    op_gpu = {op: result.schedule.gpu_of(op) for op in result.schedule.operators()}
    return trace, op_gpu


def _model_builder(model: str) -> Any:
    from ..experiments.realmodels import MODEL_BUILDERS

    return MODEL_BUILDERS[model]
