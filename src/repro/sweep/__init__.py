"""``repro.sweep`` — parallel sweep engine with content-addressed caching.

The shared machinery under every figure driver (see
``docs/performance.md``): a sweep decomposes into pure, picklable
:class:`WorkUnit` values, identical units collapse before dispatch,
cached results are reused from a content-addressed on-disk store, and
the remainder fans out over a process pool — with ``jobs=1``
bit-identical to the historical serial loops.

Typical use::

    from repro.sweep import ResultCache, RandomDagSpec, WorkUnit, run_units

    units = [
        WorkUnit("fig8", x=n, instance=i, algorithm="hios-lp",
                 spec=RandomDagSpec(seed=i, num_ops=n),
                 schedule_kwargs=(("window", 3),))
        for n in (100, 200) for i in range(3)
    ]
    payloads, stats = run_units(units, jobs=8, cache=ResultCache())
"""

from .cache import CACHE_FORMAT, ContentStore, ResultCache, default_cache_dir
from .executor import SweepError, SweepStats, resolve_jobs, run_units
from .keying import CACHE_SCHEMA_VERSION, canonical_json, content_key
from .progress import SweepProgress
from .schedcache import (
    SCHED_CACHE_FORMAT,
    SCHED_CACHE_KIND,
    ScheduleCache,
    cached_schedule,
    profile_fingerprint,
    schedule_key,
)
from .units import (
    SINGLE_GPU_ALGORITHMS,
    UNIT_KINDS,
    RandomDagSpec,
    RealModelSpec,
    WorkUnit,
    clear_workload_memo,
    execute_batch,
    execute_unit,
    replay_unit_trace,
)

__all__ = [
    "CACHE_FORMAT",
    "CACHE_SCHEMA_VERSION",
    "ContentStore",
    "RandomDagSpec",
    "RealModelSpec",
    "ResultCache",
    "SCHED_CACHE_FORMAT",
    "SCHED_CACHE_KIND",
    "ScheduleCache",
    "SINGLE_GPU_ALGORITHMS",
    "SweepError",
    "SweepProgress",
    "SweepStats",
    "UNIT_KINDS",
    "WorkUnit",
    "cached_schedule",
    "canonical_json",
    "clear_workload_memo",
    "content_key",
    "default_cache_dir",
    "execute_batch",
    "execute_unit",
    "profile_fingerprint",
    "schedule_key",
    "replay_unit_trace",
    "resolve_jobs",
    "run_units",
]
