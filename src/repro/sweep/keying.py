"""Stable content-addressed keys for sweep work units.

A cache key is the SHA-256 of the *canonical JSON* encoding of
everything that determines a unit's result: the workload spec (after
per-algorithm canonicalization, see :mod:`.units`), the algorithm name,
the schedule keyword arguments, the unit kind and the cache schema
version.  Canonical JSON sorts keys, uses minimal separators and
rejects NaN/Infinity, so two semantically identical descriptions always
hash to the same key on every platform and Python version.

``CACHE_SCHEMA_VERSION`` is part of every key: bumping it invalidates
the whole on-disk cache at once.  Bump it whenever the meaning of a
cached payload changes — a scheduler behaviour change that alters
results, a new field in the payload that readers rely on, or a change
to the canonicalization rules themselves.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

__all__ = ["CACHE_SCHEMA_VERSION", "canonical_json", "content_key"]

#: Bump to invalidate every existing cache entry (see module docstring).
CACHE_SCHEMA_VERSION = 1


def canonical_json(payload: Mapping[str, Any]) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical encoding of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
