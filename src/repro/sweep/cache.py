"""Content-addressed on-disk stores: sweep results and schedules.

Layout (one JSON document per entry, sharded by key prefix to keep
directories small)::

    <root>/v<schema>/<key[:2]>/<key>.json

``<root>`` resolves, in order, to an explicit ``cache_dir`` argument,
the ``REPRO_CACHE_DIR`` environment variable, then
``~/.cache/repro-hios``.  Every entry is a self-describing document
whose ``format`` marker names its species; the two stores sharing the
tree are

* :class:`ResultCache` (``repro.cache/v1``) — numeric sweep-unit
  payloads, e.g. ``{"latency": 12.5}``;
* :class:`~repro.sweep.schedcache.ScheduleCache`
  (``repro.schedcache/v1``) — whole schedules keyed by the profile
  content hash (see :mod:`repro.sweep.schedcache`).

Both are thin subclasses of :class:`ContentStore`, which owns the
defensive read/atomic write discipline: an entry that is unreadable,
malformed JSON, the wrong format/schema, or whose recorded key
disagrees with its filename is *discarded* (best-effort unlink) and
treated as a miss — a corrupt cache can cost recomputation but never
poisons results or crashes a run.  Writes are atomic (temp file +
rename) so interrupted runs leave no half-written entries and simply
resume from what completed.  Content keys never collide across the two
formats because each store's key material embeds its format marker.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

from .keying import CACHE_SCHEMA_VERSION

__all__ = ["CACHE_FORMAT", "ContentStore", "ResultCache", "default_cache_dir"]

CACHE_FORMAT = "repro.cache/v1"
_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-hios``."""
    env = os.environ.get(_ENV_VAR, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-hios"


class ContentStore:
    """Get/put of JSON payloads under content-addressed keys.

    Subclasses pin the document ``format`` marker and override
    :meth:`_check_payload` with their species' integrity check; the
    base class owns sharding, discard-on-corrupt reads, atomic writes
    and the tree-wide maintenance operations (:meth:`stats`,
    :meth:`clear`), which report across *all* formats sharing the tree.
    """

    #: document format marker; subclasses override
    format: str = CACHE_FORMAT

    def __init__(self, cache_dir: str | os.PathLike[str] | None = None) -> None:
        self.root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _shard(self) -> Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}"

    def path_for(self, key: str) -> Path:
        return self._shard() / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Payload for ``key``, or ``None`` (miss or discarded entry)."""
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            self.misses += 1
            return None
        payload = self._valid_payload(doc, key)
        if payload is None:
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(
        self,
        key: str,
        payload: Mapping[str, Any],
        *,
        kind: str,
        algorithm: str,
        meta: Mapping[str, float] | None = None,
    ) -> None:
        """Atomically persist one entry (overwrites any existing one)."""
        doc = {
            "format": self.format,
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "algorithm": algorithm,
            "payload": dict(payload),
            "meta": dict(meta or {}),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            self._discard(Path(tmp))
            raise

    def _valid_payload(self, doc: Any, key: str) -> dict[str, Any] | None:
        """Minimal integrity check; deep checks live in the C0xx lint
        rules (``repro lint`` on a cache document)."""
        if not isinstance(doc, dict):
            return None
        if doc.get("format") != self.format:
            return None
        if doc.get("schema_version") != CACHE_SCHEMA_VERSION:
            return None
        if doc.get("key") != key:
            return None
        payload = doc.get("payload")
        if not isinstance(payload, dict) or not self._check_payload(payload):
            return None
        return payload

    def _check_payload(self, payload: dict[str, Any]) -> bool:
        """Species-specific payload validation; subclasses override."""
        return bool(payload)

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing cleanup is fine
            pass

    def _entries(self) -> Iterator[Path]:
        shard = self._shard()
        if not shard.is_dir():
            return
        yield from sorted(shard.glob("*/*.json"))

    def stats(self) -> dict[str, Any]:
        """On-disk footprint of the current schema's shard, broken down
        by entry kind and document format (all species in the tree)."""
        entries = 0
        total_bytes = 0
        by_kind: dict[str, int] = {}
        by_format: dict[str, int] = {}
        for path in self._entries():
            entries += 1
            try:
                total_bytes += path.stat().st_size
                with open(path, encoding="utf-8") as fh:
                    doc = json.load(fh)
                kind = doc.get("kind", "?")
                fmt = doc.get("format", "?")
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                kind = "corrupt"
                fmt = "corrupt"
            by_kind[str(kind)] = by_kind.get(str(kind), 0) + 1
            by_format[str(fmt)] = by_format.get(str(fmt), 0) + 1
        return {
            "cache_dir": str(self.root),
            "schema_version": CACHE_SCHEMA_VERSION,
            "entries": entries,
            "bytes": total_bytes,
            "by_kind": dict(sorted(by_kind.items())),
            "by_format": dict(sorted(by_format.items())),
        }

    def clear(self, kind: str | None = None) -> int:
        """Delete entries of the current schema; returns the count.

        ``kind`` restricts the purge to entries of one kind (e.g.
        ``"schedule"`` or ``"latency"``); unreadable entries match the
        pseudo-kind ``"corrupt"``.  ``None`` clears everything.
        """
        removed = 0
        for path in self._entries():
            if kind is not None:
                try:
                    with open(path, encoding="utf-8") as fh:
                        entry_kind = str(json.load(fh).get("kind", "?"))
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    entry_kind = "corrupt"
                if entry_kind != kind:
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover
                pass
        return removed


class ResultCache(ContentStore):
    """Sweep-unit result store (``repro.cache/v1``): payloads are
    non-empty finite-number mappings like ``{"latency": 12.5}``."""

    format = CACHE_FORMAT

    def _check_payload(self, payload: dict[str, Any]) -> bool:
        if not payload:
            return False
        for name, value in payload.items():
            if not isinstance(name, str) or not isinstance(value, (int, float)):
                return False
            if isinstance(value, bool) or value != value:  # bool / NaN
                return False
        return True
