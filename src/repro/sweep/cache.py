"""Content-addressed on-disk result cache for sweep units.

Layout (one JSON document per entry, sharded by key prefix to keep
directories small)::

    <root>/v<schema>/<key[:2]>/<key>.json

``<root>`` resolves, in order, to an explicit ``cache_dir`` argument,
the ``REPRO_CACHE_DIR`` environment variable, then
``~/.cache/repro-hios``.  Every entry is a self-describing
``repro.cache/v1`` document::

    {"format": "repro.cache/v1", "schema_version": 1,
     "key": "<sha256>", "kind": "latency", "algorithm": "hios-lp",
     "payload": {"latency": 12.5}, "meta": {"scheduling_time_s": 0.4}}

Reads are defensive: an entry that is unreadable, malformed JSON, the
wrong format/schema, or whose recorded key disagrees with its filename
is *discarded* (best-effort unlink) and treated as a miss — a corrupt
cache can cost recomputation but never poisons results or crashes a
sweep.  Writes are atomic (temp file + rename) so interrupted sweeps
leave no half-written entries and simply resume from what completed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

from .keying import CACHE_SCHEMA_VERSION

__all__ = ["CACHE_FORMAT", "ResultCache", "default_cache_dir"]

CACHE_FORMAT = "repro.cache/v1"
_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-hios``."""
    env = os.environ.get(_ENV_VAR, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-hios"


class ResultCache:
    """Get/put of unit payloads under content-addressed keys."""

    def __init__(self, cache_dir: str | os.PathLike[str] | None = None) -> None:
        self.root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _shard(self) -> Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}"

    def path_for(self, key: str) -> Path:
        return self._shard() / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, float] | None:
        """Payload for ``key``, or ``None`` (miss or discarded entry)."""
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            self.misses += 1
            return None
        payload = self._valid_payload(doc, key)
        if payload is None:
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(
        self,
        key: str,
        payload: Mapping[str, float],
        *,
        kind: str,
        algorithm: str,
        meta: Mapping[str, float] | None = None,
    ) -> None:
        """Atomically persist one entry (overwrites any existing one)."""
        doc = {
            "format": CACHE_FORMAT,
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "algorithm": algorithm,
            "payload": dict(payload),
            "meta": dict(meta or {}),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            self._discard(Path(tmp))
            raise

    @staticmethod
    def _valid_payload(doc: Any, key: str) -> dict[str, float] | None:
        """Minimal integrity check; deep checks live in the C0xx lint
        rules (``repro lint`` on a cache document)."""
        if not isinstance(doc, dict):
            return None
        if doc.get("format") != CACHE_FORMAT:
            return None
        if doc.get("schema_version") != CACHE_SCHEMA_VERSION:
            return None
        if doc.get("key") != key:
            return None
        payload = doc.get("payload")
        if not isinstance(payload, dict) or not payload:
            return None
        for name, value in payload.items():
            if not isinstance(name, str) or not isinstance(value, (int, float)):
                return None
            if isinstance(value, bool) or value != value:  # bool / NaN
                return None
        return payload

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing cleanup is fine
            pass

    def _entries(self) -> Iterator[Path]:
        shard = self._shard()
        if not shard.is_dir():
            return
        yield from sorted(shard.glob("*/*.json"))

    def stats(self) -> dict[str, Any]:
        """On-disk footprint of the current schema's shard."""
        entries = 0
        total_bytes = 0
        by_kind: dict[str, int] = {}
        for path in self._entries():
            entries += 1
            try:
                total_bytes += path.stat().st_size
                with open(path, encoding="utf-8") as fh:
                    kind = json.load(fh).get("kind", "?")
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                kind = "corrupt"
            by_kind[str(kind)] = by_kind.get(str(kind), 0) + 1
        return {
            "cache_dir": str(self.root),
            "schema_version": CACHE_SCHEMA_VERSION,
            "entries": entries,
            "bytes": total_bytes,
            "by_kind": dict(sorted(by_kind.items())),
        }

    def clear(self) -> int:
        """Delete every entry of the current schema; returns the count."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover
                pass
        return removed
