"""ASCII Gantt rendering of schedules and engine traces.

Turns an :class:`~repro.core.evaluator.EvaluationResult` or an
:class:`~repro.substrate.engine.ExecutionTrace` into a per-GPU text
timeline — handy for eyeballing where a schedule spends its time and
for the example scripts' output.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["render_gantt", "render_schedule_table"]


def render_gantt(
    op_start: Mapping[str, float],
    op_finish: Mapping[str, float],
    op_gpu: Mapping[str, int],
    width: int = 72,
    max_ops_per_gpu: int = 0,
) -> str:
    """Render per-GPU operator timelines as fixed-width ASCII bars.

    ``max_ops_per_gpu`` caps the rows per GPU (0 = unlimited); the
    longest-running operators are kept when truncating.
    """
    if not op_start:
        return "(empty schedule)"
    horizon = max(op_finish.values())
    if horizon <= 0:
        return "(zero-length schedule)"
    name_w = min(24, max(len(n) for n in op_start))
    scale = width / horizon

    by_gpu: dict[int, list[str]] = {}
    for op, gpu in op_gpu.items():
        by_gpu.setdefault(gpu, []).append(op)

    lines: list[str] = [f"0 ms {' ' * (name_w + width - 12)} {horizon:.3f} ms"]
    for gpu in sorted(by_gpu):
        lines.append(f"GPU {gpu}:")
        ops = sorted(by_gpu[gpu], key=lambda o: (op_start[o], o))
        if max_ops_per_gpu and len(ops) > max_ops_per_gpu:
            keep = set(
                sorted(ops, key=lambda o: op_finish[o] - op_start[o], reverse=True)[
                    :max_ops_per_gpu
                ]
            )
            dropped = len(ops) - len(keep)
            ops = [o for o in ops if o in keep]
        else:
            dropped = 0
        for op in ops:
            a = int(op_start[op] * scale)
            b = max(a + 1, int(op_finish[op] * scale))
            bar = " " * a + "#" * (b - a)
            lines.append(f"  {op[:name_w]:<{name_w}} |{bar:<{width}}|")
        if dropped:
            lines.append(f"  ... ({dropped} shorter operators hidden)")
    return "\n".join(lines)


def render_schedule_table(schedule) -> str:
    """Compact per-GPU stage listing of a Schedule."""
    lines = []
    for gpu in range(schedule.num_gpus):
        stages = schedule.stages_on(gpu)
        if not stages:
            continue
        lines.append(f"GPU {gpu}: {len(stages)} stages")
        for j, st in enumerate(stages):
            ops = ", ".join(st.ops)
            lines.append(f"  S[{gpu},{j}] ({len(st)} op{'s' if len(st) > 1 else ''}): {ops}")
    return "\n".join(lines) if lines else "(empty schedule)"
