"""Utilities: ASCII Gantt/timeline rendering, terminal line charts,
and Chrome trace-event export for engine traces."""

from .asciiplot import ascii_plot, plot_series_result
from .chrometrace import chrome_trace_document, save_chrome_trace, trace_to_events
from .gantt import render_gantt, render_schedule_table

__all__ = [
    "ascii_plot",
    "chrome_trace_document",
    "plot_series_result",
    "render_gantt",
    "render_schedule_table",
    "save_chrome_trace",
    "trace_to_events",
]
