"""Export engine traces to the Chrome trace-event format.

``chrome://tracing`` / Perfetto open the emitted JSON directly: one row
per GPU for kernels, one per link direction for transfers, with kernel
launch time recorded as an argument.  Times are exported in
microseconds as the format requires (engine times are milliseconds).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from ..substrate.engine import ExecutionTrace

__all__ = ["trace_to_events", "save_chrome_trace"]

_MS_TO_US = 1000.0


def trace_to_events(
    trace: ExecutionTrace, op_gpu: Mapping[str, int], process_name: str = "hios"
) -> list[dict]:
    """Build the trace-event list for one execution trace.

    ``op_gpu`` maps operators to their GPU (``schedule.gpu_of``).
    Kernels become complete events (``ph: "X"``) on ``tid = gpu``;
    transfers land on per-direction rows after the GPU rows.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    gpus = sorted(set(op_gpu.values()))
    for g in gpus:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": g,
                "args": {"name": f"GPU {g}"},
            }
        )
    for op, start in trace.op_start.items():
        finish = trace.op_finish[op]
        events.append(
            {
                "name": op,
                "cat": "kernel",
                "ph": "X",
                "pid": 0,
                "tid": op_gpu[op],
                "ts": start * _MS_TO_US,
                "dur": max(0.0, finish - start) * _MS_TO_US,
                "args": {"launch_ms": trace.op_launch.get(op)},
            }
        )
    # transfers: one synthetic row per (src, dst) direction
    lanes: dict[tuple[int, int], int] = {}
    next_tid = (max(gpus) + 1) if gpus else 1
    for rec in trace.transfers:
        lane = (rec.src, rec.dst)
        if lane not in lanes:
            lanes[lane] = next_tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": next_tid,
                    "args": {"name": f"link {rec.src}->{rec.dst}"},
                }
            )
            next_tid += 1
        events.append(
            {
                "name": rec.tag or "transfer",
                "cat": "transfer",
                "ph": "X",
                "pid": 0,
                "tid": lanes[lane],
                "ts": rec.start_time * _MS_TO_US,
                "dur": rec.duration * _MS_TO_US,
                "args": {
                    "bytes": rec.num_bytes,
                    "queue_delay_ms": rec.queue_delay,
                },
            }
        )
    return events


def save_chrome_trace(
    trace: ExecutionTrace,
    op_gpu: Mapping[str, int],
    path: str | Path,
    process_name: str = "hios",
) -> None:
    """Write a ``chrome://tracing``-loadable JSON file."""
    doc = {"traceEvents": trace_to_events(trace, op_gpu, process_name)}
    Path(path).write_text(json.dumps(doc))
