"""Back-compat shim: the Chrome trace exporter moved to
:mod:`repro.obs.chrometrace` (the observability layer), which adds
transfer flow arrows, failure-instant markers and partial-trace
handling.  Import from :mod:`repro.obs` in new code.
"""

from __future__ import annotations

from ..obs.chrometrace import (  # noqa: F401
    CHROME_TRACE_FORMAT,
    chrome_trace_document,
    save_chrome_trace,
    trace_to_events,
)

__all__ = [
    "CHROME_TRACE_FORMAT",
    "chrome_trace_document",
    "save_chrome_trace",
    "trace_to_events",
]
