"""ASCII line charts for experiment results.

matplotlib is deliberately not a dependency of this repository; the
figure drivers return tabular :class:`~repro.experiments.reporting.SeriesResult`
objects, and this module renders them as terminal line charts so the
CLI's ``run --plot`` can show the paper figures' shapes at a glance.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_plot", "plot_series_result"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[object] | None = None,
    width: int = 64,
    height: int = 16,
    y_label: str = "",
) -> str:
    """Render one or more aligned series as an ASCII chart.

    Each series gets a marker; points are placed on a ``width x height``
    canvas scaled to the global y-range.  Ties on a cell keep the first
    series' marker (legend order).
    """
    if not series:
        return "(no data)"
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    npts = lengths.pop()
    if npts == 0:
        return "(no data)"
    lo = min(min(v) for v in series.values())
    hi = max(max(v) for v in series.values())
    if hi == lo:
        hi = lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for si, (name, values) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for i, v in enumerate(values):
            x = 0 if npts == 1 else round(i * (width - 1) / (npts - 1))
            y = round((v - lo) / (hi - lo) * (height - 1))
            row = height - 1 - y
            if canvas[row][x] == " ":
                canvas[row][x] = marker

    left = max(len(f"{hi:.4g}"), len(f"{lo:.4g}"))
    lines = []
    for r, row in enumerate(canvas):
        if r == 0:
            label = f"{hi:.4g}"
        elif r == height - 1:
            label = f"{lo:.4g}"
        else:
            label = ""
        lines.append(f"{label:>{left}} |{''.join(row)}")
    lines.append(f"{'':>{left}} +{'-' * width}")
    if x_labels is not None and len(x_labels) >= 2:
        axis = f"{x_labels[0]}"
        tail = f"{x_labels[-1]}"
        pad = max(1, width - len(axis) - len(tail))
        lines.append(f"{'':>{left}}  {axis}{' ' * pad}{tail}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>{left}}  {legend}")
    if y_label:
        lines.insert(0, f"{y_label}")
    return "\n".join(lines)


def plot_series_result(result, width: int = 64, height: int = 16) -> str:
    """Chart a :class:`~repro.experiments.reporting.SeriesResult`."""
    return ascii_plot(
        result.series,
        x_labels=result.x,
        width=width,
        height=height,
        y_label=f"{result.figure}: {result.y_label} vs {result.x_label}",
    )
