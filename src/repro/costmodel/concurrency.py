"""Concurrency cost models: the stage execution time ``t(S)``.

Section III-A defines ``t(S)`` as the measured time of concurrently
executing the independent operator set ``S`` on a single GPU with a
common start time.  The paper obtains ``t(S)`` by profiling; we provide
three interchangeable models:

* :class:`MaxConcurrencyModel` — idealized hardware with unlimited
  parallelism (useful as an optimistic bound and for unit tests);
* :class:`SaturationConcurrencyModel` — the analytic model calibrated
  against the paper's Fig. 1 contention/under-utilization experiment;
* :class:`TableConcurrencyModel` — exact profiled values with a
  fallback model, mirroring the paper's profile-then-schedule flow.

All models satisfy the invariants ``t({v}) = t(v)`` and
``t(S) >= max_v t(v)`` which the property tests pin down.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Protocol, Sequence

from ..core.graph import Operator

__all__ = [
    "ConcurrencyModel",
    "MaxConcurrencyModel",
    "SumConcurrencyModel",
    "SaturationConcurrencyModel",
    "TableConcurrencyModel",
]


class ConcurrencyModel(Protocol):
    """Anything that can price the concurrent execution of a stage."""

    def duration(self, ops: Sequence[Operator]) -> float:
        """Return ``t(S)`` in milliseconds for the operator set ``ops``."""
        ...


class MaxConcurrencyModel:
    """Perfectly parallel GPU: ``t(S) = max_v t(v)``.

    An optimistic bound — real GPUs behave like this only while the
    total occupancy of the set stays at or below the device capacity.
    """

    def duration(self, ops: Sequence[Operator]) -> float:
        return max((op.cost for op in ops), default=0.0)


class SumConcurrencyModel:
    """Fully serialized GPU: ``t(S) = sum_v t(v)``.

    A pessimistic bound; concurrent execution never helps.  Useful to
    sanity-check that schedulers do not group operators when grouping
    cannot pay off.
    """

    def duration(self, ops: Sequence[Operator]) -> float:
        return sum(op.cost for op in ops)


class SaturationConcurrencyModel:
    """Occupancy-aware model reproducing the Fig. 1 regimes.

    Each operator ``v`` contributes work ``t(v) * u(v)`` where
    ``u(v) in (0, 1]`` is the fraction of the device the operator can
    occupy alone.  The stage time is

    ``t(S) = max(max_v t(v), sum_v t(v) u(v)) * (1 + lam * max(0, U - 1))``

    with ``U = sum_v u(v)``.  Consequences, matching the paper's
    motivating experiment:

    * two small operators (``u <= 0.5``) run truly in parallel —
      parallel/sequential ratio 0.5;
    * two saturating operators (``u = 1``) serialize *and* pay a
      contention/context-switch penalty ``lam`` — ratio above 1.0,
      exactly the ``128x128``-and-beyond regime of Fig. 1.

    Parameters
    ----------
    contention_penalty:
        ``lam`` — fractional slowdown per unit of excess occupancy.
        Default 0.06 puts the two-large-op ratio near the 1.05–1.12
        band measured on the A40 in Fig. 1.
    stream_overhead:
        ``kappa`` — fractional cost per *additional* concurrent stream
        (CUDA stream scheduling / cache interference), independent of
        occupancy.  Zero by default (the Section V synthetic setting);
        the platform profiler sets it for real-model workloads, where
        it damps the benefit of very wide stages of tiny kernels.
    """

    def __init__(
        self, contention_penalty: float = 0.06, stream_overhead: float = 0.0
    ) -> None:
        if contention_penalty < 0:
            raise ValueError("contention penalty must be non-negative")
        if stream_overhead < 0:
            raise ValueError("stream overhead must be non-negative")
        self.contention_penalty = contention_penalty
        self.stream_overhead = stream_overhead

    def duration(self, ops: Sequence[Operator]) -> float:
        if not ops:
            return 0.0
        longest = max(op.cost for op in ops)
        work = sum(op.cost * op.occupancy for op in ops)
        total_occ = sum(op.occupancy for op in ops)
        base = max(longest, work)
        excess = max(0.0, total_occ - 1.0)
        streams = 1.0 + self.stream_overhead * (len(ops) - 1)
        return base * (1.0 + self.contention_penalty * excess) * streams


class TableConcurrencyModel:
    """Profiled ``t(S)`` values with a fallback analytic model.

    The paper's scheduler consumes profiled stage timings; sets that
    were never profiled fall back to ``fallback`` (default: a
    :class:`SaturationConcurrencyModel`).  Keys are frozensets of
    operator names.
    """

    def __init__(
        self,
        table: Mapping[frozenset[str], float] | None = None,
        fallback: ConcurrencyModel | None = None,
    ) -> None:
        self._table: dict[frozenset[str], float] = dict(table or {})
        self._fallback = fallback if fallback is not None else SaturationConcurrencyModel()

    def record(self, names: Iterable[str], duration: float) -> None:
        """Store a profiled measurement for a set of operators."""
        if duration < 0:
            raise ValueError("negative stage duration")
        self._table[frozenset(names)] = duration

    def __len__(self) -> int:
        return len(self._table)

    def duration(self, ops: Sequence[Operator]) -> float:
        key = frozenset(op.name for op in ops)
        hit = self._table.get(key)
        if hit is not None:
            return hit
        return self._fallback.duration(ops)
