"""Transfer cost models: the inter-GPU edge weight ``t(u, v)``.

Two sources of transfer times appear in the paper:

* the Section V simulations derive them from operator execution times
  (``t(e) = max(floor, p * t(u))`` — :class:`RatioTransferModel`);
* the Section VI experiments measure tensor movement over a concrete
  interconnect (:class:`LinkTransferModel` over an NVLink/PCIe
  :class:`~repro.substrate.link.LinkModel`).

Both produce per-edge milliseconds and are used by
:meth:`repro.costmodel.transfer.apply_transfer_model` to annotate an
:class:`~repro.core.graph.OpGraph` in place of hand-written weights.
"""

from __future__ import annotations

from typing import Protocol

from ..core.graph import OpGraph, Operator

__all__ = [
    "TransferModel",
    "ZeroTransferModel",
    "ConstantTransferModel",
    "RatioTransferModel",
    "BytesTransferModel",
    "apply_transfer_model",
]


class TransferModel(Protocol):
    """Prices moving the output tensor of ``u`` to the GPU hosting ``v``."""

    def transfer_time(self, u: Operator, v: Operator) -> float:
        ...


class ZeroTransferModel:
    """Free communication — isolates computation effects in ablations."""

    def transfer_time(self, u: Operator, v: Operator) -> float:
        return 0.0


class ConstantTransferModel:
    """Every transfer costs the same fixed time (latency-bound regime)."""

    def __init__(self, cost: float) -> None:
        if cost < 0:
            raise ValueError("negative transfer cost")
        self.cost = cost

    def transfer_time(self, u: Operator, v: Operator) -> float:
        return self.cost


class RatioTransferModel:
    """Section V's synthetic model: ``t(u, v) = max(floor, ratio * t(u))``.

    The paper sets ``ratio = p = 0.8`` by default and sweeps
    ``p in [0.4, 1.2]`` in Fig. 11; the 0.1 ms floor models the fixed
    per-message cost of an MPI transfer over NVLink.
    """

    def __init__(self, ratio: float = 0.8, floor: float = 0.1) -> None:
        if ratio < 0:
            raise ValueError("negative transfer ratio")
        if floor < 0:
            raise ValueError("negative transfer floor")
        self.ratio = ratio
        self.floor = floor

    def transfer_time(self, u: Operator, v: Operator) -> float:
        return max(self.floor, self.ratio * u.cost)


class BytesTransferModel:
    """Bandwidth/latency model: ``t = latency + bytes / bandwidth``.

    ``bandwidth`` is in bytes per millisecond; operators must carry
    ``output_bytes``.  This is the analytic twin of routing the tensor
    through :class:`repro.substrate.link.LinkModel` and is what the
    platform profiler emits for Section VI workloads.
    """

    def __init__(self, bandwidth_bytes_per_ms: float, latency_ms: float = 0.0) -> None:
        if bandwidth_bytes_per_ms <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_ms < 0:
            raise ValueError("negative link latency")
        self.bandwidth = bandwidth_bytes_per_ms
        self.latency = latency_ms

    def transfer_time(self, u: Operator, v: Operator) -> float:
        return self.latency + u.output_bytes / self.bandwidth


def apply_transfer_model(graph: OpGraph, model: TransferModel) -> OpGraph:
    """Return a copy of ``graph`` whose edge weights are re-derived from
    ``model``; vertex weights are untouched."""
    return graph.map_costs(
        edge=lambda u, v, _w: model.transfer_time(graph.operator(u), graph.operator(v))
    )
