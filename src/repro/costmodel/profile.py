"""Cost profile: the bundle of measurements a scheduler consumes.

HIOS is a *profile-based* scheduler: before optimization it measures
(i) each operator alone, (ii) candidate concurrent sets, and (iii)
inter-GPU transfers, then schedules against those numbers.  A
:class:`CostProfile` packages an annotated graph together with the
concurrency model so every scheduler takes a single, uniform input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.graph import OpGraph, Operator
from .concurrency import ConcurrencyModel, SaturationConcurrencyModel

__all__ = ["CostProfile"]


@dataclass
class CostProfile:
    """Everything the schedulers need to price a schedule.

    Attributes
    ----------
    graph:
        Computation graph whose vertex weights are solo execution times
        ``t(v)`` and whose edge weights are worst-case inter-GPU
        transfer times ``t(u, v)``.
    concurrency:
        The ``t(S)`` model for concurrent execution within one GPU.
    num_gpus:
        ``M`` — homogeneous GPUs available.
    max_streams:
        ``L`` — preset maximum CUDA streams per GPU, i.e. an upper
        bound on stage width.  ``0`` disables the bound.
    send_blocking:
        When true (default, matching the paper's CUDA-aware-MPI
        runtime), an inter-GPU transfer occupies the *sender* GPU's
        timeline: the MPI process issues blocking sends between kernel
        launches, so outgoing transfers of a stage serialize and delay
        the GPU's next stage.  When false, transfers are pure delays
        (the idealized model of Section III's precedence constraint) —
        exposed for ablations.
    gpu_speeds:
        Optional per-GPU relative speed factors (extension: the paper
        assumes homogeneous GPUs).  An operator or stage on GPU ``i``
        runs in ``t / gpu_speeds[i]``.  ``None`` = all 1.0.
    stage_time_cache:
        Memoize :meth:`stage_time` on ``(ops, gpu)`` (default on).  The
        scheduler inner loops re-price the same stage thousands of
        times (every Alg. 2 candidate re-prices every unchanged stage);
        the memo answers repeats in one dict probe.  The cache is keyed
        on the graph's mutation counter and the concurrency model
        identity, so swapping either invalidates it.  Disable for
        measurements that must exercise the concurrency model itself.
    """

    graph: OpGraph
    concurrency: ConcurrencyModel = field(default_factory=SaturationConcurrencyModel)
    num_gpus: int = 2
    max_streams: int = 0
    send_blocking: bool = True
    gpu_speeds: Sequence[float] | None = None
    stage_time_cache: bool = True

    def __post_init__(self) -> None:
        self._cache: dict[tuple[tuple[str, ...], int | None], float] = {}
        self._cache_hits = 0
        self._cache_graph_version = self.graph.version
        self._cache_concurrency: ConcurrencyModel = self.concurrency
        if self.num_gpus < 1:
            raise ValueError("need at least one GPU")
        if self.max_streams < 0:
            raise ValueError("max_streams must be >= 0 (0 = unbounded)")
        if self.gpu_speeds is not None:
            if len(self.gpu_speeds) != self.num_gpus:
                raise ValueError(
                    f"gpu_speeds has {len(self.gpu_speeds)} entries for "
                    f"{self.num_gpus} GPUs"
                )
            if any(sp <= 0 for sp in self.gpu_speeds):
                raise ValueError("GPU speed factors must be positive")
        self.graph.validate()

    @property
    def heterogeneous(self) -> bool:
        return self.gpu_speeds is not None and len(set(self.gpu_speeds)) > 1

    def gpu_speed(self, gpu: int) -> float:
        """Relative speed of one GPU (1.0 = reference).  The paper
        assumes homogeneous GPUs; per-GPU factors are this library's
        extension for mixed fleets."""
        if self.gpu_speeds is None:
            return 1.0
        return self.gpu_speeds[gpu]

    def stage_time(self, names: list[str] | tuple[str, ...], gpu: int | None = None) -> float:
        """``t(S)`` for a set of operator names, optionally scaled by
        the hosting GPU's speed factor.

        Memoized on ``(names, gpu)`` unless ``stage_time_cache`` is
        off; see the class docstring for the invalidation rules.
        """
        if not self.stage_time_cache:
            ops: list[Operator] = [self.graph.operator(n) for n in names]
            base = self.concurrency.duration(ops)
            return base if gpu is None else base / self.gpu_speed(gpu)
        if (
            self._cache_graph_version != self.graph.version
            or self._cache_concurrency is not self.concurrency
        ):
            self._cache.clear()
            self._cache_hits = 0
            self._cache_graph_version = self.graph.version
            self._cache_concurrency = self.concurrency
        key = (tuple(names), gpu)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            return cached
        base = self.concurrency.duration([self.graph.operator(n) for n in key[0]])
        value = base if gpu is None else base / self.gpu_speed(gpu)
        self._cache[key] = value
        return value

    @property
    def stage_time_cache_hits(self) -> int:
        """Memo hits since construction (or the last invalidation) —
        surfaced in ``ScheduleResult.stats`` by the schedulers."""
        return self._cache_hits

    def stage_width_ok(self, width: int) -> bool:
        return self.max_streams == 0 or width <= self.max_streams
