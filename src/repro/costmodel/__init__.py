"""Cost models consumed by the schedulers: concurrent stage durations
``t(S)``, inter-GPU transfer times ``t(u, v)``, and the CostProfile
bundle that packages them with a graph."""

from .concurrency import (
    ConcurrencyModel,
    MaxConcurrencyModel,
    SaturationConcurrencyModel,
    SumConcurrencyModel,
    TableConcurrencyModel,
)
from .profile import CostProfile
from .transfer import (
    BytesTransferModel,
    ConstantTransferModel,
    RatioTransferModel,
    TransferModel,
    ZeroTransferModel,
    apply_transfer_model,
)

__all__ = [
    "BytesTransferModel",
    "ConcurrencyModel",
    "ConstantTransferModel",
    "CostProfile",
    "MaxConcurrencyModel",
    "RatioTransferModel",
    "SaturationConcurrencyModel",
    "SumConcurrencyModel",
    "TableConcurrencyModel",
    "TransferModel",
    "ZeroTransferModel",
    "apply_transfer_model",
]
