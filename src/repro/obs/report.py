"""Human-readable rendering of attribution reports and trace diffs.

``repro trace report`` prints :func:`render_attribution`;
``repro trace diff`` prints :func:`render_trace_diff` over the
structured :class:`TraceDiff` that :func:`diff_traces` computes.  Both
renderers are plain fixed-width text so they read in CI logs; the
structured forms (``AttributionReport.to_dict`` / ``TraceDiff.to_dict``)
serve ``--json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .attribution import AttributionReport

__all__ = ["render_attribution", "TraceDiff", "diff_traces", "render_trace_diff"]


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole > 0 else "    -"


def render_attribution(report: AttributionReport, title: str = "") -> str:
    """Fixed-width text form of one attribution report."""
    lines: list[str] = []
    if title:
        lines.append(title)
    status = "completed" if report.completed else "PARTIAL (failure)"
    lines.append(f"end-to-end latency: {report.latency:.3f} ms ({status})")
    lines.append("")
    header = (
        f"{'gpu':>3}  {'compute':>12}  {'transfer':>12}  "
        f"{'overhead':>12}  {'idle':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for b in report.per_gpu:
        lines.append(
            f"{b.gpu:>3}  "
            f"{b.compute:>8.3f} {_pct(b.compute, report.latency)}  "
            f"{b.transfer:>8.3f} {_pct(b.transfer, report.latency)}  "
            f"{b.overhead:>8.3f} {_pct(b.overhead, report.latency)}  "
            f"{b.idle:>8.3f} {_pct(b.idle, report.latency)}"
        )
    lines.append("")
    path = report.critical_path
    lines.append(
        f"realized critical path ({len(path)} segments: "
        f"compute {report.critical_path_compute:.3f} ms, "
        f"transfer {report.critical_path_transfer:.3f} ms, "
        f"wait {report.critical_path_wait:.3f} ms):"
    )
    for seg in path:
        where = f"gpu {seg.gpu}" if seg.gpu is not None else "link"
        lines.append(
            f"  [{seg.start:10.3f} .. {seg.end:10.3f}] "
            f"{seg.kind:<8} {seg.duration:9.3f} ms  {where:<7} {seg.label}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# trace diff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceDiff:
    """Structural comparison of two execution traces.

    ``shifted`` lists ``(op, start_delta, finish_delta)`` for operators
    present in both traces whose timestamps differ by more than ``eps``
    (deltas are ``b - a``); ``only_a`` / ``only_b`` list operators one
    trace has and the other lacks.
    """

    latency_a: float
    latency_b: float
    num_transfers_a: int
    num_transfers_b: int
    only_a: tuple[str, ...] = ()
    only_b: tuple[str, ...] = ()
    shifted: tuple[tuple[str, float, float], ...] = field(default_factory=tuple)

    @property
    def latency_delta(self) -> float:
        return self.latency_b - self.latency_a

    @property
    def identical(self) -> bool:
        return (
            not self.only_a
            and not self.only_b
            and not self.shifted
            and abs(self.latency_delta) == 0.0
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "latency_a_ms": self.latency_a,
            "latency_b_ms": self.latency_b,
            "latency_delta_ms": self.latency_delta,
            "num_transfers_a": self.num_transfers_a,
            "num_transfers_b": self.num_transfers_b,
            "only_a": list(self.only_a),
            "only_b": list(self.only_b),
            "shifted": [
                {"op": op, "start_delta_ms": ds, "finish_delta_ms": df}
                for op, ds, df in self.shifted
            ],
        }


def diff_traces(a: Any, b: Any, eps: float = 1e-6) -> TraceDiff:
    """Compare two traces op-by-op (duck-typed, order-independent)."""
    ops_a, ops_b = set(a.op_start), set(b.op_start)
    shifted: list[tuple[str, float, float]] = []
    for op in sorted(ops_a & ops_b):
        ds = b.op_start[op] - a.op_start[op]
        fa, fb = a.op_finish.get(op), b.op_finish.get(op)
        df = (fb - fa) if (fa is not None and fb is not None) else 0.0
        if abs(ds) > eps or abs(df) > eps:
            shifted.append((op, ds, df))
    return TraceDiff(
        latency_a=a.latency,
        latency_b=b.latency,
        num_transfers_a=len(a.transfers),
        num_transfers_b=len(b.transfers),
        only_a=tuple(sorted(ops_a - ops_b)),
        only_b=tuple(sorted(ops_b - ops_a)),
        shifted=tuple(shifted),
    )


def render_trace_diff(
    diff: TraceDiff, name_a: str = "A", name_b: str = "B", limit: int = 20
) -> str:
    """Fixed-width text form of one trace diff (top ``limit`` shifts)."""
    lines = [
        f"latency: {name_a} {diff.latency_a:.3f} ms, {name_b} "
        f"{diff.latency_b:.3f} ms (delta {diff.latency_delta:+.3f} ms)",
        f"transfers: {name_a} {diff.num_transfers_a}, "
        f"{name_b} {diff.num_transfers_b}",
    ]
    if diff.only_a:
        lines.append(f"only in {name_a}: {', '.join(diff.only_a[:10])}"
                     + (" ..." if len(diff.only_a) > 10 else ""))
    if diff.only_b:
        lines.append(f"only in {name_b}: {', '.join(diff.only_b[:10])}"
                     + (" ..." if len(diff.only_b) > 10 else ""))
    if diff.shifted:
        ranked = sorted(
            diff.shifted, key=lambda t: max(abs(t[1]), abs(t[2])), reverse=True
        )
        lines.append(
            f"{len(diff.shifted)} operator(s) shifted "
            f"(top {min(limit, len(ranked))} by magnitude):"
        )
        for op, ds, df in ranked[:limit]:
            lines.append(f"  {op:<32} start {ds:+10.3f} ms  finish {df:+10.3f} ms")
    if diff.identical:
        lines.append("traces are identical")
    return "\n".join(lines)
