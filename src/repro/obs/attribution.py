"""Latency attribution: decompose a *measured* trace, find its realized
critical path.

The schedulers optimize an analytic objective, but what users debug is
the engine's measured :class:`~repro.substrate.engine.ExecutionTrace`.
This module walks that trace and answers two questions the raw dicts
cannot:

* **Where did the time go?**  :func:`attribute_latency` partitions each
  GPU's timeline ``[0, latency]`` into four exhaustive, disjoint
  buckets — ``compute`` (a kernel is resident), ``transfer`` (no kernel
  resident but a message this GPU sends or receives is in flight),
  ``overhead`` (no kernel or transfer, but a launched kernel is waiting
  to start: stream serialization / launch pipeline) and ``idle`` (none
  of the above).  Because the buckets partition the timeline by
  precedence ``compute > transfer > overhead > idle``, the four
  components of every GPU sum to the trace latency up to float
  round-off — an invariant the test suite asserts for all four
  algorithms.

* **What chain of events determined the makespan?**
  :func:`realized_critical_path` walks *backward* from the operator
  that finishes last, at each step identifying the binding constraint
  on its start: the arrival of a cross-GPU transfer (follow the
  producer), the finish of the previous same-GPU kernel (the stage
  barrier / stream predecessor), or the host launch.  This is the
  *measured* counterpart of the static graph critical path in
  :mod:`repro.core.priority` — contention, launch serialization and
  fabric queueing shift the realized path away from the static one,
  and arXiv:1711.01912 argues this realized path is exactly the
  quantity a scheduler should be judged on.

Traces are duck-typed, so documents loaded via ``repro.trace/v1`` and
in-process engine traces attribute identically.  Partial failure traces
work: in-flight kernels are cut at the failure instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "GpuBreakdown",
    "PathSegment",
    "AttributionReport",
    "attribute_latency",
    "realized_critical_path",
]

_BUCKETS = ("compute", "transfer", "overhead", "idle")


@dataclass(frozen=True)
class GpuBreakdown:
    """One GPU's latency decomposition (all values in ms).

    ``compute + transfer + overhead + idle == latency`` up to float
    round-off; see the module docstring for the bucket precedence.
    """

    gpu: int
    compute: float
    transfer: float
    overhead: float
    idle: float

    @property
    def total(self) -> float:
        return self.compute + self.transfer + self.overhead + self.idle

    def to_dict(self) -> dict[str, float]:
        return {
            "gpu": self.gpu,
            "compute_ms": self.compute,
            "transfer_ms": self.transfer,
            "overhead_ms": self.overhead,
            "idle_ms": self.idle,
        }


@dataclass(frozen=True)
class PathSegment:
    """One link of the realized critical path.

    ``kind`` is ``"compute"`` (a kernel execution), ``"transfer"`` (a
    message in flight) or ``"wait"`` (a gap the chain sat out: host
    launch serialization, fabric queueing, a stage barrier released
    late).  ``gpu`` is the GPU the segment ran on (``None`` for
    transfer segments, which live on a link).
    """

    kind: str
    label: str
    start: float
    end: float
    gpu: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "label": self.label,
            "start_ms": self.start,
            "end_ms": self.end,
            "gpu": self.gpu,
        }


@dataclass(frozen=True)
class AttributionReport:
    """The full attribution of one execution trace."""

    latency: float
    completed: bool
    per_gpu: tuple[GpuBreakdown, ...]
    critical_path: tuple[PathSegment, ...]

    @property
    def critical_path_compute(self) -> float:
        return sum(s.duration for s in self.critical_path if s.kind == "compute")

    @property
    def critical_path_transfer(self) -> float:
        return sum(s.duration for s in self.critical_path if s.kind == "transfer")

    @property
    def critical_path_wait(self) -> float:
        return sum(s.duration for s in self.critical_path if s.kind == "wait")

    def to_dict(self) -> dict[str, Any]:
        return {
            "latency_ms": self.latency,
            "completed": self.completed,
            "per_gpu": [b.to_dict() for b in self.per_gpu],
            "critical_path": [s.to_dict() for s in self.critical_path],
        }


# ----------------------------------------------------------------------
# per-GPU timeline decomposition
# ----------------------------------------------------------------------
def _bucket_sweep(
    latency: float,
    compute: list[tuple[float, float]],
    transfer: list[tuple[float, float]],
    overhead: list[tuple[float, float]],
) -> dict[str, float]:
    """Partition ``[0, latency]`` into the four buckets by precedence.

    Boundary sweep: every interval endpoint splits the timeline into
    elementary segments; each segment is classified by testing its
    midpoint against the interval sets in precedence order.  The
    segment lengths telescope, so the bucket sums add up to ``latency``
    exactly up to float-addition round-off.
    """
    sums = dict.fromkeys(_BUCKETS, 0.0)
    if latency <= 0.0:
        return sums

    def clip(t: float) -> float:
        return min(max(t, 0.0), latency)

    points = {0.0, latency}
    for ivs in (compute, transfer, overhead):
        for a, b in ivs:
            points.add(clip(a))
            points.add(clip(b))
    ts = sorted(points)

    def covered(ivs: list[tuple[float, float]], t: float) -> bool:
        return any(a <= t < b for a, b in ivs)

    for a, b in zip(ts, ts[1:]):
        if b <= a:
            continue
        mid = (a + b) / 2.0
        if covered(compute, mid):
            key = "compute"
        elif covered(transfer, mid):
            key = "transfer"
        elif covered(overhead, mid):
            key = "overhead"
        else:
            key = "idle"
        sums[key] += b - a
    return sums


def attribute_latency(
    trace: Any, op_gpu: Mapping[str, int]
) -> AttributionReport:
    """Decompose ``trace`` per GPU and extract its realized critical path.

    ``op_gpu`` maps operators to GPUs (``schedule.gpu_of``).  GPUs are
    the union of mapped GPUs and the trace's ``gpu_busy`` keys, so a
    GPU that sat fully idle still gets a (latency-long idle) row.
    """
    latency = trace.latency
    failure = getattr(trace, "failure", None)
    gpus = sorted(set(op_gpu.values()) | set(getattr(trace, "gpu_busy", {})))

    compute: dict[int, list[tuple[float, float]]] = {g: [] for g in gpus}
    overhead: dict[int, list[tuple[float, float]]] = {g: [] for g in gpus}
    transfer: dict[int, list[tuple[float, float]]] = {g: [] for g in gpus}

    for op, start in trace.op_start.items():
        g = op_gpu.get(op)
        if g is None:
            continue
        finish = trace.op_finish.get(op)
        # in-flight operators of a partial trace are cut at the failure
        # instant — they occupied the device until the lights went out
        compute[g].append((start, latency if finish is None else finish))
    for op, launch in trace.op_launch.items():
        g = op_gpu.get(op)
        if g is None:
            continue
        started = trace.op_start.get(op)
        # launched but not yet started: stream serialization / waiting
        # for data; precedence hands the transfer-covered part of this
        # window to the transfer bucket
        overhead[g].append((launch, latency if started is None else started))
    for rec in trace.transfers:
        iv = (rec.start_time, rec.finish_time)
        if rec.dst in transfer:
            transfer[rec.dst].append(iv)
        if rec.src in transfer and rec.src != rec.dst:
            # blocking MPI sends stall the sender's host too
            transfer[rec.src].append(iv)

    per_gpu = []
    for g in gpus:
        sums = _bucket_sweep(latency, compute[g], transfer[g], overhead[g])
        per_gpu.append(
            GpuBreakdown(
                gpu=g,
                compute=sums["compute"],
                transfer=sums["transfer"],
                overhead=sums["overhead"],
                idle=sums["idle"],
            )
        )
    return AttributionReport(
        latency=latency,
        completed=failure is None,
        per_gpu=tuple(per_gpu),
        critical_path=realized_critical_path(trace, op_gpu),
    )


# ----------------------------------------------------------------------
# realized critical path
# ----------------------------------------------------------------------
def _split_tag(tag: str | None) -> tuple[str, str] | None:
    if not tag or "->" not in tag:
        return None
    u, _, v = tag.rpartition("->")
    if not u or not v:
        return None
    return u, v


def realized_critical_path(
    trace: Any, op_gpu: Mapping[str, int], eps: float = 1e-6
) -> tuple[PathSegment, ...]:
    """The measured chain of constraints ending at the last finish.

    Walks backward from the operator with the latest finish (for
    partial traces: the latest cut).  At each operator the *binding*
    constraint on its start is the latest of: an incoming transfer's
    delivery (the chain continues at the producer), the finish of an
    earlier kernel on the same GPU (stage barrier / stream
    serialization), or the host launch completing (the chain starts
    there — what precedes is host-side, not traced per-op).  Gaps
    between the binding time and the start become ``wait`` segments.
    """
    op_start = trace.op_start
    op_finish = trace.op_finish
    if not op_start:
        return ()
    latency = trace.latency

    def end_of(op: str) -> float:
        fin = op_finish.get(op)
        return latency if fin is None else fin

    incoming: dict[str, list[Any]] = {}
    for rec in trace.transfers:
        parsed = _split_tag(rec.tag)
        if parsed is not None:
            incoming.setdefault(parsed[1], []).append(rec)

    segments: list[PathSegment] = []
    visited: set[str] = set()
    v: str | None = max(op_start, key=lambda op: (end_of(op), op))
    while v is not None and v not in visited:
        visited.add(v)
        s = op_start[v]
        segments.append(PathSegment("compute", v, s, end_of(v), op_gpu.get(v)))
        if s <= eps:
            break

        # (binding time, precedence) — on ties, transfers explain more
        # than barriers, barriers more than the bare launch time
        best: tuple[float, int, str, Any] | None = None

        def consider(cand: tuple[float, int, str, Any]) -> None:
            nonlocal best
            if best is None or cand[:2] > best[:2]:
                best = cand

        for rec in incoming.get(v, ()):
            if rec.finish_time <= s + eps:
                consider((rec.finish_time, 2, "transfer", rec))
        g = op_gpu.get(v)
        bar_op: str | None = None
        bar_fin = float("-inf")
        for u, fin in op_finish.items():
            if u == v or op_gpu.get(u) != g or fin > s + eps:
                continue
            if fin > bar_fin or (fin == bar_fin and (bar_op is None or u < bar_op)):
                bar_op, bar_fin = u, fin
        if bar_op is not None:
            consider((bar_fin, 1, "barrier", bar_op))
        launch = trace.op_launch.get(v)
        if launch is not None and launch <= s + eps:
            # the host issues launches serially and only after the
            # previous stage drained, so a launch-bound start continues
            # at whatever released the host: the barrier op (threaded
            # through as the payload; note launch >= bar_fin whenever
            # the launch candidate can win the max)
            consider((launch, 0, "launch", (bar_op, bar_fin)))

        if best is None:
            break
        t, _, kind, payload = best
        if s - t > eps:
            segments.append(
                PathSegment("wait", f"wait before {v}", t, s, op_gpu.get(v))
            )
        if kind == "transfer":
            rec = payload
            producer = _split_tag(rec.tag)[0]  # type: ignore[index]
            segments.append(
                PathSegment(
                    "transfer", rec.tag, rec.start_time, rec.finish_time, None
                )
            )
            fin_u = op_finish.get(producer)
            if fin_u is not None and rec.start_time - fin_u > eps:
                segments.append(
                    PathSegment(
                        "wait",
                        f"send queue {rec.tag}",
                        fin_u,
                        rec.start_time,
                        rec.src,
                    )
                )
            v = producer if producer in op_start else None
        elif kind == "barrier":
            v = payload
        else:  # launch-bound: follow the host back to the barrier release
            bar_op, bar_fin = payload
            if bar_op is None:
                break  # first op on its GPU: the chain starts at the host
            if t - bar_fin > eps:
                segments.append(
                    PathSegment(
                        "wait", f"launch {v}", bar_fin, t, op_gpu.get(v)
                    )
                )
            v = bar_op

    segments.reverse()
    return tuple(segments)
