"""``repro.obs`` — the observability layer.

Turns :class:`~repro.substrate.engine.ExecutionTrace` objects into
human- and tool-readable artifacts:

* :mod:`~repro.obs.chrometrace` — Chrome/Perfetto ``trace_event`` JSON
  export (one track per GPU, transfer lanes with flow arrows, the
  failure instant marked on partial traces);
* :mod:`~repro.obs.attribution` — per-GPU latency decomposition
  (compute / transfer / overhead / idle, summing to the trace latency)
  and the *realized* critical path through the measured trace;
* :mod:`~repro.obs.report` — fixed-width renderings plus a structural
  trace diff, behind ``repro trace report`` / ``repro trace diff``;
* :mod:`~repro.obs.declog` — context-local structured
  scheduler-decision logging (JSONL): which GPU won each HIOS-LP path,
  which Alg. 2 window merges were accepted or rejected and why.

Submodules are imported lazily (PEP 562) so the scheduler core can
``from ..obs.declog import active`` without dragging the exporters in
— and without import cycles.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "AttributionReport",
    "CHROME_TRACE_FORMAT",
    "DecisionLog",
    "GpuBreakdown",
    "PathSegment",
    "TraceDiff",
    "attribute_latency",
    "capture_decisions",
    "chrome_trace_document",
    "diff_traces",
    "realized_critical_path",
    "render_attribution",
    "render_trace_diff",
    "save_chrome_trace",
    "trace_to_events",
]

_EXPORTS = {
    "AttributionReport": "attribution",
    "GpuBreakdown": "attribution",
    "PathSegment": "attribution",
    "attribute_latency": "attribution",
    "realized_critical_path": "attribution",
    "CHROME_TRACE_FORMAT": "chrometrace",
    "chrome_trace_document": "chrometrace",
    "save_chrome_trace": "chrometrace",
    "trace_to_events": "chrometrace",
    "DecisionLog": "declog",
    "capture_decisions": "declog",
    "TraceDiff": "report",
    "diff_traces": "report",
    "render_attribution": "report",
    "render_trace_diff": "report",
}


def __getattr__(name: str) -> Any:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}") from None
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
