"""Structured scheduler-decision logging (JSONL).

The schedulers make thousands of micro-decisions — which GPU wins each
HIOS-LP path, which window merges Alg. 2 accepts and why the rest were
rejected, where HIOS-MR's backtracking places each operator — and until
now none of them were observable: a schedule arrived fully formed with
only aggregate counters in ``ScheduleResult.stats``.  This module gives
the inner loops *hooks*: while a :class:`DecisionLog` is active (via
:func:`capture_decisions`), every decision is appended as one structured
record; otherwise the hooks are a single ``None`` check and the
schedulers stay on their fast path.

The log is context-local (:mod:`contextvars`), so parallel sweeps and
nested scheduler calls (e.g. the repair path re-running HIOS) cannot
interleave records from unrelated runs.  Records serialize to JSON
Lines — one JSON object per line, streamable and ``grep``-able:

    from repro.obs import capture_decisions
    with capture_decisions() as log:
        schedule_graph(profile, "hios-lp")
    log.write_jsonl("decisions.jsonl")

This module deliberately imports nothing from the rest of ``repro`` so
the scheduler core can import it without cycles.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator

__all__ = ["DecisionLog", "active", "capture_decisions", "emit"]


class DecisionLog:
    """An in-memory sequence of scheduler-decision records.

    Each record is a plain dict carrying at least ``seq`` (a 0-based
    monotone sequence number stamped at emit time) and ``event`` (the
    record type, e.g. ``"lp-path"`` or ``"window"``); everything else
    is event-specific.  Values must be JSON-serializable.
    """

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records)

    def emit(self, event: str, **fields: Any) -> None:
        """Append one record; ``seq`` and ``event`` are stamped first."""
        self.records.append({"seq": len(self.records), "event": event, **fields})

    def events(self, event: str) -> list[dict[str, Any]]:
        """The records of one event type, in emission order."""
        return [r for r in self.records if r["event"] == event]

    def to_jsonl(self) -> str:
        """Serialize to JSON Lines (one compact object per line)."""
        return "".join(
            json.dumps(rec, sort_keys=False, separators=(",", ":")) + "\n"
            for rec in self.records
        )

    def write_jsonl(self, path: str | Path) -> None:
        Path(path).write_text(self.to_jsonl())


_ACTIVE: ContextVar[DecisionLog | None] = ContextVar(
    "repro_obs_decision_log", default=None
)


def active() -> DecisionLog | None:
    """The decision log capturing in this context, or ``None``.

    Scheduler inner loops call this once on entry and skip every emit
    when it returns ``None``, so inactive logging costs one context-var
    read per scheduling phase.
    """
    return _ACTIVE.get()


def emit(event: str, **fields: Any) -> None:
    """Emit one record into the active log; no-op when none is active."""
    log = _ACTIVE.get()
    if log is not None:
        log.emit(event, **fields)


@contextmanager
def capture_decisions(log: DecisionLog | None = None) -> Iterator[DecisionLog]:
    """Activate a :class:`DecisionLog` for the dynamic extent of the block."""
    if log is None:
        log = DecisionLog()
    token = _ACTIVE.set(log)
    try:
        yield log
    finally:
        _ACTIVE.reset(token)
