"""Chrome/Perfetto ``trace_event`` export for engine traces.

``chrome://tracing`` and https://ui.perfetto.dev open the emitted JSON
directly: one track per GPU for kernels, one per link direction for
transfers, flow arrows from each transfer slice to the kernel it feeds,
and — for partial fault traces — the failure instant marked as a global
instant event with the in-flight operators in its args.  Times are
exported in microseconds as the format requires (engine times are
milliseconds).

Traces are duck-typed (``op_launch`` / ``op_start`` / ``op_finish``
dicts, ``latency``, ``transfers``, optional ``failure``), so anything
satisfying the :class:`~repro.substrate.engine.ExecutionTrace` shape —
including documents round-tripped through ``repro.trace/v1`` — exports
without importing the substrate.

In-flight operators of a partial trace (a start but no finish) are cut
at the trace latency and tagged ``"unfinished": true`` so the doomed
kernels stay visible on the timeline instead of being dropped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "CHROME_TRACE_FORMAT",
    "trace_to_events",
    "chrome_trace_document",
    "save_chrome_trace",
]

#: Format marker carried in ``otherData`` so tooling (and the T1xx lint
#: rules) can recognize documents this exporter produced.
CHROME_TRACE_FORMAT = "repro.chrometrace/v1"

_MS_TO_US = 1000.0


def trace_to_events(
    trace: Any, op_gpu: Mapping[str, int], process_name: str = "hios"
) -> list[dict[str, Any]]:
    """Build the trace-event list for one execution trace.

    ``op_gpu`` maps operators to their GPU (``schedule.gpu_of``).
    Kernels become complete events (``ph: "X"``) on ``tid = gpu``;
    transfers land on per-direction rows after the GPU rows, each tied
    to its consumer kernel by a flow pair (``ph: "s"`` / ``ph: "f"``);
    a failure is marked by a global instant event (``ph: "i"``).
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    gpus = sorted(set(op_gpu.values()))
    for g in gpus:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": g,
                "args": {"name": f"GPU {g}"},
            }
        )
    failure = getattr(trace, "failure", None)
    cut = trace.latency
    for op, start in trace.op_start.items():
        finish = trace.op_finish.get(op)
        args: dict[str, Any] = {"launch_ms": trace.op_launch.get(op)}
        if finish is None:
            # in-flight at the failure instant (or a malformed trace):
            # cut the slice at the trace end so it stays visible
            finish = max(cut, start)
            args["unfinished"] = True
        events.append(
            {
                "name": op,
                "cat": "kernel",
                "ph": "X",
                "pid": 0,
                "tid": op_gpu[op],
                "ts": start * _MS_TO_US,
                "dur": max(0.0, finish - start) * _MS_TO_US,
                "args": args,
            }
        )
    # transfers: one synthetic row per (src, dst) direction
    lanes: dict[tuple[int, int], int] = {}
    next_tid = (max(gpus) + 1) if gpus else 1
    flow_id = 0
    for rec in trace.transfers:
        lane = (rec.src, rec.dst)
        if lane not in lanes:
            lanes[lane] = next_tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": next_tid,
                    "args": {"name": f"link {rec.src}->{rec.dst}"},
                }
            )
            next_tid += 1
        events.append(
            {
                "name": rec.tag or "transfer",
                "cat": "transfer",
                "ph": "X",
                "pid": 0,
                "tid": lanes[lane],
                "ts": rec.start_time * _MS_TO_US,
                "dur": rec.duration * _MS_TO_US,
                "args": {
                    "bytes": rec.num_bytes,
                    "queue_delay_ms": rec.queue_delay,
                },
            }
        )
        # flow arrow from the transfer slice to the kernel it feeds
        consumer = _consumer_of(rec.tag)
        if consumer is not None and consumer in trace.op_start:
            flow_id += 1
            events.append(
                {
                    "name": rec.tag,
                    "cat": "flow",
                    "ph": "s",
                    "id": flow_id,
                    "pid": 0,
                    "tid": lanes[lane],
                    "ts": rec.start_time * _MS_TO_US,
                }
            )
            events.append(
                {
                    "name": rec.tag,
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "pid": 0,
                    "tid": op_gpu.get(consumer, lanes[lane]),
                    "ts": max(rec.finish_time, trace.op_start[consumer])
                    * _MS_TO_US,
                }
            )
    if failure is not None:
        events.append(
            {
                "name": f"GPU {failure.gpu} fail-stop",
                "cat": "failure",
                "ph": "i",
                "s": "g",  # global scope: draws across every track
                "pid": 0,
                "tid": failure.gpu,
                "ts": failure.time * _MS_TO_US,
                "args": {
                    "gpu": failure.gpu,
                    "in_flight": sorted(failure.in_flight),
                    "finished": len(failure.finished),
                },
            }
        )
    return events


def _consumer_of(tag: str | None) -> str | None:
    """The consumer operator encoded in a ``"u->v"`` transfer tag."""
    if not tag or "->" not in tag:
        return None
    return tag.rsplit("->", 1)[1] or None


def chrome_trace_document(
    trace: Any, op_gpu: Mapping[str, int], process_name: str = "hios"
) -> dict[str, Any]:
    """The full JSON-object-format trace document.

    ``otherData`` carries the :data:`CHROME_TRACE_FORMAT` marker plus
    summary fields so exported artifacts are self-describing (and
    classifiable by ``repro lint``).
    """
    failure = getattr(trace, "failure", None)
    return {
        "traceEvents": trace_to_events(trace, op_gpu, process_name),
        "displayTimeUnit": "ms",
        "otherData": {
            "format": CHROME_TRACE_FORMAT,
            "latency_ms": trace.latency,
            "num_transfers": len(trace.transfers),
            "completed": failure is None,
        },
    }


def save_chrome_trace(
    trace: Any,
    op_gpu: Mapping[str, int],
    path: str | Path,
    process_name: str = "hios",
) -> None:
    """Write a ``chrome://tracing`` / Perfetto-loadable JSON file."""
    doc = chrome_trace_document(trace, op_gpu, process_name)
    Path(path).write_text(json.dumps(doc))
