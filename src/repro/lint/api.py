"""Convenience entry points: one call per lintable subject.

Each function builds the right :class:`~repro.lint.framework.LintContext`
and runs the applicable slice of the registered rule set, returning a
:class:`~repro.lint.diagnostics.LintReport` with *every* finding —
callers that want the legacy raise-on-first-error behaviour use
:meth:`LintReport.raise_errors`.
"""

from __future__ import annotations

from typing import Any, Mapping, TYPE_CHECKING

from ..core.graph import OpGraph
from ..core.schedule import Schedule
from .diagnostics import LintReport
from .framework import LintContext, Linter

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from ..substrate.engine import ExecutionTrace
    from ..substrate.faults import FaultPlan

__all__ = [
    "lint_graph",
    "lint_schedule",
    "lint_schedule_document",
    "lint_trace",
    "lint_fault_plan",
    "lint_cache_document",
    "lint_chrome_trace",
    "lint_serve_config",
    "lint_serve_report",
    "lint_hb_report",
]


def _linter(errors_only: bool) -> Linter:
    return Linter.errors_only() if errors_only else Linter()


def lint_graph(
    graph: OpGraph,
    *,
    fanout_threshold: int = 16,
    errors_only: bool = False,
) -> LintReport:
    """Run the graph rule pack over one computation graph."""
    ctx = LintContext(graph=graph, fanout_threshold=fanout_threshold)
    return _linter(errors_only).run(ctx)


def lint_schedule(
    graph: OpGraph,
    schedule: Schedule,
    *,
    window: int | None = None,
    errors_only: bool = False,
) -> LintReport:
    """Run the graph + schedule rule packs over a built schedule."""
    ctx = LintContext(graph=graph, schedule=schedule, window=window)
    return _linter(errors_only).run(ctx)


def lint_schedule_document(
    data: Mapping[str, Any], *, errors_only: bool = False
) -> LintReport:
    """Run the document-level schedule rules over raw JSON data."""
    ctx = LintContext(schedule_doc=data)
    return _linter(errors_only).run(ctx)


def lint_trace(
    graph: OpGraph,
    schedule: Schedule,
    trace: "ExecutionTrace",
    *,
    eps: float = 1e-6,
    errors_only: bool = False,
) -> LintReport:
    """Run the trace rule pack over one execution trace.

    Graph and schedule context make the causality rules precise
    (transfer-aware cross-GPU checks, stage-barrier checks); the
    schedule rules also run, so a trace linted against a broken
    schedule reports both problems at once.
    """
    ctx = LintContext(graph=graph, schedule=schedule, trace=trace, eps=eps)
    return _linter(errors_only).run(ctx)


def lint_fault_plan(
    plan: "FaultPlan",
    *,
    num_gpus: int | None = None,
    horizon: float | None = None,
    errors_only: bool = False,
) -> LintReport:
    """Run the fault-plan rule pack over one declarative fault plan."""
    ctx = LintContext(plan=plan, num_gpus=num_gpus, horizon=horizon)
    return _linter(errors_only).run(ctx)


def lint_cache_document(
    data: Mapping[str, Any], *, errors_only: bool = False
) -> LintReport:
    """Run the cache rule pack over one sweep result-cache entry."""
    ctx = LintContext(cache_doc=data)
    return _linter(errors_only).run(ctx)


def lint_serve_config(
    data: Mapping[str, Any], *, errors_only: bool = False
) -> LintReport:
    """Run the serve rule pack over one ``repro.serve/v1`` config doc.

    ``data`` is the raw mapping (e.g. parsed JSON) — linting never
    constructs a :class:`repro.serve.config.ServeConfig`, so malformed
    documents are reported instead of raising.
    """
    ctx = LintContext(serve_doc=data)
    return _linter(errors_only).run(ctx)


def lint_serve_report(
    data: Mapping[str, Any], *, errors_only: bool = False
) -> LintReport:
    """Run the report rules over one ``repro.servereport/v1`` document.

    ``data`` is the JSON-object form ``repro serve --json`` emits
    (:meth:`repro.serve.report.ServeReport.to_dict`, optionally with
    the per-request records embedded under ``requests``).  The rules
    check the lifecycle-counter conservation identities and, when
    records are present, that the aggregates match what the records
    add up to.
    """
    ctx = LintContext(serve_report_doc=data)
    return _linter(errors_only).run(ctx)


def lint_hb_report(
    data: Mapping[str, Any], *, errors_only: bool = False
) -> LintReport:
    """Run the hb rule pack over one ``repro.hbreport/v1`` document.

    ``data`` is the JSON-object form ``repro sanitize --json`` emits
    (:meth:`repro.sanitize.SanitizeReport.to_dict`).  Linting never
    reconstructs the report, so malformed documents are diagnosed
    instead of raising.
    """
    ctx = LintContext(hb_doc=data)
    return _linter(errors_only).run(ctx)


def lint_chrome_trace(
    data: Mapping[str, Any], *, errors_only: bool = False
) -> LintReport:
    """Run the chrome rule pack over one exported ``trace_event`` doc.

    ``data`` is the JSON-object-form document
    :func:`repro.obs.chrome_trace_document` produces (``traceEvents``
    array plus ``otherData`` with the exporter format marker).
    """
    ctx = LintContext(chrome_doc=data)
    return _linter(errors_only).run(ctx)
