"""Happens-before report rules (``H0xx``): ``repro.hbreport/v1`` hygiene.

``repro sanitize --json`` emits a happens-before analysis report; CI
checks such reports in as artifacts next to the graph/schedule/trace
triples they describe.  These rules keep a checked-in report honest:
the format marker and document shape must be right, every finding must
use the analyzer's fixed kind/severity taxonomy, witness steps must
name both an event and the edge kind that orders it, the summary
counters must agree with the findings list — and, the one that gates
CI, a report that *records* unresolved errors (deadlocks, races,
linearization violations) is itself an error: committed artifacts must
be clean.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..sanitize.api import FINDING_KINDS, HBREPORT_FORMAT
from .diagnostics import Severity
from .framework import Finding, LintContext, rule

__all__: list[str] = []

_MODEL_KEYS = ("overlap_launch", "send_blocking", "max_streams", "data_wait")


def _findings(doc: Mapping[str, Any]) -> list[Any]:
    raw = doc.get("findings")
    return raw if isinstance(raw, list) else []


@rule(
    "H001",
    severity=Severity.ERROR,
    pack="hb",
    title="hb report must carry the hbreport format marker and shape",
    requires=("hb_doc",),
    hint=f"repro sanitize --json emits format {HBREPORT_FORMAT!r} with "
    "model, stats, findings and summary sections",
)
def check_format(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.hb_doc
    assert doc is not None
    fmt = doc.get("format")
    if fmt != HBREPORT_FORMAT:
        yield Finding(
            f"format is {fmt!r}, expected {HBREPORT_FORMAT!r}",
            location="format",
        )
    for key, want in (
        ("model", Mapping),
        ("stats", Mapping),
        ("findings", list),
        ("summary", Mapping),
    ):
        value = doc.get(key)
        if not isinstance(value, want):
            yield Finding(
                f"{key} is {type(value).__name__}, expected "
                f"{'an object' if want is Mapping else 'an array'}",
                location=key,
            )


@rule(
    "H002",
    severity=Severity.ERROR,
    pack="hb",
    title="hb findings must use the analyzer's kind/severity taxonomy",
    requires=("hb_doc",),
    hint="kinds and their severities are fixed by "
    "repro.sanitize.api.FINDING_KINDS; anything else means the report "
    "was not produced by the analyzer (or was hand-edited)",
)
def check_finding_taxonomy(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.hb_doc
    assert doc is not None
    for i, entry in enumerate(_findings(doc)):
        where = f"findings[{i}]"
        if not isinstance(entry, Mapping):
            yield Finding(
                f"{where} is {type(entry).__name__}, expected an object",
                location=where,
            )
            continue
        kind = entry.get("kind")
        severity = entry.get("severity")
        message = entry.get("message")
        if kind not in FINDING_KINDS:
            yield Finding(
                f"{where} has unknown kind {kind!r}", location=where
            )
        elif severity != FINDING_KINDS[kind]:
            # also catches severities outside {error, warning, info}:
            # the taxonomy maps every kind to exactly one of them
            yield Finding(
                f"{where} ({kind}) has severity {severity!r}, the "
                f"analyzer always emits {FINDING_KINDS[kind]!r}",
                location=where,
            )
        if not isinstance(message, str) or not message:
            yield Finding(
                f"{where} has no message", location=where
            )


@rule(
    "H003",
    severity=Severity.ERROR,
    pack="hb",
    title="a checked-in hb report must not record unresolved errors",
    requires=("hb_doc",),
    hint="the report says the analyzed schedule deadlocks or races; "
    "fix the schedule (or the engine) and regenerate — committing a "
    "dirty report defeats the CI gate",
)
def check_clean(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.hb_doc
    assert doc is not None
    for i, entry in enumerate(_findings(doc)):
        if not isinstance(entry, Mapping):
            continue  # H002 reports the shape problem
        if entry.get("severity") == "error":
            kind = entry.get("kind", "?")
            message = entry.get("message", "")
            yield Finding(
                f"report records an unresolved {kind} error: {message}",
                location=f"findings[{i}]",
            )


@rule(
    "H004",
    severity=Severity.WARNING,
    pack="hb",
    title="hb report internals must be consistent",
    requires=("hb_doc",),
    hint="summary counters disagreeing with the findings list, "
    "negative stats or malformed witness steps mean the report was "
    "post-processed by something other than the analyzer",
)
def check_consistency(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.hb_doc
    assert doc is not None
    stats = doc.get("stats")
    if isinstance(stats, Mapping):
        for key, value in sorted(stats.items()):
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                yield Finding(
                    f"stats[{key!r}] is {value!r}, expected a "
                    "non-negative integer",
                    location=f"stats.{key}",
                )
    counted = {"error": 0, "warning": 0, "info": 0}
    for i, entry in enumerate(_findings(doc)):
        if not isinstance(entry, Mapping):
            continue
        severity = entry.get("severity")
        if isinstance(severity, str) and severity in counted:
            counted[severity] += 1
        witness = entry.get("witness", [])
        if not isinstance(witness, list):
            yield Finding(
                f"findings[{i}].witness is {type(witness).__name__}, "
                "expected an array of steps",
                location=f"findings[{i}].witness",
            )
            continue
        for j, step in enumerate(witness):
            if (
                not isinstance(step, Mapping)
                or not isinstance(step.get("event"), str)
                or not isinstance(step.get("edge"), str)
            ):
                yield Finding(
                    f"findings[{i}].witness[{j}] must be an object with "
                    "event and edge",
                    location=f"findings[{i}].witness[{j}]",
                )
    summary = doc.get("summary")
    if isinstance(summary, Mapping):
        for key, label in (
            ("errors", "error"),
            ("warnings", "warning"),
            ("info", "info"),
        ):
            declared = summary.get(key)
            if declared != counted[label]:
                yield Finding(
                    f"summary.{key} is {declared!r} but the findings "
                    f"list contains {counted[label]}",
                    location=f"summary.{key}",
                )


@rule(
    "H005",
    severity=Severity.INFO,
    pack="hb",
    title="non-default analysis models are worth knowing about",
    requires=("hb_doc",),
    hint="data_wait=false audits the schedule for a backend with no "
    "per-message synchronization — expected to flag every cross-GPU "
    "edge; make sure that was intentional",
)
def check_model_flags(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.hb_doc
    assert doc is not None
    model = doc.get("model")
    if not isinstance(model, Mapping):
        return  # H001 reports the shape problem
    for key in _MODEL_KEYS:
        if key not in model:
            yield Finding(f"model omits {key}", location=f"model.{key}")
    if model.get("data_wait") is False:
        yield Finding(
            "report was produced with data_wait=false (no-sync backend "
            "audit mode)",
            location="model.data_wait",
        )
