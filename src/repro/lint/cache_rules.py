"""Cache-document rules (``C0xx``): sweep result-cache entry hygiene.

The :mod:`repro.sweep` engine persists every work-unit result as a
content-addressed JSON document (``format: "repro.cache/v1"``).  The
cache reader already *tolerates* malformed entries — it discards them
and re-executes — but a tree full of silently discarded entries is a
warm cache that never hits.  These rules make the discard reasons
visible: a wrong format marker, a missing or stale schema version, a
key that cannot be a SHA-256 digest or that disagrees with the entry's
filename, and payloads that are not finite-number mappings.
"""

from __future__ import annotations

import math
import string
from typing import Any, Iterator, Mapping

from ..sweep.cache import CACHE_FORMAT
from ..sweep.keying import CACHE_SCHEMA_VERSION
from ..sweep.units import UNIT_KINDS
from .diagnostics import Severity
from .framework import Finding, LintContext, rule

__all__: list[str] = []

_HEX_DIGITS = frozenset(string.hexdigits.lower())


def _is_sha256_hex(key: str) -> bool:
    return len(key) == 64 and all(c in _HEX_DIGITS for c in key)


@rule(
    "C001",
    severity=Severity.ERROR,
    pack="cache",
    title="cache entry must carry the cache format marker",
    requires=("cache_doc",),
    hint=f"the sweep cache only reads documents with format "
    f"{CACHE_FORMAT!r}; anything else is discarded as corrupt",
)
def check_format(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    fmt = doc.get("format")
    if fmt != CACHE_FORMAT:
        yield Finding(
            f"format is {fmt!r}, expected {CACHE_FORMAT!r}",
            location="format",
        )


@rule(
    "C002",
    severity=Severity.ERROR,
    pack="cache",
    title="cache entry must declare an integer schema version",
    requires=("cache_doc",),
    hint="schema_version gates cache invalidation; an entry without a "
    "positive integer version is discarded on read",
)
def check_schema_version_valid(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    version = doc.get("schema_version")
    if version is None:
        yield Finding("schema_version is missing", location="schema_version")
    elif isinstance(version, bool) or not isinstance(version, int) or version < 1:
        yield Finding(
            f"schema_version is {version!r}, expected a positive integer",
            location="schema_version",
        )


@rule(
    "C003",
    severity=Severity.WARNING,
    pack="cache",
    title="cache entry schema version should be current",
    requires=("cache_doc",),
    hint="entries from other schema versions are never hits; run "
    "`repro cache clear` to reclaim the space",
)
def check_schema_version_current(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    version = doc.get("schema_version")
    if (
        isinstance(version, int)
        and not isinstance(version, bool)
        and version >= 1
        and version != CACHE_SCHEMA_VERSION
    ):
        yield Finding(
            f"schema_version {version} is not the current "
            f"{CACHE_SCHEMA_VERSION}",
            location="schema_version",
        )


@rule(
    "C004",
    severity=Severity.ERROR,
    pack="cache",
    title="cache key must be a SHA-256 hex digest",
    requires=("cache_doc",),
    hint="keys are lowercase 64-character SHA-256 hex digests of the "
    "canonical unit description; anything else can never be looked up",
)
def check_key(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    key = doc.get("key")
    if not isinstance(key, str) or not _is_sha256_hex(key):
        yield Finding(
            f"key is {key!r}, expected 64 lowercase hex characters",
            location="key",
        )


@rule(
    "C005",
    severity=Severity.ERROR,
    pack="cache",
    title="cache payload must be a non-empty finite-number mapping",
    requires=("cache_doc",),
    hint="payloads are the raw unit results (e.g. {'latency': ...}); "
    "the reader rejects empty, non-numeric or non-finite payloads",
)
def check_payload(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    payload = doc.get("payload")
    if not isinstance(payload, Mapping) or not payload:
        yield Finding(
            f"payload is {type(payload).__name__ if payload is not None else None}"
            ", expected a non-empty mapping",
            location="payload",
        )
        return
    for name, value in payload.items():
        if not isinstance(name, str):
            yield Finding(
                f"payload field name {name!r} is not a string",
                location="payload",
            )
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            yield Finding(
                f"payload[{name!r}] is {value!r}, expected a finite number",
                location=f"payload.{name}",
            )
        elif not math.isfinite(value):
            yield Finding(
                f"payload[{name!r}] is {value!r} (non-finite)",
                location=f"payload.{name}",
            )


@rule(
    "C006",
    severity=Severity.WARNING,
    pack="cache",
    title="cache entry kind should be a known unit kind",
    requires=("cache_doc",),
    hint=f"known unit kinds are {', '.join(UNIT_KINDS)}; an unknown "
    "kind suggests the entry was written by a newer or foreign tool",
)
def check_kind(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    kind = doc.get("kind")
    if kind is not None and kind not in UNIT_KINDS:
        yield Finding(
            f"kind is {kind!r}, not one of {UNIT_KINDS}",
            location="kind",
        )
