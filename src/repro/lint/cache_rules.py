"""Cache-document rules (``C0xx``): content-store entry hygiene.

The :mod:`repro.sweep` stores persist two species of content-addressed
JSON documents in one sharded tree: work-unit results
(``format: "repro.cache/v1"``, numeric payloads) and whole schedules
(``format: "repro.schedcache/v1"``, a schedule document plus its
latency).  The readers already *tolerate* malformed entries — they
discard them and recompute — but a tree full of silently discarded
entries is a warm cache that never hits.  These rules make the discard
reasons visible: a wrong format marker, a missing or stale schema
version, a key that cannot be a SHA-256 digest or that disagrees with
the entry's filename, and payloads that fail their format's shape
(finite-number mappings for sweep results; a schedule mapping and a
finite latency for schedule entries).
"""

from __future__ import annotations

import math
import string
from typing import Any, Iterator, Mapping

from ..sweep.cache import CACHE_FORMAT
from ..sweep.keying import CACHE_SCHEMA_VERSION
from ..sweep.schedcache import SCHED_CACHE_FORMAT, SCHED_CACHE_KIND
from ..sweep.units import UNIT_KINDS
from .diagnostics import Severity
from .framework import Finding, LintContext, rule

__all__: list[str] = []

_HEX_DIGITS = frozenset(string.hexdigits.lower())

_CACHE_FORMATS = (CACHE_FORMAT, SCHED_CACHE_FORMAT)


def _is_sha256_hex(key: str) -> bool:
    return len(key) == 64 and all(c in _HEX_DIGITS for c in key)


@rule(
    "C001",
    severity=Severity.ERROR,
    pack="cache",
    title="cache entry must carry a known cache format marker",
    requires=("cache_doc",),
    hint=f"the content stores only read documents with format "
    f"{CACHE_FORMAT!r} or {SCHED_CACHE_FORMAT!r}; anything else is "
    f"discarded as corrupt",
)
def check_format(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    fmt = doc.get("format")
    if fmt not in _CACHE_FORMATS:
        yield Finding(
            f"format is {fmt!r}, expected one of {_CACHE_FORMATS}",
            location="format",
        )


@rule(
    "C002",
    severity=Severity.ERROR,
    pack="cache",
    title="cache entry must declare an integer schema version",
    requires=("cache_doc",),
    hint="schema_version gates cache invalidation; an entry without a "
    "positive integer version is discarded on read",
)
def check_schema_version_valid(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    version = doc.get("schema_version")
    if version is None:
        yield Finding("schema_version is missing", location="schema_version")
    elif isinstance(version, bool) or not isinstance(version, int) or version < 1:
        yield Finding(
            f"schema_version is {version!r}, expected a positive integer",
            location="schema_version",
        )


@rule(
    "C003",
    severity=Severity.WARNING,
    pack="cache",
    title="cache entry schema version should be current",
    requires=("cache_doc",),
    hint="entries from other schema versions are never hits; run "
    "`repro cache clear` to reclaim the space",
)
def check_schema_version_current(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    version = doc.get("schema_version")
    if (
        isinstance(version, int)
        and not isinstance(version, bool)
        and version >= 1
        and version != CACHE_SCHEMA_VERSION
    ):
        yield Finding(
            f"schema_version {version} is not the current "
            f"{CACHE_SCHEMA_VERSION}",
            location="schema_version",
        )


@rule(
    "C004",
    severity=Severity.ERROR,
    pack="cache",
    title="cache key must be a SHA-256 hex digest",
    requires=("cache_doc",),
    hint="keys are lowercase 64-character SHA-256 hex digests of the "
    "canonical unit description; anything else can never be looked up",
)
def check_key(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    key = doc.get("key")
    if not isinstance(key, str) or not _is_sha256_hex(key):
        yield Finding(
            f"key is {key!r}, expected 64 lowercase hex characters",
            location="key",
        )


def _check_result_payload(payload: Mapping[str, Any]) -> Iterator[Finding]:
    """Sweep-result payloads: non-empty finite-number mappings."""
    for name, value in payload.items():
        if not isinstance(name, str):
            yield Finding(
                f"payload field name {name!r} is not a string",
                location="payload",
            )
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            yield Finding(
                f"payload[{name!r}] is {value!r}, expected a finite number",
                location=f"payload.{name}",
            )
        elif not math.isfinite(value):
            yield Finding(
                f"payload[{name!r}] is {value!r} (non-finite)",
                location=f"payload.{name}",
            )


def _check_schedule_payload(payload: Mapping[str, Any]) -> Iterator[Finding]:
    """Schedule payloads: a schedule document plus a finite latency."""
    schedule = payload.get("schedule")
    if not isinstance(schedule, Mapping):
        yield Finding(
            f"payload.schedule is "
            f"{type(schedule).__name__ if schedule is not None else None}, "
            "expected a schedule mapping",
            location="payload.schedule",
        )
    elif not isinstance(schedule.get("gpus"), list):
        yield Finding(
            "payload.schedule has no 'gpus' list",
            location="payload.schedule.gpus",
        )
    latency = payload.get("latency")
    if isinstance(latency, bool) or not isinstance(latency, (int, float)):
        yield Finding(
            f"payload.latency is {latency!r}, expected a finite number",
            location="payload.latency",
        )
    elif not math.isfinite(latency):
        yield Finding(
            f"payload.latency is {latency!r} (non-finite)",
            location="payload.latency",
        )


@rule(
    "C005",
    severity=Severity.ERROR,
    pack="cache",
    title="cache payload must match its format's shape",
    requires=("cache_doc",),
    hint="sweep-result payloads are finite-number mappings "
    "(e.g. {'latency': ...}); schedule payloads carry a schedule "
    "document and a finite latency; the readers reject anything else",
)
def check_payload(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    payload = doc.get("payload")
    if not isinstance(payload, Mapping) or not payload:
        yield Finding(
            f"payload is {type(payload).__name__ if payload is not None else None}"
            ", expected a non-empty mapping",
            location="payload",
        )
        return
    if doc.get("format") == SCHED_CACHE_FORMAT:
        yield from _check_schedule_payload(payload)
    else:
        yield from _check_result_payload(payload)


@rule(
    "C006",
    severity=Severity.WARNING,
    pack="cache",
    title="cache entry kind should match its format",
    requires=("cache_doc",),
    hint=f"sweep entries use unit kinds ({', '.join(UNIT_KINDS)}); "
    f"schedule entries use {SCHED_CACHE_KIND!r}; an unknown kind "
    "suggests the entry was written by a newer or foreign tool",
)
def check_kind(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.cache_doc
    assert doc is not None
    kind = doc.get("kind")
    if kind is None:
        return
    if doc.get("format") == SCHED_CACHE_FORMAT:
        if kind != SCHED_CACHE_KIND:
            yield Finding(
                f"kind is {kind!r}, expected {SCHED_CACHE_KIND!r} for a "
                "schedule entry",
                location="kind",
            )
    elif kind not in UNIT_KINDS:
        yield Finding(
            f"kind is {kind!r}, not one of {UNIT_KINDS}",
            location="kind",
        )
