"""Diagnostics: the currency of the static verifier.

A :class:`Diagnostic` is one finding — a rule ID (``S001``), a severity,
a human-readable message, an optional location (``op:conv1``,
``gpu:2/stage:3``, ``edge:a->b``, ``spec:1``) and an optional fix hint.
A :class:`LintReport` is the ordered collection of findings one
:class:`~repro.lint.framework.Linter` run produced; unlike the legacy
``validate()`` entry points it never raises on the first problem — it
returns *all* of them and lets the caller decide (CLI exit code, raise,
print).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["Severity", "Diagnostic", "LintReport"]


class Severity(enum.Enum):
    """Finding severity; ``ERROR`` findings make a subject invalid."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule against one subject."""

    rule: str
    severity: Severity
    message: str
    location: str | None = None
    hint: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.location is not None:
            out["location"] = self.location
        if self.hint is not None:
            out["hint"] = self.hint
        return out

    def format(self) -> str:
        """One-line rendering, e.g. ``error[S001] op:a: message``."""
        where = f" {self.location}" if self.location else ""
        return f"{self.severity}[{self.rule}]{where}: {self.message}"


class LintReport:
    """All findings of one lint run, ordered by severity then rule ID."""

    def __init__(self, diagnostics: tuple[Diagnostic, ...] = ()) -> None:
        self.diagnostics: tuple[Diagnostic, ...] = tuple(
            sorted(
                diagnostics,
                key=lambda d: (d.severity.rank, d.rule, d.location or "", d.message),
            )
        )

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding is present."""
        return not self.errors

    def rule_ids(self) -> set[str]:
        return {d.rule for d in self.diagnostics}

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def merged(self, other: "LintReport") -> "LintReport":
        return LintReport(self.diagnostics + other.diagnostics)

    # ------------------------------------------------------------------
    def raise_errors(self, exc_type: type[Exception], prefix: str = "") -> None:
        """Raise ``exc_type`` carrying every error message, if any.

        This is the adapter the legacy ``validate()`` entry points use:
        the linter collects everything, the wrapper raises once.
        """
        errors = self.errors
        if not errors:
            return
        joined = "; ".join(d.message for d in errors)
        raise exc_type(f"{prefix}{joined}" if prefix else joined)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "ok": self.ok,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_text(self) -> str:
        """Human-readable listing with a one-line summary."""
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LintReport(errors={len(self.errors)}, warnings={len(self.warnings)}, "
            f"infos={len(self.infos)})"
        )
