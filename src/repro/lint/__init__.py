"""``repro.lint`` — rule-based static verification of HIOS artifacts.

The subsystem behind ``repro lint``: a small diagnostic framework
(:class:`Rule`, :class:`Diagnostic`, :class:`Linter`) plus eight rule
packs covering every artifact the scheduler pipeline produces or
consumes:

========  ==================================================================
pack      subject
========  ==================================================================
graph     computation DAGs (``G0xx``: cycles, isolated ops, weights, fan-out)
schedule  schedules and their JSON documents (``S0xx``: placement
          completeness, GPU indices, stage independence/order/acyclicity,
          window bound, idle GPUs, critical-path crossings)
trace     execution traces (``T0xx``: finite timestamps, causality with
          transfer times, stage barriers, trace-schedule agreement)
faults    declarative fault plans (``F0xx``: target indices, horizon,
          contradictions, retry budgets)
cache     sweep result-cache entries (``C0xx``: format marker, schema
          version, key digest shape, finite payloads, known unit kinds)
chrome    exported Chrome/Perfetto trace-event documents (``T1xx``:
          object form, exporter format marker, event structure, flow
          pairing, named tracks, failure-instant marker)
serve     serving-scenario configs (``V0xx``: format marker, tenant and
          arrival shape, pool/lease arithmetic, registered algorithms,
          parseable fault specs, policy-knob sanity)
hb        happens-before analysis reports (``H0xx``: hbreport format
          marker, finding taxonomy, witness-step shape, summary
          consistency, and no unresolved errors in checked-in reports)
========  ==================================================================

Unlike ``Schedule.validate()`` — now a thin wrapper over the
error-severity rules — a lint run returns *all* findings as a
:class:`LintReport` instead of raising on the first.  Set
``HIOS_DEBUG_LINT=1`` to make every scheduler self-check each schedule
it emits.
"""

from .api import (
    lint_cache_document,
    lint_chrome_trace,
    lint_fault_plan,
    lint_graph,
    lint_hb_report,
    lint_schedule,
    lint_schedule_document,
    lint_serve_config,
    lint_serve_report,
    lint_trace,
)
from .diagnostics import Diagnostic, LintReport, Severity
from .framework import (
    Finding,
    LintContext,
    Linter,
    Rule,
    all_rules,
    get_rule,
    rule,
    rule_catalog,
)

# importing the packs registers their rules with the framework
from . import cache_rules as _cache_rules  # noqa: F401
from . import chrome_rules as _chrome_rules  # noqa: F401
from . import fault_rules as _fault_rules  # noqa: F401
from . import graph_rules as _graph_rules  # noqa: F401
from . import hb_rules as _hb_rules  # noqa: F401
from . import schedule_rules as _schedule_rules  # noqa: F401
from . import serve_rules as _serve_rules  # noqa: F401
from . import trace_rules as _trace_rules  # noqa: F401

__all__ = [
    "Diagnostic",
    "Finding",
    "LintContext",
    "LintReport",
    "Linter",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_cache_document",
    "lint_chrome_trace",
    "lint_fault_plan",
    "lint_graph",
    "lint_hb_report",
    "lint_schedule",
    "lint_schedule_document",
    "lint_serve_config",
    "lint_serve_report",
    "lint_trace",
    "rule",
    "rule_catalog",
]
