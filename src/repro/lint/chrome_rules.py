"""Chrome-trace rules (``T1xx``): exported ``trace_event`` documents.

:mod:`repro.obs.chrometrace` exports engine traces as Chrome/Perfetto
``trace_event`` JSON.  A malformed export fails *silently* — Perfetto
drops events it cannot parse and renders a partial (or empty) timeline
with no error — so these rules verify the contract up front: the
JSON-object form with a ``traceEvents`` array, the ``otherData`` format
marker the ``repro`` tooling keys on, per-event structural invariants
(phase, pid/tid, finite non-negative timestamps), balanced flow-event
pairs, kernel slices landing on named tracks, and the failure-instant
marker a partial trace must carry.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Mapping

from .diagnostics import Severity
from .framework import Finding, LintContext, rule

__all__: list[str] = []

# mirrors repro.obs.chrometrace.CHROME_TRACE_FORMAT; spelled out here so
# the lint pack keeps its subject duck-typed (no obs import needed)
CHROME_TRACE_FORMAT = "repro.chrometrace/v1"

_KNOWN_PHASES = frozenset("BEXiIMsftPNODCbnevRcS(")


def _events(doc: Mapping[str, Any]) -> list[Any]:
    events = doc.get("traceEvents")
    return events if isinstance(events, list) else []


@rule(
    "T101",
    severity=Severity.ERROR,
    pack="chrome",
    title="chrome trace must be the JSON-object form with a traceEvents array",
    requires=("chrome_doc",),
    hint="the exporter writes {'traceEvents': [...], 'displayTimeUnit': "
    "..., 'otherData': {...}}; the bare array form carries no metadata",
)
def check_shape(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.chrome_doc
    assert doc is not None
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        yield Finding(
            f"traceEvents is {type(events).__name__ if events is not None else None}"
            ", expected an array of event objects",
            location="traceEvents",
        )
        return
    for i, ev in enumerate(events):
        if not isinstance(ev, Mapping):
            yield Finding(
                f"traceEvents[{i}] is {type(ev).__name__}, expected an object",
                location=f"traceEvents[{i}]",
            )


@rule(
    "T102",
    severity=Severity.ERROR,
    pack="chrome",
    title="chrome trace must carry the exporter format marker",
    requires=("chrome_doc",),
    hint=f"otherData.format must be {CHROME_TRACE_FORMAT!r} so tooling "
    "can recognize (and re-lint) exported documents",
)
def check_format_marker(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.chrome_doc
    assert doc is not None
    other = doc.get("otherData")
    if not isinstance(other, Mapping):
        yield Finding(
            "otherData is missing or not an object", location="otherData"
        )
        return
    fmt = other.get("format")
    if fmt != CHROME_TRACE_FORMAT:
        yield Finding(
            f"otherData.format is {fmt!r}, expected {CHROME_TRACE_FORMAT!r}",
            location="otherData.format",
        )


@rule(
    "T103",
    severity=Severity.ERROR,
    pack="chrome",
    title="chrome trace events must be structurally valid",
    requires=("chrome_doc",),
    hint="every event needs a known ph and an integer pid; duration "
    "events (ph 'X') need finite non-negative ts and dur in microseconds",
)
def check_events(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.chrome_doc
    assert doc is not None
    for i, ev in enumerate(_events(doc)):
        if not isinstance(ev, Mapping):
            continue  # T101 reports the shape problem
        loc = f"traceEvents[{i}]"
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            yield Finding(f"ph is {ph!r}, not a known phase", location=loc)
        pid = ev.get("pid")
        if isinstance(pid, bool) or not isinstance(pid, int):
            yield Finding(f"pid is {pid!r}, expected an integer", location=loc)
        if ph == "M":
            continue  # metadata events carry no timestamps
        ts = ev.get("ts")
        if isinstance(ts, bool) or not isinstance(ts, (int, float)):
            yield Finding(f"ts is {ts!r}, expected a number", location=loc)
        elif not math.isfinite(ts) or ts < 0:
            yield Finding(
                f"ts is {ts!r}, expected finite and non-negative", location=loc
            )
        if ph == "X":
            dur = ev.get("dur")
            if isinstance(dur, bool) or not isinstance(dur, (int, float)):
                yield Finding(
                    f"dur is {dur!r}, expected a number", location=loc
                )
            elif not math.isfinite(dur) or dur < 0:
                yield Finding(
                    f"dur is {dur!r}, expected finite and non-negative",
                    location=loc,
                )


@rule(
    "T104",
    severity=Severity.ERROR,
    pack="chrome",
    title="chrome trace flow events must come in matched s/f pairs",
    requires=("chrome_doc",),
    hint="each flow start (ph 's') needs exactly one finish (ph 'f') "
    "with the same id at ts >= the start; unpaired arrows render as "
    "dangling or vanish entirely",
)
def check_flow_pairs(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.chrome_doc
    assert doc is not None
    starts: dict[object, float] = {}
    finishes: dict[object, float] = {}
    for ev in _events(doc):
        if not isinstance(ev, Mapping):
            continue
        ph = ev.get("ph")
        if ph not in ("s", "f"):
            continue
        fid = ev.get("id")
        ts = ev.get("ts")
        if fid is None or not isinstance(ts, (int, float)):
            continue  # T103 reports the structural problem
        table = starts if ph == "s" else finishes
        if fid in table:
            yield Finding(
                f"duplicate flow {'start' if ph == 's' else 'finish'} "
                f"for id {fid!r}",
                location="traceEvents",
            )
        table[fid] = float(ts)
    for fid, ts in starts.items():
        if fid not in finishes:
            yield Finding(
                f"flow id {fid!r} has a start but no finish",
                location="traceEvents",
            )
        elif finishes[fid] < ts:
            yield Finding(
                f"flow id {fid!r} finishes at {finishes[fid]} before its "
                f"start at {ts}",
                location="traceEvents",
            )
    for fid in finishes:
        if fid not in starts:
            yield Finding(
                f"flow id {fid!r} has a finish but no start",
                location="traceEvents",
            )


@rule(
    "T105",
    severity=Severity.WARNING,
    pack="chrome",
    title="chrome trace slices should land on named tracks",
    requires=("chrome_doc",),
    hint="the exporter emits a thread_name metadata event per GPU and "
    "link lane; a slice on an undeclared tid renders on an anonymous row",
)
def check_named_tracks(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.chrome_doc
    assert doc is not None
    named: set[object] = set()
    for ev in _events(doc):
        if (
            isinstance(ev, Mapping)
            and ev.get("ph") == "M"
            and ev.get("name") == "thread_name"
        ):
            named.add(ev.get("tid"))
    reported: set[object] = set()
    for i, ev in enumerate(_events(doc)):
        if not isinstance(ev, Mapping) or ev.get("ph") != "X":
            continue
        tid = ev.get("tid")
        if tid not in named and tid not in reported:
            reported.add(tid)
            yield Finding(
                f"slice tid {tid!r} has no thread_name metadata event",
                location=f"traceEvents[{i}]",
            )


@rule(
    "T106",
    severity=Severity.WARNING,
    pack="chrome",
    title="partial chrome trace should mark the failure instant",
    requires=("chrome_doc",),
    hint="exports of partial fault traces (otherData.completed false) "
    "carry a global instant event (ph 'i', cat 'failure') at the "
    "fail-stop time; without it the timeline just ends unexplained",
)
def check_failure_marker(ctx: LintContext) -> Iterator[Finding]:
    doc = ctx.chrome_doc
    assert doc is not None
    other = doc.get("otherData")
    if not isinstance(other, Mapping) or other.get("completed") is not False:
        return
    for ev in _events(doc):
        if (
            isinstance(ev, Mapping)
            and ev.get("ph") == "i"
            and ev.get("cat") == "failure"
        ):
            return
    yield Finding(
        "otherData.completed is false but no failure instant event "
        "(ph 'i', cat 'failure') is present",
        location="traceEvents",
    )
