"""The rule framework: contexts, rules, the registry and the linter.

A :class:`Rule` is a pure function from a :class:`LintContext` to zero
or more :class:`Finding` values, tagged with a stable ID, a severity and
the *subjects* it needs (``graph``, ``schedule``, ``schedule_doc``,
``trace``, ``plan``, ``cache_doc``, ``chrome_doc``, ``serve_doc``,
``serve_report_doc``, ``hb_doc``).  The :class:`Linter` runs every
registered rule whose subjects the context provides and returns a
:class:`~repro.lint.diagnostics.LintReport` — it never raises on a
finding, so one run surfaces *every* problem at once.

All eight rule packs (:mod:`~repro.lint.graph_rules`,
:mod:`~repro.lint.schedule_rules`, :mod:`~repro.lint.trace_rules`,
:mod:`~repro.lint.fault_rules`, :mod:`~repro.lint.cache_rules`,
:mod:`~repro.lint.chrome_rules`, :mod:`~repro.lint.serve_rules`,
:mod:`~repro.lint.hb_rules`) register themselves at import time via
the :func:`rule` decorator; importing :mod:`repro.lint` loads every
registered pack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, TYPE_CHECKING

from ..core.graph import OpGraph
from ..core.schedule import Schedule
from .diagnostics import Diagnostic, LintReport, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from ..substrate.engine import ExecutionTrace
    from ..substrate.faults import FaultPlan

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "Linter",
    "rule",
    "all_rules",
    "get_rule",
    "rule_catalog",
]

SUBJECTS = (
    "graph",
    "schedule",
    "schedule_doc",
    "trace",
    "plan",
    "cache_doc",
    "chrome_doc",
    "serve_doc",
    "serve_report_doc",
    "hb_doc",
)


@dataclass(frozen=True)
class Finding:
    """What a rule check yields; the linter stamps rule ID + severity."""

    message: str
    location: str | None = None
    hint: str | None = None


@dataclass(frozen=True)
class LintContext:
    """Everything a lint run may look at.

    Subjects are optional: a rule only runs when every subject it
    declares in ``requires`` is present.  The scalar fields are
    cross-cutting options: ``window`` is the Alg. 2 window bound ``w``
    (stage-width budget), ``num_gpus`` bounds GPU indices for fault
    plans linted without a schedule, ``horizon`` is the latest time a
    fault event can still fire (e.g. the predicted makespan), ``eps``
    is the float tolerance for trace causality arithmetic and
    ``fanout_threshold`` the out-degree above which a graph vertex is
    deemed suspicious.
    """

    graph: OpGraph | None = None
    schedule: Schedule | None = None
    schedule_doc: Mapping[str, Any] | None = None
    trace: "ExecutionTrace | None" = None
    plan: "FaultPlan | None" = None
    cache_doc: Mapping[str, Any] | None = None
    chrome_doc: Mapping[str, Any] | None = None
    serve_doc: Mapping[str, Any] | None = None
    serve_report_doc: Mapping[str, Any] | None = None
    hb_doc: Mapping[str, Any] | None = None
    window: int | None = None
    num_gpus: int | None = None
    horizon: float | None = None
    eps: float = 1e-6
    fanout_threshold: int = 16

    def has(self, subject: str) -> bool:
        if subject not in SUBJECTS:
            raise ValueError(f"unknown lint subject {subject!r}")
        return getattr(self, subject) is not None


CheckFn = Callable[[LintContext], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity, severity, subjects and the check."""

    id: str
    severity: Severity
    pack: str
    title: str
    requires: tuple[str, ...]
    check: CheckFn
    hint: str | None = None

    def applicable(self, ctx: LintContext) -> bool:
        return all(ctx.has(subject) for subject in self.requires)

    def run(self, ctx: LintContext) -> list[Diagnostic]:
        return [
            Diagnostic(
                rule=self.id,
                severity=self.severity,
                message=finding.message,
                location=finding.location,
                hint=finding.hint if finding.hint is not None else self.hint,
            )
            for finding in self.check(ctx)
        ]


_REGISTRY: dict[str, Rule] = {}


def rule(
    rule_id: str,
    *,
    severity: Severity,
    pack: str,
    title: str,
    requires: Iterable[str],
    hint: str | None = None,
) -> Callable[[CheckFn], CheckFn]:
    """Register a check function as a rule.  IDs must be unique."""

    def decorate(fn: CheckFn) -> CheckFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule ID {rule_id!r}")
        needs = tuple(requires)
        for subject in needs:
            if subject not in SUBJECTS:
                raise ValueError(f"rule {rule_id}: unknown subject {subject!r}")
        _REGISTRY[rule_id] = Rule(
            id=rule_id,
            severity=severity,
            pack=pack,
            title=title,
            requires=needs,
            check=fn,
            hint=hint,
        )
        return fn

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by ID."""
    return sorted(_REGISTRY.values(), key=lambda r: r.id)


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}") from None


def rule_catalog() -> list[dict[str, Any]]:
    """Serializable catalog of the full rule set (for ``repro lint --json``)."""
    return [
        {
            "id": r.id,
            "severity": str(r.severity),
            "pack": r.pack,
            "title": r.title,
            "requires": list(r.requires),
        }
        for r in all_rules()
    ]


@dataclass(frozen=True)
class Linter:
    """Runs a rule set against a context and returns every finding."""

    rules: tuple[Rule, ...] = field(default_factory=lambda: tuple(all_rules()))

    @classmethod
    def errors_only(cls) -> "Linter":
        """A linter restricted to error-severity rules — the fast
        feasibility core the ``validate()`` wrappers run."""
        return cls(tuple(r for r in all_rules() if r.severity is Severity.ERROR))

    @classmethod
    def for_packs(cls, *packs: str) -> "Linter":
        return cls(tuple(r for r in all_rules() if r.pack in packs))

    def run(self, ctx: LintContext) -> LintReport:
        diagnostics: list[Diagnostic] = []
        for r in self.rules:
            if r.applicable(ctx):
                diagnostics.extend(r.run(ctx))
        return LintReport(tuple(diagnostics))
